//! The divide & conquer shortest path forest algorithm (§5.4, Theorem 56 /
//! Corollary 57): an `(S, D)`-shortest path forest in `O(log n log² k)`
//! rounds.
//!
//! Pipeline:
//!
//! 1. **Dividing** (§5.4.1): mark the x-portals holding sources (`Q`, one
//!    beep round), compute the augmentation set `A_Q` via the portal
//!    root-and-prune (Lemmas 34, 51), and split the structure at the
//!    portals of `Q' = Q ∪ A_Q` — each `Q'` portal joins both sides, and is
//!    further split at the marked connector amoebots (all but the
//!    westernmost per side) so that every region meets one or two `Q'`
//!    portals (Lemma 52).
//! 2. **Base case** (§5.4.2): elect `R'` ∈ `Q'`, root the portal tree at it;
//!    each region identifies its LCA (and descendant) portal, runs the line
//!    algorithm on it and propagates inward; two-portal regions merge the
//!    two propagated forests (Lemma 54).
//! 3. **Merging** (§5.4.3/5.4.4): process the `Q'`-centroid decomposition
//!    tree of the portal graph from the deepest level upward; at each
//!    scheduled portal, pair up the regions of each side via the parity of
//!    a single PASC iteration over the marked amoebots, merge each pair
//!    through its separating marked amoebot (two region-scoped SPTs + one
//!    merge), then join the two sides with two propagations and a merge
//!    (Lemma 55).
//! 4. **Destinations** (Corollary 57): a final root-and-prune with `Q = D`
//!    prunes every subtree without destinations.

use amoebot_circuits::{RoundReport, Topology, World};
use amoebot_grid::{AmoebotStructure, Axis, NodeId};

use crate::forest::line::line_forest;
use crate::forest::merge::merge_forests;
use crate::forest::propagate::propagate_forest;
use crate::forest::Forest;
use crate::links::LINKS;
use crate::portals::{axis_portals, mark_portals, portal_root_and_prune, AxisPortals};
use crate::primitives::decomposition::centroid_decomposition;
use crate::primitives::root_prune::root_and_prune;
use crate::spt::spt_in_world;
use crate::tree::Tree;

/// Result of the shortest path forest algorithm.
#[derive(Debug, Clone)]
pub struct ForestOutcome {
    /// `parents[v]` in the `(S, D)`-shortest path forest (`None` for
    /// sources, pruned amoebots and non-members).
    pub parents: Vec<Option<NodeId>>,
    /// Total simulator rounds.
    pub rounds: u64,
    /// Total distinct beeps sent (diagnostic instrumentation of
    /// [`World::beeps_sent`]; the model itself never counts beeps).
    pub beeps: u64,
    /// Per-phase breakdown.
    pub report: RoundReport,
}

/// Computes an `(S, D)`-shortest path forest (Theorem 56 / Corollary 57,
/// `O(log n log² k)` rounds).
///
/// # Panics
///
/// Panics if `sources` or `dests` is empty.
pub fn shortest_path_forest(
    structure: &AmoebotStructure,
    sources: &[NodeId],
    dests: &[NodeId],
) -> ForestOutcome {
    assert!(!sources.is_empty(), "S must be non-empty");
    assert!(!dests.is_empty(), "D must be non-empty");
    let n = structure.len();
    let mut src: Vec<usize> = sources.iter().map(|s| s.index()).collect();
    src.sort_unstable();
    src.dedup();

    // k = 1 degenerates to the shortest path tree algorithm (§1.3).
    if src.len() == 1 {
        let out = crate::spt::shortest_path_tree(structure, NodeId(src[0] as u32), dests);
        return ForestOutcome {
            parents: out.parents,
            rounds: out.rounds,
            beeps: out.beeps,
            report: out.report,
        };
    }

    let mut world = World::new(Topology::from_structure(structure), LINKS);
    let mut report = RoundReport::new();
    let mut dest_mask = vec![false; n];
    for d in dests {
        dest_mask[d.index()] = true;
    }
    let src_mask: Vec<bool> = {
        let mut m = vec![false; n];
        for &s in &src {
            m[s] = true;
        }
        m
    };

    let full_mask = vec![true; n];
    let forest = sources_forest(
        &mut world,
        structure,
        &full_mask,
        &src,
        &src_mask,
        &mut report,
    );

    // Corollary 57: prune every tree with Q = D.
    let start = world.rounds();
    let roots = forest_roots(&forest);
    let trees: Vec<Tree> = forest
        .sources
        .iter()
        .map(|&s| {
            let mut parents = vec![None; n];
            for v in 0..n {
                if forest.member[v] && roots[v] == s as u32 {
                    parents[v] = forest.parents[v];
                }
            }
            Tree::from_parents(n, s, &parents)
        })
        .collect();
    let rp = root_and_prune(&mut world, &trees, &dest_mask);
    report.record("destination pruning (Corollary 57)", world.rounds() - start);

    let parents: Vec<Option<NodeId>> = (0..n)
        .map(|v| {
            if rp.in_vq[v] {
                rp.parent[v].map(|p| NodeId(p as u32))
            } else {
                None
            }
        })
        .collect();
    ForestOutcome {
        parents,
        rounds: world.rounds(),
        beeps: world.beeps_sent(),
        report,
    }
}

/// The root of every node under `f`'s parent pointers, memoized with path
/// compression: one O(n) pass over two flat arrays. The previous
/// per-(source, node) upward walks cost O(n · k · depth) and dominated
/// destination pruning once the structure outgrew ~10^4 nodes.
fn forest_roots(f: &Forest) -> Vec<u32> {
    const UNKNOWN: u32 = u32::MAX;
    let n = f.parents.len();
    let mut root = vec![UNKNOWN; n];
    let mut path: Vec<u32> = Vec::new();
    for v in 0..n {
        if root[v] != UNKNOWN {
            continue;
        }
        let mut x = v;
        path.clear();
        while root[x] == UNKNOWN {
            match f.parents[x] {
                // The length guard mirrors the old defensive cycle check:
                // a (never expected) parent cycle terminates instead of
                // spinning, labelling the cycle by its entry node.
                Some(p) if path.len() < n => {
                    path.push(x as u32);
                    x = p;
                }
                _ => break,
            }
        }
        let r = if root[x] != UNKNOWN {
            root[x]
        } else {
            x as u32
        };
        root[x] = r;
        for &y in &path {
            root[y as usize] = r;
        }
    }
    root
}

/// A region of the divide step: an amoebot mask plus, per `Q'` portal it
/// meets, which side of that portal the region lies on.
#[derive(Debug, Clone)]
struct Region {
    mask: Vec<bool>,
    /// `(portal id, side)` of each boundary `Q'` portal.
    boundaries: Vec<(u32, usize)>,
}

/// Computes the `S`-shortest path forest covering the whole structure
/// (Theorem 56) — destinations are handled by the caller.
fn sources_forest(
    world: &mut World,
    structure: &AmoebotStructure,
    mask: &[bool],
    src: &[usize],
    src_mask: &[bool],
    report: &mut RoundReport,
) -> Forest {
    let n = structure.len();
    let ap = axis_portals(structure, mask, Axis::X);

    // §5.4.1: Q = portals with sources (one beep round, Lemma 51)...
    let start = world.rounds();
    let q_portals = mark_portals(world, structure, mask, &ap, src_mask);

    // Degenerate case: the whole structure is a single x-portal (a line).
    if ap.portals.len() == 1 {
        let chain = ap.portals[0].clone();
        let is_source: Vec<bool> = chain.iter().map(|&v| src_mask[v]).collect();
        let f = line_forest(world, &chain, &is_source);
        report.record("line structure (Lemma 40)", world.rounds() - start);
        return f;
    }

    // ...and A_Q via the portal root-and-prune rooted at the leader's
    // portal (the leader is a precondition, §2.1; we use the first source).
    let leader_portal = ap.portal_of[src[0]];
    let prp = portal_root_and_prune(world, structure, mask, &ap, leader_portal, &q_portals);
    let q_prime: Vec<bool> = (0..ap.portals.len())
        .map(|p| q_portals[p] || (prp.portal_in_vq[p] && prp.portal_deg_q[p] >= 3))
        .collect();
    report.record("compute Q' = Q ∪ A_Q (Lemma 51)", world.rounds() - start);

    // §5.4.1: split into regions (Lemma 52). The unmarking beep is a round.
    let start = world.rounds();
    world.charge_rounds(1, "unmark westernmost connectors (Lemma 52)");
    let (regions, splits) =
        build_regions(structure, &ap, leader_portal, &prp.portal_in_vq, &q_prime);
    for r in &regions {
        let b: std::collections::BTreeSet<u32> = r.boundaries.iter().map(|&(p, _)| p).collect();
        assert!(
            (1..=2).contains(&b.len()),
            "Lemma 52: regions meet one or two Q' portals"
        );
    }
    report.record("divide into regions (Lemma 52)", world.rounds() - start);

    // §5.4.2 preprocessing: elect R' ∈ Q' and root the portal tree at it.
    let start = world.rounds();
    let q_hat: Vec<bool> = (0..n)
        .map(|v| {
            mask[v]
                && ap.portal_of[v] != u32::MAX
                && q_prime[ap.portal_of[v] as usize]
                && ap.reps[ap.portal_of[v] as usize] == v
        })
        .collect();
    let tree = ap.tree_rooted_at(leader_portal);
    let elected = crate::primitives::election::elect(world, std::slice::from_ref(&tree), &q_hat);
    let r_prime = ap.portal_of[elected[0].expect("Q' is non-empty")];
    world.charge_rounds(1, "announce R' on portal circuit (Lemma 35)");
    // Portal tree rooted at R' (depths for LCA identification, Lemma 53).
    let pdepth = portal_depths(&ap, r_prime);
    world.charge_rounds(1, "identify P_DSC via region circuit (Lemma 53)");
    report.record(
        "elect and root at R' (Lemmas 35, 53)",
        world.rounds() - start,
    );

    // §5.4.2 base case: per-region forests, in parallel (rebated).
    let start = world.rounds();
    let mut forests: Vec<Forest> = Vec::with_capacity(regions.len());
    let mut spans = Vec::new();
    for region in &regions {
        let s0 = world.rounds();
        forests.push(base_case_forest(
            world, structure, &ap, region, src_mask, &pdepth,
        ));
        spans.push(world.rounds() - s0);
    }
    rebate_to_max(
        world,
        &spans,
        "base-case regions run in parallel (Lemma 54)",
    );
    report.record("base case per region (Lemma 54)", world.rounds() - start);

    // §5.4.4: schedule merges by a Q'-centroid decomposition tree of the
    // portal graph, computed with the real decomposition primitive on the
    // portal quotient (§3.5 / Lemma 37 establish the equivalence).
    let quotient_edges: Vec<(usize, usize)> = {
        let adj = ap.portal_tree_edges();
        let mut e = Vec::new();
        for (p, lst) in adj.iter().enumerate() {
            for &(q, _) in lst {
                if (p as u32) < q {
                    e.push((p, q as usize));
                }
            }
        }
        e
    };
    let mut qworld = World::new(
        Topology::from_edges(ap.portals.len(), &quotient_edges),
        LINKS,
    );
    let qtree = Tree::from_edges(ap.portals.len(), r_prime as usize, &quotient_edges);
    let decomposition = centroid_decomposition(&mut qworld, &qtree, &q_prime);
    let decomposition_rounds = qworld.rounds();
    report.record(
        "portal centroid decomposition (Lemma 37)",
        decomposition_rounds,
    );
    world.charge_rounds(
        decomposition_rounds,
        "portal centroid decomposition on the quotient (Lemma 37)",
    );

    // Merge from the deepest decomposition level upward (§5.4.4); the
    // decomposition is recomputed (binary-counter replay) per level.
    let mut live: Vec<Option<(Region, Forest)>> =
        regions.into_iter().zip(forests).map(Some).collect();
    for level in (0..decomposition.levels).rev() {
        let portals_at_level = decomposition.centroids_at_level(level);
        if portals_at_level.is_empty() {
            continue;
        }
        if level + 1 != decomposition.levels {
            world.charge_rounds(
                decomposition_rounds + 2,
                "recompute decomposition level (Lemma 37 + binary counter)",
            );
        }
        let s0 = world.rounds();
        let mut spans = Vec::new();
        for &p in &portals_at_level {
            let m0 = world.rounds();
            merge_around_portal(
                world,
                structure,
                &ap,
                p as u32,
                splits.get(&(p as u32)),
                &mut live,
            );
            spans.push(world.rounds() - m0);
        }
        rebate_to_max(world, &spans, "same-level portal merges run in parallel");
        report.record(
            format!("merge level {level} (Lemma 55)"),
            world.rounds() - s0,
        );
    }

    let mut remaining: Vec<(Region, Forest)> = live.into_iter().flatten().collect();
    assert_eq!(remaining.len(), 1, "all regions must merge into one");
    let (region, forest) = remaining.pop().unwrap();
    debug_assert!((0..n).all(|v| region.mask[v] == mask[v]));
    debug_assert!((0..n).all(|v| !mask[v] || forest.member[v]));
    forest
}

fn rebate_to_max(world: &mut World, spans: &[u64], reason: &str) {
    if spans.len() > 1 {
        let total: u64 = spans.iter().sum();
        let max = spans.iter().copied().max().unwrap_or(0);
        world.rebate_rounds(total - max, reason);
    }
}

/// BFS depths of the portal tree rooted at `root`.
fn portal_depths(ap: &AxisPortals, root: u32) -> Vec<u32> {
    let adj = ap.portal_tree_edges();
    let mut depth = vec![u32::MAX; ap.portals.len()];
    let mut queue = std::collections::VecDeque::new();
    depth[root as usize] = 0;
    queue.push_back(root);
    while let Some(p) = queue.pop_front() {
        for &(q, _) in &adj[p as usize] {
            if depth[q as usize] == u32::MAX {
                depth[q as usize] = depth[p as usize] + 1;
                queue.push_back(q);
            }
        }
    }
    depth
}

type Splits = std::collections::BTreeMap<u32, [Vec<usize>; 2]>;

/// Builds the regions of Lemma 52 and returns them together with the split
/// positions (member indices of the marked amoebots) per `(portal, side)`.
fn build_regions(
    structure: &AmoebotStructure,
    ap: &AxisPortals,
    root_portal: u32,
    portal_in_vq: &[bool],
    q_prime: &[bool],
) -> (Vec<Region>, Splits) {
    let n = structure.len();
    let adj = ap.portal_tree_edges();
    // Rooted portal tree, mirroring the distributed rooting (the agreement
    // is verified by the portal-layer tests).
    let mut parent = vec![u32::MAX; ap.portals.len()];
    {
        let mut seen = vec![false; ap.portals.len()];
        let mut queue = std::collections::VecDeque::new();
        seen[root_portal as usize] = true;
        queue.push_back(root_portal);
        while let Some(p) = queue.pop_front() {
            for &(q, _) in &adj[p as usize] {
                if !seen[q as usize] {
                    seen[q as usize] = true;
                    parent[q as usize] = p;
                    queue.push_back(q);
                }
            }
        }
    }
    let is_tq_edge = |a: u32, b: u32| -> bool {
        portal_in_vq[a as usize]
            && portal_in_vq[b as usize]
            && (parent[a as usize] == b || parent[b as usize] == a)
    };
    let side_of = |p: u32, q: u32| -> usize {
        // Side 0: the neighbor portal has a smaller line key (north for x).
        let kp = Axis::X.line_key(structure.coord(NodeId(ap.portals[p as usize][0] as u32)));
        let kq = Axis::X.line_key(structure.coord(NodeId(ap.portals[q as usize][0] as u32)));
        usize::from(kq > kp)
    };
    let member_index = |p: u32, v: usize| -> usize {
        ap.portals[p as usize]
            .iter()
            .position(|&x| x == v)
            .expect("connector on its portal")
    };

    // Split positions per (Q' portal, side): the T_Q connectors minus the
    // westernmost (Lemma 52).
    let mut splits: Splits = Splits::new();
    for p in 0..ap.portals.len() as u32 {
        if !q_prime[p as usize] {
            continue;
        }
        let mut per_side: [Vec<usize>; 2] = [Vec::new(), Vec::new()];
        for &(q, c) in &adj[p as usize] {
            if is_tq_edge(p, q) {
                per_side[side_of(p, q)].push(member_index(p, c));
            }
        }
        for side in &mut per_side {
            side.sort_unstable();
            if !side.is_empty() {
                side.remove(0); // unmark the westernmost
            }
        }
        splits.insert(p, per_side);
    }

    // Quotient nodes: whole non-Q' portals, and one node per
    // (Q' portal, side, interval); interval j spans member indices
    // [split_{j-1} ..= split_j] (endpoints shared: marked amoebots belong
    // to both neighboring regions).
    #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
    enum QNode {
        Portal(u32),
        Sub(u32, usize, usize),
    }
    fn find(dsu: &mut std::collections::BTreeMap<QNode, QNode>, x: QNode) -> QNode {
        let p = *dsu.entry(x).or_insert(x);
        if p == x {
            x
        } else {
            let r = find(dsu, p);
            dsu.insert(x, r);
            r
        }
    }
    let interval_of = |p: u32, side: usize, member_idx: usize| -> usize {
        splits[&p][side]
            .iter()
            .filter(|&&x| x <= member_idx)
            .count()
    };
    let node_for = |p: u32, toward: u32, connector: usize| -> QNode {
        if q_prime[p as usize] {
            let side = side_of(p, toward);
            QNode::Sub(p, side, interval_of(p, side, member_index(p, connector)))
        } else {
            QNode::Portal(p)
        }
    };
    let mut dsu: std::collections::BTreeMap<QNode, QNode> = std::collections::BTreeMap::new();
    for p in 0..ap.portals.len() as u32 {
        for &(q, c) in &adj[p as usize] {
            if p < q {
                let cq = adj[q as usize]
                    .iter()
                    .find(|&&(x, _)| x == p)
                    .map(|&(_, cc)| cc)
                    .expect("symmetric portal adjacency");
                let a = node_for(p, q, c);
                let b = node_for(q, p, cq);
                let ra = find(&mut dsu, a);
                let rb = find(&mut dsu, b);
                if ra != rb {
                    dsu.insert(ra, rb);
                }
            }
        }
    }
    // Materialize components into regions, deterministically ordered.
    let mut all_nodes: Vec<QNode> = Vec::new();
    for p in 0..ap.portals.len() as u32 {
        if q_prime[p as usize] {
            for side in 0..2 {
                for j in 0..=splits[&p][side].len() {
                    all_nodes.push(QNode::Sub(p, side, j));
                }
            }
        } else {
            all_nodes.push(QNode::Portal(p));
        }
    }
    let mut groups: std::collections::BTreeMap<QNode, Vec<QNode>> =
        std::collections::BTreeMap::new();
    for &x in &all_nodes {
        let r = find(&mut dsu, x);
        groups.entry(r).or_default().push(x);
    }
    let mut regions = Vec::new();
    for (_, nodes) in groups {
        let mut mask = vec![false; n];
        let mut boundaries = Vec::new();
        for node in nodes {
            match node {
                QNode::Portal(p) => {
                    for &v in &ap.portals[p as usize] {
                        mask[v] = true;
                    }
                }
                QNode::Sub(p, side, j) => {
                    let members = &ap.portals[p as usize];
                    let s = &splits[&p][side];
                    let lo = if j == 0 { 0 } else { s[j - 1] };
                    let hi = if j == s.len() {
                        members.len() - 1
                    } else {
                        s[j]
                    };
                    for &v in &members[lo..=hi] {
                        mask[v] = true;
                    }
                    boundaries.push((p, side));
                }
            }
        }
        boundaries.sort_unstable();
        boundaries.dedup();
        regions.push(Region { mask, boundaries });
    }
    (regions, splits)
}

/// §5.4.2: the base-case forest of one region.
fn base_case_forest(
    world: &mut World,
    structure: &AmoebotStructure,
    ap: &AxisPortals,
    region: &Region,
    src_mask: &[bool],
    pdepth: &[u32],
) -> Forest {
    let n = structure.len();
    // The region's Q' portals; the LCA is the one closest to R' (Lemma 53).
    let mut portals: Vec<u32> = region.boundaries.iter().map(|&(p, _)| p).collect();
    portals.sort_unstable();
    portals.dedup();
    portals.sort_by_key(|&p| pdepth[p as usize]);
    let mut forest: Option<Forest> = None;
    for &p in &portals {
        let chain: Vec<usize> = ap.portals[p as usize]
            .iter()
            .copied()
            .filter(|&v| region.mask[v])
            .collect();
        let is_source: Vec<bool> = chain.iter().map(|&v| src_mask[v]).collect();
        if !is_source.iter().any(|&b| b) {
            continue; // no sources on this portal within the region
        }
        let line = line_forest(world, &chain, &is_source);
        let propagated = propagate_forest(world, structure, &region.mask, &chain, Axis::X, &line);
        forest = Some(match forest {
            None => propagated,
            Some(prev) => merge_forests(world, &prev, &propagated),
        });
    }
    forest.unwrap_or_else(|| {
        // A corridor region without sources: its forest arrives via the
        // merge steps; represent it as an empty-source forest over the mask.
        let mut f = Forest::empty(n);
        f.member = region.mask.clone();
        f
    })
}

/// §5.4.3: merges all regions intersecting portal `p` into one.
fn merge_around_portal(
    world: &mut World,
    structure: &AmoebotStructure,
    ap: &AxisPortals,
    p: u32,
    splits: Option<&[Vec<usize>; 2]>,
    live: &mut [Option<(Region, Forest)>],
) {
    let n = structure.len();
    let portal_members = &ap.portals[p as usize];
    let west_pos =
        |mask: &[bool]| -> usize { portal_members.iter().position(|&v| mask[v]).unwrap_or(0) };

    // Collect regions per side.
    let mut side_regions: [Vec<usize>; 2] = [Vec::new(), Vec::new()];
    for (i, slot) in live.iter().enumerate() {
        if let Some((region, _)) = slot {
            for &(bp, side) in &region.boundaries {
                if bp == p && !side_regions[side].contains(&i) {
                    side_regions[side].push(i);
                }
            }
        }
    }

    let mut side_final: [Option<usize>; 2] = [None, None];
    for side in 0..2 {
        let mut order: Vec<usize> = side_regions[side].clone();
        order.sort_by_key(|&i| west_pos(&live[i].as_ref().unwrap().0.mask));
        if order.is_empty() {
            continue;
        }
        let mut marks: Vec<usize> = splits.map(|s| s[side].clone()).unwrap_or_default();
        debug_assert_eq!(
            marks.len() + 1,
            order.len(),
            "marks must separate the side's regions"
        );
        // Phase 1: iterative pairing by PASC parity (O(log k) iterations).
        while !marks.is_empty() {
            // Termination check (1 round) + one weighted PASC iteration on
            // the portal over M (2 rounds), §5.4.3 steps 1-2.
            world.charge_rounds(3, "merge pairing: termination check + PASC parity");
            // Odd prefix parity selects every second mark (1-based odd).
            let selected: std::collections::BTreeSet<usize> =
                marks.iter().copied().step_by(2).collect();
            let mut spans = Vec::new();
            let mut new_order = Vec::new();
            let mut new_marks = Vec::new();
            let mut cur = order[0];
            for (j, &m) in marks.iter().enumerate() {
                let east = order[j + 1];
                if selected.contains(&m) {
                    let s0 = world.rounds();
                    let merged = merge_pair(
                        world,
                        structure,
                        portal_members[m],
                        live[cur].take().unwrap(),
                        live[east].take().unwrap(),
                    );
                    live[cur] = Some(merged);
                    spans.push(world.rounds() - s0);
                    // `cur` stays the holder of the merged region.
                } else {
                    new_order.push(cur);
                    new_marks.push(m);
                    cur = east;
                }
            }
            new_order.push(cur);
            rebate_to_max(world, &spans, "pair merges run in parallel (Lemma 55)");
            order = new_order;
            marks = new_marks;
        }
        side_final[side] = Some(order[0]);
    }

    // Phase 2: join the two sides across the (now whole) portal.
    let outcome_idx = match (side_final[0], side_final[1]) {
        (Some(a), None) => a,
        (None, Some(b)) => b,
        (Some(a), Some(b)) if a == b => a,
        (Some(a), Some(b)) => {
            let (rn, fnorth) = live[a].take().unwrap();
            let (rs, fsouth) = live[b].take().unwrap();
            let mut union_mask = rn.mask.clone();
            for v in 0..n {
                union_mask[v] |= rs.mask[v];
            }
            let chain: Vec<usize> = portal_members
                .iter()
                .copied()
                .filter(|&v| union_mask[v])
                .collect();
            let forest = join_sides(world, structure, &union_mask, &chain, fnorth, fsouth);
            let mut boundaries = rn.boundaries;
            boundaries.extend(rs.boundaries);
            boundaries.sort_unstable();
            boundaries.dedup();
            live[a] = Some((
                Region {
                    mask: union_mask,
                    boundaries,
                },
                forest,
            ));
            a
        }
        (None, None) => unreachable!("a scheduled portal bounds at least one region"),
    };
    // Remove p from the final region's boundary.
    if let Some((region, _)) = live[outcome_idx].as_mut() {
        region.boundaries.retain(|&(bp, _)| bp != p);
    }
}

/// §5.4.3 step 3: merges two regions separated by the marked amoebot `m`
/// (part of both regions): every path between them traverses `m`, so each
/// forest is extended into the other region by a region-scoped SPT from `m`
/// glued below `m`'s existing tree position, and the two extensions merge.
fn merge_pair(
    world: &mut World,
    structure: &AmoebotStructure,
    m: usize,
    west: (Region, Forest),
    east: (Region, Forest),
) -> (Region, Forest) {
    let n = structure.len();
    let (rw, fw) = west;
    let (re, fe) = east;
    debug_assert!(rw.mask[m] && re.mask[m], "mark belongs to both regions");
    let mut union_mask = rw.mask.clone();
    for v in 0..n {
        union_mask[v] |= re.mask[v];
    }
    let extend = |f: &Forest, own: &Region, other: &Region, world: &mut World| -> Option<Forest> {
        if f.sources.is_empty() {
            return None;
        }
        let mut report = RoundReport::new();
        let sub = spt_in_world(world, structure, &other.mask, m, &other.mask, &mut report);
        let mut parents = f.parents.clone();
        for v in 0..n {
            if other.mask[v] && v != m && !own.mask[v] {
                parents[v] = sub[v];
                debug_assert!(parents[v].is_some(), "SPT must cover the paired region");
            }
        }
        let mut out = Forest::from_parents(parents, f.sources.clone());
        for v in 0..n {
            out.member[v] = own.mask[v] || other.mask[v];
        }
        Some(out)
    };
    let fw_ext = extend(&fw, &rw, &re, world);
    let fe_ext = extend(&fe, &re, &rw, world);
    let forest = match (fw_ext, fe_ext) {
        (Some(a), Some(b)) => merge_forests(world, &a, &b),
        (Some(a), None) => a,
        (None, Some(b)) => b,
        (None, None) => {
            let mut f = Forest::empty(n);
            f.member = union_mask.clone();
            f
        }
    };
    let mut boundaries = rw.boundaries;
    boundaries.extend(re.boundaries);
    boundaries.sort_unstable();
    boundaries.dedup();
    (
        Region {
            mask: union_mask,
            boundaries,
        },
        forest,
    )
}

/// §5.4.3 phase 2: joins the two sides of a portal with two propagations
/// and a merge (each side's region already contains the whole portal).
fn join_sides(
    world: &mut World,
    structure: &AmoebotStructure,
    union_mask: &[bool],
    chain: &[usize],
    fnorth: Forest,
    fsouth: Forest,
) -> Forest {
    let n = structure.len();
    let complete = |f: &Forest, world: &mut World| -> Option<Forest> {
        if f.sources.is_empty() {
            return None;
        }
        debug_assert!(chain.iter().all(|&v| f.member[v]));
        Some(propagate_forest(
            world,
            structure,
            union_mask,
            chain,
            Axis::X,
            f,
        ))
    };
    let a = complete(&fnorth, world);
    let b = complete(&fsouth, world);
    match (a, b) {
        (Some(x), Some(y)) => merge_forests(world, &x, &y),
        (Some(x), None) => x,
        (None, Some(y)) => y,
        (None, None) => {
            let mut f = Forest::empty(n);
            f.member = union_mask.to_vec();
            f
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoebot_grid::{shapes, validate_forest};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn check_forest(
        structure: &AmoebotStructure,
        sources: &[NodeId],
        dests: &[NodeId],
    ) -> ForestOutcome {
        let out = shortest_path_forest(structure, sources, dests);
        let violations = validate_forest(structure, sources, dests, &out.parents);
        assert!(violations.is_empty(), "{violations:?}");
        out
    }

    #[test]
    fn two_sources_on_parallelogram() {
        let s = AmoebotStructure::new(shapes::parallelogram(8, 5)).unwrap();
        let all: Vec<NodeId> = s.nodes().collect();
        check_forest(&s, &[NodeId(0), NodeId((s.len() - 1) as u32)], &all);
    }

    #[test]
    fn sources_on_same_portal() {
        let s = AmoebotStructure::new(shapes::parallelogram(9, 4)).unwrap();
        let all: Vec<NodeId> = s.nodes().collect();
        check_forest(&s, &[NodeId(0), NodeId(3), NodeId(7)], &all);
    }

    #[test]
    fn many_sources_hexagon() {
        let s = AmoebotStructure::new(shapes::hexagon(3)).unwrap();
        let all: Vec<NodeId> = s.nodes().collect();
        let sources: Vec<NodeId> = vec![NodeId(0), NodeId(9), NodeId(18), NodeId(27), NodeId(36)];
        check_forest(&s, &sources, &all);
    }

    #[test]
    fn random_blobs_random_sources() {
        let mut rng = StdRng::seed_from_u64(4242);
        for n in [12usize, 30, 80] {
            let s = AmoebotStructure::new(shapes::random_blob(n, &mut rng)).unwrap();
            for k in [2usize, 3, 5] {
                let src: Vec<NodeId> = shapes::random_subset(n, k.min(n), &mut rng)
                    .into_iter()
                    .map(|i| NodeId(i as u32))
                    .collect();
                let l = rng.gen_range(1..=n);
                let dst: Vec<NodeId> = shapes::random_subset(n, l, &mut rng)
                    .into_iter()
                    .map(|i| NodeId(i as u32))
                    .collect();
                check_forest(&s, &src, &dst);
            }
        }
    }

    #[test]
    fn line_structure_many_sources() {
        let s = AmoebotStructure::new(shapes::line(20)).unwrap();
        let all: Vec<NodeId> = s.nodes().collect();
        check_forest(&s, &[NodeId(2), NodeId(10), NodeId(17)], &all);
    }

    #[test]
    fn concave_shapes() {
        for coords in [
            shapes::comb(9, 3),
            shapes::l_shape(8, 3),
            shapes::staircase(5, 3),
        ] {
            let s = AmoebotStructure::new(coords).unwrap();
            let all: Vec<NodeId> = s.nodes().collect();
            let k = 3.min(s.len());
            let sources: Vec<NodeId> = (0..k)
                .map(|i| NodeId((i * (s.len() - 1) / (k - 1).max(1)) as u32))
                .collect();
            check_forest(&s, &sources, &all);
        }
    }

    #[test]
    fn destination_pruning_keeps_only_needed_paths() {
        let s = AmoebotStructure::new(shapes::parallelogram(10, 4)).unwrap();
        let src = [NodeId(0), NodeId(39)];
        let dst = [NodeId(19)];
        let out = check_forest(&s, &src, &dst);
        // Members = union of tree paths: far fewer than n.
        let members = out.parents.iter().flatten().count();
        assert!(members < s.len() / 2, "pruning must remove unused subtrees");
    }
}
