//! The propagation algorithm (§5.3, Lemma 50): extend an S-forest from
//! `A ∪ P` across the portal `P` into the other side `B`, in `O(log n)`
//! rounds.
//!
//! Phase 1 covers the visibility region `B' = B ∩ vis(P)`: one round of
//! portal-circuit beeps determines which amoebots see `P` along each cross
//! axis (Figure 11); single-visibility amoebots adopt the neighbor towards
//! their projection (Lemma 47); double-visibility amoebots compare the
//! relayed distances `dist(S, proj_y(u))` and `dist(S, proj_z(u))`
//! (Lemma 46), streamed concurrently with the PASC run on the existing
//! forest (Figure 12).
//!
//! Phase 2 covers each connected component `Z` of `B'' = B \ vis(P)`
//! independently: all shortest paths into `Z` enter through `s_Z` (Lemma
//! 48), which adopts a northernmost neighbor in `B'_Z` (Lemma 49); a
//! region-scoped shortest path tree from `s_Z` finishes the component.

use amoebot_circuits::World;
use amoebot_grid::{AmoebotStructure, Axis, Direction, NodeId, ALL_AXES, ALL_DIRECTIONS};
use amoebot_pasc::{tree_specs, PascRun, StreamingCompare};

use crate::forest::Forest;
use crate::links::{BROADCAST, BWD_PRIMARY, FWD_PRIMARY, FWD_SECONDARY, SYNC};
use crate::portals::axis_portals;
use crate::spt::spt_in_world;

/// Propagates `forest` (covering `A ∪ P` inside `region`) into the rest of
/// `region` across the portal given by `portal_nodes` (an axis-`axis` portal
/// of the region). Returns an S-forest covering all of `region`.
///
/// # Panics
///
/// Panics if the portal nodes are not forest members or the forest covers
/// nodes outside the region.
pub fn propagate_forest(
    world: &mut World,
    structure: &AmoebotStructure,
    region: &[bool],
    portal_nodes: &[usize],
    axis: Axis,
    forest: &Forest,
) -> Forest {
    let n = structure.len();
    debug_assert!(portal_nodes.iter().all(|&p| forest.member[p]));
    debug_assert!((0..n).all(|v| !forest.member[v] || region[v]));
    let mut in_portal = vec![false; n];
    for &p in portal_nodes {
        in_portal[p] = true;
    }
    let b_mask: Vec<bool> = (0..n).map(|v| region[v] && !forest.member[v]).collect();
    if !b_mask.iter().any(|&b| b) {
        return forest.clone(); // nothing to propagate into
    }
    let mask_pb: Vec<bool> = (0..n).map(|v| b_mask[v] || in_portal[v]).collect();
    let cross: Vec<Axis> = ALL_AXES.into_iter().filter(|&a| a != axis).collect();
    debug_assert_eq!(cross.len(), 2);

    // --- Phase 1a: visibility via each cross axis (one beep round each,
    // Figure 11) + the direction towards P along that axis.
    let key_p = axis.line_key(structure.coord(NodeId(portal_nodes[0] as u32)));
    let mut visible = vec![[false; 2]; n];
    let mut towards = vec![[None::<Direction>; 2]; n];
    let mut portal_pset = vec![[u16::MAX; 2]; n];
    let mut cross_portals = Vec::new();
    for (ei, &e) in cross.iter().enumerate() {
        let ap = axis_portals(structure, &mask_pb, e);
        let flags: Vec<bool> = (0..n).map(|v| in_portal[v]).collect();
        let vis_flags = crate::portals::mark_portals(world, structure, &mask_pb, &ap, &flags);
        for v in 0..n {
            if !b_mask[v] {
                continue;
            }
            let p = ap.portal_of[v];
            if p != u32::MAX && vis_flags[p as usize] {
                visible[v][ei] = true;
                // The e-direction that moves the axis line key towards P.
                let kv = axis.line_key(structure.coord(NodeId(v as u32)));
                let (pos, neg) = e.directions();
                let step = axis.line_key(structure.coord(NodeId(v as u32)).neighbor(pos)) - kv;
                let dir = if (key_p - kv).signum() == step.signum() {
                    pos
                } else {
                    neg
                };
                towards[v][ei] = Some(dir);
            }
        }
        cross_portals.push(ap);
    }

    let mut parents = forest.parents.clone();

    // --- Phase 1b: PASC on the existing forest with concurrent relays of
    // each portal amoebot's distance bits along its cross-axis portals
    // (Figure 12), 3 rounds per iteration.
    // Relay circuits: cross axis 0 on the BROADCAST link, cross axis 1 on
    // the BWD_PRIMARY link (the forest PASC only uses FWD links).
    for v in 0..n {
        if forest.member[v] || b_mask[v] {
            world.reset_pins_keeping_links(v, &[SYNC]);
        }
    }
    let relay_links = [BROADCAST, BWD_PRIMARY];
    for (ei, ap) in cross_portals.iter().enumerate() {
        let (pos, neg) = cross[ei].directions();
        for members in &ap.portals {
            for &v in members {
                let mut pins = Vec::new();
                for d in [pos, neg] {
                    if let Some(w) = structure.neighbor(NodeId(v as u32), d) {
                        if mask_pb[w.index()] {
                            pins.push((d.index(), relay_links[ei]));
                        }
                    }
                }
                if !pins.is_empty() {
                    portal_pset[v][ei] = world.group_pins(v, &pins);
                }
            }
        }
    }
    let topo = world.topology().clone();
    let (specs, idx) = tree_specs(
        &topo,
        &forest.parents,
        &forest.member,
        FWD_PRIMARY,
        FWD_SECONDARY,
    );
    let mut run = PascRun::new(world, specs, SYNC);
    let mut cmps: Vec<StreamingCompare> = vec![StreamingCompare::new(); n];
    while !run.is_done() {
        let bits = match run.data_step(world, |_| {}) {
            Some(b) => b.to_vec(),
            None => break,
        };
        // Relay round: every portal amoebot forwards its current distance
        // bit on both of its cross-portal circuits.
        for &p in portal_nodes {
            if bits[idx[p]] == 1 {
                for ei in 0..2 {
                    if portal_pset[p][ei] != u16::MAX {
                        world.beep(p, portal_pset[p][ei]);
                    }
                }
            }
        }
        world.tick();
        for v in 0..n {
            if b_mask[v] && visible[v][0] && visible[v][1] {
                let b0 =
                    u8::from(portal_pset[v][0] != u16::MAX && world.received(v, portal_pset[v][0]));
                let b1 =
                    u8::from(portal_pset[v][1] != u16::MAX && world.received(v, portal_pset[v][1]));
                cmps[v].feed(b0, b1);
            }
        }
        run.sync_step(world);
    }
    // Parent choice in B' (Lemmas 46/47).
    for v in 0..n {
        if !b_mask[v] {
            continue;
        }
        let pick = match (visible[v][0], visible[v][1]) {
            (true, false) => Some(0),
            (false, true) => Some(1),
            (true, true) => {
                // dist(S, proj_0(v)) <= dist(S, proj_1(v)) -> towards axis 0.
                if cmps[v].result() != std::cmp::Ordering::Greater {
                    Some(0)
                } else {
                    Some(1)
                }
            }
            (false, false) => None, // B'' — phase 2
        };
        if let Some(ei) = pick {
            let dir = towards[v][ei].expect("visible node has a direction");
            let w = structure
                .neighbor(NodeId(v as u32), dir)
                .expect("projection neighbor exists")
                .index();
            debug_assert!(mask_pb[w] || forest.member[w]);
            parents[v] = Some(w);
        }
    }

    // --- Phase 2: components of B'' (Lemmas 48/49), one SPT each, run in
    // parallel (disjoint regions; sequential simulation is rebated to the
    // maximum span).
    let b2: Vec<bool> = (0..n)
        .map(|v| b_mask[v] && !visible[v][0] && !visible[v][1])
        .collect();
    let mut comp = vec![usize::MAX; n];
    let mut comps: Vec<Vec<usize>> = Vec::new();
    for v in 0..n {
        if !b2[v] || comp[v] != usize::MAX {
            continue;
        }
        let id = comps.len();
        let mut stack = vec![v];
        comp[v] = id;
        let mut members = vec![v];
        while let Some(x) = stack.pop() {
            for d in ALL_DIRECTIONS {
                if let Some(w) = structure.neighbor(NodeId(x as u32), d) {
                    let w = w.index();
                    if b2[w] && comp[w] == usize::MAX {
                        comp[w] = id;
                        members.push(w);
                        stack.push(w);
                    }
                }
            }
        }
        comps.push(members);
    }
    let toward_metric = |v: usize| -> (i32, i32) {
        let c = structure.coord(NodeId(v as u32));
        ((key_p - axis.line_key(c)).abs(), axis.along(c))
    };
    let mut spans = Vec::new();
    for members in &comps {
        let start_rounds = world.rounds();
        // s_Z: the member adjacent to B' closest to P ("northernmost"),
        // ties broken westward; its parent: its closest-to-P neighbor in B'.
        let s_z = members
            .iter()
            .copied()
            .filter(|&z| {
                ALL_DIRECTIONS.iter().any(|&d| {
                    structure
                        .neighbor(NodeId(z as u32), d)
                        .is_some_and(|w| b_mask[w.index()] && !b2[w.index()])
                })
            })
            .min_by_key(|&z| toward_metric(z))
            .expect("every B'' component borders B'");
        let parent_of_sz = ALL_DIRECTIONS
            .iter()
            .filter_map(|&d| structure.neighbor(NodeId(s_z as u32), d))
            .map(|w| w.index())
            .filter(|&w| b_mask[w] && !b2[w])
            .min_by_key(|&w| toward_metric(w))
            .expect("s_Z borders B'");
        parents[s_z] = Some(parent_of_sz);
        if members.len() > 1 {
            let mut z_mask = vec![false; n];
            for &m in members {
                z_mask[m] = true;
            }
            let mut report = amoebot_circuits::RoundReport::new();
            let sub_parents = spt_in_world(world, structure, &z_mask, s_z, &z_mask, &mut report);
            for &m in members {
                if m != s_z {
                    parents[m] = sub_parents[m];
                    debug_assert!(parents[m].is_some(), "SPT must cover the component");
                }
            }
        }
        spans.push(world.rounds() - start_rounds);
    }
    if spans.len() > 1 {
        let total: u64 = spans.iter().sum();
        let max = spans.iter().copied().max().unwrap_or(0);
        world.rebate_rounds(
            total - max,
            "phase-2 SPTs on disjoint B'' components run in parallel",
        );
    }

    let mut out = Forest::from_parents(parents, forest.sources.clone());
    for v in 0..n {
        out.member[v] = region[v] && (forest.member[v] || b_mask[v]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoebot_circuits::Topology;
    use amoebot_grid::{shapes, validate_forest, Coord};

    use crate::forest::line::line_forest;
    use crate::links::LINKS;

    /// Builds a forest on one x-portal row via the line algorithm, then
    /// propagates it into the rest of the structure and validates.
    fn check_propagation(s: &AmoebotStructure, portal_row: i32, source_cols: &[i32]) -> u64 {
        let mut world = World::new(Topology::from_structure(s), LINKS);
        // The portal: all nodes with r = portal_row.
        let mut portal: Vec<usize> = s
            .nodes()
            .filter(|&v| s.coord(v).r == portal_row)
            .map(|v| v.index())
            .collect();
        portal.sort_by_key(|&v| s.coord(NodeId(v as u32)).q);
        let is_source: Vec<bool> = portal
            .iter()
            .map(|&v| source_cols.contains(&s.coord(NodeId(v as u32)).q))
            .collect();
        let line = line_forest(&mut world, &portal, &is_source);
        // Region: portal side with r >= portal_row (P ∪ south side).
        let region: Vec<bool> = s.nodes().map(|v| s.coord(v).r >= portal_row).collect();
        let before = world.rounds();
        let forest = propagate_forest(&mut world, s, &region, &portal, Axis::X, &line);
        let rounds = world.rounds() - before;
        // Validate on the substructure induced by the region.
        let coords: Vec<Coord> = s
            .nodes()
            .filter(|&v| region[v.index()])
            .map(|v| s.coord(v))
            .collect();
        let sub = AmoebotStructure::new(coords).unwrap();
        let map = |v: usize| sub.node_at(s.coord(NodeId(v as u32))).unwrap();
        let sources: Vec<NodeId> = forest.sources.iter().map(|&v| map(v)).collect();
        let mut parents: Vec<Option<NodeId>> = vec![None; sub.len()];
        for v in 0..s.len() {
            if region[v] {
                if let Some(p) = forest.parents[v] {
                    parents[map(v).index()] = Some(map(p));
                }
            }
        }
        let all: Vec<NodeId> = sub.nodes().collect();
        let violations = validate_forest(&sub, &sources, &all, &parents);
        assert!(violations.is_empty(), "{violations:?}");
        rounds
    }

    #[test]
    fn propagates_into_parallelogram() {
        let s = AmoebotStructure::new(shapes::parallelogram(8, 5)).unwrap();
        check_propagation(&s, 0, &[0]);
        check_propagation(&s, 0, &[3, 7]);
    }

    #[test]
    fn propagates_into_triangle() {
        let s = AmoebotStructure::new(shapes::triangle(7)).unwrap();
        check_propagation(&s, 0, &[0, 6]);
    }

    #[test]
    fn propagates_with_shadowed_components() {
        // A short portal row atop a much wider block: amoebots far east of
        // the portal are outside vis(P) (no y- or z-portal reaches P), so
        // phase 2 must cover them through s_Z.
        let mut coords = Vec::new();
        for q in 0..4 {
            coords.push(Coord::new(q, 0)); // the portal row (short)
        }
        for r in 1..6 {
            for q in 0..10 {
                coords.push(Coord::new(q, r)); // wide block below
            }
        }
        let s = AmoebotStructure::new(coords).unwrap();
        assert!(s.is_hole_free());
        check_propagation(&s, 0, &[1]);
        check_propagation(&s, 0, &[0, 3]);
    }

    #[test]
    fn propagates_with_western_shadow() {
        // Mirror image: the shadowed pocket lies west of the portal, where
        // both the z-projection (towards NE) and y-projection miss P.
        let mut coords = Vec::new();
        for q in 6..10 {
            coords.push(Coord::new(q, 0));
        }
        for r in 1..6 {
            for q in 0..10 {
                coords.push(Coord::new(q, r));
            }
        }
        let s = AmoebotStructure::new(coords).unwrap();
        assert!(s.is_hole_free());
        check_propagation(&s, 0, &[7]);
    }

    #[test]
    fn no_b_side_is_identity() {
        let s = AmoebotStructure::new(shapes::line(6)).unwrap();
        let mut world = World::new(Topology::from_structure(&s), LINKS);
        let chain: Vec<usize> = (0..6).collect();
        let mut is_source = vec![false; 6];
        is_source[2] = true;
        let line = line_forest(&mut world, &chain, &is_source);
        let region = vec![true; 6];
        let out = propagate_forest(&mut world, &s, &region, &chain, Axis::X, &line);
        assert_eq!(out.parents, line.parents);
    }
}
