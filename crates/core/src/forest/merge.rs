//! The merging algorithm (§5.2, Lemma 42): combine an S1-forest and an
//! S2-forest over the same region into an (S1 ∪ S2)-forest in `O(log n)`
//! rounds.
//!
//! Both forests run the tree PASC (Corollary 5) in parallel on separate
//! links; every amoebot streams `dist(S1, u)` against `dist(S2, u)` and
//! keeps the parent of the closer side (Lemma 41).

use amoebot_circuits::World;
use amoebot_pasc::{tree_specs, PascRun, StreamingCompare};

use crate::forest::Forest;
use crate::links::{BWD_PRIMARY, BWD_SECONDARY, FWD_PRIMARY, FWD_SECONDARY, SYNC};

/// Merges two shortest path forests covering the same member set
/// (Lemma 42). Every member must be covered by *both* forests (each
/// non-source member has a parent in each).
pub fn merge_forests(world: &mut World, f1: &Forest, f2: &Forest) -> Forest {
    let n = world.topology().len();
    debug_assert_eq!(f1.member, f2.member, "forests must cover the same region");
    for v in 0..n {
        if f1.member[v] {
            world.reset_pins_keeping_links(v, &[SYNC]);
        }
    }
    let topo = world.topology().clone();
    let (mut specs, idx1) = tree_specs(&topo, &f1.parents, &f1.member, FWD_PRIMARY, FWD_SECONDARY);
    let (specs2, idx2_raw) = tree_specs(&topo, &f2.parents, &f2.member, BWD_PRIMARY, BWD_SECONDARY);
    let offset = specs.len();
    specs.extend(specs2);
    let idx2: Vec<usize> = idx2_raw
        .into_iter()
        .map(|i| if i == usize::MAX { i } else { i + offset })
        .collect();

    let mut run = PascRun::new(world, specs, SYNC);
    let mut cmps: Vec<StreamingCompare> = vec![StreamingCompare::new(); n];
    while !run.is_done() {
        let bits = match run.data_step(world, |_| {}) {
            Some(b) => b.to_vec(),
            None => break,
        };
        for v in 0..n {
            if f1.member[v] {
                cmps[v].feed(bits[idx1[v]], bits[idx2[v]]);
            }
        }
        run.sync_step(world);
    }

    let mut parents: Vec<Option<usize>> = vec![None; n];
    for v in 0..n {
        if !f1.member[v] {
            continue;
        }
        // dist(S1, v) <= dist(S2, v): keep the S1 parent (Lemma 41); note a
        // source of either side has distance 0 and therefore stays a root.
        parents[v] = if cmps[v].result() != std::cmp::Ordering::Greater {
            f1.parents[v]
        } else {
            f2.parents[v]
        };
    }
    let mut sources: Vec<usize> = f1.sources.clone();
    sources.extend(f2.sources.iter().copied());
    sources.sort_unstable();
    sources.dedup();
    let mut out = Forest::from_parents(parents, sources);
    out.member = f1.member.clone();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoebot_circuits::Topology;
    use amoebot_grid::{bfs_parents, shapes, validate_forest, AmoebotStructure, NodeId};

    use crate::links::LINKS;

    fn bfs_forest(s: &AmoebotStructure, src: usize) -> Forest {
        let parents: Vec<Option<usize>> = bfs_parents(s, NodeId(src as u32))
            .into_iter()
            .map(|p| p.map(|x| x.index()))
            .collect();
        let mut f = Forest::from_parents(parents, vec![src]);
        f.member = vec![true; s.len()];
        f
    }

    fn check_merge(s: &AmoebotStructure, s1: usize, s2: usize) -> u64 {
        let mut world = World::new(Topology::from_structure(s), LINKS);
        let f1 = bfs_forest(s, s1);
        let f2 = bfs_forest(s, s2);
        let before = world.rounds();
        let merged = merge_forests(&mut world, &f1, &f2);
        let rounds = world.rounds() - before;
        let all: Vec<NodeId> = s.nodes().collect();
        let parents: Vec<Option<NodeId>> = merged
            .parents
            .iter()
            .map(|p| p.map(|v| NodeId(v as u32)))
            .collect();
        let violations =
            validate_forest(s, &[NodeId(s1 as u32), NodeId(s2 as u32)], &all, &parents);
        assert!(violations.is_empty(), "{violations:?}");
        rounds
    }

    #[test]
    fn merges_two_sssp_trees() {
        let s = AmoebotStructure::new(shapes::parallelogram(8, 5)).unwrap();
        check_merge(&s, 0, s.len() - 1);
    }

    #[test]
    fn merges_adjacent_sources() {
        let s = AmoebotStructure::new(shapes::hexagon(3)).unwrap();
        check_merge(&s, 0, 1);
    }

    #[test]
    fn merges_on_concave_shape() {
        let s = AmoebotStructure::new(shapes::comb(9, 4)).unwrap();
        check_merge(&s, 0, s.len() - 1);
    }

    #[test]
    fn same_source_is_idempotent() {
        let s = AmoebotStructure::new(shapes::triangle(5)).unwrap();
        let mut world = World::new(Topology::from_structure(&s), LINKS);
        let f = bfs_forest(&s, 3);
        let merged = merge_forests(&mut world, &f, &f);
        assert_eq!(merged.parents, f.parents);
        assert_eq!(merged.sources, vec![3]);
    }

    #[test]
    fn rounds_logarithmic_in_n() {
        let small = AmoebotStructure::new(shapes::line(16)).unwrap();
        let large = AmoebotStructure::new(shapes::line(64)).unwrap();
        let r1 = check_merge(&small, 0, 15);
        let r2 = check_merge(&large, 0, 63);
        assert!(r2 <= r1 + 6, "rounds grew too fast: {r1} -> {r2}");
    }
}
