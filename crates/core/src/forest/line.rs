//! The line algorithm (§5.1, Lemma 40): an S-shortest path forest for a
//! chain of amoebots in `O(log n)` rounds.
//!
//! The closest source of every amoebot is the next source in one of the two
//! directions, so it suffices to run the PASC algorithm from every source in
//! both directions up to the next source (Figure 6); all `2k` runs execute
//! in parallel, using separate links per direction.

use amoebot_circuits::World;
use amoebot_pasc::{chain_specs, PascRun};

use crate::forest::Forest;
use crate::links::{BWD_PRIMARY, BWD_SECONDARY, FWD_PRIMARY, FWD_SECONDARY, SYNC};

/// Computes the S-shortest path forest of a chain (Lemma 40).
///
/// `chain` lists the amoebots in order; `is_source[i]` flags the sources by
/// chain position. Returns the forest over the whole world's node range.
///
/// # Panics
///
/// Panics if `chain` is empty, consecutive entries are not adjacent in the
/// world topology, or no source is flagged.
pub fn line_forest(world: &mut World, chain: &[usize], is_source: &[bool]) -> Forest {
    let n = world.topology().len();
    assert_eq!(chain.len(), is_source.len());
    assert!(!chain.is_empty(), "chain must be non-empty");
    let src_pos: Vec<usize> = (0..chain.len()).filter(|&i| is_source[i]).collect();
    assert!(!src_pos.is_empty(), "S must be non-empty");

    for &v in chain {
        world.reset_pins_keeping_links(v, &[SYNC]);
    }

    // Segments: from each source eastward to the next source (exclusive),
    // and westward to the previous source (exclusive). Eastward runs use the
    // forward links, westward the backward links, so they share edges
    // without pin conflicts.
    let topo = world.topology().clone();
    let mut specs = Vec::new();
    // east_run[i] / west_run[i]: instance index of chain position i in the
    // respective run (usize::MAX if not covered).
    let mut east_run = vec![usize::MAX; chain.len()];
    let mut west_run = vec![usize::MAX; chain.len()];
    for (si, &s) in src_pos.iter().enumerate() {
        // Eastward: from s up to (not including) the next source.
        let end = src_pos.get(si + 1).copied().unwrap_or(chain.len());
        let nodes: Vec<usize> = (s..end).map(|i| chain[i]).collect();
        if !nodes.is_empty() {
            let base = specs.len();
            for (o, i) in (s..end).enumerate() {
                east_run[i] = base + o;
            }
            specs.extend(chain_specs(&topo, &nodes, FWD_PRIMARY, FWD_SECONDARY, None));
        }
        // Westward: from s down to (not including) the previous source.
        let begin = if si == 0 { 0 } else { src_pos[si - 1] + 1 };
        let nodes: Vec<usize> = (begin..=s).rev().map(|i| chain[i]).collect();
        if !nodes.is_empty() {
            let base = specs.len();
            for (o, i) in (begin..=s).rev().enumerate() {
                west_run[i] = base + o;
            }
            specs.extend(chain_specs(&topo, &nodes, BWD_PRIMARY, BWD_SECONDARY, None));
        }
    }

    let mut run = PascRun::new(world, specs, SYNC);
    let values = run.run_to_completion(world);

    // Each amoebot compares its two distances (only one exists beyond the
    // outermost sources) and adopts the neighbor towards the closer source.
    let mut parents: Vec<Option<usize>> = vec![None; n];
    for i in 0..chain.len() {
        if is_source[i] {
            continue;
        }
        let de = (east_run[i] != usize::MAX).then(|| values[east_run[i]]);
        let dw = (west_run[i] != usize::MAX).then(|| values[west_run[i]]);
        let towards_west = match (de, dw) {
            // `east_run` covers i from the source to its west; `west_run`
            // from the source to its east.
            (Some(from_west), Some(from_east)) => from_west <= from_east,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => unreachable!("every chain position is covered"),
        };
        parents[chain[i]] = Some(if towards_west {
            chain[i - 1]
        } else {
            chain[i + 1]
        });
    }
    let sources: Vec<usize> = src_pos.iter().map(|&i| chain[i]).collect();
    let mut forest = Forest::from_parents(parents, sources);
    for &v in chain {
        forest.member[v] = true;
    }
    forest
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoebot_circuits::Topology;
    use amoebot_grid::{shapes, validate_forest, AmoebotStructure, NodeId};

    use crate::links::LINKS;

    fn check_line(n: usize, sources: &[usize]) -> u64 {
        let s = AmoebotStructure::new(shapes::line(n)).unwrap();
        let mut world = World::new(Topology::from_structure(&s), LINKS);
        let chain: Vec<usize> = (0..n).collect();
        let mut is_source = vec![false; n];
        for &i in sources {
            is_source[i] = true;
        }
        let before = world.rounds();
        let forest = line_forest(&mut world, &chain, &is_source);
        let rounds = world.rounds() - before;
        let src: Vec<NodeId> = sources.iter().map(|&i| NodeId(i as u32)).collect();
        let all: Vec<NodeId> = s.nodes().collect();
        let parents: Vec<Option<NodeId>> = forest
            .parents
            .iter()
            .map(|p| p.map(|v| NodeId(v as u32)))
            .collect();
        let violations = validate_forest(&s, &src, &all, &parents);
        assert!(violations.is_empty(), "{violations:?}");
        rounds
    }

    #[test]
    fn single_source_middle() {
        check_line(9, &[4]);
    }

    #[test]
    fn sources_at_ends() {
        check_line(10, &[0, 9]);
    }

    #[test]
    fn many_sources() {
        check_line(17, &[0, 3, 4, 11, 16]);
        check_line(6, &[0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn figure_6_example() {
        // Figure 6: sources at positions such that the easternmost amoebot
        // only receives one distance; validated via ground truth above.
        check_line(12, &[2, 7]);
    }

    #[test]
    fn rounds_logarithmic() {
        // Lemma 40: O(log n) rounds; doubling n adds ~2 rounds (one PASC
        // iteration), not a linear amount.
        let r1 = check_line(16, &[0]);
        let r2 = check_line(64, &[0]);
        assert!(r2 <= r1 + 6, "rounds grew too fast: {r1} -> {r2}");
    }
}
