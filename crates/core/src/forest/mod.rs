//! The shortest path forest algorithm for multiple sources (§5).
//!
//! * [`line`] — the line algorithm (§5.1, Lemma 40),
//! * [`merge`] — the merging algorithm (§5.2, Lemma 42),
//! * [`propagate`] — the propagation algorithm (§5.3, Lemma 50),
//! * [`dnc`] — the divide-and-conquer shortest path forest algorithm
//!   (§5.4, Theorem 56 / Corollary 57).

pub mod dnc;
pub mod line;
pub mod merge;
pub mod propagate;

pub use dnc::{shortest_path_forest, ForestOutcome};
pub use line::line_forest;
pub use merge::merge_forests;
pub use propagate::propagate_forest;

/// An S-shortest-path forest over a region: every member either is a source
/// (root) or knows its parent; `dist(S, v)` equals the member's tree depth.
#[derive(Debug, Clone)]
pub struct Forest {
    /// Region membership.
    pub member: Vec<bool>,
    /// Parent pointers (`None` for sources and non-members).
    pub parents: Vec<Option<usize>>,
    /// The sources (roots).
    pub sources: Vec<usize>,
}

impl Forest {
    /// An empty forest over `n` nodes.
    pub fn empty(n: usize) -> Forest {
        Forest {
            member: vec![false; n],
            parents: vec![None; n],
            sources: Vec::new(),
        }
    }

    /// Builds a forest from parents + sources; members are sources and
    /// every node with a parent.
    pub fn from_parents(parents: Vec<Option<usize>>, sources: Vec<usize>) -> Forest {
        let mut member = vec![false; parents.len()];
        for (v, p) in parents.iter().enumerate() {
            if p.is_some() {
                member[v] = true;
            }
        }
        for &s in &sources {
            member[s] = true;
        }
        Forest {
            member,
            parents,
            sources,
        }
    }

    /// Centralized check: does the forest cover exactly `region` and assign
    /// every member its multi-source BFS distance as depth? (Test helper.)
    pub fn depth_of(&self, v: usize) -> Option<u64> {
        if !self.member[v] {
            return None;
        }
        let mut d = 0u64;
        let mut cur = v;
        while let Some(p) = self.parents[cur] {
            d += 1;
            cur = p;
            if d as usize > self.parents.len() {
                return None; // cycle
            }
        }
        self.sources.contains(&cur).then_some(d)
    }
}
