//! Shortest path forests in the reconfigurable-circuit amoebot model.
//!
//! This crate is the core of the reproduction of *Polylogarithmic Time
//! Algorithms for Shortest Path Forests in Programmable Matter* (Padalkin &
//! Scheideler, PODC 2024). It implements, on top of the
//! [`amoebot_circuits`] simulator and the [`amoebot_pasc`] PASC programs:
//!
//! * the Euler tour technique (ETT) adapted to reconfigurable circuits
//!   (§3.1) — [`ett`],
//! * the tree primitives: root-and-prune, election, Q-centroids, centroid
//!   decomposition (§3.2–§3.4) — [`primitives`],
//! * portal graphs and the portal-tree variants of the primitives (§2.3,
//!   §3.5) — [`portals`],
//! * the shortest path tree algorithm for a single source (§4, Theorem 39)
//!   — [`spt`],
//! * the shortest path forest algorithm for multiple sources (§5,
//!   Theorem 56 / Corollary 57), with its line, merging and propagation
//!   subroutines — [`forest`].
//!
//! # Quickstart
//!
//! ```
//! use amoebot_grid::{shapes, AmoebotStructure, NodeId};
//! use amoebot_spf::spt::shortest_path_tree;
//!
//! let structure = AmoebotStructure::new(shapes::parallelogram(6, 4)).unwrap();
//! let source = NodeId(0);
//! let dests: Vec<NodeId> = vec![NodeId(20), NodeId(23)];
//! let outcome = shortest_path_tree(&structure, source, &dests);
//! assert!(amoebot_grid::validate_forest(
//!     &structure, &[source], &dests, &outcome.parents
//! ).is_empty());
//! ```

// The algorithms below mirror the paper's per-amoebot index arithmetic;
// range loops over node ids are the clearest rendering of that style.
#![allow(clippy::needless_range_loop)]

pub mod churn;
pub mod ett;
pub mod forest;
pub mod links;
pub mod portals;
pub mod primitives;
pub mod spt;
pub mod tree;

pub use tree::Tree;
