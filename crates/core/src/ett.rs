//! The Euler tour technique (ETT) on reconfigurable circuits (§3.1).
//!
//! For a tree `T` rooted at `r`, every undirected edge is replaced by two
//! directed traversals; the Euler tour visits all `2(n-1)` directed edges
//! starting and ending at `r` ("the next edge after `(u,v)` is `(v,w)` where
//! `w` is the next counterclockwise neighbor of `v` with respect to `u`").
//! Every node operates one PASC *instance* per occurrence on the tour
//! (Remark 16: `Θ(deg(v))` instances, O(1) memory each).
//!
//! Given marks `w_Q` (each node of `Q` marks exactly one outgoing edge —
//! here: its first occurrence as a tail on the tour), the PASC run over the
//! instance chain delivers, bit by bit:
//!
//! * at each instance, `prefixsum_e` of its outgoing edge `e` (the emitted
//!   bit) and of its incoming edge (the incoming-track bit), so each node
//!   can stream `prefixsum_(u,v) - prefixsum_(v,u)` for all neighbors
//!   (Lemma 14), and
//! * at the root's final instance, `W = |Q ∩ T|` (Corollary 15).

use amoebot_circuits::Topology;
use amoebot_pasc::{EdgeRef, InstanceSpec};

use crate::links::traversal_links;
use crate::tree::Tree;

/// The Euler tours of a forest of (node-disjoint) trees, compiled into PASC
/// instance specs plus the index maps the primitives need.
#[derive(Debug, Clone)]
pub struct TourSet {
    /// PASC instance specs for all trees (run them as one [`amoebot_pasc::PascRun`]).
    pub specs: Vec<InstanceSpec>,
    /// `out_inst[v][j]` = index of `v`'s instance whose *outgoing* edge goes
    /// to `trees[t].adj[v][j]` (`usize::MAX` for non-members).
    pub out_inst: Vec<Vec<usize>>,
    /// `in_inst[v][j]` = index of `v`'s instance whose *incoming* edge comes
    /// from `trees[t].adj[v][j]`.
    pub in_inst: Vec<Vec<usize>>,
    /// Per tree: the start instance (root, before the first edge).
    pub start_inst: Vec<usize>,
    /// Per tree: the root's final instance (computes `W`, Corollary 15).
    pub last_inst: Vec<usize>,
    /// Per node: the adjacency index of its designated marked outgoing edge
    /// (`None` if the node is not in `Q` or is a singleton root).
    pub marked_adj: Vec<Option<usize>>,
    /// Per node: which tree (index into the input slice) it belongs to.
    pub tree_of: Vec<Option<usize>>,
}

/// Builds the Euler tours for `trees` with node marks `q` (the weight
/// function `w_Q` of §3.1). Trees must be node-disjoint.
///
/// # Panics
///
/// Panics if trees share nodes or tree edges are missing from `topo`.
pub fn build_tours(topo: &Topology, trees: &[Tree], q: &[bool]) -> TourSet {
    let n = topo.len();
    assert_eq!(q.len(), n);
    let mut specs: Vec<InstanceSpec> = Vec::new();
    let mut out_inst: Vec<Vec<usize>> = (0..n).map(|_| Vec::new()).collect();
    let mut in_inst: Vec<Vec<usize>> = (0..n).map(|_| Vec::new()).collect();
    let mut start_inst = Vec::with_capacity(trees.len());
    let mut last_inst = Vec::with_capacity(trees.len());
    let mut marked_adj: Vec<Option<usize>> = vec![None; n];
    let mut tree_of: Vec<Option<usize>> = vec![None; n];

    for (t, tree) in trees.iter().enumerate() {
        for &v in &tree.members {
            assert!(
                tree_of[v].is_none(),
                "trees must be node-disjoint (node {v})"
            );
            tree_of[v] = Some(t);
            out_inst[v] = vec![usize::MAX; tree.adj[v].len()];
            in_inst[v] = vec![usize::MAX; tree.adj[v].len()];
        }
        if tree.len() == 1 {
            // Degenerate single-node tree: one instance, no edges.
            let idx = specs.len();
            specs.push(InstanceSpec {
                node: tree.root,
                pred: None,
                succs: Vec::new(),
                weight: q[tree.root],
            });
            start_inst.push(idx);
            last_inst.push(idx);
            continue;
        }

        let m = 2 * (tree.len() - 1); // number of directed tour edges
                                      // Enumerate the tour edges.
        let mut edges: Vec<(usize, usize)> = Vec::with_capacity(m);
        let mut cur = (tree.root, tree.adj[tree.root][0]);
        for _ in 0..m {
            edges.push(cur);
            let (u, v) = cur;
            let j = tree.adj[v]
                .iter()
                .position(|&w| w == u)
                .expect("tree adjacency must be symmetric");
            let next = tree.adj[v][(j + 1) % tree.adj[v].len()];
            cur = (v, next);
        }
        assert_eq!(cur.0, tree.root, "Euler tour must return to the root");

        // Designate marks: first outgoing occurrence of each node in Q.
        let mut edge_marked = vec![false; m];
        for (i, &(u, v)) in edges.iter().enumerate() {
            if q[u] && marked_adj[u].is_none() {
                let j = tree.adj[u]
                    .iter()
                    .position(|&w| w == v)
                    .expect("edge endpoint in adjacency");
                marked_adj[u] = Some(j);
                edge_marked[i] = true;
            }
        }

        // Instances: local index i in 0..=m; instance i has pred edge
        // `edges[i-1]` (i >= 1) and succ edge `edges[i]` (i < m).
        let base = specs.len();
        for i in 0..=m {
            let pred = (i > 0).then(|| {
                let (u, v) = edges[i - 1];
                let port = topo
                    .port_to(v, u)
                    .expect("tree edge must exist in topology");
                let (p, s) = traversal_links(u, v);
                EdgeRef::new(port, p, s)
            });
            let succs = if i < m {
                let (u, v) = edges[i];
                let port = topo
                    .port_to(u, v)
                    .expect("tree edge must exist in topology");
                let (p, s) = traversal_links(u, v);
                vec![EdgeRef::new(port, p, s)]
            } else {
                Vec::new()
            };
            let node = if i < m { edges[i].0 } else { tree.root };
            let weight = i < m && edge_marked[i];
            specs.push(InstanceSpec {
                node,
                pred,
                succs,
                weight,
            });
        }
        // Index maps.
        for (i, &(u, v)) in edges.iter().enumerate() {
            let ju = tree.adj[u].iter().position(|&w| w == v).unwrap();
            let jv = tree.adj[v].iter().position(|&w| w == u).unwrap();
            out_inst[u][ju] = base + i;
            in_inst[v][jv] = base + i + 1;
        }
        start_inst.push(base);
        last_inst.push(base + m);
    }

    TourSet {
        specs,
        out_inst,
        in_inst,
        start_inst,
        last_inst,
        marked_adj,
        tree_of,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoebot_circuits::{Topology, World};
    use amoebot_pasc::PascRun;

    use crate::links::{LINKS, SYNC};

    fn star_plus_path() -> (Topology, Tree) {
        //   1   2
        //    \ /
        //     0 - 3 - 4
        let edges = [(0, 1), (0, 2), (0, 3), (3, 4)];
        let topo = Topology::from_edges(5, &edges);
        let tree = Tree::from_edges(5, 0, &edges);
        (topo, tree)
    }

    #[test]
    fn tour_shape() {
        let (topo, tree) = star_plus_path();
        let q = vec![true; 5];
        let ts = build_tours(&topo, std::slice::from_ref(&tree), &q);
        // 2(n-1)+1 instances.
        assert_eq!(ts.specs.len(), 2 * 4 + 1);
        // Exactly one start (no pred) and one end (no succ).
        assert_eq!(ts.specs.iter().filter(|s| s.pred.is_none()).count(), 1);
        assert_eq!(ts.specs.iter().filter(|s| s.succs.is_empty()).count(), 1);
        // Every node in Q designates exactly one outgoing edge; total marks = |Q|.
        let marks = ts.specs.iter().filter(|s| s.weight).count();
        assert_eq!(marks, 5);
        // Each node has deg instances as tails.
        for v in 0..5 {
            for j in 0..tree.adj[v].len() {
                assert_ne!(ts.out_inst[v][j], usize::MAX);
                assert_ne!(ts.in_inst[v][j], usize::MAX);
                assert_eq!(ts.specs[ts.out_inst[v][j]].node, v);
                assert_eq!(ts.specs[ts.in_inst[v][j]].node, v);
            }
        }
    }

    #[test]
    fn ett_prefix_sums_match_subtree_counts() {
        // Lemma 17: for the parent edge, prefixsum(u,p) - prefixsum(p,u) =
        // |Q ∩ subtree(u)|; verify by running the actual circuits.
        let (topo, tree) = star_plus_path();
        let q = vec![false, true, false, true, true]; // Q = {1, 3, 4}
        let ts = build_tours(&topo, std::slice::from_ref(&tree), &q);
        let mut world = World::new(topo, LINKS);
        let mut run = PascRun::new(&mut world, ts.specs.clone(), SYNC);
        let values = run.run_to_completion(&mut world);
        // W at the root's last instance (Corollary 15).
        assert_eq!(values[ts.last_inst[0]], 3);
        // Subtree counts via the difference of prefix sums.
        let parents = tree.parents_from_root();
        let subtree_q = |v: usize| -> u64 {
            // centralized: count Q in subtree of v
            let mut cnt = 0;
            let mut stack = vec![v];
            let mut seen = [false; 5];
            seen[v] = true;
            while let Some(x) = stack.pop() {
                if q[x] {
                    cnt += 1;
                }
                for &w in &tree.adj[x] {
                    if !seen[w] && parents[w] == Some(x) {
                        seen[w] = true;
                        stack.push(w);
                    }
                }
            }
            cnt
        };
        for v in 0..5 {
            if let Some(p) = parents[v] {
                let j = tree.adj[v].iter().position(|&w| w == p).unwrap();
                let out = values[ts.out_inst[v][j]];
                // The incoming prefix sum is the value of the *preceding*
                // instance, i.e. the peer's outgoing instance for (p, v).
                let jp = tree.adj[p].iter().position(|&w| w == v).unwrap();
                let inc = values[ts.out_inst[p][jp]];
                assert_eq!(out - inc, subtree_q(v), "subtree count at {v}");
            }
        }
        // Lemma 4 runtime: O(log W) iterations.
        assert!(run.iterations() <= 3);
    }

    #[test]
    fn singleton_tree_counts_its_own_mark() {
        let topo = Topology::from_edges(3, &[(0, 1), (1, 2)]);
        let lone = Tree::from_edges(3, 2, &[]);
        let q = vec![false, false, true];
        let ts = build_tours(&topo, &[lone], &q);
        assert_eq!(ts.specs.len(), 1);
        let mut world = World::new(topo, LINKS);
        let mut run = PascRun::new(&mut world, ts.specs.clone(), SYNC);
        let values = run.run_to_completion(&mut world);
        assert_eq!(values[ts.last_inst[0]], 1);
    }

    #[test]
    fn parallel_trees_share_one_run() {
        // Two disjoint paths: 0-1 and 2-3-4, Q = {1, 4}.
        let topo = Topology::from_edges(5, &[(0, 1), (2, 3), (3, 4)]);
        let t1 = Tree::from_edges(5, 0, &[(0, 1)]);
        let t2 = Tree::from_edges(5, 2, &[(2, 3), (3, 4)]);
        let q = vec![false, true, false, false, true];
        let ts = build_tours(&topo, &[t1, t2], &q);
        let mut world = World::new(topo, LINKS);
        let mut run = PascRun::new(&mut world, ts.specs.clone(), SYNC);
        let values = run.run_to_completion(&mut world);
        assert_eq!(values[ts.last_inst[0]], 1);
        assert_eq!(values[ts.last_inst[1]], 1);
    }
}
