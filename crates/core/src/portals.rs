//! Portal graphs on the triangular grid and their primitives (§2.3, §3.5).
//!
//! For each axis `d ∈ {x, y, z}`, the *d-portals* of a (hole-free) region
//! are the maximal runs of amoebots along `d`; the portal graph `P_d`
//! (portals as vertices) is a tree (Lemma 9). The amoebots only access the
//! *implicit portal graph* `T_d` (Definition 12): a spanning tree of the
//! region that contains all axis-parallel edges plus one canonical
//! ("westernmost") edge per adjacent portal pair, decided by a local rule.
//!
//! The portal-level primitives (§3.5) run the node-level ETT machinery on
//! `T_d` with the portal *representatives* as the weighted set `Q̂` — by
//! Lemma 32 the prefix-sum differences across inter-portal edges equal the
//! portal-graph values — and then disseminate the results inside each portal
//! with portal circuits (Figure 4a) and per-directed-edge circuits
//! (Figure 4b).

use amoebot_circuits::World;
use amoebot_grid::{AmoebotStructure, Axis, Direction, NodeId, ALL_DIRECTIONS};

use crate::links::{BROADCAST, FWD_PRIMARY, FWD_SECONDARY, SYNC};
use crate::primitives::root_prune::root_and_prune;
use crate::tree::Tree;

/// The portal decomposition of a region for one axis, plus the implicit
/// portal tree.
#[derive(Debug, Clone)]
pub struct AxisPortals {
    /// The axis.
    pub axis: Axis,
    /// `portal_of[v]` = portal index of node `v` (`u32::MAX` outside the
    /// region).
    pub portal_of: Vec<u32>,
    /// Member nodes of each portal, ordered along [`Axis::positive`].
    pub portals: Vec<Vec<usize>>,
    /// The representative of each portal: its "westernmost" member (the
    /// first in portal order), §3.5.
    pub reps: Vec<usize>,
    /// Adjacency of the implicit portal tree `T_d`, in port (= direction
    /// index) order — the cyclic order used for Euler tours.
    pub tree_adj: Vec<Vec<usize>>,
}

/// Computes the portals and the implicit portal tree of the masked region
/// for `axis`. The region must be connected; for the tree property it must
/// also be hole-free (Lemma 9).
pub fn axis_portals(structure: &AmoebotStructure, mask: &[bool], axis: Axis) -> AxisPortals {
    let n = structure.len();
    assert_eq!(mask.len(), n);
    let nbr = |v: usize, d: Direction| -> Option<usize> {
        structure
            .neighbor(NodeId(v as u32), d)
            .and_then(|w| mask[w.index()].then_some(w.index()))
    };

    // Portal runs along the axis.
    let (pos, neg) = axis.directions();
    let mut portal_of = vec![u32::MAX; n];
    let mut portals: Vec<Vec<usize>> = Vec::new();
    let mut reps = Vec::new();
    for v in 0..n {
        if !mask[v] || nbr(v, neg).is_some() {
            continue;
        }
        let p = portals.len() as u32;
        let mut members = Vec::new();
        let mut cur = Some(v);
        while let Some(u) = cur {
            portal_of[u] = p;
            members.push(u);
            cur = nbr(u, pos);
        }
        reps.push(members[0]);
        portals.push(members);
    }

    // Implicit portal tree adjacency via the local rule of Definition 12.
    let mut tree_adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for v in 0..n {
        if !mask[v] {
            continue;
        }
        for d in ALL_DIRECTIONS {
            if let Some(w) = nbr(v, d) {
                if implicit_edge_local_rule(&nbr, axis, v, d) {
                    tree_adj[v].push(w);
                }
            }
        }
    }
    AxisPortals {
        axis,
        portal_of,
        portals,
        reps,
        tree_adj,
    }
}

/// The local rule of Definition 12, relative to a region: whether the edge
/// from `v` towards `d` belongs to the implicit portal tree of `axis`.
fn implicit_edge_local_rule(
    nbr: &impl Fn(usize, Direction) -> Option<usize>,
    axis: Axis,
    v: usize,
    d: Direction,
) -> bool {
    if d.axis() == axis {
        return true;
    }
    for (cb, cf) in axis.cross_sides() {
        if d == cb {
            return nbr(v, axis.negative()).is_none();
        }
        if d == cf {
            return nbr(v, cb).is_none();
        }
    }
    unreachable!("non-axis direction must be on a cross side")
}

impl AxisPortals {
    /// Number of portals.
    pub fn len(&self) -> usize {
        self.portals.len()
    }

    /// Whether the region had no portals (empty region).
    pub fn is_empty(&self) -> bool {
        self.portals.is_empty()
    }

    /// The implicit portal tree rooted at the representative of `portal`.
    pub fn tree_rooted_at(&self, portal: u32) -> Tree {
        let root = self.reps[portal as usize];
        let members: Vec<usize> = (0..self.portal_of.len())
            .filter(|&v| self.portal_of[v] != u32::MAX)
            .collect();
        let tree = Tree {
            root,
            adj: self.tree_adj.clone(),
            members,
        };
        debug_assert!(tree.contains(root));
        tree
    }

    /// The portal-level adjacency (quotient graph): for each portal, its
    /// adjacent portals via inter-portal tree edges, together with the
    /// connector amoebots `c_{P1}(P2)` (§3.5). Sorted by neighbor portal id.
    pub fn portal_tree_edges(&self) -> Vec<Vec<(u32, usize)>> {
        let mut out: Vec<Vec<(u32, usize)>> = vec![Vec::new(); self.portals.len()];
        for v in 0..self.tree_adj.len() {
            for &w in &self.tree_adj[v] {
                let pv = self.portal_of[v];
                let pw = self.portal_of[w];
                if pv != pw {
                    out[pv as usize].push((pw, v));
                }
            }
        }
        for lst in &mut out {
            lst.sort_unstable();
            lst.dedup();
        }
        out
    }
}

/// One-round portal marking (used for `Q = {P : P ∩ S ≠ ∅}`, §5.4.1, and
/// for destination portals in §4): each portal forms a circuit along its
/// axis pins on the BROADCAST link, flagged members beep, and every member
/// learns whether its portal contains a flagged amoebot.
pub fn mark_portals(
    world: &mut World,
    structure: &AmoebotStructure,
    mask: &[bool],
    ap: &AxisPortals,
    flags: &[bool],
) -> Vec<bool> {
    let n = structure.len();
    world.reset_all_pins_keeping_links(&[SYNC]);
    let (pos, neg) = ap.axis.directions();
    let mut pset = vec![u16::MAX; n];
    for members in &ap.portals {
        for &v in members {
            let mut pins = Vec::new();
            for d in [pos, neg] {
                if let Some(w) = structure.neighbor(NodeId(v as u32), d) {
                    if mask[w.index()] {
                        pins.push((d.index(), BROADCAST));
                    }
                }
            }
            if !pins.is_empty() {
                pset[v] = world.group_pins(v, &pins);
            }
            if flags[v] && pset[v] != u16::MAX {
                world.beep(v, pset[v]);
            }
        }
    }
    world.tick();
    ap.portals
        .iter()
        .map(|members| {
            let expected = members.iter().any(|&v| flags[v]);
            let rep = members[0];
            // Singleton portals know locally; others hear the circuit (the
            // sender's own partition set also receives its beep).
            let heard = if members.len() == 1 || pset[rep] == u16::MAX {
                expected
            } else {
                world.received(rep, pset[rep])
            };
            debug_assert_eq!(heard, expected, "portal circuit must span the portal");
            heard
        })
        .collect()
}

/// Outcome of the portal-level root-and-prune primitive (§3.5, Lemma 33).
#[derive(Debug, Clone)]
pub struct PortalRootPrune {
    /// Per portal: whether the portal is in `V_Q` (its subtree in the portal
    /// tree contains a `Q`-portal). Every member amoebot learns this via the
    /// portal circuit (Figure 4a).
    pub portal_in_vq: Vec<bool>,
    /// Per node and direction: whether the neighbor in that direction
    /// belongs to the *parent portal* of the node's portal (learned via the
    /// per-directed-edge circuits of Figure 4b). Only cross-axis directions
    /// can be set.
    pub parent_side: Vec<[bool; 6]>,
    /// `|Q|` (number of Q-portals), as computed by the root representative.
    pub q_count: u64,
    /// Per portal: its degree in the pruned portal tree (for the
    /// augmentation set of Lemma 34).
    pub portal_deg_q: Vec<u32>,
    /// ETT iterations of the underlying PASC run.
    pub iterations: u32,
}

/// Runs root-and-prune on the portal graph of `ap` (§3.5): roots the portal
/// tree at `root_portal`, prunes subtrees without portals in `q_portals`,
/// and disseminates both the `V_Q` membership (portal circuits) and the
/// parent-portal relation (per-directed-edge circuits) to every member
/// amoebot. `O(log |Q|)` rounds (Lemma 33).
pub fn portal_root_and_prune(
    world: &mut World,
    structure: &AmoebotStructure,
    mask: &[bool],
    ap: &AxisPortals,
    root_portal: u32,
    q_portals: &[bool],
) -> PortalRootPrune {
    let n = structure.len();
    assert_eq!(q_portals.len(), ap.portals.len());

    // Node-level ETT on the implicit portal tree with Q̂ = representatives
    // of Q-portals (Lemma 32 transfers the prefix-sum differences).
    let q_hat: Vec<bool> = (0..n)
        .map(|v| {
            mask[v]
                && ap.portal_of[v] != u32::MAX
                && q_portals[ap.portal_of[v] as usize]
                && ap.reps[ap.portal_of[v] as usize] == v
        })
        .collect();
    let tree = ap.tree_rooted_at(root_portal);
    let rp = root_and_prune(world, std::slice::from_ref(&tree), &q_hat);
    let q_count = rp.q_count[0];

    // Collect, per portal, the signed differences at its connector amoebots.
    // diff > 0 towards a neighbor portal means that neighbor is the parent.
    let mut portal_nonzero = vec![0u32; ap.portals.len()];
    let mut portal_parent_edge: Vec<Option<(usize, usize)>> = vec![None; ap.portals.len()];
    for v in 0..n {
        if !mask[v] {
            continue;
        }
        for (j, &w) in tree.adj[v].iter().enumerate() {
            if ap.portal_of[w] == ap.portal_of[v] {
                continue; // intra-portal edge
            }
            match rp.diff_sign[v][j] {
                0 => {}
                s => {
                    portal_nonzero[ap.portal_of[v] as usize] += 1;
                    if s > 0 {
                        debug_assert!(
                            portal_parent_edge[ap.portal_of[v] as usize].is_none(),
                            "a portal has at most one parent"
                        );
                        portal_parent_edge[ap.portal_of[v] as usize] = Some((v, w));
                    }
                }
            }
        }
    }

    // Dissemination round 1 (Figure 4a): each portal forms a circuit along
    // its axis pins on the BROADCAST link; connectors with non-zero diff
    // beep; the root portal's representative beeps iff |Q| > 0. Every member
    // then knows whether its portal is in V_Q.
    world.reset_all_pins_keeping_links(&[SYNC]);
    let (pos, neg) = ap.axis.directions();
    let mut portal_pset = vec![u16::MAX; n];
    for members in &ap.portals {
        for &v in members {
            let mut pins = Vec::new();
            for d in [pos, neg] {
                if let Some(w) = structure.neighbor(NodeId(v as u32), d) {
                    if mask[w.index()] {
                        pins.push((d.index(), BROADCAST));
                    }
                }
            }
            if !pins.is_empty() {
                portal_pset[v] = world.group_pins(v, &pins);
            }
        }
    }
    for v in 0..n {
        if !mask[v] {
            continue;
        }
        let p = ap.portal_of[v] as usize;
        let is_connector_nonzero = tree.adj[v]
            .iter()
            .enumerate()
            .any(|(j, &w)| ap.portal_of[w] != ap.portal_of[v] && rp.diff_sign[v][j] != 0);
        let root_beep = p as u32 == root_portal && ap.reps[p] == v && q_count > 0;
        if (is_connector_nonzero || root_beep) && portal_pset[v] != u16::MAX {
            world.beep(v, portal_pset[v]);
        }
    }
    world.tick();
    let mut portal_in_vq = vec![false; ap.portals.len()];
    for (p, members) in ap.portals.iter().enumerate() {
        // Every member hears the same circuit; read it at the representative
        // (singleton portals check locally).
        let rep = ap.reps[p];
        portal_in_vq[p] = if members.len() == 1 || portal_pset[rep] == u16::MAX {
            portal_nonzero[p] > 0 || (p as u32 == root_portal && q_count > 0)
        } else {
            world.received(rep, portal_pset[rep])
        };
    }

    // Dissemination round 2 (Figure 4b): per-directed-edge circuits. For
    // each side of each portal, members adjacent to the neighboring portal
    // form a circuit along the axis (cut at run boundaries); the connector
    // of the parent edge beeps; every receiving member knows its cross
    // neighbors on that side are in the parent portal.
    world.reset_all_pins_keeping_links(&[SYNC, BROADCAST]);
    let sides = ap.axis.cross_sides();
    let side_links = [FWD_PRIMARY, FWD_SECONDARY];
    let mut side_pset = vec![[u16::MAX; 2]; n];
    for v in 0..n {
        if !mask[v] {
            continue;
        }
        for (s, &(cb, cf)) in sides.iter().enumerate() {
            let has = |d: Direction| matches!(structure.neighbor(NodeId(v as u32), d), Some(w) if mask[w.index()]);
            if !has(cb) && !has(cf) {
                continue; // not adjacent to a portal on this side
            }
            let mut pins = Vec::new();
            // Connect along +axis iff the forward cross neighbor exists
            // (then the +axis neighbor shares this side's adjacent portal);
            // along -axis iff the backward cross neighbor exists.
            if has(cf) && has(pos) {
                pins.push((pos.index(), side_links[s]));
            }
            if has(cb) && has(neg) {
                pins.push((neg.index(), side_links[s]));
            }
            if !pins.is_empty() {
                side_pset[v][s] = world.group_pins(v, &pins);
            }
        }
    }
    // Connectors of parent edges beep on the circuit of their side.
    let mut parent_beeped: Vec<[bool; 2]> = vec![[false; 2]; n];
    for p in 0..ap.portals.len() {
        if let Some((v, w)) = portal_parent_edge[p] {
            let d = Direction::between(
                structure.coord(NodeId(v as u32)),
                structure.coord(NodeId(w as u32)),
            )
            .expect("tree edge endpoints adjacent");
            let s = sides
                .iter()
                .position(|&(cb, cf)| d == cb || d == cf)
                .expect("inter-portal edge uses a cross direction");
            parent_beeped[v][s] = true;
            if side_pset[v][s] != u16::MAX {
                world.beep(v, side_pset[v][s]);
            }
        }
    }
    world.tick();
    let mut parent_side = vec![[false; 6]; n];
    for v in 0..n {
        if !mask[v] {
            continue;
        }
        for (s, &(cb, cf)) in sides.iter().enumerate() {
            let heard = (side_pset[v][s] != u16::MAX && world.received(v, side_pset[v][s]))
                || parent_beeped[v][s];
            if heard {
                for d in [cb, cf] {
                    if let Some(w) = structure.neighbor(NodeId(v as u32), d) {
                        if mask[w.index()] {
                            debug_assert_ne!(ap.portal_of[w.index()], ap.portal_of[v]);
                            parent_side[v][d.index()] = true;
                        }
                    }
                }
            }
        }
    }

    // Pruned-tree degree of each portal (for A_Q, Lemma 34). The counting
    // PASC along each portal is charged explicitly.
    let max_deg = portal_nonzero.iter().copied().max().unwrap_or(0);
    let deg_rounds = 2 * (32 - (max_deg + 1).leading_zeros()) as u64;
    world.charge_rounds(
        deg_rounds,
        "portal-degree count along portals (Lemma 34 PASC)",
    );

    PortalRootPrune {
        portal_in_vq,
        parent_side,
        q_count,
        portal_deg_q: portal_nonzero,
        iterations: rp.iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoebot_circuits::Topology;
    use amoebot_grid::{shapes, ALL_AXES};

    use crate::links::LINKS;

    fn full_mask(s: &AmoebotStructure) -> Vec<bool> {
        vec![true; s.len()]
    }

    #[test]
    fn implicit_tree_is_spanning_tree_on_blobs() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(11);
        for n in [5usize, 20, 60] {
            let s = AmoebotStructure::new(shapes::random_blob(n, &mut rng)).unwrap();
            let mask = full_mask(&s);
            for axis in ALL_AXES {
                let ap = axis_portals(&s, &mask, axis);
                let edge_count: usize =
                    (0..s.len()).map(|v| ap.tree_adj[v].len()).sum::<usize>() / 2;
                assert_eq!(edge_count, s.len() - 1, "axis {axis}, n {n}");
                let tree = ap.tree_rooted_at(0);
                assert_eq!(tree.members.len(), s.len());
            }
        }
    }

    #[test]
    fn portal_graph_matches_grid_reference() {
        let s = AmoebotStructure::new(shapes::hexagon(3)).unwrap();
        let mask = full_mask(&s);
        for axis in ALL_AXES {
            let ap = axis_portals(&s, &mask, axis);
            let (ref_of, ref_portals) = s.portals(axis);
            assert_eq!(ap.portals.len(), ref_portals.len());
            for v in s.nodes() {
                assert_eq!(
                    ap.portal_of[v.index()],
                    ref_of[v.index()],
                    "portal ids must match grid reference"
                );
            }
        }
    }

    #[test]
    fn lemma_11_distance_identity() {
        // 2·dist(u,v) = dist_x + dist_y + dist_z over the portal graphs.
        let s = AmoebotStructure::new(shapes::comb(7, 3)).unwrap();
        let mask = full_mask(&s);
        let aps: Vec<AxisPortals> = ALL_AXES
            .iter()
            .map(|&ax| axis_portals(&s, &mask, ax))
            .collect();
        // Portal-graph BFS distances per axis.
        let portal_dist = |ap: &AxisPortals, from: u32| -> Vec<u32> {
            let adj = ap.portal_tree_edges();
            let mut dist = vec![u32::MAX; ap.portals.len()];
            let mut queue = std::collections::VecDeque::new();
            dist[from as usize] = 0;
            queue.push_back(from);
            while let Some(p) = queue.pop_front() {
                for &(q, _) in &adj[p as usize] {
                    if dist[q as usize] == u32::MAX {
                        dist[q as usize] = dist[p as usize] + 1;
                        queue.push_back(q);
                    }
                }
            }
            dist
        };
        let u = NodeId(0);
        let bfs = s.bfs_distances(&[u]);
        let per_axis: Vec<Vec<u32>> = aps
            .iter()
            .map(|ap| portal_dist(ap, ap.portal_of[u.index()]))
            .collect();
        for v in s.nodes() {
            let lhs = 2 * bfs[v.index()].unwrap();
            let rhs: u32 = aps
                .iter()
                .zip(&per_axis)
                .map(|(ap, dist)| dist[ap.portal_of[v.index()] as usize])
                .sum();
            assert_eq!(lhs, rhs, "Lemma 11 at node {v}");
        }
    }

    #[test]
    fn portal_root_prune_matches_reference() {
        let s = AmoebotStructure::new(shapes::parallelogram(6, 5)).unwrap();
        let mask = full_mask(&s);
        let ap = axis_portals(&s, &mask, Axis::X);
        // Q = portals of the two extreme rows; root = the middle row portal.
        let mut q_portals = vec![false; ap.portals.len()];
        q_portals[0] = true;
        *q_portals.last_mut().unwrap() = true;
        let root_portal = ap.portal_of[s.len() / 2];
        let topo = Topology::from_structure(&s);
        let mut world = World::new(topo, LINKS);
        let out = portal_root_and_prune(&mut world, &s, &mask, &ap, root_portal, &q_portals);
        assert_eq!(out.q_count, 2);
        // Reference: portal-level BFS tree rooted at root_portal.
        let adj = ap.portal_tree_edges();
        let mut parent = vec![u32::MAX; ap.portals.len()];
        let mut order = vec![root_portal];
        let mut seen = vec![false; ap.portals.len()];
        seen[root_portal as usize] = true;
        let mut i = 0;
        while i < order.len() {
            let p = order[i];
            i += 1;
            for &(w, _) in &adj[p as usize] {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    parent[w as usize] = p;
                    order.push(w);
                }
            }
        }
        let mut in_vq_ref = vec![false; ap.portals.len()];
        for p in 0..ap.portals.len() {
            // p in V_Q iff some q-portal's path to root passes through p.
            for qp in 0..ap.portals.len() {
                if q_portals[qp] {
                    let mut cur = qp as u32;
                    loop {
                        if cur == p as u32 {
                            in_vq_ref[p] = true;
                        }
                        if cur == root_portal {
                            break;
                        }
                        cur = parent[cur as usize];
                    }
                }
            }
        }
        assert_eq!(out.portal_in_vq, in_vq_ref);
        // parent_side sanity: a node's flagged neighbor must lie in the
        // parent portal of the node's portal.
        for v in 0..s.len() {
            for d in ALL_DIRECTIONS {
                if out.parent_side[v][d.index()] {
                    let w = s.neighbor(NodeId(v as u32), d).unwrap();
                    let pv = ap.portal_of[v];
                    let pw = ap.portal_of[w.index()];
                    assert_eq!(
                        parent[pv as usize], pw,
                        "flagged neighbor must be in parent portal"
                    );
                }
            }
        }
    }

    #[test]
    fn masked_region_portals() {
        // Restrict a parallelogram to its western half; portals must respect
        // the mask.
        let s = AmoebotStructure::new(shapes::parallelogram(6, 3)).unwrap();
        let mask: Vec<bool> = s.nodes().map(|v| s.coord(v).q < 3).collect();
        let ap = axis_portals(&s, &mask, Axis::X);
        assert_eq!(ap.portals.len(), 3);
        for members in &ap.portals {
            assert_eq!(members.len(), 3);
        }
        let off_region: usize = (0..s.len()).filter(|&v| !mask[v]).count();
        assert_eq!(off_region, 9);
        for v in 0..s.len() {
            assert_eq!(mask[v], ap.portal_of[v] != u32::MAX);
        }
    }
}

/// Portal-level election (§3.5, Lemma 35): elects a single portal
/// `R' ∈ Q` in O(1) rounds. Runs the simplified-ETT election over the
/// implicit portal tree with the portal representatives as `Q̂`, then
/// announces the winner on its portal circuit so every member amoebot of
/// `R'` learns the outcome.
///
/// Returns the elected portal, or `None` if no portal is in `Q`.
pub fn portal_elect(
    world: &mut World,
    structure: &AmoebotStructure,
    mask: &[bool],
    ap: &AxisPortals,
    root_portal: u32,
    q_portals: &[bool],
) -> Option<u32> {
    let n = structure.len();
    let q_hat: Vec<bool> = (0..n)
        .map(|v| {
            mask[v]
                && ap.portal_of[v] != u32::MAX
                && q_portals[ap.portal_of[v] as usize]
                && ap.reps[ap.portal_of[v] as usize] == v
        })
        .collect();
    let tree = ap.tree_rooted_at(root_portal);
    let elected = crate::primitives::election::elect(world, std::slice::from_ref(&tree), &q_hat);
    let r = elected[0]?;
    // Announcement round (Figure 4a): the elected representative beeps on
    // its portal circuit; each member of R' identifies itself.
    let flags: Vec<bool> = (0..n).map(|v| v == r).collect();
    let marked = mark_portals(world, structure, mask, ap, &flags);
    let portal = ap.portal_of[r];
    debug_assert!(marked[portal as usize]);
    Some(portal)
}

/// Portal-level Q-centroid primitive (§3.5, Lemma 36): computes the
/// Q-centroid portal(s) of the portal tree in `O(log |Q|)` rounds.
///
/// Mechanism: the rooting pass and a second ETT stream the component sizes
/// `size_{P1}(P2)` at the connector amoebots against `|Q|/2` (the root's
/// representative broadcasts the current bit of `|Q|` each iteration on the
/// structure-spanning broadcast circuit); a final portal-circuit round lets
/// connectors with an oversized component veto their portal.
pub fn portal_centroids(
    world: &mut World,
    structure: &AmoebotStructure,
    mask: &[bool],
    ap: &AxisPortals,
    root_portal: u32,
    q_portals: &[bool],
) -> Vec<bool> {
    use amoebot_pasc::{HalfCompare, PascRun, StreamingSub};

    let n = structure.len();
    let q_hat: Vec<bool> = (0..n)
        .map(|v| {
            mask[v]
                && ap.portal_of[v] != u32::MAX
                && q_portals[ap.portal_of[v] as usize]
                && ap.reps[ap.portal_of[v] as usize] == v
        })
        .collect();
    let tree = ap.tree_rooted_at(root_portal);
    // Pass 1: root the portal tree (parent relation at the connectors).
    let rp = root_and_prune(world, std::slice::from_ref(&tree), &q_hat);
    // The portal-level parent edge: the inter-portal edge with diff > 0.
    let mut parent_edge_of: Vec<Option<(usize, usize)>> = vec![None; ap.portals.len()];
    for v in 0..n {
        if !mask[v] {
            continue;
        }
        for (j, &w) in tree.adj[v].iter().enumerate() {
            if ap.portal_of[w] != ap.portal_of[v] && rp.diff_sign[v][j] > 0 {
                parent_edge_of[ap.portal_of[v] as usize] = Some((v, w));
            }
        }
    }

    // Pass 2: stream sizes against |Q|/2 (3 rounds per iteration).
    world.reset_all_pins_keeping_links(&[SYNC]);
    let ts = crate::ett::build_tours(world.topology(), std::slice::from_ref(&tree), &q_hat);
    let mut run = PascRun::new(world, ts.specs.clone(), SYNC);
    // Structure-spanning broadcast circuit for the |Q| bits.
    for v in 0..n {
        if mask[v] {
            world.global_link_config(v, BROADCAST);
        }
    }
    let bpset = World::global_link_pset(BROADCAST);
    let r_hat = tree.root;

    enum Stream {
        Parent {
            inner: StreamingSub,
            outer: StreamingSub,
            cmp: HalfCompare,
        },
        Child {
            sub: StreamingSub,
            cmp: HalfCompare,
        },
    }
    // One stream per inter-portal connector (v, adjacency index).
    let mut streams: Vec<(usize, usize, Stream)> = Vec::new();
    for v in 0..n {
        if !mask[v] {
            continue;
        }
        for (j, &w) in tree.adj[v].iter().enumerate() {
            if ap.portal_of[w] == ap.portal_of[v] {
                continue;
            }
            let p = ap.portal_of[v] as usize;
            let s = if parent_edge_of[p] == Some((v, w)) {
                Stream::Parent {
                    inner: StreamingSub::new(),
                    outer: StreamingSub::new(),
                    cmp: HalfCompare::new(),
                }
            } else {
                Stream::Child {
                    sub: StreamingSub::new(),
                    cmp: HalfCompare::new(),
                }
            };
            streams.push((v, j, s));
        }
    }
    while !run.is_done() {
        let bits = match run.data_step(world, |_| {}) {
            Some(b) => b.to_vec(),
            None => break,
        };
        let incoming = run.incoming().to_vec();
        let w_bit = bits[ts.last_inst[0]];
        if w_bit == 1 {
            world.beep(r_hat, bpset);
        }
        world.tick();
        for (v, j, stream) in &mut streams {
            let q_bit = if *v == r_hat {
                w_bit
            } else {
                u8::from(world.received(*v, bpset))
            };
            let out_bit = bits[ts.out_inst[*v][*j]];
            let in_bit = incoming[ts.in_inst[*v][*j]];
            match stream {
                Stream::Parent { inner, outer, cmp } => {
                    let d = inner.feed(out_bit, in_bit);
                    let s = outer.feed(q_bit, d);
                    cmp.feed(s, q_bit);
                }
                Stream::Child { sub, cmp } => {
                    let s = sub.feed(in_bit, out_bit);
                    cmp.feed(s, q_bit);
                }
            }
        }
        run.sync_step(world);
    }

    // Veto round (Figure 4a): connectors whose component exceeds |Q|/2 beep
    // on their portal circuit; silent Q-portals are centroids.
    let mut veto = vec![false; ap.portals.len()];
    for (v, j, stream) in &streams {
        let oversized = match stream {
            Stream::Parent { cmp, .. } => !cmp.le_half(),
            Stream::Child { cmp, .. } => !cmp.le_half(),
        };
        let _ = j;
        if oversized {
            veto[ap.portal_of[*v] as usize] = true;
        }
    }
    let veto_flags: Vec<bool> = (0..n)
        .map(|v| {
            mask[v] && {
                let p = ap.portal_of[v];
                p != u32::MAX && veto[p as usize] && {
                    // only the connectors beep, but the portal outcome is
                    // identical; use the connector's own flag
                    streams.iter().any(|&(cv, _, ref st)| {
                        cv == v
                            && match st {
                                Stream::Parent { cmp, .. } => !cmp.le_half(),
                                Stream::Child { cmp, .. } => !cmp.le_half(),
                            }
                    })
                }
            }
        })
        .collect();
    let vetoed = mark_portals(world, structure, mask, ap, &veto_flags);
    (0..ap.portals.len())
        .map(|p| q_portals[p] && !vetoed[p])
        .collect()
}

/// Portal-level `Q'`-centroid decomposition (§3.5, Lemma 37,
/// `O(log² |Q|)` rounds).
///
/// Executed on the portal quotient graph with the node-level decomposition
/// primitive — Lemma 32 establishes that every ETT pass on the implicit
/// portal tree computes exactly the quotient values, and the per-recursion
/// dissemination steps are O(1) portal-circuit rounds; the quotient rounds
/// plus those dissemination rounds are charged to `world`.
pub fn portal_centroid_decomposition(
    world: &mut World,
    ap: &AxisPortals,
    root_portal: u32,
    q_prime: &[bool],
) -> crate::primitives::decomposition::Decomposition {
    use amoebot_circuits::Topology;
    let adj = ap.portal_tree_edges();
    let mut edges = Vec::new();
    for (p, lst) in adj.iter().enumerate() {
        for &(q, _) in lst {
            if (p as u32) < q {
                edges.push((p, q as usize));
            }
        }
    }
    let mut qworld = World::new(
        Topology::from_edges(ap.portals.len(), &edges),
        crate::links::LINKS,
    );
    let qtree = crate::tree::Tree::from_edges(ap.portals.len(), root_portal as usize, &edges);
    let d = crate::primitives::decomposition::centroid_decomposition(&mut qworld, &qtree, q_prime);
    world.charge_rounds(
        qworld.rounds() + 2 * d.levels as u64,
        "portal centroid decomposition via quotient (Lemmas 32, 37)",
    );
    d
}

#[cfg(test)]
mod portal_primitive_tests {
    use super::*;
    use amoebot_circuits::Topology;
    use amoebot_grid::shapes;

    use crate::links::LINKS;

    fn setup(coords: Vec<amoebot_grid::Coord>) -> (AmoebotStructure, World, Vec<bool>) {
        let s = AmoebotStructure::new(coords).unwrap();
        let world = World::new(Topology::from_structure(&s), LINKS);
        let mask = vec![true; s.len()];
        (s, world, mask)
    }

    #[test]
    fn portal_election_is_one_round_plus_announcement() {
        let (s, mut world, mask) = setup(shapes::parallelogram(7, 5));
        let ap = axis_portals(&s, &mask, Axis::X);
        let mut q = vec![false; ap.portals.len()];
        q[1] = true;
        q[3] = true;
        let before = world.rounds();
        let elected = portal_elect(&mut world, &s, &mask, &ap, 0, &q);
        assert_eq!(world.rounds() - before, 2, "election + announcement");
        let e = elected.unwrap();
        assert!(q[e as usize], "elected portal must be in Q");
    }

    #[test]
    fn portal_election_empty_q() {
        let (s, mut world, mask) = setup(shapes::parallelogram(4, 3));
        let ap = axis_portals(&s, &mask, Axis::X);
        let q = vec![false; ap.portals.len()];
        assert_eq!(portal_elect(&mut world, &s, &mask, &ap, 0, &q), None);
    }

    /// Centralized reference for portal Q-centroids.
    fn reference_portal_centroids(ap: &AxisPortals, q: &[bool]) -> Vec<bool> {
        let adj = ap.portal_tree_edges();
        let m = ap.portals.len();
        let total: usize = (0..m).filter(|&p| q[p]).count();
        (0..m)
            .map(|u| {
                if !q[u] {
                    return false;
                }
                for &(start, _) in &adj[u] {
                    let mut seen = vec![false; m];
                    seen[u] = true;
                    seen[start as usize] = true;
                    let mut stack = vec![start as usize];
                    let mut cnt = usize::from(q[start as usize]);
                    while let Some(v) = stack.pop() {
                        for &(w, _) in &adj[v] {
                            if !seen[w as usize] {
                                seen[w as usize] = true;
                                cnt += usize::from(q[w as usize]);
                                stack.push(w as usize);
                            }
                        }
                    }
                    if 2 * cnt > total {
                        return false;
                    }
                }
                true
            })
            .collect()
    }

    #[test]
    fn portal_centroids_match_reference() {
        let (s, _, mask) = setup(shapes::parallelogram(6, 7));
        let ap = axis_portals(&s, &mask, Axis::X);
        let m = ap.portals.len();
        for q_pattern in [
            vec![true; m],
            {
                let mut q = vec![false; m];
                q[0] = true;
                q[m - 1] = true;
                q
            },
            {
                let mut q = vec![false; m];
                for p in 0..m {
                    if p % 2 == 0 {
                        q[p] = true;
                    }
                }
                q
            },
        ] {
            let mut world = World::new(Topology::from_structure(&s), LINKS);
            let got = portal_centroids(&mut world, &s, &mask, &ap, 0, &q_pattern);
            let expect = reference_portal_centroids(&ap, &q_pattern);
            assert_eq!(got, expect, "pattern {q_pattern:?}");
        }
    }

    #[test]
    fn portal_centroids_on_concave_structure() {
        let (s, mut world, mask) = setup(shapes::comb(9, 4));
        let ap = axis_portals(&s, &mask, Axis::X);
        let q = vec![true; ap.portals.len()];
        let got = portal_centroids(&mut world, &s, &mask, &ap, 0, &q);
        let expect = reference_portal_centroids(&ap, &q);
        assert_eq!(got, expect);
    }

    #[test]
    fn portal_decomposition_elects_every_q_portal_once() {
        let (s, mut world, mask) = setup(shapes::parallelogram(5, 9));
        let ap = axis_portals(&s, &mask, Axis::X);
        let q = vec![true; ap.portals.len()];
        let before = world.rounds();
        let d = portal_centroid_decomposition(&mut world, &ap, 0, &q);
        assert!(world.rounds() > before, "quotient rounds are charged");
        let elected: usize = (0..ap.portals.len())
            .filter(|&p| d.level[p].is_some())
            .count();
        assert_eq!(elected, ap.portals.len());
        // Height O(log |Q'|).
        assert!(d.levels as usize <= (usize::BITS - ap.portals.len().leading_zeros()) as usize + 1);
    }
}
