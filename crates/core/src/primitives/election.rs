//! The election primitive (§3.3, Lemma 21): elect a single node of `Q` in
//! O(1) rounds.
//!
//! The marked edges split the Euler tour into subpaths; each subpath forms a
//! circuit; the root beeps on the first subpath, and the node at its far end
//! — the tail of the first marked edge — is elected.

use amoebot_circuits::World;

use crate::ett::build_tours;
use crate::links::{BROADCAST, SYNC};
use crate::tree::Tree;

/// Elects one node of `Q` in each tree of the forest, in a single round
/// (Lemma 21). Returns the elected node per tree, `None` where
/// `Q ∩ tree = ∅`.
///
/// Note this is *not* leader election: each tree's root is already unique
/// and coordinates the step.
pub fn elect(world: &mut World, trees: &[Tree], q: &[bool]) -> Vec<Option<usize>> {
    world.reset_all_pins_keeping_links(&[BROADCAST, SYNC]);
    let ts = build_tours(world.topology(), trees, q);
    let c = world.links_per_edge();

    // Configure the subpath circuits: each instance joins its pred-side and
    // succ-side primary pins unless its outgoing edge is marked (the cut).
    for (i, spec) in ts.specs.iter().enumerate() {
        let _ = i;
        let mut group = Vec::new();
        if let Some(p) = spec.pred {
            group.push((p.port, p.primary));
        }
        if !spec.weight {
            for s in &spec.succs {
                group.push((s.port, s.primary));
            }
        }
        if !group.is_empty() {
            world.group_pins(spec.node, &group);
        }
    }
    // Each root beeps into its first subpath (via its start instance).
    for (t, tree) in trees.iter().enumerate() {
        let start = &ts.specs[ts.start_inst[t]];
        if !start.weight {
            if let Some(s) = start.succs.first() {
                let pset = (s.port * c + s.primary) as u16;
                world.beep(tree.root, pset);
            }
        }
        // If the start instance's own outgoing edge is marked, the root is
        // the tail of the first marked edge and elects itself locally.
    }
    world.tick();

    trees
        .iter()
        .enumerate()
        .map(|(t, tree)| {
            let start = &ts.specs[ts.start_inst[t]];
            if start.weight {
                // Root's first outgoing edge is marked: the first subpath is
                // empty and the root itself is elected.
                debug_assert!(q[tree.root]);
                return Some(tree.root);
            }
            if !tree.members.iter().any(|&v| q[v]) {
                return None;
            }
            // The elected node is the tail of the first marked edge: its
            // marked instance received the root's beep on the pred side.
            let mut elected = None;
            for &v in &tree.members {
                if let Some(j) = ts.marked_adj[v] {
                    let inst = &ts.specs[ts.out_inst[v][j]];
                    let p = inst.pred.expect("non-start marked instance has a pred");
                    let pset = (p.port * c + p.primary) as u16;
                    if world.received(v, pset) {
                        debug_assert!(elected.is_none(), "two nodes elected in one tree");
                        elected = Some(v);
                    }
                }
            }
            debug_assert!(elected.is_some(), "beep must reach the first marked edge");
            elected
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoebot_circuits::Topology;

    use crate::links::LINKS;

    fn world_and_tree() -> (World, Tree) {
        //      0
        //     / \
        //    1   2
        //   / \   \
        //  3   4   5
        let edges = [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5)];
        let topo = Topology::from_edges(6, &edges);
        (World::new(topo, LINKS), Tree::from_edges(6, 0, &edges))
    }

    #[test]
    fn elects_exactly_one_q_node_in_one_round() {
        let (mut world, tree) = world_and_tree();
        let mut q = vec![false; 6];
        q[4] = true;
        q[5] = true;
        let before = world.rounds();
        let elected = elect(&mut world, std::slice::from_ref(&tree), &q);
        assert_eq!(world.rounds() - before, 1, "Lemma 21: O(1) rounds");
        let e = elected[0].unwrap();
        assert!(q[e], "elected node must be in Q");
    }

    #[test]
    fn elects_root_when_root_in_q() {
        let (mut world, tree) = world_and_tree();
        let mut q = vec![false; 6];
        q[0] = true;
        q[3] = true;
        let elected = elect(&mut world, std::slice::from_ref(&tree), &q);
        assert_eq!(elected[0], Some(0));
    }

    #[test]
    fn empty_q_elects_nobody() {
        let (mut world, tree) = world_and_tree();
        let q = vec![false; 6];
        let elected = elect(&mut world, std::slice::from_ref(&tree), &q);
        assert_eq!(elected[0], None);
    }

    #[test]
    fn deterministic_across_runs() {
        let mut q = vec![false; 6];
        q[3] = true;
        q[5] = true;
        let (mut w1, t1) = world_and_tree();
        let (mut w2, t2) = world_and_tree();
        let e1 = elect(&mut w1, std::slice::from_ref(&t1), &q);
        let e2 = elect(&mut w2, std::slice::from_ref(&t2), &q);
        assert_eq!(e1, e2);
    }

    #[test]
    fn parallel_trees_elect_independently() {
        let edges = [(0, 1), (1, 2), (3, 4), (4, 5)];
        let topo = Topology::from_edges(6, &edges);
        let t1 = Tree::from_edges(6, 0, &[(0, 1), (1, 2)]);
        let t2 = Tree::from_edges(6, 3, &[(3, 4), (4, 5)]);
        let mut world = World::new(topo, LINKS);
        let q = vec![false, true, true, false, false, true];
        let before = world.rounds();
        let elected = elect(&mut world, &[t1, t2], &q);
        assert_eq!(world.rounds() - before, 1);
        assert!(q[elected[0].unwrap()]);
        assert_eq!(elected[1], Some(5));
    }

    #[test]
    fn singleton_tree_with_q_root() {
        let topo = Topology::from_edges(2, &[(0, 1)]);
        let tree = Tree::from_edges(2, 1, &[]);
        let mut world = World::new(topo, LINKS);
        let q = vec![false, true];
        let elected = elect(&mut world, std::slice::from_ref(&tree), &q);
        // A singleton root in Q designates no outgoing edge; it knows locally
        // that it is the only Q member.
        assert_eq!(elected[0], Some(1));
    }
}
