//! The Q'-centroid decomposition primitive (§3.4, Lemma 31).
//!
//! Recursively decomposes a tree at elected Q'-centroids. All recursions of
//! the same level run in parallel (their regions are node-disjoint, so their
//! circuits cannot interfere); after each level a global circuit checks
//! whether unelected Q' nodes remain.

use amoebot_circuits::World;

use crate::links::{BROADCAST, SYNC};
use crate::primitives::centroid::q_centroids;
use crate::primitives::election::elect;
use crate::tree::Tree;

/// A Q'-centroid decomposition tree `DT(T)` (§3.4).
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// `level[v]` = depth of `v` in `DT(T)` if `v ∈ Q'` was elected.
    pub level: Vec<Option<u32>>,
    /// `dt_parent[v]` = the centroid of the calling recursion.
    pub dt_parent: Vec<Option<usize>>,
    /// Number of recursion levels executed (Lemma 30: `O(log |Q|)`).
    pub levels: u32,
}

impl Decomposition {
    /// The elected centroids at the given level, in node order.
    pub fn centroids_at_level(&self, level: u32) -> Vec<usize> {
        (0..self.level.len())
            .filter(|&v| self.level[v] == Some(level))
            .collect()
    }

    /// Height of the decomposition tree.
    pub fn height(&self) -> u32 {
        self.level.iter().flatten().copied().max().map_or(0, |h| h)
    }
}

/// Computes a Q'-centroid decomposition tree of `tree` (Lemma 31,
/// `O(log² |Q'|)` rounds). `q_prime` should be the augmented set
/// `Q ∪ A_Q` (Lemma 27 guarantees centroids exist at every recursion).
///
/// # Panics
///
/// Panics if `q_prime ∩ tree` is empty.
pub fn centroid_decomposition(world: &mut World, tree: &Tree, q_prime: &[bool]) -> Decomposition {
    let n = world.topology().len();
    assert!(
        tree.members.iter().any(|&v| q_prime[v]),
        "Q' must be non-empty"
    );
    let mut remaining: Vec<bool> = (0..n).map(|v| tree.contains(v) && q_prime[v]).collect();
    let mut level: Vec<Option<u32>> = vec![None; n];
    let mut dt_parent: Vec<Option<usize>> = vec![None; n];

    // Region = (subtree, centroid of the calling recursion).
    let mut regions: Vec<(Tree, Option<usize>)> = vec![(tree.clone(), None)];
    let mut depth = 0u32;
    loop {
        // Run the centroid primitive + election on all regions in parallel.
        let trees: Vec<Tree> = regions.iter().map(|(t, _)| t.clone()).collect();
        let cents = q_centroids(world, &trees, &remaining);
        let elected = elect(world, &trees, &cents.is_centroid);

        let mut next_regions = Vec::new();
        for ((region, caller), chosen) in regions.iter().zip(&elected) {
            let c = chosen.expect("Corollary 28: every region has a Q'-centroid");
            level[c] = Some(depth);
            dt_parent[c] = *caller;
            remaining[c] = false;
            // Decompose at c: one candidate region per neighbor subtree.
            for sub in region.split_at(c) {
                next_regions.push((sub, Some(c), c));
            }
        }

        // One round: every candidate subtree forms a circuit on the
        // BROADCAST link along its tree edges; remaining Q' members beep;
        // silent subtrees are dropped (they contain no unelected Q').
        world.reset_all_pins_keeping_links(&[SYNC]);
        let mut pset_of: Vec<u16> = vec![u16::MAX; n];
        for (sub, _, _) in &next_regions {
            for &v in &sub.members {
                let pins: Vec<(usize, usize)> = sub.adj[v]
                    .iter()
                    .map(|&w| {
                        let port = world.topology().port_to(v, w).expect("edge");
                        (port, BROADCAST)
                    })
                    .collect();
                if !pins.is_empty() {
                    pset_of[v] = world.group_pins(v, &pins);
                }
                if remaining[v] && pset_of[v] != u16::MAX {
                    world.beep(v, pset_of[v]);
                }
            }
        }
        world.tick();
        regions = next_regions
            .into_iter()
            .filter(|(sub, _, _)| {
                // The new root hears the beep iff its subtree still holds
                // unelected Q' nodes; a singleton region checks locally.
                let r = sub.root;
                if sub.len() == 1 {
                    remaining[r]
                } else {
                    world.received(r, pset_of[r])
                }
            })
            .map(|(sub, caller, _)| (sub, caller))
            .collect();

        // Termination check (one round on the global circuit): unelected Q'
        // nodes beep; silence ends the decomposition.
        let sync_pset = World::global_link_pset(SYNC);
        let mut any = false;
        for v in 0..n {
            if remaining[v] {
                world.beep(v, sync_pset);
                any = true;
            }
        }
        world.tick();
        depth += 1;
        if !any {
            debug_assert!(regions.is_empty());
            break;
        }
        debug_assert!(!regions.is_empty(), "remaining Q' must lie in some region");
    }

    Decomposition {
        level,
        dt_parent,
        levels: depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoebot_circuits::Topology;

    use crate::links::LINKS;
    use crate::primitives::root_prune::root_and_prune;

    fn setup(edges: &[(usize, usize)], n: usize, root: usize) -> (World, Tree) {
        let topo = Topology::from_edges(n, edges);
        (World::new(topo, LINKS), Tree::from_edges(n, root, edges))
    }

    /// Builds Q' = Q ∪ A_Q via the root-and-prune primitive (Lemma 26).
    fn augmented(world: &mut World, tree: &Tree, q: &[bool]) -> Vec<bool> {
        let rp = root_and_prune(world, std::slice::from_ref(tree), q);
        let mut qp = q.to_vec();
        for v in rp.augmentation_set() {
            qp[v] = true;
        }
        qp
    }

    /// Validates a decomposition: every Q' node elected exactly once, DT
    /// edges connect to the calling recursion, and each DT subtree's Q'
    /// nodes shrink geometrically (height O(log |Q'|), Lemma 30).
    fn validate(tree: &Tree, q_prime: &[bool], d: &Decomposition) {
        let total: usize = tree.members.iter().filter(|&&v| q_prime[v]).count();
        let elected: usize = tree
            .members
            .iter()
            .filter(|&&v| d.level[v].is_some())
            .count();
        assert_eq!(elected, total, "every Q' node is elected exactly once");
        for &v in &tree.members {
            if let Some(l) = d.level[v] {
                assert!(q_prime[v]);
                match d.dt_parent[v] {
                    None => assert_eq!(l, 0),
                    Some(p) => {
                        let pl = d.level[p].expect("DT parent must be elected");
                        assert_eq!(pl + 1, l, "DT edges go to the calling recursion");
                    }
                }
            }
        }
        // Height bound: levels <= ceil(log2(total)) + 1.
        let bound = (usize::BITS - total.leading_zeros()) + 1;
        assert!(
            d.levels <= bound,
            "levels {} exceed log bound {bound} for |Q'| = {total}",
            d.levels
        );
    }

    #[test]
    fn decomposes_a_path() {
        let n = 16;
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let (mut world, tree) = setup(&edges, n, 0);
        let q = vec![true; n];
        let qp = augmented(&mut world, &tree, &q);
        let d = centroid_decomposition(&mut world, &tree, &qp);
        validate(&tree, &qp, &d);
        // The level-0 centroid of an all-Q path is (one of) its middle nodes.
        let top = d.centroids_at_level(0);
        assert_eq!(top.len(), 1);
        assert!((6..=8).contains(&top[0]), "top centroid near the middle");
    }

    #[test]
    fn decomposes_sparse_q_with_augmentation() {
        // Spider with 3 legs; Q = the three tips. A_Q = {center}.
        let edges = [(0, 1), (1, 2), (0, 3), (3, 4), (0, 5), (5, 6)];
        let (mut world, tree) = setup(&edges, 7, 2);
        let mut q = vec![false; 7];
        for tip in [2, 4, 6] {
            q[tip] = true;
        }
        let qp = augmented(&mut world, &tree, &q);
        assert!(qp[0], "center joins the augmentation set");
        let d = centroid_decomposition(&mut world, &tree, &qp);
        validate(&tree, &qp, &d);
        // The center must be the top centroid: each leg has 1 of 4 Q' nodes.
        assert_eq!(d.centroids_at_level(0), vec![0]);
    }

    #[test]
    fn single_q_node() {
        let edges = [(0, 1), (1, 2)];
        let (mut world, tree) = setup(&edges, 3, 0);
        let mut q = vec![false; 3];
        q[2] = true;
        let qp = augmented(&mut world, &tree, &q);
        let d = centroid_decomposition(&mut world, &tree, &qp);
        validate(&tree, &qp, &d);
        assert_eq!(d.levels, 1);
    }

    #[test]
    fn rounds_are_polylog() {
        // Lemma 31: O(log^2 |Q|) rounds. Check the round count does not blow
        // past a generous c · (log|Q'|+2)^2 bound on a path.
        for n in [8usize, 16, 32, 64] {
            let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
            let (mut world, tree) = setup(&edges, n, 0);
            let q = vec![true; n];
            let before = world.rounds();
            let d = centroid_decomposition(&mut world, &tree, &q);
            let rounds = world.rounds() - before;
            validate(&tree, &q, &d);
            let lg = (usize::BITS - n.leading_zeros()) as u64 + 2;
            assert!(
                rounds <= 14 * lg * lg,
                "decomposition of path {n} took {rounds} rounds (> {})",
                14 * lg * lg
            );
        }
    }
}
