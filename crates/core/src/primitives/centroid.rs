//! The Q-centroid primitive (§3.4, Lemma 23).
//!
//! A node `u ∈ Q` is a *Q-centroid* iff removing it splits the tree into
//! components with at most `|Q|/2` nodes of `Q` each. The primitive runs the
//! ETT twice: once to root the tree (learn parents), once to stream the
//! component sizes `size_u(v)` against `|Q|/2`, with the root broadcasting
//! the current bit of `|Q|` after every iteration (3 rounds per iteration).

use amoebot_circuits::World;
use amoebot_pasc::{HalfCompare, PascRun, StreamingSub};

use crate::ett::build_tours;
use crate::links::{BROADCAST, SYNC};
use crate::primitives::root_prune::{root_and_prune, RootPrune};
use crate::tree::Tree;

/// Outcome of the Q-centroid primitive on a forest.
#[derive(Debug, Clone)]
pub struct CentroidOutcome {
    /// Whether each node identified itself as a Q-centroid of its tree.
    pub is_centroid: Vec<bool>,
    /// The rooting information from the first ETT pass.
    pub root_prune: RootPrune,
}

/// Per-neighbor streaming comparator against `|Q|/2`.
enum SizeStream {
    /// Component through the parent: `size = |Q| - (out - in)`.
    Parent {
        inner: StreamingSub,
        outer: StreamingSub,
        cmp: HalfCompare,
    },
    /// Component through a child: `size = in - out`.
    Child { sub: StreamingSub, cmp: HalfCompare },
}

/// Computes the Q-centroid(s) of every tree in the forest in parallel
/// (Lemma 23, `O(log |Q|)` rounds).
pub fn q_centroids(world: &mut World, trees: &[Tree], q: &[bool]) -> CentroidOutcome {
    let n = world.topology().len();
    // First pass: root the trees (parents of all V_Q members).
    let rp = root_and_prune(world, trees, q);

    // Second pass: same tours, now streaming sizes against |Q|/2.
    world.reset_all_pins_keeping_links(&[BROADCAST, SYNC]);
    let ts = build_tours(world.topology(), trees, q);
    let mut run = PascRun::new(world, ts.specs.clone(), SYNC);

    // Broadcast circuits: per tree, all members join their BROADCAST-link
    // pins on tree-edge ports into one partition set (region-scoped circuit).
    let c = world.links_per_edge();
    let mut bcast_pset: Vec<u16> = vec![u16::MAX; n];
    for tree in trees {
        for &v in &tree.members {
            let pins: Vec<(usize, usize)> = tree.adj[v]
                .iter()
                .map(|&w| {
                    let port = world
                        .topology()
                        .port_to(v, w)
                        .expect("tree edge in topology");
                    (port, BROADCAST)
                })
                .collect();
            if !pins.is_empty() {
                bcast_pset[v] = world.group_pins(v, &pins);
            }
        }
    }

    // Streaming comparators for every Q node and each of its tree neighbors.
    let mut streams: Vec<Vec<SizeStream>> = (0..n).map(|_| Vec::new()).collect();
    for tree in trees {
        for &v in &tree.members {
            if !q[v] {
                continue;
            }
            streams[v] = tree.adj[v]
                .iter()
                .map(|&w| {
                    if rp.parent[v] == Some(w) {
                        SizeStream::Parent {
                            inner: StreamingSub::new(),
                            outer: StreamingSub::new(),
                            cmp: HalfCompare::new(),
                        }
                    } else {
                        SizeStream::Child {
                            sub: StreamingSub::new(),
                            cmp: HalfCompare::new(),
                        }
                    }
                })
                .collect();
        }
    }

    while !run.is_done() {
        // Round 1: PASC data round.
        let bits = match run.data_step(world, |_| {}) {
            Some(b) => b.to_vec(),
            None => break,
        };
        let incoming = run.incoming().to_vec();
        // Round 2: each root broadcasts the current bit of |Q| on its tree's
        // broadcast circuit.
        let mut w_bits: Vec<u8> = Vec::with_capacity(trees.len());
        for (t, tree) in trees.iter().enumerate() {
            let w_bit = bits[ts.last_inst[t]];
            w_bits.push(w_bit);
            if w_bit == 1 && bcast_pset[tree.root] != u16::MAX {
                world.beep(tree.root, bcast_pset[tree.root]);
            }
        }
        world.tick();
        // Feed the streams: every member reads its tree's |Q| bit from the
        // broadcast circuit (the root knows it locally).
        for (t, tree) in trees.iter().enumerate() {
            for &v in &tree.members {
                if !q[v] {
                    continue;
                }
                let q_bit = if v == tree.root {
                    w_bits[t]
                } else {
                    u8::from(world.received(v, bcast_pset[v]))
                };
                for (j, stream) in streams[v].iter_mut().enumerate() {
                    let out_bit = bits[ts.out_inst[v][j]];
                    let in_bit = incoming[ts.in_inst[v][j]];
                    match stream {
                        SizeStream::Parent { inner, outer, cmp } => {
                            let d = inner.feed(out_bit, in_bit);
                            let s = outer.feed(q_bit, d);
                            cmp.feed(s, q_bit);
                        }
                        SizeStream::Child { sub, cmp } => {
                            let s = sub.feed(in_bit, out_bit);
                            cmp.feed(s, q_bit);
                        }
                    }
                }
            }
        }
        let _ = c;
        // Round 3: sync.
        run.sync_step(world);
    }

    let mut is_centroid = vec![false; n];
    for tree in trees {
        for &v in &tree.members {
            if !q[v] {
                continue;
            }
            is_centroid[v] = streams[v].iter().all(|s| match s {
                SizeStream::Parent { cmp, .. } => cmp.le_half(),
                SizeStream::Child { cmp, .. } => cmp.le_half(),
            });
        }
    }
    CentroidOutcome {
        is_centroid,
        root_prune: rp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoebot_circuits::Topology;

    use crate::links::LINKS;

    /// Centralized reference: Q-centroids by definition.
    fn reference_centroids(tree: &Tree, q: &[bool]) -> Vec<bool> {
        let n = tree.adj.len();
        let total: usize = tree.members.iter().filter(|&&v| q[v]).count();
        let mut out = vec![false; n];
        for &u in &tree.members {
            if !q[u] {
                continue;
            }
            // Count Q in each component of T - u.
            let mut ok = true;
            for &start in &tree.adj[u] {
                let mut seen = vec![false; n];
                seen[u] = true;
                seen[start] = true;
                let mut stack = vec![start];
                let mut cnt = usize::from(q[start]);
                while let Some(v) = stack.pop() {
                    for &w in &tree.adj[v] {
                        if !seen[w] {
                            seen[w] = true;
                            cnt += usize::from(q[w]);
                            stack.push(w);
                        }
                    }
                }
                if 2 * cnt > total {
                    ok = false;
                    break;
                }
            }
            out[u] = ok;
        }
        out
    }

    fn check(tree: Tree, q: Vec<bool>) {
        let mut edges = Vec::new();
        for v in 0..tree.adj.len() {
            for &w in &tree.adj[v] {
                if v < w {
                    edges.push((v, w));
                }
            }
        }
        let topo = Topology::from_edges(tree.adj.len(), &edges);
        let mut world = World::new(topo, LINKS);
        let out = q_centroids(&mut world, std::slice::from_ref(&tree), &q);
        let reference = reference_centroids(&tree, &q);
        for &v in &tree.members {
            assert_eq!(out.is_centroid[v], reference[v], "centroid status of {v}");
        }
        // When Q = all members (the positive-weight case of Theorem 24/25),
        // there are one or two centroids and two centroids are adjacent. For
        // sparse Q no such bound holds (e.g. path endpoints), so only check
        // the structural claim in the all-Q case.
        if tree.members.iter().all(|&v| q[v]) {
            let found: Vec<usize> = tree
                .members
                .iter()
                .copied()
                .filter(|&v| out.is_centroid[v])
                .collect();
            assert!((1..=2).contains(&found.len()), "one or two centroids");
            if found.len() == 2 {
                assert!(
                    tree.adj[found[0]].contains(&found[1]),
                    "two centroids must be adjacent"
                );
            }
        }
    }

    #[test]
    fn path_centroid() {
        let edges: Vec<(usize, usize)> = (0..8).map(|i| (i, i + 1)).collect();
        let tree = Tree::from_edges(9, 0, &edges);
        // Q = all: center(s) of the path.
        check(tree.clone(), vec![true; 9]);
        // Q = endpoints only: no Q-centroid need exist (both see the other
        // half with 1 > 2/2... actually each endpoint sees 1 <= 1): check
        // against the reference either way.
        let mut q = vec![false; 9];
        q[0] = true;
        q[8] = true;
        check(tree, q);
    }

    #[test]
    fn star_centroid_is_center_when_in_q() {
        let edges = [(0, 1), (0, 2), (0, 3), (0, 4)];
        let tree = Tree::from_edges(5, 1, &edges);
        check(tree.clone(), vec![true; 5]);
        // Center not in Q: leaves each see 3 > 4/2 on the center side; no
        // centroid among Q.
        check(tree, vec![false, true, true, true, true]);
    }

    #[test]
    fn weighted_case_asymmetric() {
        //      0 - 1 - 2 - 3 - 4 with Q clustered at the east end.
        let edges: Vec<(usize, usize)> = (0..4).map(|i| (i, i + 1)).collect();
        let tree = Tree::from_edges(5, 0, &edges);
        let q = vec![false, false, true, true, true];
        check(tree, q);
    }

    #[test]
    fn random_trees_match_reference() {
        // Deterministic pseudo-random trees via a simple LCG.
        let mut state = 0x12345678u64;
        let mut next = move |m: usize| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as usize) % m
        };
        for n in [2usize, 3, 5, 9, 17] {
            for _ in 0..3 {
                let mut edges = Vec::new();
                for v in 1..n {
                    edges.push((next(v), v));
                }
                let tree = Tree::from_edges(n, next(n), &edges);
                let q: Vec<bool> = (0..n).map(|_| next(3) != 0).collect();
                if tree.members.iter().any(|&v| q[v]) {
                    check(tree, q);
                }
            }
        }
    }
}
