//! The tree primitives of §3: root-and-prune, election, Q-centroids and
//! centroid decomposition.
//!
//! These operate on arbitrary trees embedded in the communication topology
//! ("These are not limited to the geometric variant of the amoebot model",
//! §3) and are reused by the portal-tree variants (§3.5) and the shortest
//! path algorithms (§4, §5).

pub mod centroid;
pub mod decomposition;
pub mod election;
pub mod root_prune;

pub use centroid::{q_centroids, CentroidOutcome};
pub use decomposition::{centroid_decomposition, Decomposition};
pub use election::elect;
pub use root_prune::{root_and_prune, RootPrune};
