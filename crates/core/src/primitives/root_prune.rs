//! The root-and-prune primitive (§3.2, Lemma 20) and the augmentation-set
//! degree computation (Lemma 26).

use amoebot_circuits::World;
use amoebot_pasc::{PascRun, StreamingSub};

use crate::ett::build_tours;
use crate::links::{BROADCAST, SYNC};
use crate::tree::Tree;

/// Outcome of the root-and-prune primitive on a forest of trees.
#[derive(Debug, Clone)]
pub struct RootPrune {
    /// `in_vq[v]`: whether `v ∈ V_Q`, i.e. the subtree of `v` (w.r.t. the
    /// root of `v`'s tree) contains a node of `Q`. `false` for non-members.
    pub in_vq: Vec<bool>,
    /// The parent of `v` towards the root, identified via
    /// `prefixsum(u,v) - prefixsum(v,u) > 0` (Corollary 18). Set for every
    /// member of `V_Q` except roots.
    pub parent: Vec<Option<usize>>,
    /// `deg_q[v]`: degree of `v` within the pruned tree `T_Q` (the number of
    /// neighbors with a non-zero prefix-sum difference, Lemma 26). Valid for
    /// members of `V_Q`; the augmentation set is `A_Q = {v : deg_q[v] >= 3}`.
    pub deg_q: Vec<u32>,
    /// Per tree: `|Q ∩ T|`, computed by the root's final instance
    /// (Corollary 15).
    pub q_count: Vec<u64>,
    /// `diff_sign[v][j]` = sign of `prefixsum(v,w) - prefixsum(w,v)` for
    /// `w = adj[v][j]` (`-1`, `0`, `+1`). This is the raw per-edge stream
    /// outcome of Lemma 14; the portal variants (§3.5) read it at the
    /// connector amoebots `c_{P1}(P2)`.
    pub diff_sign: Vec<Vec<i8>>,
    /// PASC iterations executed (rounds = 2 × iterations, Lemma 4).
    pub iterations: u32,
}

impl RootPrune {
    /// The augmentation set `A_Q` (Lemma 26): pruned-tree nodes of degree
    /// at least 3.
    pub fn augmentation_set(&self) -> Vec<usize> {
        (0..self.in_vq.len())
            .filter(|&v| self.in_vq[v] && self.deg_q[v] >= 3)
            .collect()
    }
}

/// Runs the root-and-prune primitive on every tree of the (node-disjoint)
/// forest in parallel: roots each tree at its root and prunes all subtrees
/// without a node in `Q` (Lemma 20, `O(log |Q|)` rounds).
pub fn root_and_prune(world: &mut World, trees: &[Tree], q: &[bool]) -> RootPrune {
    let n = world.topology().len();
    world.reset_all_pins_keeping_links(&[BROADCAST, SYNC]);
    let ts = build_tours(world.topology(), trees, q);
    let mut run = PascRun::new(world, ts.specs.clone(), SYNC);

    // One streaming subtractor per (member, incident tree edge):
    // diff = prefixsum(out) - prefixsum(in).
    let mut subs: Vec<Vec<StreamingSub>> = (0..n)
        .map(|v| vec![StreamingSub::new(); ts.out_inst[v].len()])
        .collect();

    while !run.is_done() {
        let bits = match run.data_step(world, |_| {}) {
            Some(b) => b.to_vec(),
            None => break,
        };
        let incoming = run.incoming().to_vec();
        for (v, node_subs) in subs.iter_mut().enumerate() {
            for (j, sub) in node_subs.iter_mut().enumerate() {
                let out_bit = bits[ts.out_inst[v][j]];
                let in_bit = incoming[ts.in_inst[v][j]];
                sub.feed(out_bit, in_bit);
            }
        }
        run.sync_step(world);
    }

    let q_count: Vec<u64> = ts.last_inst.iter().map(|&i| run.value(i)).collect();
    let mut in_vq = vec![false; n];
    let mut parent = vec![None; n];
    let mut deg_q = vec![0u32; n];
    let mut diff_sign: Vec<Vec<i8>> = (0..n).map(|v| vec![0; subs[v].len()]).collect();
    for (t, tree) in trees.iter().enumerate() {
        for &v in &tree.members {
            let mut nonzero = 0;
            let mut par = None;
            for (j, sub) in subs[v].iter().enumerate() {
                diff_sign[v][j] = if sub.is_positive() {
                    1
                } else if sub.is_negative() {
                    -1
                } else {
                    0
                };
                if !sub.is_zero() {
                    nonzero += 1;
                }
                if sub.is_positive() {
                    debug_assert!(par.is_none(), "at most one positive difference");
                    par = Some(tree.adj[v][j]);
                }
            }
            deg_q[v] = nonzero;
            if v == tree.root {
                // Lemma 19: the root is in V_Q iff |Q| > 0.
                in_vq[v] = q_count[t] > 0;
            } else {
                in_vq[v] = nonzero > 0;
                if in_vq[v] {
                    parent[v] = par;
                    debug_assert!(par.is_some(), "V_Q member must see its parent");
                }
            }
        }
    }
    RootPrune {
        in_vq,
        parent,
        deg_q,
        q_count,
        diff_sign,
        iterations: run.iterations(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoebot_circuits::Topology;

    use crate::links::LINKS;

    /// Centralized reference: V_Q membership and parents.
    fn reference(tree: &Tree, q: &[bool]) -> (Vec<bool>, Vec<Option<usize>>) {
        let n = tree.adj.len();
        let parents = tree.parents_from_root();
        let mut in_vq = vec![false; n];
        // Post-order accumulation of Q-counts.
        fn count(tree: &Tree, parents: &[Option<usize>], q: &[bool], v: usize) -> u64 {
            let mut c = u64::from(q[v]);
            for &w in &tree.adj[v] {
                if parents[w] == Some(v) {
                    c += count(tree, parents, q, w);
                }
            }
            c
        }
        for &v in &tree.members {
            in_vq[v] = count(tree, &parents, q, v) > 0;
        }
        (in_vq, parents)
    }

    fn check(tree: Tree, q: Vec<bool>) {
        let edges: Vec<(usize, usize)> = {
            let mut e = Vec::new();
            for v in 0..tree.adj.len() {
                for &w in &tree.adj[v] {
                    if v < w {
                        e.push((v, w));
                    }
                }
            }
            e
        };
        let topo = Topology::from_edges(tree.adj.len(), &edges);
        let mut world = World::new(topo, LINKS);
        let rp = root_and_prune(&mut world, std::slice::from_ref(&tree), &q);
        let (ref_vq, ref_parents) = reference(&tree, &q);
        for &v in &tree.members {
            assert_eq!(rp.in_vq[v], ref_vq[v], "V_Q membership of {v}");
            if rp.in_vq[v] && v != tree.root {
                assert_eq!(rp.parent[v], ref_parents[v], "parent of {v}");
            }
        }
        let total_q = tree.members.iter().filter(|&&v| q[v]).count() as u64;
        assert_eq!(rp.q_count[0], total_q);
    }

    #[test]
    fn prunes_branches_without_q() {
        //      0
        //     / \
        //    1   2
        //   / \   \
        //  3   4   5
        let tree = Tree::from_edges(6, 0, &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 5)]);
        // Q = {4}: branch through 2 and leaf 3 must be pruned.
        check(tree.clone(), vec![false, false, false, false, true, false]);
        // Q = {} : everything pruned, root not in V_Q.
        check(tree.clone(), vec![false; 6]);
        // Q = all.
        check(tree, vec![true; 6]);
    }

    #[test]
    fn path_tree_with_scattered_q() {
        let edges: Vec<(usize, usize)> = (0..9).map(|i| (i, i + 1)).collect();
        let tree = Tree::from_edges(10, 4, &edges); // rooted mid-path
        let mut q = vec![false; 10];
        q[0] = true;
        q[9] = true;
        check(tree, q);
    }

    #[test]
    fn augmentation_set_matches_lemma_26() {
        // A spider: center 0 with 4 legs of length 2; Q = the 4 leg tips.
        let edges = [
            (0, 1),
            (1, 2),
            (0, 3),
            (3, 4),
            (0, 5),
            (5, 6),
            (0, 7),
            (7, 8),
        ];
        let tree = Tree::from_edges(9, 2, &edges); // rooted at a tip
        let mut q = vec![false; 9];
        for tip in [2, 4, 6, 8] {
            q[tip] = true;
        }
        let topo = Topology::from_edges(9, &edges);
        let mut world = World::new(topo, LINKS);
        let rp = root_and_prune(&mut world, std::slice::from_ref(&tree), &q);
        // The center (degree 4 in T_Q) is the only augmentation node.
        assert_eq!(rp.augmentation_set(), vec![0]);
        // Corollary 29: |A_Q| <= |Q| - 1.
        assert!(rp.augmentation_set().len() <= 3);
    }

    #[test]
    fn runs_on_forest_in_parallel() {
        let edges = [(0, 1), (1, 2), (3, 4)];
        let topo = Topology::from_edges(5, &edges);
        let t1 = Tree::from_edges(5, 0, &[(0, 1), (1, 2)]);
        let t2 = Tree::from_edges(5, 3, &[(3, 4)]);
        let q = vec![false, false, true, true, false];
        let mut world = World::new(topo, LINKS);
        let rp = root_and_prune(&mut world, &[t1, t2], &q);
        assert_eq!(rp.q_count, vec![1, 1]);
        assert!(rp.in_vq[0] && rp.in_vq[1] && rp.in_vq[2]);
        assert!(rp.in_vq[3] && !rp.in_vq[4]);
        assert_eq!(rp.parent[2], Some(1));
        assert_eq!(rp.parent[1], Some(0));
    }
}
