//! Link-index conventions used by the algorithms in this crate.
//!
//! The reconfigurable circuit extension fixes a constant number `c` of
//! external links per edge (§1.2). The algorithms here use `c = 6`:
//!
//! * two track links per Euler-tour traversal direction of an edge (the ETT
//!   needs both directions concurrently, see §3.1 — "each node operates an
//!   independent instance for each of its occurrences"),
//! * one reserved broadcast link (per-region broadcast circuits, e.g. the
//!   root's |Q| bits in the centroid primitive, §3.4),
//! * one reserved sync link (the global "anyone still active?" circuit of
//!   the synchronization technique, §2.1).

/// Primary track of the *forward* traversal (from the lower to the higher
/// node id; any globally consistent edge orientation works).
pub const FWD_PRIMARY: usize = 0;
/// Secondary track of the forward traversal.
pub const FWD_SECONDARY: usize = 1;
/// Primary track of the *backward* traversal.
pub const BWD_PRIMARY: usize = 2;
/// Secondary track of the backward traversal.
pub const BWD_SECONDARY: usize = 3;
/// Reserved broadcast link (region-scoped broadcast circuits).
pub const BROADCAST: usize = 4;
/// Reserved sync link (structure-spanning global circuit).
pub const SYNC: usize = 5;
/// The number of links per edge required by this crate's algorithms.
pub const LINKS: usize = 6;

/// The `(primary, secondary)` track links for the traversal `u -> v`.
#[inline]
pub fn traversal_links(u: usize, v: usize) -> (usize, usize) {
    if u < v {
        (FWD_PRIMARY, FWD_SECONDARY)
    } else {
        (BWD_PRIMARY, BWD_SECONDARY)
    }
}
