//! Restart hooks for dynamic structures.
//!
//! The paper's algorithms are defined on a *fixed* structure; when the
//! structure churns at runtime (amoebots joining, leaving, crashing — see
//! `amoebot-dynamics`), the sound recovery is to restart the affected
//! algorithm on the post-churn structure. These hooks make that restart a
//! one-call operation:
//!
//! * [`remap_terminals`] pushes a terminal set (sources, destinations)
//!   through the churn id map, dropping casualties;
//! * [`restart_spt`] re-runs the shortest path tree after a churn event,
//!   re-anchoring a dead source and degrading an emptied destination set
//!   to SSSP, and folds the cost into a [`RestartCounter`] so a churn
//!   scenario reports one aggregate round/beep account across all its
//!   restarts.
//!
//! Restart-from-scratch is the honest baseline the paper supports; an
//! incremental repair of the SPT under churn is open follow-up work
//! (ROADMAP), and when it lands it can be differential-tested against
//! exactly these hooks.

use amoebot_grid::{AmoebotStructure, NodeId};
use amoebot_telemetry::{CounterId, Metrics};

use crate::spt::{shortest_path_tree, SptOutcome};

/// Aggregate cost of algorithm restarts across the churn events of one
/// scenario run, backed by the telemetry registry so a scenario's
/// restart account folds into its metrics report for free.
#[derive(Debug, Clone)]
pub struct RestartCounter {
    metrics: Metrics,
    restarts: CounterId,
    rounds: CounterId,
    beeps: CounterId,
}

impl Default for RestartCounter {
    fn default() -> RestartCounter {
        let mut metrics = Metrics::new();
        let restarts = metrics.counter("spt_restarts");
        let rounds = metrics.counter("spt_restart_rounds");
        let beeps = metrics.counter("spt_restart_beeps");
        RestartCounter {
            metrics,
            restarts,
            rounds,
            beeps,
        }
    }
}

impl RestartCounter {
    /// Folds one restart's cost into the aggregate.
    pub fn absorb(&mut self, rounds: u64, beeps: u64) {
        self.metrics.inc(self.restarts);
        self.metrics.add(self.rounds, rounds);
        self.metrics.add(self.beeps, beeps);
    }

    /// Number of restarts absorbed.
    pub fn restarts(&self) -> u64 {
        self.metrics.get(self.restarts)
    }

    /// Total simulator rounds across all restarts.
    pub fn rounds(&self) -> u64 {
        self.metrics.get(self.rounds)
    }

    /// Total beeps across all restarts.
    pub fn beeps(&self) -> u64 {
        self.metrics.get(self.beeps)
    }

    /// The backing registry, for merging into a scenario report.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }
}

/// Pushes `terminals` through a churn id map (`map[old] = Some(new)` for
/// survivors, `None` for casualties), dropping the casualties. The order
/// of survivors is preserved; duplicates are not introduced.
pub fn remap_terminals(map: &[Option<NodeId>], terminals: &[NodeId]) -> Vec<NodeId> {
    terminals.iter().filter_map(|t| map[t.index()]).collect()
}

/// One restart's result together with the terminals it effectively ran
/// with (after casualty re-anchoring) — exactly what a validator needs
/// to check the tree against centralized BFS.
#[derive(Debug, Clone)]
pub struct SptRestart {
    /// The restarted algorithm's outcome.
    pub outcome: SptOutcome,
    /// The source actually used (re-anchored if the original died).
    pub source: NodeId,
    /// The destination set actually used (all nodes if the original set
    /// died).
    pub dests: Vec<NodeId>,
}

/// Restarts the shortest path tree on a post-churn structure snapshot.
///
/// `source` and `dests` are given in the snapshot's (dense) id space —
/// run them through [`remap_terminals`] first. Two churn casualties are
/// absorbed here so every event has a well-defined restart:
///
/// * a dead source (`None`) is re-anchored at the lowest surviving
///   destination (or node 0 if the destination set died too);
/// * an emptied destination set degrades to SSSP (every node becomes a
///   destination), which is the paper's `ℓ = n` special case.
///
/// The outcome's rounds/beeps are folded into `counter`.
pub fn restart_spt(
    structure: &AmoebotStructure,
    source: Option<NodeId>,
    dests: &[NodeId],
    counter: &mut RestartCounter,
) -> SptRestart {
    let dests: Vec<NodeId> = if dests.is_empty() {
        structure.nodes().collect()
    } else {
        dests.to_vec()
    };
    let source = source.unwrap_or_else(|| dests.first().copied().unwrap_or(NodeId(0)));
    let outcome = shortest_path_tree(structure, source, &dests);
    counter.absorb(outcome.rounds, outcome.beeps);
    SptRestart {
        outcome,
        source,
        dests,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoebot_grid::{shapes, validate_forest};

    #[test]
    fn remap_drops_casualties_and_renumbers_survivors() {
        // Old ids 0..5; ids 1 and 3 died, the rest compacted densely.
        let map = vec![
            Some(NodeId(0)),
            None,
            Some(NodeId(1)),
            None,
            Some(NodeId(2)),
        ];
        let t = remap_terminals(&map, &[NodeId(4), NodeId(1), NodeId(0), NodeId(3)]);
        assert_eq!(t, vec![NodeId(2), NodeId(0)]);
        assert!(remap_terminals(&map, &[NodeId(1)]).is_empty());
    }

    #[test]
    fn restart_produces_a_valid_tree_and_accumulates() {
        let s = AmoebotStructure::new(shapes::parallelogram(6, 3)).unwrap();
        let mut counter = RestartCounter::default();
        let dests = vec![NodeId(10), NodeId(17)];
        let r = restart_spt(&s, Some(NodeId(0)), &dests, &mut counter);
        assert_eq!(r.source, NodeId(0));
        assert_eq!(r.dests, dests);
        assert!(validate_forest(&s, &[NodeId(0)], &dests, &r.outcome.parents).is_empty());
        assert_eq!(counter.restarts(), 1);
        assert_eq!(counter.rounds(), r.outcome.rounds);
        assert_eq!(
            counter.metrics().counter_value("spt_restart_rounds"),
            counter.rounds()
        );
        let r1 = counter.rounds();
        // Second restart on the same snapshot accumulates.
        restart_spt(&s, Some(NodeId(0)), &dests, &mut counter);
        assert_eq!(counter.restarts(), 2);
        assert_eq!(counter.rounds(), 2 * r1);
    }

    #[test]
    fn dead_source_reanchors_on_a_destination() {
        let s = AmoebotStructure::new(shapes::line(8)).unwrap();
        let mut counter = RestartCounter::default();
        let dests = vec![NodeId(5), NodeId(7)];
        let r = restart_spt(&s, None, &dests, &mut counter);
        // Re-anchored at dests[0] = 5: a valid ({5}, dests) forest.
        assert_eq!(r.source, NodeId(5));
        assert!(validate_forest(&s, &[NodeId(5)], &dests, &r.outcome.parents).is_empty());
    }

    #[test]
    fn dead_destination_set_degrades_to_sssp() {
        let s = AmoebotStructure::new(shapes::hexagon(2)).unwrap();
        let mut counter = RestartCounter::default();
        let r = restart_spt(&s, Some(NodeId(3)), &[], &mut counter);
        let all: Vec<NodeId> = s.nodes().collect();
        assert_eq!(r.dests, all);
        assert!(validate_forest(&s, &[NodeId(3)], &all, &r.outcome.parents).is_empty());
    }
}
