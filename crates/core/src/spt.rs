//! The shortest path tree algorithm for a single source (§4, Theorem 39).
//!
//! The algorithm roots all three portal graphs at the source's portals and
//! prunes subtrees without destination portals (three portal root-and-prune
//! executions). By Lemma 11, a neighbor `v` of `u` is a feasible parent iff
//! for the two axes not shared with `v`, `portal_d(v)` is the parent of
//! `portal_d(u)` (Equation 1). A fourth root-and-prune execution over the
//! chosen-parent graph extracts the tree containing `s` and prunes subtrees
//! and stray components without destinations.
//!
//! Round complexity: `O(log ℓ)` — each of the four root-and-prune
//! executions is `O(log ℓ)` because at most `ℓ` portals per axis hold
//! destinations. SPSP (`ℓ = 1`) is `O(1)` and SSSP (`ℓ = n`) is `O(log n)`
//! as special cases.

use amoebot_circuits::{RoundReport, Topology, World};
use amoebot_grid::{AmoebotStructure, NodeId, ALL_AXES, ALL_DIRECTIONS};

use crate::links::LINKS;
use crate::portals::{axis_portals, mark_portals, portal_root_and_prune};
use crate::primitives::root_prune::root_and_prune;
use crate::tree::Tree;

/// Result of the shortest path tree algorithm.
#[derive(Debug, Clone)]
pub struct SptOutcome {
    /// `parents[v]` — the parent of `v` in the `({s}, D)`-shortest path
    /// forest; `None` for `s`, for non-members, and for amoebots pruned in
    /// the final cleanup.
    pub parents: Vec<Option<NodeId>>,
    /// Total simulator rounds consumed.
    pub rounds: u64,
    /// Total distinct beeps sent (diagnostic instrumentation of
    /// [`World::beeps_sent`]; the model itself never counts beeps).
    pub beeps: u64,
    /// Per-phase round breakdown.
    pub report: RoundReport,
}

/// Computes a `({source}, dests)`-shortest path forest on a fresh world
/// (Theorem 39, `O(log ℓ)` rounds).
///
/// # Panics
///
/// Panics if the structure is not hole-free or `dests` is empty.
pub fn shortest_path_tree(
    structure: &AmoebotStructure,
    source: NodeId,
    dests: &[NodeId],
) -> SptOutcome {
    assert!(!dests.is_empty(), "D must be non-empty");
    let mut world = World::new(Topology::from_structure(structure), LINKS);
    let mask = vec![true; structure.len()];
    let mut dest_mask = vec![false; structure.len()];
    for &d in dests {
        dest_mask[d.index()] = true;
    }
    let mut report = RoundReport::new();
    let parents = spt_in_world(
        &mut world,
        structure,
        &mask,
        source.index(),
        &dest_mask,
        &mut report,
    );
    SptOutcome {
        parents: parents
            .into_iter()
            .map(|p| p.map(|v| NodeId(v as u32)))
            .collect(),
        rounds: world.rounds(),
        beeps: world.beeps_sent(),
        report,
    }
}

/// Solves the single pair shortest path problem (SPSP, `k = ℓ = 1`).
pub fn spsp(structure: &AmoebotStructure, source: NodeId, target: NodeId) -> SptOutcome {
    shortest_path_tree(structure, source, &[target])
}

/// Solves the single source shortest path problem (SSSP, `ℓ = n`).
pub fn sssp(structure: &AmoebotStructure, source: NodeId) -> SptOutcome {
    let all: Vec<NodeId> = structure.nodes().collect();
    shortest_path_tree(structure, source, &all)
}

/// The region-scoped SPT used both stand-alone and as a subroutine of the
/// propagation and merging algorithms (§5.3, §5.4.3). Operates on the
/// sub-structure selected by `mask`; `dest_mask` is intersected with it.
/// Returns chosen parents (plain `usize` indices).
pub fn spt_in_world(
    world: &mut World,
    structure: &AmoebotStructure,
    mask: &[bool],
    source: usize,
    dest_mask: &[bool],
    report: &mut RoundReport,
) -> Vec<Option<usize>> {
    let n = structure.len();
    assert!(mask[source], "source must lie in the region");
    let dests: Vec<usize> = (0..n).filter(|&v| mask[v] && dest_mask[v]).collect();
    if dests.is_empty() || dests == [source] {
        return vec![None; n];
    }

    // Phase 1-3: portal root-and-prune per axis (rooted at the source's
    // portal, Q = destination portals).
    let mut feasible = vec![[true; 6]; n]; // and-accumulated across axes
    for axis in ALL_AXES {
        let start = world.rounds();
        let ap = axis_portals(structure, mask, axis);
        let q_portals = {
            let flags: Vec<bool> = (0..n).map(|v| mask[v] && dest_mask[v]).collect();
            mark_portals(world, structure, mask, &ap, &flags)
        };
        let root_portal = ap.portal_of[source];
        let prp = portal_root_and_prune(world, structure, mask, &ap, root_portal, &q_portals);
        // A neighbor via direction d contributes to Equation (1) through
        // this axis iff d is parallel to the axis (same portal, difference
        // 0) or points into the parent portal (difference +1).
        for v in 0..n {
            if !mask[v] {
                continue;
            }
            for d in ALL_DIRECTIONS {
                let ok = d.axis() == axis || prp.parent_side[v][d.index()];
                feasible[v][d.index()] &= ok;
            }
        }
        report.record(
            format!("portal root-and-prune ({axis}-axis)"),
            world.rounds() - start,
        );
    }

    // Parent choice (Equation 1 / Lemma 38): local, no communication.
    let mut chosen: Vec<Option<usize>> = vec![None; n];
    for v in 0..n {
        if !mask[v] || v == source {
            continue;
        }
        for d in ALL_DIRECTIONS {
            if !feasible[v][d.index()] {
                continue;
            }
            if let Some(w) = structure.neighbor(NodeId(v as u32), d) {
                if mask[w.index()] {
                    chosen[v] = Some(w.index());
                    break;
                }
            }
        }
    }

    // Phase 4: cleanup. Components not containing s never receive a signal
    // and prune themselves; the tree of s is rooted at s and pruned with
    // Q = D (Theorem 39's fourth root-and-prune execution).
    let start = world.rounds();
    let mut comp = vec![false; n];
    comp[source] = true;
    // Children adjacency of the chosen-parent graph, in CSR form: two
    // counting passes over two flat arrays instead of `n` heap-allocated
    // vectors — this routine runs once per pairwise merge of the DnC
    // forest, so its constant factor is on the reconfiguration hot path.
    let mut child_off = vec![0u32; n + 1];
    for v in 0..n {
        if let Some(p) = chosen[v] {
            child_off[p + 1] += 1;
        }
    }
    for i in 0..n {
        child_off[i + 1] += child_off[i];
    }
    let mut children = vec![0u32; child_off[n] as usize];
    let mut cursor = child_off.clone();
    for v in 0..n {
        if let Some(p) = chosen[v] {
            children[cursor[p] as usize] = v as u32;
            cursor[p] += 1;
        }
    }
    let mut stack = vec![source];
    let mut edges = Vec::new();
    while let Some(v) = stack.pop() {
        for &w in &children[child_off[v] as usize..child_off[v + 1] as usize] {
            let w = w as usize;
            if !comp[w] {
                comp[w] = true;
                edges.push((v, w));
                stack.push(w);
            }
        }
    }
    let tree = Tree::from_edges(n, source, &edges);
    let q: Vec<bool> = (0..n).map(|v| comp[v] && dest_mask[v]).collect();
    let rp = root_and_prune(world, std::slice::from_ref(&tree), &q);
    report.record("final root-and-prune (cleanup)", world.rounds() - start);

    (0..n)
        .map(|v| {
            if v != source && rp.in_vq[v] {
                let p = rp.parent[v];
                debug_assert_eq!(p, chosen[v], "cleanup must confirm the chosen parent");
                p
            } else {
                None
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoebot_grid::{shapes, validate_forest, Coord};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn check_spt(structure: &AmoebotStructure, source: NodeId, dests: &[NodeId]) -> SptOutcome {
        let out = shortest_path_tree(structure, source, dests);
        let violations = validate_forest(structure, &[source], dests, &out.parents);
        assert!(violations.is_empty(), "{violations:?}");
        out
    }

    #[test]
    fn sssp_on_parallelogram() {
        let s = AmoebotStructure::new(shapes::parallelogram(7, 4)).unwrap();
        let all: Vec<NodeId> = s.nodes().collect();
        check_spt(&s, NodeId(0), &all);
    }

    #[test]
    fn spsp_various_pairs() {
        let s = AmoebotStructure::new(shapes::hexagon(3)).unwrap();
        let n = s.len();
        for (a, b) in [(0usize, n - 1), (3, 7), (n / 2, 0)] {
            check_spt(&s, NodeId(a as u32), &[NodeId(b as u32)]);
        }
    }

    #[test]
    fn spsp_is_constant_rounds() {
        // Theorem 39 with ℓ = 1: rounds must not grow with n.
        let mut rounds = Vec::new();
        for w in [4usize, 8, 16] {
            let s = AmoebotStructure::new(shapes::parallelogram(w, 3)).unwrap();
            let src = s.node_at(Coord::new(0, 0)).unwrap();
            let dst = s.node_at(Coord::new(w as i32 - 1, 2)).unwrap();
            let out = check_spt(&s, src, &[dst]);
            rounds.push(out.rounds);
        }
        assert_eq!(rounds[0], rounds[1], "SPSP rounds must not depend on n");
        assert_eq!(rounds[1], rounds[2], "SPSP rounds must not depend on n");
    }

    #[test]
    fn concave_structures() {
        for coords in [
            shapes::comb(9, 4),
            shapes::l_shape(8, 2),
            shapes::staircase(6, 3),
        ] {
            let s = AmoebotStructure::new(coords).unwrap();
            let all: Vec<NodeId> = s.nodes().collect();
            check_spt(&s, NodeId((s.len() / 2) as u32), &all);
        }
    }

    #[test]
    fn random_blobs_random_destinations() {
        let mut rng = StdRng::seed_from_u64(99);
        for n in [10usize, 40, 120] {
            let s = AmoebotStructure::new(shapes::random_blob(n, &mut rng)).unwrap();
            let src = NodeId(rng.gen_range(0..n as u32));
            let l = rng.gen_range(1..=n);
            let dests: Vec<NodeId> = shapes::random_subset(n, l, &mut rng)
                .into_iter()
                .map(|i| NodeId(i as u32))
                .collect();
            check_spt(&s, src, &dests);
        }
    }

    #[test]
    fn line_structure() {
        let s = AmoebotStructure::new(shapes::line(12)).unwrap();
        check_spt(&s, NodeId(3), &[NodeId(0), NodeId(11)]);
    }

    #[test]
    fn destination_equals_source() {
        let s = AmoebotStructure::new(shapes::triangle(4)).unwrap();
        let out = shortest_path_tree(&s, NodeId(0), &[NodeId(0)]);
        // The forest is just the source; no parents anywhere.
        assert!(out.parents.iter().all(|p| p.is_none()));
    }

    #[test]
    fn rounds_scale_with_log_l_not_n() {
        // Fixed ℓ = 2, growing n: round count stays bounded by the ℓ-term.
        let mut rounds = Vec::new();
        for w in [6usize, 12, 24] {
            let s = AmoebotStructure::new(shapes::parallelogram(w, 4)).unwrap();
            let src = s.node_at(Coord::new(0, 0)).unwrap();
            let d1 = s.node_at(Coord::new(w as i32 - 1, 3)).unwrap();
            let d2 = s.node_at(Coord::new(w as i32 / 2, 1)).unwrap();
            let out = check_spt(&s, src, &[d1, d2]);
            rounds.push(out.rounds);
        }
        let spread = rounds.iter().max().unwrap() - rounds.iter().min().unwrap();
        assert!(
            spread <= 4,
            "rounds {rounds:?} must be (nearly) independent of n for fixed ℓ"
        );
    }
}
