//! Tree views over simulated structures.
//!
//! The tree primitives of §3 operate on trees that live *inside* a larger
//! communication topology: the abstract trees of §3.1–3.4, the implicit
//! portal graphs of §3.5, chosen-parent forests of §4, and the region trees
//! of §5.4. A [`Tree`] records which edges of the topology belong to the
//! tree and in which cyclic order each node visits its tree neighbors (the
//! order that defines the Euler tour).

/// A rooted tree embedded in a topology over nodes `0..n`.
///
/// Non-member nodes have empty adjacency. A single-node tree (root only,
/// no edges) is allowed — several region trees of §5.4 degenerate to it.
#[derive(Debug, Clone)]
pub struct Tree {
    /// The root node `r`.
    pub root: usize,
    /// `adj[v]` = tree neighbors of `v` in the cyclic order used by the
    /// Euler tour ("next counterclockwise neighbor", §3.1).
    pub adj: Vec<Vec<usize>>,
    /// The member nodes (root first, then discovery order).
    pub members: Vec<usize>,
}

impl Tree {
    /// Builds a tree from an undirected edge list. Adjacency order follows
    /// edge insertion order.
    ///
    /// # Panics
    ///
    /// Panics if the edges do not form a tree containing `root` (cycles,
    /// disconnection from the root, or out-of-range nodes).
    pub fn from_edges(n: usize, root: usize, edges: &[(usize, usize)]) -> Tree {
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(u, v) in edges {
            assert!(u < n && v < n && u != v, "bad tree edge ({u}, {v})");
            adj[u].push(v);
            adj[v].push(u);
        }
        let tree = Tree {
            root,
            adj,
            members: Vec::new(),
        };
        tree.with_members(edges.len())
    }

    /// Builds a tree from parent pointers: `parent[v] = Some(p)` adds edge
    /// `{v, p}`; exactly the nodes with a parent plus `root` are members.
    /// Children are attached in node-id order.
    pub fn from_parents(n: usize, root: usize, parent: &[Option<usize>]) -> Tree {
        assert_eq!(parent.len(), n);
        let mut edges = Vec::new();
        for v in 0..n {
            if let Some(p) = parent[v] {
                assert_ne!(v, root, "root must not have a parent");
                edges.push((p, v));
            }
        }
        Tree::from_edges(n, root, &edges)
    }

    fn with_members(mut self, edge_count: usize) -> Tree {
        let mut seen = vec![false; self.adj.len()];
        let mut stack = vec![self.root];
        seen[self.root] = true;
        let mut members = Vec::new();
        while let Some(v) = stack.pop() {
            members.push(v);
            for &w in &self.adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                } else if !members.contains(&w) && w != v {
                    // seen but not yet popped: fine (stack pending)
                }
            }
        }
        assert_eq!(
            members.len(),
            edge_count + 1,
            "edges must form a tree containing the root (acyclic, connected)"
        );
        members.sort_unstable();
        self.members = members;
        self
    }

    /// Number of member nodes.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the tree has no members (never true for constructed trees).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `v` is a member.
    pub fn contains(&self, v: usize) -> bool {
        v == self.root || !self.adj[v].is_empty()
    }

    /// Parent pointers of all members with respect to the root (centralized
    /// helper for validation; the distributed parents come from the
    /// root-and-prune primitive).
    pub fn parents_from_root(&self) -> Vec<Option<usize>> {
        let n = self.adj.len();
        let mut parent = vec![None; n];
        let mut seen = vec![false; n];
        let mut stack = vec![self.root];
        seen[self.root] = true;
        while let Some(v) = stack.pop() {
            for &w in &self.adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    parent[w] = Some(v);
                    stack.push(w);
                }
            }
        }
        parent
    }

    /// Splits the tree at member `c`: returns one subtree per tree neighbor
    /// `u` of `c`, rooted at `u`, with `c` removed. Used by the centroid
    /// decomposition (§3.4).
    ///
    /// # Panics
    ///
    /// Panics if `c` is not a member.
    pub fn split_at(&self, c: usize) -> Vec<Tree> {
        assert!(self.contains(c), "{c} is not a tree member");
        let n = self.adj.len();
        self.adj[c]
            .iter()
            .map(|&u| {
                // Collect the component of u in T - c.
                let mut seen = vec![false; n];
                seen[c] = true;
                seen[u] = true;
                let mut stack = vec![u];
                let mut edges = Vec::new();
                while let Some(v) = stack.pop() {
                    for &w in &self.adj[v] {
                        if !seen[w] {
                            seen[w] = true;
                            edges.push((v, w));
                            stack.push(w);
                        }
                    }
                }
                // Preserve each node's adjacency ORDER from the parent tree
                // (minus edges to c / outside): rebuild adjacency manually.
                let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
                for v in 0..n {
                    if seen[v] && v != c {
                        adj[v] = self.adj[v]
                            .iter()
                            .copied()
                            .filter(|&w| seen[w] && w != c)
                            .collect();
                    }
                }
                let t = Tree {
                    root: u,
                    adj,
                    members: Vec::new(),
                };
                t.with_members(edges.len())
            })
            .collect()
    }

    /// Height of the tree (edges on the longest root-leaf path).
    pub fn height(&self) -> u32 {
        let n = self.adj.len();
        let mut depth = vec![0u32; n];
        let mut seen = vec![false; n];
        let mut stack = vec![self.root];
        seen[self.root] = true;
        let mut best = 0;
        while let Some(v) = stack.pop() {
            for &w in &self.adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    depth[w] = depth[v] + 1;
                    best = best.max(depth[w]);
                    stack.push(w);
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> Tree {
        //      0
        //     / \
        //    1   2
        //   / \   \
        //  3   4   5
        Tree::from_edges(6, 0, &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 5)])
    }

    #[test]
    fn members_and_parents() {
        let t = sample_tree();
        assert_eq!(t.len(), 6);
        assert_eq!(t.height(), 2);
        let p = t.parents_from_root();
        assert_eq!(p[0], None);
        assert_eq!(p[3], Some(1));
        assert_eq!(p[5], Some(2));
    }

    #[test]
    fn from_parents_round_trip() {
        let t = sample_tree();
        let p = t.parents_from_root();
        let t2 = Tree::from_parents(6, 0, &p);
        assert_eq!(t2.members, t.members);
        assert_eq!(t2.parents_from_root(), p);
    }

    #[test]
    fn split_at_internal_node() {
        let t = sample_tree();
        let parts = t.split_at(1);
        // Splitting at 1 yields subtrees rooted at 0 (containing 2 and 5),
        // at 3 and at 4.
        assert_eq!(parts.len(), 3);
        let roots: Vec<usize> = parts.iter().map(|p| p.root).collect();
        assert_eq!(roots, vec![0, 3, 4]);
        let part0 = &parts[0];
        assert_eq!(part0.members, vec![0, 2, 5]);
        assert!(parts[1].members == vec![3]);
    }

    #[test]
    #[should_panic(expected = "must form a tree")]
    fn rejects_cycles() {
        Tree::from_edges(3, 0, &[(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn singleton_tree() {
        let t = Tree::from_edges(4, 2, &[]);
        assert_eq!(t.members, vec![2]);
        assert!(t.contains(2));
        assert!(!t.contains(0));
        assert_eq!(t.height(), 0);
    }
}
