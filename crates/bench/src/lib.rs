//! Shared workloads and round-count measurements for the benchmark harness.
//!
//! Every function returns the *exact simulator round count* of one
//! experiment configuration; the `experiments` binary prints the paper's
//! tables/series from them and the Criterion benches measure the simulator's
//! wall-clock on the same workloads. See `DESIGN.md` §3 for the experiment
//! index (E1–E20) and `EXPERIMENTS.md` for recorded results.

use amoebot_circuits::{leader, Topology, World};
use amoebot_grid::{shapes, AmoebotStructure, NodeId};
use amoebot_pasc::{chain_specs, tree_specs, PascRun};
use amoebot_spf::forest::{line_forest, shortest_path_forest};
use amoebot_spf::links::{FWD_PRIMARY, FWD_SECONDARY, LINKS, SYNC};
use amoebot_spf::primitives::{centroid_decomposition, q_centroids, root_and_prune};
use amoebot_spf::spt::{shortest_path_tree, spsp, sssp};
use amoebot_spf::Tree;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// `ceil(log2(x))` for display of polylog predictors.
pub fn log2_ceil(x: u64) -> u64 {
    if x <= 1 {
        0
    } else {
        64 - (x - 1).leading_zeros() as u64
    }
}

/// A path world with `n` nodes and the standard link count.
pub fn path_world(n: usize) -> World {
    let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    World::new(Topology::from_edges(n, &edges), LINKS)
}

/// E1 (Lemma 4): rounds of the chain PASC for a chain of `m` amoebots.
pub fn pasc_chain_rounds(m: usize) -> u64 {
    let mut world = path_world(m);
    let nodes: Vec<usize> = (0..m).collect();
    let specs = chain_specs(world.topology(), &nodes, FWD_PRIMARY, FWD_SECONDARY, None);
    let mut run = PascRun::new(&mut world, specs, SYNC);
    let values = run.run_to_completion(&mut world);
    assert!(values.iter().enumerate().all(|(i, &v)| v == i as u64));
    world.rounds()
}

/// E2 (Corollary 5): rounds of the tree PASC on a balanced binary tree with
/// `h` levels (height `h - 1`).
pub fn pasc_tree_rounds(levels: usize) -> u64 {
    let n = (1usize << levels) - 1;
    let edges: Vec<(usize, usize)> = (1..n).map(|v| ((v - 1) / 2, v)).collect();
    let mut world = World::new(Topology::from_edges(n, &edges), LINKS);
    let parent: Vec<Option<usize>> = (0..n).map(|v| (v > 0).then(|| (v - 1) / 2)).collect();
    let participates = vec![true; n];
    let (specs, _) = tree_specs(world.topology(), &parent, &participates, FWD_PRIMARY, FWD_SECONDARY);
    let mut run = PascRun::new(&mut world, specs, SYNC);
    run.run_to_completion(&mut world);
    world.rounds()
}

/// E3 (Corollary 6): rounds of the weighted prefix-sum PASC on a chain of
/// `m` amoebots with exactly `w` unit weights (spread evenly).
pub fn pasc_prefix_rounds(m: usize, w: usize) -> u64 {
    let mut world = path_world(m);
    let nodes: Vec<usize> = (0..m).collect();
    let weights: Vec<bool> = (0..m).map(|i| w > 0 && i % m.div_ceil(w).max(1) == 0).collect();
    let specs = chain_specs(
        world.topology(),
        &nodes,
        FWD_PRIMARY,
        FWD_SECONDARY,
        Some(&weights),
    );
    let mut run = PascRun::new(&mut world, specs, SYNC);
    run.run_to_completion(&mut world);
    world.rounds()
}

/// A deterministic random tree over `n` nodes (attachment to a random
/// earlier node) plus a Q of the given size.
pub fn random_tree_and_q(n: usize, q_size: usize, seed: u64) -> (World, Tree, Vec<bool>) {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    let edges: Vec<(usize, usize)> = (1..n).map(|v| (rng.gen_range(0..v), v)).collect();
    let world = World::new(Topology::from_edges(n, &edges), LINKS);
    let tree = Tree::from_edges(n, 0, &edges);
    let mut q = vec![false; n];
    for i in shapes::random_subset(n, q_size.min(n), &mut rng) {
        q[i] = true;
    }
    (world, tree, q)
}

/// E4/E5 (Lemmas 14, 20): rounds of root-and-prune on a random tree.
pub fn root_prune_rounds(n: usize, q_size: usize) -> u64 {
    let (mut world, tree, q) = random_tree_and_q(n, q_size, 7);
    root_and_prune(&mut world, std::slice::from_ref(&tree), &q);
    world.rounds()
}

/// E6 (Lemma 21): rounds of the election primitive.
pub fn election_rounds(n: usize, q_size: usize) -> u64 {
    let (mut world, tree, q) = random_tree_and_q(n, q_size.max(1), 11);
    let before = world.rounds();
    amoebot_spf::primitives::elect(&mut world, std::slice::from_ref(&tree), &q);
    world.rounds() - before
}

/// E7 (Lemma 23): rounds of the Q-centroid primitive.
pub fn centroid_rounds(n: usize, q_size: usize) -> u64 {
    let (mut world, tree, q) = random_tree_and_q(n, q_size.max(1), 13);
    q_centroids(&mut world, std::slice::from_ref(&tree), &q);
    world.rounds()
}

/// E8 (Corollary 29): the observed `|A_Q| / |Q|` ratio on a random tree.
pub fn augmentation_ratio(n: usize, q_size: usize) -> f64 {
    let (mut world, tree, q) = random_tree_and_q(n, q_size.max(1), 17);
    let rp = root_and_prune(&mut world, std::slice::from_ref(&tree), &q);
    let a = rp.augmentation_set().len() as f64;
    let qn = q.iter().filter(|&&b| b).count().max(1) as f64;
    a / qn
}

/// E9 (Lemmas 30, 31): rounds and height of the centroid decomposition.
pub fn decomposition_stats(n: usize, q_size: usize) -> (u64, u32) {
    let (mut world, tree, q) = random_tree_and_q(n, q_size.max(1), 19);
    let rp = root_and_prune(&mut world, std::slice::from_ref(&tree), &q);
    let mut qp = q.clone();
    for v in rp.augmentation_set() {
        qp[v] = true;
    }
    let before = world.rounds();
    let d = centroid_decomposition(&mut world, &tree, &qp);
    (world.rounds() - before, d.levels)
}

/// The standard 2D structure for the SPT/forest experiments: a `w × w/2`
/// parallelogram.
pub fn standard_structure(n_target: usize) -> AmoebotStructure {
    let w = ((2 * n_target) as f64).sqrt().ceil() as usize;
    AmoebotStructure::new(shapes::parallelogram(w, (w / 2).max(1))).unwrap()
}

/// Evenly spread `k` node ids over a structure.
pub fn spread(structure: &AmoebotStructure, k: usize) -> Vec<NodeId> {
    let n = structure.len();
    (0..k)
        .map(|i| NodeId((i * (n - 1) / (k - 1).max(1)) as u32))
        .collect()
}

/// E11 (Theorem 39): SPT rounds for `l` destinations on a fixed structure.
/// Destinations are spread over `1..n` so none coincides with the source.
pub fn spt_rounds(structure: &AmoebotStructure, l: usize) -> u64 {
    let n = structure.len();
    let l = l.max(1).min(n - 1);
    let mut dests: Vec<NodeId> = (0..l)
        .map(|i| NodeId((1 + i * (n - 2) / l.max(2).min(n - 1)) as u32))
        .collect();
    dests.dedup();
    shortest_path_tree(structure, NodeId(0), &dests).rounds
}

/// E12 (Theorem 39): SPSP rounds (source and target in opposite corners).
pub fn spsp_rounds(structure: &AmoebotStructure) -> u64 {
    spsp(structure, NodeId(0), NodeId((structure.len() - 1) as u32)).rounds
}

/// E13 (Theorem 39): SSSP rounds.
pub fn sssp_rounds(structure: &AmoebotStructure) -> u64 {
    sssp(structure, NodeId(0)).rounds
}

/// E14 (Lemma 40): line algorithm rounds with `k` sources on `n` amoebots.
pub fn line_rounds(n: usize, k: usize) -> u64 {
    let s = AmoebotStructure::new(shapes::line(n)).unwrap();
    let mut world = World::new(Topology::from_structure(&s), LINKS);
    let chain: Vec<usize> = (0..n).collect();
    let mut is_source = vec![false; n];
    for id in spread(&s, k.max(1)) {
        is_source[id.index()] = true;
    }
    line_forest(&mut world, &chain, &is_source);
    world.rounds()
}

/// E17 (Theorem 56): forest rounds for `k` sources on a structure.
pub fn forest_rounds(structure: &AmoebotStructure, k: usize) -> u64 {
    let sources = spread(structure, k.max(2));
    let all: Vec<NodeId> = structure.nodes().collect();
    shortest_path_forest(structure, &sources, &all).rounds
}

/// E18a: BFS wavefront rounds.
pub fn wavefront_rounds(structure: &AmoebotStructure, k: usize) -> u64 {
    let sources = spread(structure, k.max(1));
    amoebot_baselines::bfs_wavefront(structure, &sources).rounds
}

/// E18b: sequential merging rounds.
pub fn sequential_rounds(structure: &AmoebotStructure, k: usize) -> u64 {
    let sources = spread(structure, k.max(1));
    amoebot_baselines::sequential_forest(structure, &sources).rounds
}

/// E20 (Theorem 2 substitute): leader election rounds + success flag.
pub fn leader_rounds(n: usize, seed: u64) -> (u64, bool) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut world = path_world(n);
    let result = leader::elect_leader(&mut world, &mut rng);
    (result.rounds, result.leader().is_some())
}
