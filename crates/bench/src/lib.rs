//! Round-count measurement wrappers for the benchmark harness.
//!
//! The experiment definitions (E1–E20) live in the scenario engine —
//! [`amoebot_scenarios::experiments`] constructs them and
//! [`amoebot_scenarios::run`] executes and cross-validates them. This
//! crate keeps the historical per-experiment functions as **thin
//! wrappers** around registered scenarios so the Criterion benches and the
//! `experiments` binary measure exactly the code path the scenario batches
//! run. Every wrapper panics if the scenario's cross-validation fails: a
//! benchmark of a wrong answer is worthless.

use amoebot_circuits::World;
use amoebot_grid::{AmoebotStructure, NodeId};
use amoebot_scenarios::experiments as ex;
use amoebot_scenarios::run::{run_scenario, run_structure_workload, ScenarioResult};
use amoebot_scenarios::spec::{derive_rng, Scenario, StructureAlgorithm};
use amoebot_spf::primitives::{centroid_decomposition, root_and_prune};
use amoebot_spf::Tree;
use rand::rngs::StdRng;
use rand::SeedableRng;

pub use amoebot_scenarios::run::path_world;

/// `ceil(log2(x))` for display of polylog predictors.
pub fn log2_ceil(x: u64) -> u64 {
    if x <= 1 {
        0
    } else {
        64 - (x - 1).leading_zeros() as u64
    }
}

fn rounds_of(scenario: &Scenario) -> u64 {
    checked(run_scenario(scenario)).rounds
}

fn checked(result: ScenarioResult) -> ScenarioResult {
    assert!(
        result.pass,
        "{} failed cross-validation: {:?}",
        result.name,
        result.checks.iter().filter(|c| !c.pass).collect::<Vec<_>>()
    );
    result
}

/// E1 (Lemma 4): rounds of the chain PASC for a chain of `m` amoebots.
pub fn pasc_chain_rounds(m: usize) -> u64 {
    rounds_of(&ex::e1_pasc_chain(m))
}

/// E2 (Corollary 5): rounds of the tree PASC on a balanced binary tree with
/// `h` levels (height `h - 1`).
pub fn pasc_tree_rounds(levels: usize) -> u64 {
    rounds_of(&ex::e2_pasc_tree(levels))
}

/// E3 (Corollary 6): rounds of the weighted prefix-sum PASC on a chain of
/// `m` amoebots with exactly `w` unit weights (spread evenly).
pub fn pasc_prefix_rounds(m: usize, w: usize) -> u64 {
    rounds_of(&ex::e3_pasc_prefix(m, w))
}

/// A deterministic random tree over `n` nodes (attachment to a random
/// earlier node) plus a Q of the given size.
pub fn random_tree_and_q(n: usize, q_size: usize, seed: u64) -> (World, Tree, Vec<bool>) {
    let mut rng = StdRng::seed_from_u64(seed);
    amoebot_scenarios::run::random_tree_and_q(n, q_size, &mut rng)
}

/// E4/E5 (Lemmas 14, 20): rounds of root-and-prune on a random tree.
pub fn root_prune_rounds(n: usize, q_size: usize) -> u64 {
    rounds_of(&ex::e4_root_prune(n, q_size))
}

/// E6 (Lemma 21): rounds of the election primitive.
pub fn election_rounds(n: usize, q_size: usize) -> u64 {
    rounds_of(&ex::e6_election(n, q_size))
}

/// E7 (Lemma 23): rounds of the Q-centroid primitive.
pub fn centroid_rounds(n: usize, q_size: usize) -> u64 {
    rounds_of(&ex::e7_centroids(n, q_size))
}

/// E8 (Corollary 29): the observed `|A_Q| / |Q|` ratio on a random tree.
/// (The scenario engine checks the bound; this helper reports the ratio for
/// the experiment table.)
pub fn augmentation_ratio(n: usize, q_size: usize) -> f64 {
    let mut rng = derive_rng(17, 0);
    let (mut world, tree, q) =
        amoebot_scenarios::run::random_tree_and_q(n, q_size.max(1), &mut rng);
    let rp = root_and_prune(&mut world, std::slice::from_ref(&tree), &q);
    let a = rp.augmentation_set().len() as f64;
    let qn = q.iter().filter(|&&b| b).count().max(1) as f64;
    a / qn
}

/// E9 (Lemmas 30, 31): rounds and height of the centroid decomposition.
/// (The scenario engine checks the depth bound; this helper reports both
/// numbers for the experiment table.)
pub fn decomposition_stats(n: usize, q_size: usize) -> (u64, u32) {
    let mut rng = derive_rng(19, 0);
    let (mut world, tree, q) =
        amoebot_scenarios::run::random_tree_and_q(n, q_size.max(1), &mut rng);
    let rp = root_and_prune(&mut world, std::slice::from_ref(&tree), &q);
    let mut qp = q.clone();
    for v in rp.augmentation_set() {
        qp[v] = true;
    }
    let before = world.rounds();
    let d = centroid_decomposition(&mut world, &tree, &qp);
    (world.rounds() - before, d.levels)
}

/// The standard 2D structure for the SPT/forest experiments: a `w × w/2`
/// parallelogram.
pub fn standard_structure(n_target: usize) -> AmoebotStructure {
    ex::standard_structure_spec(n_target).materialize(&mut derive_rng(0, 0))
}

/// Evenly spread `k` node ids over a structure.
pub fn spread(structure: &AmoebotStructure, k: usize) -> Vec<NodeId> {
    let n = structure.len();
    (0..k)
        .map(|i| NodeId((i * (n - 1) / (k - 1).max(1)) as u32))
        .collect()
}

/// The `(sources, dests)` terminal sets of E11 for `l` destinations.
fn spt_terminals(structure: &AmoebotStructure, l: usize) -> (Vec<NodeId>, Vec<NodeId>) {
    let n = structure.len();
    let l = l.max(1).min(n - 1);
    let mut dests: Vec<NodeId> = (0..l)
        .map(|i| NodeId((1 + i * (n - 2) / l.max(2).min(n - 1)) as u32))
        .collect();
    dests.dedup();
    (vec![NodeId(0)], dests)
}

fn structure_rounds(
    structure: &AmoebotStructure,
    sources: &[NodeId],
    dests: &[NodeId],
    algorithm: StructureAlgorithm,
) -> u64 {
    checked(run_structure_workload(structure, sources, dests, algorithm)).rounds
}

/// E11 (Theorem 39): SPT rounds for `l` destinations on a fixed structure.
pub fn spt_rounds(structure: &AmoebotStructure, l: usize) -> u64 {
    let (sources, dests) = spt_terminals(structure, l);
    structure_rounds(structure, &sources, &dests, StructureAlgorithm::Spt)
}

/// E12 (Theorem 39): SPSP rounds (source and target in opposite corners).
pub fn spsp_rounds(structure: &AmoebotStructure) -> u64 {
    structure_rounds(
        structure,
        &[NodeId(0)],
        &[NodeId((structure.len() - 1) as u32)],
        StructureAlgorithm::Spt,
    )
}

/// E13 (Theorem 39): SSSP rounds.
pub fn sssp_rounds(structure: &AmoebotStructure) -> u64 {
    let all: Vec<NodeId> = structure.nodes().collect();
    structure_rounds(structure, &[NodeId(0)], &all, StructureAlgorithm::Spt)
}

/// E14 (Lemma 40): line algorithm rounds with `k` sources on `n` amoebots.
pub fn line_rounds(n: usize, k: usize) -> u64 {
    rounds_of(&ex::e14_line(n, k.max(1)))
}

/// E17 (Theorem 56): forest rounds for `k` sources on a structure.
pub fn forest_rounds(structure: &AmoebotStructure, k: usize) -> u64 {
    let sources = spread(structure, k.max(2));
    let all: Vec<NodeId> = structure.nodes().collect();
    structure_rounds(structure, &sources, &all, StructureAlgorithm::Forest)
}

/// E18a: BFS wavefront rounds.
pub fn wavefront_rounds(structure: &AmoebotStructure, k: usize) -> u64 {
    let sources = spread(structure, k.max(1));
    let all: Vec<NodeId> = structure.nodes().collect();
    structure_rounds(structure, &sources, &all, StructureAlgorithm::Wavefront)
}

/// E18b: sequential merging rounds.
pub fn sequential_rounds(structure: &AmoebotStructure, k: usize) -> u64 {
    let sources = spread(structure, k.max(1));
    let all: Vec<NodeId> = structure.nodes().collect();
    structure_rounds(
        structure,
        &sources,
        &all,
        StructureAlgorithm::SequentialForest,
    )
}

/// Unvalidated round measurements for the wall-clock benches.
///
/// The checked siblings above run the centralized cross-validation on
/// every call — correct for the experiment tables, but inside a Criterion
/// `b.iter` loop the validation (multi-source BFS + parent-chain walks)
/// would be timed too and can dominate cheap baselines like the
/// wavefront. The bench files therefore call a checked function **once**
/// before the loop and one of these inside it.
pub mod raw {
    use super::*;
    use amoebot_scenarios::run::measure_structure_rounds;

    /// E11 without validation.
    pub fn spt_rounds(structure: &AmoebotStructure, l: usize) -> u64 {
        let (sources, dests) = spt_terminals(structure, l);
        measure_structure_rounds(structure, &sources, &dests, StructureAlgorithm::Spt)
    }

    /// E12 without validation.
    pub fn spsp_rounds(structure: &AmoebotStructure) -> u64 {
        measure_structure_rounds(
            structure,
            &[NodeId(0)],
            &[NodeId((structure.len() - 1) as u32)],
            StructureAlgorithm::Spt,
        )
    }

    /// E13 without validation.
    pub fn sssp_rounds(structure: &AmoebotStructure) -> u64 {
        let all: Vec<NodeId> = structure.nodes().collect();
        measure_structure_rounds(structure, &[NodeId(0)], &all, StructureAlgorithm::Spt)
    }

    /// E17 without validation.
    pub fn forest_rounds(structure: &AmoebotStructure, k: usize) -> u64 {
        let sources = spread(structure, k.max(2));
        let all: Vec<NodeId> = structure.nodes().collect();
        measure_structure_rounds(structure, &sources, &all, StructureAlgorithm::Forest)
    }

    /// E18a without validation.
    pub fn wavefront_rounds(structure: &AmoebotStructure, k: usize) -> u64 {
        let sources = spread(structure, k.max(1));
        let all: Vec<NodeId> = structure.nodes().collect();
        measure_structure_rounds(structure, &sources, &all, StructureAlgorithm::Wavefront)
    }

    /// E18b without validation.
    pub fn sequential_rounds(structure: &AmoebotStructure, k: usize) -> u64 {
        let sources = spread(structure, k.max(1));
        let all: Vec<NodeId> = structure.nodes().collect();
        measure_structure_rounds(
            structure,
            &sources,
            &all,
            StructureAlgorithm::SequentialForest,
        )
    }
}

/// E20 (Theorem 2 substitute): leader election rounds + success flag.
pub fn leader_rounds(n: usize, seed: u64) -> (u64, bool) {
    let result = run_scenario(&ex::e20_leader(n, seed));
    let unique = result
        .checks
        .iter()
        .find(|c| c.name == "leader-unique")
        .map(|c| c.pass)
        .unwrap_or(false);
    (result.rounds, unique)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrappers_agree_with_scenario_engine() {
        assert_eq!(
            pasc_chain_rounds(64),
            run_scenario(&ex::e1_pasc_chain(64)).rounds
        );
        let s = standard_structure(128);
        assert!(sssp_rounds(&s) > 0);
        assert!(forest_rounds(&s, 4) > 0);
        assert!(wavefront_rounds(&s, 4) > 0);
    }

    #[test]
    fn leader_wrapper_reports_uniqueness() {
        let (rounds, _unique) = leader_rounds(64, 3);
        assert!(rounds > 0);
    }
}
