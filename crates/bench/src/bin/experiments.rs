//! Regenerates every experiment table/series of the reproduction
//! (DESIGN.md §3, recorded in EXPERIMENTS.md).
//!
//! Usage: `cargo run --release -p amoebot-bench --bin experiments [--figures]`

use amoebot_bench::*;
use amoebot_grid::{render, shapes, AmoebotStructure, NodeId};
use amoebot_spf::spt::shortest_path_tree;

fn header(id: &str, claim: &str) {
    println!("\n=== {id} — {claim} ===");
}

fn main() {
    let figures = std::env::args().any(|a| a == "--figures");

    header(
        "E1 (Lemma 4)",
        "PASC on chains: 2 rounds/iteration, O(log m)",
    );
    println!(
        "{:>8} {:>8} {:>14} {:>8}",
        "m", "rounds", "2*ceil(log2 m)", "ratio"
    );
    for m in [16usize, 64, 256, 1024, 4096] {
        let r = pasc_chain_rounds(m);
        let pred = 2 * log2_ceil(m as u64);
        println!(
            "{:>8} {:>8} {:>14} {:>8.2}",
            m,
            r,
            pred,
            r as f64 / pred as f64
        );
    }

    header("E2 (Corollary 5)", "PASC on trees: O(log h) rounds");
    println!("{:>8} {:>8} {:>8}", "height", "rounds", "log2 h");
    for levels in [3usize, 5, 7, 9, 11] {
        let r = pasc_tree_rounds(levels);
        println!(
            "{:>8} {:>8} {:>8}",
            levels - 1,
            r,
            log2_ceil((levels - 1) as u64)
        );
    }

    header("E3 (Corollary 6)", "weighted prefix sums: O(log W) rounds");
    println!(
        "{:>8} {:>8} {:>8} {:>14}",
        "m", "W", "rounds", "2*(log2 W + 1)"
    );
    for &(m, w) in &[
        (1024usize, 1usize),
        (1024, 4),
        (1024, 32),
        (1024, 256),
        (1024, 1024),
    ] {
        let r = pasc_prefix_rounds(m, w);
        println!(
            "{:>8} {:>8} {:>8} {:>14}",
            m,
            w,
            r,
            2 * (log2_ceil(w as u64 + 1) + 1)
        );
    }

    header(
        "E4/E5 (Lemmas 14, 20)",
        "ETT root-and-prune: O(log |Q|) rounds",
    );
    println!("{:>8} {:>8} {:>8}", "n", "|Q|", "rounds");
    for &(n, q) in &[
        (512usize, 1usize),
        (512, 8),
        (512, 64),
        (512, 512),
        (4096, 8),
        (4096, 4096),
    ] {
        println!("{:>8} {:>8} {:>8}", n, q, root_prune_rounds(n, q));
    }

    header("E6 (Lemma 21)", "election: O(1) rounds");
    println!("{:>8} {:>8} {:>8}", "n", "|Q|", "rounds");
    for &(n, q) in &[(64usize, 4usize), (512, 32), (4096, 256)] {
        println!("{:>8} {:>8} {:>8}", n, q, election_rounds(n, q));
    }

    header("E7 (Lemma 23)", "Q-centroids: O(log |Q|) rounds");
    println!("{:>8} {:>8} {:>8}", "n", "|Q|", "rounds");
    for &(n, q) in &[(256usize, 4usize), (256, 64), (1024, 64), (1024, 1024)] {
        println!("{:>8} {:>8} {:>8}", n, q, centroid_rounds(n, q));
    }

    header("E8 (Corollary 29)", "|A_Q| <= |Q| - 1");
    println!("{:>8} {:>8} {:>12}", "n", "|Q|", "|A_Q|/|Q|");
    for &(n, q) in &[(256usize, 4usize), (256, 16), (1024, 32), (1024, 256)] {
        println!("{:>8} {:>8} {:>12.3}", n, q, augmentation_ratio(n, q));
    }

    header(
        "E9 (Lemmas 30/31)",
        "decomposition: O(log^2 |Q|) rounds, O(log |Q|) depth",
    );
    println!(
        "{:>8} {:>8} {:>8} {:>8} {:>12}",
        "n", "|Q|", "rounds", "levels", "log2^2 |Q|"
    );
    for &(n, q) in &[(128usize, 8usize), (256, 32), (512, 128), (1024, 512)] {
        let (r, lv) = decomposition_stats(n, q);
        let lg = log2_ceil(q as u64).max(1);
        println!("{:>8} {:>8} {:>8} {:>8} {:>12}", n, q, r, lv, lg * lg);
    }

    header("E11 (Theorem 39)", "SPT: O(log l) rounds, fixed n");
    let s = standard_structure(2048);
    println!("structure: n = {}", s.len());
    println!("{:>8} {:>8} {:>12}", "l", "rounds", "log2 l + 1");
    for l in [1usize, 2, 8, 32, 128, 512, s.len()] {
        println!(
            "{:>8} {:>8} {:>12}",
            l,
            spt_rounds(&s, l),
            log2_ceil(l as u64) + 1
        );
    }

    header("E12 (Theorem 39)", "SPSP: O(1) rounds vs n");
    println!("{:>8} {:>8} {:>8}", "n", "diam", "rounds");
    for nt in [128usize, 512, 2048, 8192] {
        let s = standard_structure(nt);
        println!("{:>8} {:>8} {:>8}", s.len(), "-", spsp_rounds(&s));
    }

    header("E13 (Theorem 39)", "SSSP: O(log n) rounds");
    println!("{:>8} {:>8} {:>10}", "n", "rounds", "log2 n");
    for nt in [128usize, 512, 2048, 8192] {
        let s = standard_structure(nt);
        println!(
            "{:>8} {:>8} {:>10}",
            s.len(),
            sssp_rounds(&s),
            log2_ceil(s.len() as u64)
        );
    }

    header("E14 (Lemma 40)", "line algorithm: O(log n) rounds");
    println!("{:>8} {:>8} {:>8}", "n", "k", "rounds");
    for &(n, k) in &[(64usize, 1usize), (64, 8), (512, 8), (4096, 8), (4096, 512)] {
        println!("{:>8} {:>8} {:>8}", n, k, line_rounds(n, k));
    }

    header("E17 (Theorem 56)", "forest: O(log n log^2 k) rounds");
    println!(
        "{:>8} {:>8} {:>8} {:>16}",
        "n", "k", "rounds", "logn*log2k^2"
    );
    for nt in [256usize, 1024, 4096] {
        let s = standard_structure(nt);
        for k in [2usize, 4, 8, 16] {
            let r = forest_rounds(&s, k);
            let pred = log2_ceil(s.len() as u64) * log2_ceil(k as u64).max(1).pow(2);
            println!("{:>8} {:>8} {:>8} {:>16}", s.len(), k, r, pred);
        }
    }

    header("E18 (baselines)", "polylog vs O(diam) and O(k log n)");
    println!(
        "{:>8} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "n", "k", "forest", "seq", "wavefront", "diam"
    );
    for nt in [256usize, 1024, 4096] {
        let s = standard_structure(nt);
        for k in [2usize, 8, 16] {
            println!(
                "{:>8} {:>8} {:>10} {:>10} {:>10} {:>10}",
                s.len(),
                k,
                forest_rounds(&s, k),
                sequential_rounds(&s, k),
                wavefront_rounds(&s, k),
                s.diameter(),
            );
        }
    }

    header(
        "E20 (Theorem 2 substitute)",
        "leader election: O(log n) rounds w.h.p.",
    );
    println!("{:>8} {:>8} {:>10}", "n", "rounds", "success%");
    for n in [16usize, 64, 256, 1024] {
        let mut ok = 0;
        let mut rounds = 0;
        let trials = 20;
        for seed in 0..trials {
            let (r, success) = leader_rounds(n, seed);
            rounds = r;
            if success {
                ok += 1;
            }
        }
        println!(
            "{:>8} {:>8} {:>9.0}%",
            n,
            rounds,
            100.0 * ok as f64 / trials as f64
        );
    }

    if figures {
        header("E19 (figure family)", "worked-figure regeneration");
        // Figure 5-style: shortest path tree on a small structure.
        let s = AmoebotStructure::new(shapes::parallelogram(9, 5)).unwrap();
        let src = NodeId(20);
        let dests = vec![NodeId(0), NodeId(8), NodeId(44)];
        let out = shortest_path_tree(&s, src, &dests);
        println!("\nFigure 5 analog — SPT parents (S = source, arrows = parent):");
        println!(
            "{}",
            render::render_forest(&s, &[src], &dests, &out.parents)
        );
        // Figure 2-style: portals of a blob.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let blob = AmoebotStructure::new(shapes::random_blob(40, &mut rng)).unwrap();
        let (portal_of, _) = blob.portals(amoebot_grid::Axis::X);
        println!("Figure 2 analog — x-portal ids (mod 10):");
        println!(
            "{}",
            render::render_structure(&blob, |v| {
                char::from_digit(portal_of[v.index()] % 10, 10).unwrap()
            })
        );
    }
    println!("\nAll experiment tables regenerated.");
}
