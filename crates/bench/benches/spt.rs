//! Criterion benches for E11–E14: shortest path trees (SPT / SPSP / SSSP)
//! and the line algorithm.

use amoebot_bench::{line_rounds, raw, spsp_rounds, spt_rounds, sssp_rounds, standard_structure};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_spt(c: &mut Criterion) {
    let s = standard_structure(512);
    let mut g = c.benchmark_group("spt_by_l");
    for l in [1usize, 16, 256] {
        // Validate once outside the timed loop; iterate the raw simulator.
        spt_rounds(&s, l);
        g.bench_with_input(BenchmarkId::from_parameter(l), &l, |b, &l| {
            b.iter(|| raw::spt_rounds(&s, l))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("spsp_by_n");
    for nt in [128usize, 512, 2048] {
        let s = standard_structure(nt);
        spsp_rounds(&s);
        g.bench_with_input(BenchmarkId::from_parameter(s.len()), &s, |b, s| {
            b.iter(|| raw::spsp_rounds(s))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("sssp_by_n");
    for nt in [128usize, 512, 2048] {
        let s = standard_structure(nt);
        sssp_rounds(&s);
        g.bench_with_input(BenchmarkId::from_parameter(s.len()), &s, |b, s| {
            b.iter(|| raw::sssp_rounds(s))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("line");
    for n in [256usize, 2048] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| line_rounds(n, 8))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_spt
}
criterion_main!(benches);
