//! Criterion benches for E17–E18, E20: the divide & conquer forest vs the
//! baselines, plus leader election.

use amoebot_bench::{
    forest_rounds, leader_rounds, raw, sequential_rounds, standard_structure, wavefront_rounds,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_forest(c: &mut Criterion) {
    let s = standard_structure(512);
    let mut g = c.benchmark_group("forest_by_k");
    for k in [2usize, 4, 8] {
        // Validate once outside the timed loop; iterate the raw simulator.
        forest_rounds(&s, k);
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| raw::forest_rounds(&s, k))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("baseline_sequential_by_k");
    for k in [2usize, 8] {
        sequential_rounds(&s, k);
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| raw::sequential_rounds(&s, k))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("baseline_wavefront_by_n");
    for nt in [512usize, 4096] {
        let s = standard_structure(nt);
        wavefront_rounds(&s, 4);
        g.bench_with_input(BenchmarkId::from_parameter(s.len()), &s, |b, s| {
            b.iter(|| raw::wavefront_rounds(s, 4))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("leader_election");
    for n in [64usize, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                leader_rounds(n, seed)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_forest
}
criterion_main!(benches);
