//! Criterion benches for E1–E3: the PASC programs (wall-clock of the exact
//! round-faithful simulation; round counts are printed by `experiments`).

use amoebot_bench::{pasc_chain_rounds, pasc_prefix_rounds, pasc_tree_rounds};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_pasc(c: &mut Criterion) {
    let mut g = c.benchmark_group("pasc_chain");
    for m in [64usize, 256, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            b.iter(|| pasc_chain_rounds(m))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("pasc_tree");
    for levels in [5usize, 8, 11] {
        g.bench_with_input(BenchmarkId::from_parameter(levels), &levels, |b, &l| {
            b.iter(|| pasc_tree_rounds(l))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("pasc_prefix");
    for w in [4usize, 64, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(w), &w, |b, &w| {
            b.iter(|| pasc_prefix_rounds(1024, w))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pasc
}
criterion_main!(benches);
