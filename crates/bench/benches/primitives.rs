//! Criterion benches for E4–E9: ETT, root-and-prune, election, centroids,
//! centroid decomposition.

use amoebot_bench::{centroid_rounds, decomposition_stats, election_rounds, root_prune_rounds};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("root_prune");
    for q in [8usize, 64, 512] {
        g.bench_with_input(BenchmarkId::from_parameter(q), &q, |b, &q| {
            b.iter(|| root_prune_rounds(512, q))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("election");
    for n in [64usize, 512] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| election_rounds(n, n / 8))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("centroid");
    for q in [16usize, 256] {
        g.bench_with_input(BenchmarkId::from_parameter(q), &q, |b, &q| {
            b.iter(|| centroid_rounds(512, q))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("decomposition");
    for q in [16usize, 128] {
        g.bench_with_input(BenchmarkId::from_parameter(q), &q, |b, &q| {
            b.iter(|| decomposition_stats(256, q))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_primitives
}
criterion_main!(benches);
