//! Criterion bench for the dynamic-structure subsystem: runtime churn
//! through the incremental editor/engine pair against the
//! rebuild-per-event strategy.
//!
//! Workload: a 100k-node structure, four churn events per iteration, each
//! targeting 1% of the nodes (grow-then-shrink alternation; events
//! under-fill where the blob's boundary runs out of legal candidates —
//! identically in both arms, so the comparison isolates the engine
//! strategy). The pin configuration stays singleton, the realistic
//! sparse-circuit regime where a churn event dirties only the circuits at
//! the edited boundary:
//!
//! * **incremental**: the churn ops splice the live world and the next
//!   tick region-relabels O(k · deg) — the path `DynamicWorld` ships;
//! * **rebuild**: after every event the world is rebuilt from a dense
//!   snapshot (`DynamicWorld::rebuild`: snapshot + `World::new` + config
//!   copy) and the rebuilt world ticks — the O(n)-per-event strategy the
//!   subsystem replaces. The acceptance target is the incremental arm
//!   ≥ 10× faster at this scale.

use amoebot_bench::standard_structure;
use amoebot_dynamics::{ChurnFamily, ChurnPlan, DynamicWorld};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const EVENTS_PER_ITER: usize = 4;

fn bench_churn_ticks(c: &mut Criterion) {
    let s = standard_structure(100_000);
    let n = s.len();
    let per_event = n / 100; // 1% churn target per event
    let base = DynamicWorld::new(&s, 2);
    // A long alternating schedule; each iteration consumes the next
    // EVENTS_PER_ITER events (wrapping), so the structure keeps churning
    // instead of replaying one event.
    let plan = ChurnPlan::new(42, ChurnFamily::GrowShrink, 1 << 20, per_event);

    let mut g = c.benchmark_group("churn_ticks");
    g.bench_with_input(BenchmarkId::new("incremental", n), &base, |b, base| {
        let mut dw = base.clone();
        dw.world_mut().tick(); // prime the labeling outside the timed region
        let mut event = 0usize;
        b.iter(|| {
            for _ in 0..EVENTS_PER_ITER {
                plan.apply(&mut dw, event % plan.events);
                event += 1;
                let origin = dw.editor().live_ids()[0] as usize;
                let pset = dw.world().pin_config(origin, 0, 0);
                dw.world_mut().beep(origin, pset);
                dw.world_mut().tick();
            }
            dw.world().rounds()
        })
    });
    g.bench_with_input(BenchmarkId::new("rebuild", n), &base, |b, base| {
        let mut dw = base.clone();
        let mut event = 0usize;
        let mut rounds = 0u64;
        b.iter(|| {
            for _ in 0..EVENTS_PER_ITER {
                plan.apply(&mut dw, event % plan.events);
                event += 1;
                // Rebuild-per-event: dense snapshot, fresh world, copied
                // configuration, then the same probe round.
                let (_, mut world, map) = dw.rebuild();
                let origin = dw.editor().live_ids()[0] as usize;
                let dense = map[origin].expect("live id maps densely").index();
                let pset = world.pin_config(dense, 0, 0);
                world.beep(dense, pset);
                world.tick();
                rounds += world.rounds();
            }
            rounds
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_churn_ticks
}
criterion_main!(benches);
