//! Criterion benches for the incremental circuit engine: `World::tick`
//! against the pre-refactor full-recompute `World::tick_reference`.
//!
//! Two workload shapes on a ≥1k-node structure:
//!
//! * **broadcast-heavy**: a fixed global configuration, several
//!   consecutive no-reconfiguration ticks per iteration — the steady
//!   state where the incremental engine reuses its cached labeling.
//! * **reconfiguration-heavy**: every round a slice of nodes regroups
//!   its pins, so both engines relabel every tick; measures the
//!   precomputed link table against per-node neighbor collection.

use amoebot_bench::standard_structure;
use amoebot_circuits::{Topology, World};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const STEADY_TICKS: usize = 8;

fn big_world(n_target: usize, c: usize) -> World {
    let s = standard_structure(n_target);
    assert!(s.len() >= 1000, "bench structure must have >= 1k nodes");
    let mut w = World::new(Topology::from_structure(&s), c);
    for v in 0..w.topology().len() {
        w.global_pin_config(v);
    }
    w
}

fn bench_circuit_engine(c: &mut Criterion) {
    let world = big_world(1024, 2);
    let n = world.topology().len();

    // Broadcast-heavy: STEADY_TICKS consecutive ticks on an unchanged
    // configuration, one beep per round.
    let mut g = c.benchmark_group("steady_broadcast_ticks");
    g.bench_with_input(BenchmarkId::new("incremental", n), &world, |b, world| {
        let mut w = world.clone();
        w.tick(); // prime the cached labeling outside the timed region
        b.iter(|| {
            for round in 0..STEADY_TICKS {
                w.beep(round % n, 0);
                w.tick();
            }
            w.rounds()
        })
    });
    g.bench_with_input(BenchmarkId::new("reference", n), &world, |b, world| {
        let mut w = world.clone();
        b.iter(|| {
            for round in 0..STEADY_TICKS {
                w.beep(round % n, 0);
                w.tick_reference();
            }
            w.rounds()
        })
    });
    g.finish();

    // Reconfiguration-heavy: every round, 1/8 of the nodes flip between
    // the split (singleton) and global configurations, forcing a relabel.
    let mut g = c.benchmark_group("reconfig_ticks");
    g.bench_with_input(BenchmarkId::new("incremental", n), &world, |b, world| {
        let mut w = world.clone();
        b.iter(|| {
            for round in 0..STEADY_TICKS {
                for v in (round % 8..n).step_by(8) {
                    if round % 2 == 0 {
                        w.singleton_pin_config(v);
                    } else {
                        w.global_pin_config(v);
                    }
                }
                w.beep(round % n, 0);
                w.tick();
            }
            w.rounds()
        })
    });
    g.bench_with_input(BenchmarkId::new("reference", n), &world, |b, world| {
        let mut w = world.clone();
        b.iter(|| {
            for round in 0..STEADY_TICKS {
                for v in (round % 8..n).step_by(8) {
                    if round % 2 == 0 {
                        w.singleton_pin_config(v);
                    } else {
                        w.global_pin_config(v);
                    }
                }
                w.beep(round % n, 0);
                w.tick_reference();
            }
            w.rounds()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_circuit_engine
}
criterion_main!(benches);
