//! Criterion benches for the incremental circuit engine: `World::tick`
//! against the pre-refactor full-recompute `World::tick_reference`.
//!
//! Three workload shapes:
//!
//! * **broadcast-heavy** (≥1k nodes): a fixed global configuration,
//!   several consecutive no-reconfiguration ticks per iteration — the
//!   steady state where the incremental engine reuses its cached
//!   labeling.
//! * **reconfiguration-heavy** (≥1k nodes): every round 1/8 of the nodes
//!   flip between the split and global configurations — a fat dirty
//!   region every tick (historically a forced global relabel; the
//!   region-scoped engine now contains it to the affected circuits).
//! * **sparse-reconfig** (100k nodes, 1% dirty per round): the
//!   region-scoped relabel's home turf — the dirty region stays a sliver
//!   of the structure, so the incremental engine relabels O(affected
//!   circuits) while the reference pays the full O(pins) recompute. The
//!   perf target pinned by ISSUE 4 is ≥10× here.
//!
//! The broadcast-heavy group also measures `tick_faulted` with an empty
//! fault set next to plain `tick`: the adversary engine's unarmed path
//! must stay within the workspace's 25% perf gate of the plain tick
//! (the `FAULTED` const generic monomorphizes the fault checks away).
//! A fourth case, `flight_armed`, runs the same steady ticks with a
//! [`FlightRecorder`] attached — the always-on black box the scenario
//! runner now arms by default. Its budget is tighter than the CI gate:
//! the observability plane promises ≤5% overhead over plain `tick`
//! (ring pushes are bounds-checked writes into a preallocated buffer,
//! no allocation, no I/O). Compare `flight_armed` against `incremental`
//! in the criterion report to audit that promise.

use amoebot_bench::standard_structure;
use amoebot_circuits::{TickFaults, Topology, World};
use amoebot_telemetry::{FlightRecorder, NullRecorder};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const STEADY_TICKS: usize = 8;

fn big_world(n_target: usize, c: usize) -> World {
    let s = standard_structure(n_target);
    assert!(s.len() >= 1000, "bench structure must have >= 1k nodes");
    let mut w = World::new(Topology::from_structure(&s), c);
    for v in 0..w.topology().len() {
        w.global_pin_config(v);
    }
    w
}

fn bench_circuit_engine(c: &mut Criterion) {
    let world = big_world(1024, 2);
    let n = world.topology().len();

    // Broadcast-heavy: STEADY_TICKS consecutive ticks on an unchanged
    // configuration, one beep per round.
    let mut g = c.benchmark_group("steady_broadcast_ticks");
    g.bench_with_input(BenchmarkId::new("incremental", n), &world, |b, world| {
        let mut w = world.clone();
        w.tick(); // prime the cached labeling outside the timed region
        b.iter(|| {
            for round in 0..STEADY_TICKS {
                w.beep(round % n, 0);
                w.tick();
            }
            w.rounds()
        })
    });
    g.bench_with_input(BenchmarkId::new("reference", n), &world, |b, world| {
        let mut w = world.clone();
        b.iter(|| {
            for round in 0..STEADY_TICKS {
                w.beep(round % n, 0);
                w.tick_reference();
            }
            w.rounds()
        })
    });
    // The unarmed adversary path: an empty fault set must cost the same
    // as plain `tick` (within the 25% gate).
    g.bench_with_input(
        BenchmarkId::new("faulted_unarmed", n),
        &world,
        |b, world| {
            let mut w = world.clone();
            w.tick();
            b.iter(|| {
                for round in 0..STEADY_TICKS {
                    w.beep(round % n, 0);
                    w.tick_faulted(&TickFaults::EMPTY, &mut NullRecorder);
                }
                w.rounds()
            })
        },
    );
    // The armed flight recorder: same steady ticks, every event pushed
    // into the preallocated ring. Must stay within 5% of `incremental`.
    g.bench_with_input(BenchmarkId::new("flight_armed", n), &world, |b, world| {
        let mut w = world.clone();
        w.tick();
        let mut flight = FlightRecorder::default();
        b.iter(|| {
            for round in 0..STEADY_TICKS {
                w.beep(round % n, 0);
                w.tick_faulted(&TickFaults::EMPTY, &mut flight);
            }
            w.rounds()
        })
    });
    g.finish();

    // Reconfiguration-heavy: every round, 1/8 of the nodes flip between
    // the split (singleton) and global configurations, forcing a relabel.
    let mut g = c.benchmark_group("reconfig_ticks");
    g.bench_with_input(BenchmarkId::new("incremental", n), &world, |b, world| {
        let mut w = world.clone();
        b.iter(|| {
            for round in 0..STEADY_TICKS {
                for v in (round % 8..n).step_by(8) {
                    if round % 2 == 0 {
                        w.singleton_pin_config(v);
                    } else {
                        w.global_pin_config(v);
                    }
                }
                w.beep(round % n, 0);
                w.tick();
            }
            w.rounds()
        })
    });
    g.bench_with_input(BenchmarkId::new("reference", n), &world, |b, world| {
        let mut w = world.clone();
        b.iter(|| {
            for round in 0..STEADY_TICKS {
                for v in (round % 8..n).step_by(8) {
                    if round % 2 == 0 {
                        w.singleton_pin_config(v);
                    } else {
                        w.global_pin_config(v);
                    }
                }
                w.beep(round % n, 0);
                w.tick_reference();
            }
            w.rounds()
        })
    });
    g.finish();

    // Sparse reconfiguration at scale: 100k nodes, 1% of them regroup a
    // pin pair each round. The base configuration stays singleton so
    // circuits (and therefore dirty regions) stay local; the touched
    // nodes toggle between bridging their first two link-0 pins and the
    // singleton split, which dirties exactly two small circuits per node.
    let s = standard_structure(100_000);
    let n = s.len();
    let mut sparse_world = World::new(Topology::from_structure(&s), 2);
    sparse_world.tick(); // prime the labeling outside the timed region
    let k = n / 100;
    let mut g = c.benchmark_group("sparse_reconfig_ticks");
    g.bench_with_input(
        BenchmarkId::new("incremental", n),
        &sparse_world,
        |b, world| {
            let mut w = world.clone();
            b.iter(|| {
                for round in 0..STEADY_TICKS {
                    for i in 0..k {
                        let v = (i * 97 + round * 31) % n;
                        if round % 2 == 0 {
                            let merged = w.group_pins(v, &[(0, 0), (1, 0)]);
                            w.beep(v, merged);
                        } else {
                            w.singleton_pin_config(v);
                        }
                    }
                    w.tick();
                }
                w.rounds()
            })
        },
    );
    g.bench_with_input(
        BenchmarkId::new("reference", n),
        &sparse_world,
        |b, world| {
            let mut w = world.clone();
            b.iter(|| {
                for round in 0..STEADY_TICKS {
                    for i in 0..k {
                        let v = (i * 97 + round * 31) % n;
                        if round % 2 == 0 {
                            let merged = w.group_pins(v, &[(0, 0), (1, 0)]);
                            w.beep(v, merged);
                        } else {
                            w.singleton_pin_config(v);
                        }
                    }
                    w.tick_reference();
                }
                w.rounds()
            })
        },
    );
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_circuit_engine
}
criterion_main!(benches);
