//! Property coverage for the binary trace codec: encode→decode identity
//! over randomized event streams, truncated-input error paths, and
//! version-tag rejection.

use amoebot_telemetry::{
    mix64, Recorder, RelabelKind, RoundSummary, TraceError, TraceEvent, TraceReader, TraceWriter,
    TRACE_VERSION,
};
use proptest::prelude::*;

/// Derives a deterministic pseudo-random event stream from one seed and
/// returns `(expected events, encoded blob)`. Every event family is
/// exercised; field values span the varint width spectrum (single-byte
/// through full u64 digests).
fn synthesize(seed: u64, events: usize) -> (Vec<TraceEvent>, Vec<u8>) {
    let mut w = TraceWriter::new();
    let rand = |i: u64| mix64(seed.wrapping_add(i.wrapping_mul(0x9E37_79B9)));
    let n = 2 + (rand(0) % 5) as usize;
    let ports: Vec<u32> = (0..n)
        .map(|i| 1 + (rand(i as u64 + 1) % 6) as u32)
        .collect();
    let edges: Vec<(u32, u32, u32, u32)> = (1..n as u32)
        .map(|v| {
            (
                v - 1,
                rand(v as u64) as u32 % 6,
                v,
                rand(v as u64 + 77) as u32 % 6,
            )
        })
        .collect();
    let c = 1 + (rand(99) % 4) as u32;
    w.topology(c, &ports, &edges);

    let mut expected = Vec::new();
    let mut round = 0u64;
    for i in 0..events {
        let r = rand(1000 + i as u64);
        let ev = match r % 12 {
            0 => TraceEvent::ConfigDelta {
                gid: (r >> 8) as u32,
                pset: (r >> 40) as u16,
            },
            1 => TraceEvent::Beep {
                gid: (r >> 8) as u32,
            },
            2 => TraceEvent::AddNode {
                ports: (r >> 8) as u32 % 7,
            },
            3 => TraceEvent::Connect {
                v: (r >> 8) as u32,
                p: (r >> 16) as u32 % 6,
                w: (r >> 24) as u32,
                q: (r >> 32) as u32 % 6,
            },
            4 => TraceEvent::Disconnect {
                v: (r >> 8) as u32,
                p: (r >> 16) as u32 % 6,
            },
            5 => TraceEvent::Isolate { v: (r >> 8) as u32 },
            6 => TraceEvent::ChurnTag {
                index: i as u32,
                inserted: (r >> 8) as u32 % 100,
                removed: (r >> 16) as u32 % 100,
            },
            7 => TraceEvent::FaultDrop {
                gid: (r >> 8) as u32,
            },
            8 => TraceEvent::FaultInject {
                gid: (r >> 8) as u32,
            },
            9 => TraceEvent::FaultTag {
                index: i as u32,
                dropped: (r >> 8) as u32 % 100,
                injected: (r >> 16) as u32 % 100,
                disabled: (r >> 24) as u32 % 100,
                wiped: (r >> 32) as u32 % 100,
            },
            10 => TraceEvent::FlightKey {
                plan_seed: mix64(r),
                scenario_seed: r >> 8,
                event: (r >> 48) & 0xFF,
            },
            _ => {
                round += 1;
                TraceEvent::RoundEnd(RoundSummary {
                    round,
                    beeps: (r >> 8) as u32,
                    delivered: r >> 16,
                    digest: mix64(r),
                    relabel: RelabelKind::from_code((r % 3) as u8).unwrap(),
                    circuits: r >> 32,
                })
            }
        };
        match ev {
            TraceEvent::ConfigDelta { gid, pset } => w.config_delta(gid, pset),
            TraceEvent::Beep { gid } => w.beep(gid),
            TraceEvent::AddNode { ports } => w.add_node(ports),
            TraceEvent::Connect { v, p, w: ww, q } => w.connect(v, p, ww, q),
            TraceEvent::Disconnect { v, p } => w.disconnect(v, p),
            TraceEvent::Isolate { v } => w.isolate(v),
            TraceEvent::ChurnTag {
                index,
                inserted,
                removed,
            } => w.churn_tag(index, inserted, removed),
            TraceEvent::FaultDrop { gid } => w.beep_dropped(gid),
            TraceEvent::FaultInject { gid } => w.beep_injected(gid),
            TraceEvent::FaultTag {
                index,
                dropped,
                injected,
                disabled,
                wiped,
            } => w.fault_tag(index, dropped, injected, disabled, wiped),
            TraceEvent::FlightKey {
                plan_seed,
                scenario_seed,
                event,
            } => w.flight_key(plan_seed, scenario_seed, event),
            TraceEvent::RoundEnd(ref s) => w.round_end(s),
        }
        expected.push(ev);
    }
    let blob = w.finish(rand(31337));
    (expected, blob)
}

fn decode_all(blob: &[u8]) -> Result<Vec<TraceEvent>, TraceError> {
    let mut r = TraceReader::open(blob)?;
    let mut out = Vec::new();
    while let Some(ev) = r.next_event()? {
        out.push(ev);
    }
    Ok(out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Encode→decode is the identity on the event stream, and the footer
    /// carries the exact round count.
    #[test]
    fn codec_round_trips(seed in 0u64..1_000_000, events in 0usize..120) {
        let (expected, blob) = synthesize(seed, events);
        let mut r = TraceReader::open(&blob).unwrap();
        let mut decoded = Vec::new();
        while let Some(ev) = r.next_event().unwrap() {
            decoded.push(ev);
        }
        prop_assert_eq!(&decoded, &expected);
        let rounds = expected
            .iter()
            .filter(|e| matches!(e, TraceEvent::RoundEnd(_)))
            .count() as u64;
        prop_assert_eq!(r.footer().unwrap().rounds, rounds);
    }

    /// Every strict prefix of a valid trace fails to decode — with an
    /// error, never a panic, never a silent success.
    #[test]
    fn truncation_always_errors(seed in 0u64..1_000_000, cut_salt in 0u64..10_000) {
        let (_, blob) = synthesize(seed, 24);
        let cut = (mix64(cut_salt) % blob.len() as u64) as usize;
        prop_assert!(
            decode_all(&blob[..cut]).is_err(),
            "prefix of {} / {} bytes decoded cleanly",
            cut,
            blob.len()
        );
    }

    /// Any version tag other than the current one is rejected at open.
    #[test]
    fn foreign_versions_are_rejected(version in 0u64..128) {
        if version == TRACE_VERSION as u64 {
            return;
        }
        let (_, mut blob) = synthesize(7, 4);
        blob[4] = version as u8; // single-byte varint slot
        match TraceReader::open(&blob) {
            Err(TraceError::BadVersion(v)) => prop_assert_eq!(v as u64, version),
            other => prop_assert!(false, "expected BadVersion, got {:?}", other.err()),
        }
    }
}
