//! The [`Recorder`] trait: the event sink the engine's hot paths emit
//! into, designed so that the no-op implementation compiles to nothing.
//!
//! Three associated consts gate the cost classes independently:
//!
//! * [`Recorder::TRACE`] — per-event emission (beeps, structure edits,
//!   churn/fault tags, round summaries). Emission sites are written
//!   `if R::TRACE { rec.event(...) }`, so with [`NullRecorder`] the
//!   branch folds away at monomorphization.
//! * [`Recorder::REPLAY`] — replay-grade detail on top of `TRACE`: the
//!   per-pin config-delta stream and the round delivery digests. These
//!   are what makes a trace re-verifiable, but they cost O(dirty pins)
//!   emissions + O(delivered) digest mixing per reconfigured tick —
//!   ruinous for an *always-on* sink on relabel-heavy workloads. The
//!   flight recorder keeps `REPLAY = false` (its records are windows,
//!   not replayable runs); `TraceWriter` keeps it `true`. Defaults to
//!   `true` so `TRACE` alone means "full detail".
//! * [`Recorder::TIMED`] — phase timers on the tick and relabel paths.
//!   Each timer costs two `Instant::now()` per phase, which matters both
//!   at millions of clean ticks per second and on sparse region relabels
//!   whose whole body runs in sub-microsecond time, so every timer is
//!   gated here. [`TimedRecorder`] turns them on without recording.

/// Which relabel flavor a round's refresh took.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RelabelKind {
    /// The cached labeling was reused untouched.
    #[default]
    None,
    /// A region-scoped relabel ran.
    Region,
    /// A global relabel ran.
    Global,
}

impl RelabelKind {
    /// Stable wire encoding.
    pub fn code(self) -> u8 {
        match self {
            RelabelKind::None => 0,
            RelabelKind::Region => 1,
            RelabelKind::Global => 2,
        }
    }

    /// Decodes [`RelabelKind::code`]; `None` for unknown bytes.
    pub fn from_code(code: u8) -> Option<RelabelKind> {
        match code {
            0 => Some(RelabelKind::None),
            1 => Some(RelabelKind::Region),
            2 => Some(RelabelKind::Global),
            _ => None,
        }
    }
}

/// What one simulated round did, in replay-verifiable form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundSummary {
    /// The engine's round counter after this tick.
    pub round: u64,
    /// Distinct partition-set gids that beeped into this tick.
    pub beeps: u32,
    /// Number of partition sets the beeps were delivered to.
    pub delivered: u64,
    /// Order-independent round digest: XOR of [`mix64`]`(gid)` over
    /// every delivered gid, further XORed with
    /// [`mix64`]`(gid ^ `[`BEEP_DIGEST_SALT`]`)` over every beeping gid.
    /// Replay recomputes it from the live engine's labeling without
    /// materializing the delivery set. The salted beep term pins down
    /// *which* partition set beeped — without it, a corrupted beep gid
    /// landing on another member of the same circuit would deliver
    /// identically and slip through.
    pub digest: u64,
    /// Which relabel flavor this tick's refresh took.
    pub relabel: RelabelKind,
    /// Distinct circuits under the labeling this tick delivered on.
    pub circuits: u64,
}

/// The engine event sink. All sinks have empty defaults; implementors
/// override what they care about. See the module docs for the gating
/// contract.
pub trait Recorder {
    /// Whether event emission is live (see module docs).
    const TRACE: bool;
    /// Whether per-tick phase timers are live (see module docs).
    const TIMED: bool;
    /// Whether replay-grade detail (config deltas, round digests) is
    /// emitted too; only consulted when [`Recorder::TRACE`] is on (see
    /// module docs).
    const REPLAY: bool = true;

    /// The world this recording starts from: links per edge, per-node
    /// port counts, and every edge as `(v, p, w, q)`. Emitted once,
    /// before any other event.
    fn topology(&mut self, _c: u32, _node_ports: &[u32], _edges: &[(u32, u32, u32, u32)]) {}

    /// Pin `gid`'s partition set changed to `pset` since the last tick
    /// (the net change; intermediate writes are not observable).
    fn config_delta(&mut self, _gid: u32, _pset: u16) {}

    /// Partition-set `gid` beeped into the upcoming tick.
    fn beep(&mut self, _gid: u32) {}

    /// A node with `ports` port slots was appended.
    fn add_node(&mut self, _ports: u32) {}

    /// An edge `(v, p)`–`(w, q)` was wired.
    fn connect(&mut self, _v: u32, _p: u32, _w: u32, _q: u32) {}

    /// The edge behind port `p` of `v` was severed.
    fn disconnect(&mut self, _v: u32, _p: u32) {}

    /// Node `v` was isolated (all edges severed, pins reset to
    /// singletons).
    fn isolate(&mut self, _v: u32) {}

    /// Churn event `index` applied `inserted` joins and `removed` leaves.
    fn churn_tag(&mut self, _index: u32, _inserted: u32, _removed: u32) {}

    /// The adversary suppressed a beep that partition-set `gid` sent
    /// into the upcoming tick (the send is still recorded via
    /// [`Recorder::beep`]; this marks it undelivered).
    fn beep_dropped(&mut self, _gid: u32) {}

    /// The adversary spuriously injected a beep on partition-set `gid`
    /// into the upcoming tick (also recorded via [`Recorder::beep`];
    /// this attributes it to the fault plan rather than the algorithm).
    fn beep_injected(&mut self, _gid: u32) {}

    /// Fault event `index` staged `dropped` beep suppressions,
    /// `injected` spurious beeps, `disabled` node activations withheld
    /// and `wiped` crash-recovery state wipes.
    fn fault_tag(
        &mut self,
        _index: u32,
        _dropped: u32,
        _injected: u32,
        _disabled: u32,
        _wiped: u32,
    ) {
    }

    /// One tick completed.
    fn round_end(&mut self, _summary: &RoundSummary) {}
}

/// The no-op recorder: every emission site compiles away.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    const TRACE: bool = false;
    const TIMED: bool = false;
}

/// Phase timers on, event emission off — what a `--metrics-json` run
/// uses: full per-phase timing without paying for trace digests.
#[derive(Debug, Clone, Copy, Default)]
pub struct TimedRecorder;

impl Recorder for TimedRecorder {
    const TRACE: bool = false;
    const TIMED: bool = true;
}

/// Salt XORed into a beeping gid before mixing it into the round digest
/// (see [`RoundSummary::digest`]), keeping the beep terms disjoint from
/// the delivery terms of the same gid.
pub const BEEP_DIGEST_SALT: u64 = 0xB5EE_7D16_E571_AC3D;

/// SplitMix64 finalizer: the mixing function behind the delivery digest.
/// Gid sets are XOR-combined after mixing, so the digest is independent
/// of delivery order but sensitive to any membership difference.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relabel_kind_codes_round_trip() {
        for k in [RelabelKind::None, RelabelKind::Region, RelabelKind::Global] {
            assert_eq!(RelabelKind::from_code(k.code()), Some(k));
        }
        assert_eq!(RelabelKind::from_code(3), None);
    }

    #[test]
    fn null_recorder_is_inert_and_inactive() {
        let mut r = NullRecorder;
        r.beep(3);
        r.round_end(&RoundSummary::default());
        const {
            assert!(!NullRecorder::TRACE && !NullRecorder::TIMED);
            assert!(!TimedRecorder::TRACE && TimedRecorder::TIMED);
        }
    }

    #[test]
    fn mix64_separates_membership() {
        // XOR of mixed gids distinguishes sets that plain XOR confuses:
        // {0, 3} vs {1, 2} collide unmixed (0^3 == 1^2) but not mixed.
        assert_ne!(mix64(0) ^ mix64(3), mix64(1) ^ mix64(2));
    }
}
