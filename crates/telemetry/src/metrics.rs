//! The metrics registry: named counters, gauges and log2-bucket
//! histograms, plus RAII span timers.
//!
//! A [`Metrics`] is owned by one engine and mutated through interior
//! mutability ([`std::cell::Cell`]), so hot paths can bump a counter or
//! observe a sample through a shared reference while the engine holds
//! `&mut self` on its own state — no locks, no borrow contortions. The
//! registry is `Clone` (a snapshot) and mergeable by name, which is how a
//! batch runner aggregates per-scenario registries into one report.
//!
//! Registration is name-idempotent and returns a dense handle
//! ([`CounterId`], [`GaugeId`], [`TimerId`]); the hot-path operations are
//! a single bounds-checked index plus a `Cell` read-modify-write.
//! Rendering is left to the caller: [`Metrics::counters_sorted`] /
//! [`Metrics::timers_sorted`] expose deterministic (name-sorted) views.

use std::cell::Cell;
use std::time::Instant;

/// Handle of a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(u32);

/// Handle of a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(u32);

/// Handle of a registered timer (log2-bucket histogram of microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerId(u32);

/// Number of log2 buckets: bucket `b` holds values `v` with
/// `bit_length(v) == b` (bucket 0 holds only `v == 0`), so `u64::MAX`
/// lands in bucket 64.
pub const BUCKETS: usize = 65;

/// One histogram: count / sum / min / max plus log2 buckets.
#[derive(Debug, Clone)]
struct Hist {
    count: Cell<u64>,
    sum: Cell<u64>,
    min: Cell<u64>,
    max: Cell<u64>,
    buckets: [Cell<u64>; BUCKETS],
}

impl Default for Hist {
    fn default() -> Hist {
        Hist {
            count: Cell::new(0),
            sum: Cell::new(0),
            min: Cell::new(u64::MAX),
            max: Cell::new(0),
            buckets: std::array::from_fn(|_| Cell::new(0)),
        }
    }
}

impl Hist {
    fn observe(&self, v: u64) {
        self.count.set(self.count.get() + 1);
        self.sum.set(self.sum.get().saturating_add(v));
        self.min.set(self.min.get().min(v));
        self.max.set(self.max.get().max(v));
        let b = (64 - v.leading_zeros()) as usize;
        self.buckets[b].set(self.buckets[b].get() + 1);
    }

    fn absorb(&self, other: &Hist) {
        if other.count.get() == 0 {
            return;
        }
        self.count.set(self.count.get() + other.count.get());
        self.sum.set(self.sum.get().saturating_add(other.sum.get()));
        self.min.set(self.min.get().min(other.min.get()));
        self.max.set(self.max.get().max(other.max.get()));
        for b in 0..BUCKETS {
            self.buckets[b].set(self.buckets[b].get() + other.buckets[b].get());
        }
    }

    fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count.get(),
            sum: self.sum.get(),
            min: if self.count.get() == 0 {
                0
            } else {
                self.min.get()
            },
            max: self.max.get(),
            p50: self.percentile(50),
            p90: self.percentile(90),
            p99: self.percentile(99),
        }
    }

    /// Estimates the `q`-th percentile (`q` in 1..=100) from the log2
    /// buckets: the bucket holding the target rank is located exactly,
    /// then the estimate interpolates linearly across the bucket's value
    /// range and is clamped to the observed `[min, max]`. The clamp makes
    /// single-sample and single-value histograms exact, and the whole
    /// computation is integer-only, so merged shards estimate identically
    /// regardless of merge order (bucket counts and extrema are
    /// commutative under [`Hist::absorb`]).
    fn percentile(&self, q: u64) -> u64 {
        let count = self.count.get();
        if count == 0 {
            return 0;
        }
        // ceil(count * q / 100), >= 1 — the 1-based target rank.
        let rank = (count as u128 * q as u128).div_ceil(100);
        let rank = rank.max(1);
        let mut below: u128 = 0;
        for b in 0..BUCKETS {
            let n = self.buckets[b].get() as u128;
            if n == 0 {
                continue;
            }
            if below + n >= rank {
                let pos = rank - below; // 1..=n within this bucket
                let lo: u64 = if b == 0 { 0 } else { 1u64 << (b - 1) };
                let hi: u64 = match b {
                    0 => 0,
                    64 => u64::MAX,
                    _ => (1u64 << b) - 1,
                };
                let est = lo as u128 + ((hi - lo) as u128 * pos) / n;
                let est = est.min(u64::MAX as u128) as u64;
                return est.clamp(self.min.get(), self.max.get());
            }
            below += n;
        }
        self.max.get()
    }
}

/// A rendered histogram snapshot (the buckets stay internal; `min`/`max`
/// and the percentile estimates are what the reports consume).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistSummary {
    /// Number of observations.
    pub count: u64,
    /// Saturating sum of all observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Estimated median (0 when empty; exact when all samples share one
    /// value, otherwise interpolated within the target log2 bucket).
    pub p50: u64,
    /// Estimated 90th percentile (same estimation contract as `p50`).
    pub p90: u64,
    /// Estimated 99th percentile (same estimation contract as `p50`).
    pub p99: u64,
}

/// The per-engine metrics registry. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counters: Vec<(&'static str, Cell<u64>)>,
    gauges: Vec<(&'static str, Cell<i64>)>,
    timers: Vec<(&'static str, Hist)>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Whether nothing was ever registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.timers.is_empty()
    }

    /// Registers (or finds) the counter `name` and returns its handle.
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(n, _)| *n == name) {
            return CounterId(i as u32);
        }
        self.counters.push((name, Cell::new(0)));
        CounterId((self.counters.len() - 1) as u32)
    }

    /// Increments a counter by 1.
    #[inline]
    pub fn inc(&self, id: CounterId) {
        self.add(id, 1);
    }

    /// Increments a counter by `n`.
    #[inline]
    pub fn add(&self, id: CounterId, n: u64) {
        let c = &self.counters[id.0 as usize].1;
        c.set(c.get() + n);
    }

    /// Reads a counter by handle.
    #[inline]
    pub fn get(&self, id: CounterId) -> u64 {
        self.counters[id.0 as usize].1.get()
    }

    /// Registers `name` if needed and adds `n` — the cold-path
    /// convenience for call sites without a cached handle.
    pub fn add_named(&mut self, name: &'static str, n: u64) {
        let id = self.counter(name);
        self.add(id, n);
    }

    /// Reads a counter by name (0 when absent).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, c)| c.get())
            .unwrap_or(0)
    }

    /// Registers (or finds) the gauge `name` and returns its handle.
    pub fn gauge(&mut self, name: &'static str) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|(n, _)| *n == name) {
            return GaugeId(i as u32);
        }
        self.gauges.push((name, Cell::new(0)));
        GaugeId((self.gauges.len() - 1) as u32)
    }

    /// Sets a gauge to `v`.
    #[inline]
    pub fn set_gauge(&self, id: GaugeId, v: i64) {
        self.gauges[id.0 as usize].1.set(v);
    }

    /// Reads a gauge by name (0 when absent).
    pub fn gauge_value(&self, name: &str) -> i64 {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, g)| g.get())
            .unwrap_or(0)
    }

    /// Registers (or finds) the timer `name` and returns its handle.
    pub fn timer(&mut self, name: &'static str) -> TimerId {
        if let Some(i) = self.timers.iter().position(|(n, _)| *n == name) {
            return TimerId(i as u32);
        }
        self.timers.push((name, Hist::default()));
        TimerId((self.timers.len() - 1) as u32)
    }

    /// Records one observation (e.g. elapsed microseconds) into a timer.
    #[inline]
    pub fn observe(&self, id: TimerId, v: u64) {
        self.timers[id.0 as usize].1.observe(v);
    }

    /// Starts an RAII span on `id`: when the returned [`Span`] drops, the
    /// elapsed wall microseconds are observed into the timer. For call
    /// sites that need `&mut self` of the owning engine inside the timed
    /// region, use a manual [`Stopwatch`] + [`Metrics::observe`] instead.
    #[inline]
    pub fn span(&self, id: TimerId) -> Span<'_> {
        Span {
            metrics: self,
            id,
            start: Instant::now(),
        }
    }

    /// Reads a timer's summary by name (zeros when absent).
    pub fn timer_summary(&self, name: &str) -> HistSummary {
        self.timers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, h)| h.summary())
            .unwrap_or_default()
    }

    /// All counters, sorted by name — the deterministic render order.
    pub fn counters_sorted(&self) -> Vec<(&'static str, u64)> {
        let mut out: Vec<(&'static str, u64)> =
            self.counters.iter().map(|(n, c)| (*n, c.get())).collect();
        out.sort_unstable_by_key(|&(n, _)| n);
        out
    }

    /// All gauges, sorted by name.
    pub fn gauges_sorted(&self) -> Vec<(&'static str, i64)> {
        let mut out: Vec<(&'static str, i64)> =
            self.gauges.iter().map(|(n, g)| (*n, g.get())).collect();
        out.sort_unstable_by_key(|&(n, _)| n);
        out
    }

    /// All timers, sorted by name.
    pub fn timers_sorted(&self) -> Vec<(&'static str, HistSummary)> {
        let mut out: Vec<(&'static str, HistSummary)> =
            self.timers.iter().map(|(n, h)| (*n, h.summary())).collect();
        out.sort_unstable_by_key(|&(n, _)| n);
        out
    }

    /// Folds `other` into `self`, matching by name: counters add, gauges
    /// take `other`'s last value, histograms absorb bucket-wise. This is
    /// how the batch runner aggregates per-scenario registries.
    pub fn merge(&mut self, other: &Metrics) {
        for (name, c) in &other.counters {
            let id = self.counter(name);
            self.add(id, c.get());
        }
        for (name, g) in &other.gauges {
            let id = self.gauge(name);
            self.set_gauge(id, g.get());
        }
        for (name, h) in &other.timers {
            let id = self.timer(name);
            self.timers[id.0 as usize].1.absorb(h);
        }
    }
}

/// RAII phase timer: observes the elapsed microseconds on drop. Created
/// by [`Metrics::span`].
pub struct Span<'a> {
    metrics: &'a Metrics,
    id: TimerId,
    start: Instant,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.metrics
            .observe(self.id, self.start.elapsed().as_micros() as u64);
    }
}

/// A manual wall-clock stopwatch for timed regions where an RAII borrow
/// of the registry is impossible (the engine mutates itself inside the
/// phase). Pair with [`Metrics::observe`].
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    #[inline]
    pub fn start() -> Stopwatch {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Elapsed wall microseconds since [`Stopwatch::start`].
    #[inline]
    pub fn micros(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_idempotently_and_accumulate() {
        let mut m = Metrics::new();
        let a = m.counter("relabel_region");
        let b = m.counter("relabel_region");
        assert_eq!(a, b);
        m.inc(a);
        m.add(b, 4);
        assert_eq!(m.get(a), 5);
        assert_eq!(m.counter_value("relabel_region"), 5);
        assert_eq!(m.counter_value("missing"), 0);
        m.add_named("late", 2);
        m.add_named("late", 3);
        assert_eq!(m.counter_value("late"), 5);
    }

    #[test]
    fn gauges_hold_the_last_value() {
        let mut m = Metrics::new();
        let g = m.gauge("arena_len");
        m.set_gauge(g, 10);
        m.set_gauge(g, -3);
        assert_eq!(m.gauge_value("arena_len"), -3);
    }

    #[test]
    fn timers_bucket_by_log2_and_track_extrema() {
        let mut m = Metrics::new();
        let t = m.timer("phase");
        for v in [0u64, 1, 2, 3, 1000, u64::MAX] {
            m.observe(t, v);
        }
        let s = m.timer_summary("phase");
        assert_eq!(s.count, 6);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.sum, u64::MAX); // saturated
        assert_eq!(m.timer_summary("missing"), HistSummary::default());
    }

    /// Satellite: percentile estimation at the log2-bucket boundaries —
    /// empty histograms, single samples, and exact powers of two (the
    /// lowest value of their bucket) must all come out exact.
    #[test]
    fn percentiles_are_exact_at_bucket_boundaries() {
        // Empty histogram: all percentiles are 0.
        let mut m = Metrics::new();
        let t = m.timer("t");
        let s = m.timer_summary("t");
        assert_eq!((s.p50, s.p90, s.p99), (0, 0, 0));

        // Single sample: min == max pins every percentile exactly, even
        // though the sample sits at the very bottom of its bucket.
        m.observe(t, 1024);
        let s = m.timer_summary("t");
        assert_eq!((s.p50, s.p90, s.p99), (1024, 1024, 1024));

        // Exact powers of two, one per bucket: every percentile estimate
        // stays inside the observed range and is monotone in q.
        let mut m = Metrics::new();
        let t = m.timer("t");
        for k in 0..16u32 {
            m.observe(t, 1u64 << k);
        }
        let s = m.timer_summary("t");
        assert!(s.p50 >= s.min && s.p99 <= s.max);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99);
        // p99 of 16 samples is the largest one: rank ceil(16*99/100)=16.
        assert_eq!(s.p99, 1 << 15);

        // All-zero samples exercise bucket 0's degenerate [0, 0] range.
        let mut m = Metrics::new();
        let t = m.timer("t");
        for _ in 0..5 {
            m.observe(t, 0);
        }
        let s = m.timer_summary("t");
        assert_eq!((s.p50, s.p90, s.p99), (0, 0, 0));

        // u64::MAX lands in the top bucket without overflowing the
        // interpolation arithmetic.
        let mut m = Metrics::new();
        let t = m.timer("t");
        m.observe(t, u64::MAX);
        m.observe(t, u64::MAX - 1);
        let s = m.timer_summary("t");
        assert!(s.p99 >= u64::MAX - 1);
    }

    /// Satellite: merging shards in any order yields identical
    /// percentile estimates — bucket counts and extrema are commutative.
    #[test]
    fn merge_then_percentile_is_order_independent() {
        let shard = |values: &[u64]| {
            let mut m = Metrics::new();
            let t = m.timer("phase");
            for &v in values {
                m.observe(t, v);
            }
            m
        };
        let a = shard(&[1, 2, 3, 700, 900]);
        let b = shard(&[4096, 4097, 65_000]);
        let c = shard(&[0, 0, 12]);

        let mut ab_c = Metrics::new();
        ab_c.merge(&a);
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut c_b_a = Metrics::new();
        c_b_a.merge(&c);
        c_b_a.merge(&b);
        c_b_a.merge(&a);
        assert_eq!(
            ab_c.timer_summary("phase"),
            c_b_a.timer_summary("phase"),
            "percentiles must not depend on shard merge order"
        );
    }

    #[test]
    fn span_observes_on_drop() {
        let mut m = Metrics::new();
        let t = m.timer("span");
        {
            let _s = m.span(t);
        }
        assert_eq!(m.timer_summary("span").count, 1);
    }

    #[test]
    fn merge_matches_by_name() {
        let mut a = Metrics::new();
        let mut b = Metrics::new();
        a.add_named("x", 1);
        b.add_named("x", 2);
        b.add_named("y", 7);
        let tb = b.timer("t");
        b.observe(tb, 10);
        a.merge(&b);
        assert_eq!(a.counter_value("x"), 3);
        assert_eq!(a.counter_value("y"), 7);
        assert_eq!(a.timer_summary("t").sum, 10);
        // Render order is name-sorted, deterministic.
        let names: Vec<&str> = a.counters_sorted().iter().map(|&(n, _)| n).collect();
        assert_eq!(names, vec!["x", "y"]);
    }

    #[test]
    fn clone_is_a_snapshot() {
        let mut m = Metrics::new();
        let c = m.counter("c");
        m.inc(c);
        let snap = m.clone();
        m.inc(c);
        assert_eq!(snap.counter_value("c"), 1);
        assert_eq!(m.counter_value("c"), 2);
    }
}
