//! The compact binary round-trace format.
//!
//! A trace is **self-contained**: the header carries everything needed to
//! rebuild the starting world (links per edge plus the full port
//! topology), so replay needs no scenario generator, no RNG, and no
//! algorithm logic — only the circuit engine itself.
//!
//! ## Wire format (version 1)
//!
//! All integers are unsigned LEB128 varints unless noted. Multi-byte
//! fixed fields are little-endian.
//!
//! ```text
//! header  := magic "SPFT" (4 bytes) | version | c
//!          | node_count | ports[node_count]
//!          | edge_count | (v p w q)[edge_count]
//! event   := tag (1 byte) | payload
//!   1 ConfigDelta  gid pset
//!   2 Beep         gid
//!   3 AddNode      ports
//!   4 Connect      v p w q
//!   5 Disconnect   v p
//!   6 Isolate      v
//!   7 ChurnTag     index inserted removed
//!   8 RoundEnd     round beeps delivered digest(8 bytes LE) relabel(1 byte) circuits
//!   9 FaultDrop    gid
//!  10 FaultInject  gid
//!  11 FaultTag     index dropped injected disabled wiped
//!  12 FlightKey    plan_seed scenario_seed event
//! footer  := tag 0 | rounds | wall_micros
//! ```
//!
//! The footer is mandatory; decoding reports truncation, unknown tags
//! and trailing garbage with exact byte offsets, so a single flipped bit
//! is rejected loudly rather than silently mis-replayed.

use crate::recorder::{Recorder, RelabelKind, RoundSummary};

/// The four magic bytes every trace starts with.
pub const TRACE_MAGIC: [u8; 4] = *b"SPFT";

/// The current wire-format version.
pub const TRACE_VERSION: u16 = 1;

const TAG_END: u8 = 0;
const TAG_CONFIG_DELTA: u8 = 1;
const TAG_BEEP: u8 = 2;
const TAG_ADD_NODE: u8 = 3;
const TAG_CONNECT: u8 = 4;
const TAG_DISCONNECT: u8 = 5;
const TAG_ISOLATE: u8 = 6;
const TAG_CHURN_TAG: u8 = 7;
const TAG_ROUND_END: u8 = 8;
const TAG_FAULT_DROP: u8 = 9;
const TAG_FAULT_INJECT: u8 = 10;
const TAG_FAULT_TAG: u8 = 11;
const TAG_FLIGHT_KEY: u8 = 12;

/// A decoded trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// Pin `gid` moved to partition set `pset`.
    ConfigDelta {
        /// Global pin index.
        gid: u32,
        /// New local partition set.
        pset: u16,
    },
    /// Partition-set `gid` beeped into the upcoming tick.
    Beep {
        /// Global partition-set index.
        gid: u32,
    },
    /// A node with `ports` port slots was appended.
    AddNode {
        /// Port slot count.
        ports: u32,
    },
    /// Edge `(v, p)`–`(w, q)` was wired.
    Connect {
        /// First endpoint node.
        v: u32,
        /// First endpoint port.
        p: u32,
        /// Second endpoint node.
        w: u32,
        /// Second endpoint port.
        q: u32,
    },
    /// The edge behind port `p` of `v` was severed.
    Disconnect {
        /// Endpoint node.
        v: u32,
        /// Endpoint port.
        p: u32,
    },
    /// Node `v` was isolated.
    Isolate {
        /// The isolated node.
        v: u32,
    },
    /// Churn event `index` applied `inserted` joins and `removed` leaves.
    ChurnTag {
        /// Schedule event index.
        index: u32,
        /// Amoebots that joined.
        inserted: u32,
        /// Amoebots that left.
        removed: u32,
    },
    /// One tick completed.
    RoundEnd(RoundSummary),
    /// The adversary suppressed the beep sent on partition-set `gid`
    /// this round (the send itself is still a [`TraceEvent::Beep`]).
    FaultDrop {
        /// Global partition-set index.
        gid: u32,
    },
    /// The adversary spuriously injected a beep on partition-set `gid`
    /// (also recorded as a [`TraceEvent::Beep`]; this attributes it).
    FaultInject {
        /// Global partition-set index.
        gid: u32,
    },
    /// Fault event `index` staged the given adversary actions.
    FaultTag {
        /// Fault-plan event index.
        index: u32,
        /// Beep suppressions staged.
        dropped: u32,
        /// Spurious beeps staged.
        injected: u32,
        /// Node activations withheld this round.
        disabled: u32,
        /// Crash-recovery state wipes.
        wiped: u32,
    },
    /// The full reproduction key of the failure a flight record
    /// documents (plan seed, scenario seed, schedule event index),
    /// stamped by [`TraceWriter::flight_key`] when a ring-buffer dump is
    /// framed. Metadata only: replay skips it.
    FlightKey {
        /// Churn/fault plan seed (0 when the failure has no plan).
        plan_seed: u64,
        /// The failing scenario's seed.
        scenario_seed: u64,
        /// Schedule event index the failure named (0 when none).
        event: u64,
    },
}

/// The decoded trace header: enough to rebuild the starting world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceHeader {
    /// Wire-format version (always [`TRACE_VERSION`] after a successful
    /// open).
    pub version: u16,
    /// External links per edge.
    pub c: u32,
    /// Port slot count per node, in node-id order.
    pub node_ports: Vec<u32>,
    /// Every starting edge as `(v, p, w, q)`.
    pub edges: Vec<(u32, u32, u32, u32)>,
}

/// The decoded trace footer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceFooter {
    /// Rounds recorded.
    pub rounds: u64,
    /// Wall-clock microseconds of the recorded run (0 if unknown).
    pub wall_micros: u64,
}

/// A decoding failure, with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The blob does not start with [`TRACE_MAGIC`].
    BadMagic,
    /// The version tag is not [`TRACE_VERSION`].
    BadVersion(u16),
    /// The blob ended mid-field.
    Truncated {
        /// Byte offset of the incomplete field.
        offset: usize,
    },
    /// A varint ran past 10 bytes (not a valid LEB128 u64).
    Overlong {
        /// Byte offset of the varint.
        offset: usize,
    },
    /// An unknown event tag.
    BadTag {
        /// The offending tag byte.
        tag: u8,
        /// Its byte offset.
        offset: usize,
    },
    /// A field decoded to a value outside its domain (e.g. an unknown
    /// relabel code, or a pset over `u16::MAX`).
    BadValue {
        /// What was being decoded.
        what: &'static str,
        /// Byte offset of the field.
        offset: usize,
    },
    /// Bytes remain after the footer.
    TrailingBytes {
        /// Offset of the first surplus byte.
        offset: usize,
    },
    /// The event stream continued past the footer tag position — i.e.
    /// the footer was never found before the blob ended.
    MissingFooter,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "not a trace: bad magic bytes"),
            TraceError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported trace version {v} (expected {TRACE_VERSION})"
                )
            }
            TraceError::Truncated { offset } => write!(f, "truncated at byte {offset}"),
            TraceError::Overlong { offset } => write!(f, "overlong varint at byte {offset}"),
            TraceError::BadTag { tag, offset } => {
                write!(f, "unknown event tag {tag} at byte {offset}")
            }
            TraceError::BadValue { what, offset } => {
                write!(f, "invalid {what} at byte {offset}")
            }
            TraceError::TrailingBytes { offset } => {
                write!(f, "trailing bytes after the footer at byte {offset}")
            }
            TraceError::MissingFooter => write!(f, "trace ended without a footer"),
        }
    }
}

fn push_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// The recording side: implements [`Recorder`] by appending wire events.
/// [`TraceWriter::finish`] seals the blob with the footer.
#[derive(Debug, Clone, Default)]
pub struct TraceWriter {
    buf: Vec<u8>,
    rounds: u64,
    attached: bool,
}

impl TraceWriter {
    /// An empty writer; the header is written by the first (mandatory)
    /// [`Recorder::topology`] emission.
    pub fn new() -> TraceWriter {
        TraceWriter::default()
    }

    /// Rounds recorded so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Encoded bytes so far (header + events, no footer).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing was written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Stamps the reproduction key of the failure this blob documents
    /// (see [`TraceEvent::FlightKey`]). Not a [`Recorder`] sink: the
    /// engine never emits it; the flight-record framer calls it once,
    /// right after the topology header.
    pub fn flight_key(&mut self, plan_seed: u64, scenario_seed: u64, event: u64) {
        self.buf.push(TAG_FLIGHT_KEY);
        push_varint(&mut self.buf, plan_seed);
        push_varint(&mut self.buf, scenario_seed);
        push_varint(&mut self.buf, event);
    }

    /// Seals the trace: appends the footer (round count and the recorded
    /// run's wall microseconds) and returns the blob.
    ///
    /// # Panics
    ///
    /// Panics if no topology was ever attached — such a trace could not
    /// be replayed.
    pub fn finish(mut self, wall_micros: u64) -> Vec<u8> {
        assert!(self.attached, "trace has no topology header");
        self.buf.push(TAG_END);
        push_varint(&mut self.buf, self.rounds);
        push_varint(&mut self.buf, wall_micros);
        self.buf
    }
}

impl Recorder for TraceWriter {
    const TRACE: bool = true;
    const TIMED: bool = true;

    fn topology(&mut self, c: u32, node_ports: &[u32], edges: &[(u32, u32, u32, u32)]) {
        assert!(!self.attached, "topology attached twice");
        self.attached = true;
        self.buf.extend_from_slice(&TRACE_MAGIC);
        push_varint(&mut self.buf, TRACE_VERSION as u64);
        push_varint(&mut self.buf, c as u64);
        push_varint(&mut self.buf, node_ports.len() as u64);
        for &ports in node_ports {
            push_varint(&mut self.buf, ports as u64);
        }
        push_varint(&mut self.buf, edges.len() as u64);
        for &(v, p, w, q) in edges {
            push_varint(&mut self.buf, v as u64);
            push_varint(&mut self.buf, p as u64);
            push_varint(&mut self.buf, w as u64);
            push_varint(&mut self.buf, q as u64);
        }
    }

    fn config_delta(&mut self, gid: u32, pset: u16) {
        self.buf.push(TAG_CONFIG_DELTA);
        push_varint(&mut self.buf, gid as u64);
        push_varint(&mut self.buf, pset as u64);
    }

    fn beep(&mut self, gid: u32) {
        self.buf.push(TAG_BEEP);
        push_varint(&mut self.buf, gid as u64);
    }

    fn add_node(&mut self, ports: u32) {
        self.buf.push(TAG_ADD_NODE);
        push_varint(&mut self.buf, ports as u64);
    }

    fn connect(&mut self, v: u32, p: u32, w: u32, q: u32) {
        self.buf.push(TAG_CONNECT);
        push_varint(&mut self.buf, v as u64);
        push_varint(&mut self.buf, p as u64);
        push_varint(&mut self.buf, w as u64);
        push_varint(&mut self.buf, q as u64);
    }

    fn disconnect(&mut self, v: u32, p: u32) {
        self.buf.push(TAG_DISCONNECT);
        push_varint(&mut self.buf, v as u64);
        push_varint(&mut self.buf, p as u64);
    }

    fn isolate(&mut self, v: u32) {
        self.buf.push(TAG_ISOLATE);
        push_varint(&mut self.buf, v as u64);
    }

    fn churn_tag(&mut self, index: u32, inserted: u32, removed: u32) {
        self.buf.push(TAG_CHURN_TAG);
        push_varint(&mut self.buf, index as u64);
        push_varint(&mut self.buf, inserted as u64);
        push_varint(&mut self.buf, removed as u64);
    }

    fn beep_dropped(&mut self, gid: u32) {
        self.buf.push(TAG_FAULT_DROP);
        push_varint(&mut self.buf, gid as u64);
    }

    fn beep_injected(&mut self, gid: u32) {
        self.buf.push(TAG_FAULT_INJECT);
        push_varint(&mut self.buf, gid as u64);
    }

    fn fault_tag(&mut self, index: u32, dropped: u32, injected: u32, disabled: u32, wiped: u32) {
        self.buf.push(TAG_FAULT_TAG);
        push_varint(&mut self.buf, index as u64);
        push_varint(&mut self.buf, dropped as u64);
        push_varint(&mut self.buf, injected as u64);
        push_varint(&mut self.buf, disabled as u64);
        push_varint(&mut self.buf, wiped as u64);
    }

    fn round_end(&mut self, s: &RoundSummary) {
        self.buf.push(TAG_ROUND_END);
        push_varint(&mut self.buf, s.round);
        push_varint(&mut self.buf, s.beeps as u64);
        push_varint(&mut self.buf, s.delivered);
        self.buf.extend_from_slice(&s.digest.to_le_bytes());
        self.buf.push(s.relabel.code());
        push_varint(&mut self.buf, s.circuits);
        self.rounds += 1;
    }
}

/// The decoding side: [`TraceReader::open`] validates the header, then
/// [`TraceReader::next_event`] streams events until the footer.
#[derive(Debug, Clone)]
pub struct TraceReader<'a> {
    buf: &'a [u8],
    pos: usize,
    header: TraceHeader,
    footer: Option<TraceFooter>,
}

impl<'a> TraceReader<'a> {
    /// Validates magic + version and decodes the header.
    pub fn open(buf: &'a [u8]) -> Result<TraceReader<'a>, TraceError> {
        if buf.len() < 4 {
            return Err(TraceError::Truncated { offset: buf.len() });
        }
        if buf[..4] != TRACE_MAGIC {
            return Err(TraceError::BadMagic);
        }
        let mut pos = 4usize;
        let version = read_varint(buf, &mut pos)?;
        if version != TRACE_VERSION as u64 {
            return Err(TraceError::BadVersion(version.min(u16::MAX as u64) as u16));
        }
        let c = read_u32(buf, &mut pos, "links per edge")?;
        let n = read_u32(buf, &mut pos, "node count")? as usize;
        let mut node_ports = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            node_ports.push(read_u32(buf, &mut pos, "port count")?);
        }
        let m = read_u32(buf, &mut pos, "edge count")? as usize;
        let mut edges = Vec::with_capacity(m.min(1 << 20));
        for _ in 0..m {
            let v = read_u32(buf, &mut pos, "edge endpoint")?;
            let p = read_u32(buf, &mut pos, "edge port")?;
            let w = read_u32(buf, &mut pos, "edge endpoint")?;
            let q = read_u32(buf, &mut pos, "edge port")?;
            edges.push((v, p, w, q));
        }
        Ok(TraceReader {
            buf,
            pos,
            header: TraceHeader {
                version: version as u16,
                c,
                node_ports,
                edges,
            },
            footer: None,
        })
    }

    /// The decoded header.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// The footer; populated once [`TraceReader::next_event`] has
    /// returned `Ok(None)`.
    pub fn footer(&self) -> Option<TraceFooter> {
        self.footer
    }

    /// Byte offset of the next undecoded byte (for diagnostics).
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Decodes the next event; `Ok(None)` after the footer was reached
    /// (and the blob verified to end there).
    pub fn next_event(&mut self) -> Result<Option<TraceEvent>, TraceError> {
        if self.footer.is_some() {
            return Ok(None);
        }
        if self.pos >= self.buf.len() {
            return Err(TraceError::MissingFooter);
        }
        let tag_offset = self.pos;
        let tag = self.buf[self.pos];
        self.pos += 1;
        let buf = self.buf;
        let pos = &mut self.pos;
        let ev = match tag {
            TAG_END => {
                let rounds = read_varint(buf, pos)?;
                let wall_micros = read_varint(buf, pos)?;
                if *pos != buf.len() {
                    return Err(TraceError::TrailingBytes { offset: *pos });
                }
                self.footer = Some(TraceFooter {
                    rounds,
                    wall_micros,
                });
                return Ok(None);
            }
            TAG_CONFIG_DELTA => {
                let gid = read_u32(buf, pos, "pin gid")?;
                let pset_offset = *pos;
                let pset = read_varint(buf, pos)?;
                if pset > u16::MAX as u64 {
                    return Err(TraceError::BadValue {
                        what: "partition set",
                        offset: pset_offset,
                    });
                }
                TraceEvent::ConfigDelta {
                    gid,
                    pset: pset as u16,
                }
            }
            TAG_BEEP => TraceEvent::Beep {
                gid: read_u32(buf, pos, "beep gid")?,
            },
            TAG_ADD_NODE => TraceEvent::AddNode {
                ports: read_u32(buf, pos, "port count")?,
            },
            TAG_CONNECT => TraceEvent::Connect {
                v: read_u32(buf, pos, "edge endpoint")?,
                p: read_u32(buf, pos, "edge port")?,
                w: read_u32(buf, pos, "edge endpoint")?,
                q: read_u32(buf, pos, "edge port")?,
            },
            TAG_DISCONNECT => TraceEvent::Disconnect {
                v: read_u32(buf, pos, "edge endpoint")?,
                p: read_u32(buf, pos, "edge port")?,
            },
            TAG_ISOLATE => TraceEvent::Isolate {
                v: read_u32(buf, pos, "node id")?,
            },
            TAG_CHURN_TAG => TraceEvent::ChurnTag {
                index: read_u32(buf, pos, "churn index")?,
                inserted: read_u32(buf, pos, "churn insert count")?,
                removed: read_u32(buf, pos, "churn remove count")?,
            },
            TAG_ROUND_END => {
                let round = read_varint(buf, pos)?;
                let beeps_offset = *pos;
                let beeps = read_varint(buf, pos)?;
                if beeps > u32::MAX as u64 {
                    return Err(TraceError::BadValue {
                        what: "beep count",
                        offset: beeps_offset,
                    });
                }
                let delivered = read_varint(buf, pos)?;
                if *pos + 8 > buf.len() {
                    return Err(TraceError::Truncated { offset: *pos });
                }
                let digest = u64::from_le_bytes(buf[*pos..*pos + 8].try_into().unwrap());
                *pos += 8;
                if *pos >= buf.len() {
                    return Err(TraceError::Truncated { offset: *pos });
                }
                let relabel_offset = *pos;
                let relabel = RelabelKind::from_code(buf[*pos]).ok_or(TraceError::BadValue {
                    what: "relabel kind",
                    offset: relabel_offset,
                })?;
                *pos += 1;
                let circuits = read_varint(buf, pos)?;
                TraceEvent::RoundEnd(RoundSummary {
                    round,
                    beeps: beeps as u32,
                    delivered,
                    digest,
                    relabel,
                    circuits,
                })
            }
            TAG_FAULT_DROP => TraceEvent::FaultDrop {
                gid: read_u32(buf, pos, "dropped beep gid")?,
            },
            TAG_FAULT_INJECT => TraceEvent::FaultInject {
                gid: read_u32(buf, pos, "injected beep gid")?,
            },
            TAG_FAULT_TAG => TraceEvent::FaultTag {
                index: read_u32(buf, pos, "fault index")?,
                dropped: read_u32(buf, pos, "fault drop count")?,
                injected: read_u32(buf, pos, "fault inject count")?,
                disabled: read_u32(buf, pos, "fault disable count")?,
                wiped: read_u32(buf, pos, "fault wipe count")?,
            },
            TAG_FLIGHT_KEY => TraceEvent::FlightKey {
                plan_seed: read_varint(buf, pos)?,
                scenario_seed: read_varint(buf, pos)?,
                event: read_varint(buf, pos)?,
            },
            other => {
                return Err(TraceError::BadTag {
                    tag: other,
                    offset: tag_offset,
                })
            }
        };
        Ok(Some(ev))
    }
}

fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64, TraceError> {
    let start = *pos;
    let mut out = 0u64;
    let mut shift = 0u32;
    loop {
        if *pos >= buf.len() {
            return Err(TraceError::Truncated { offset: start });
        }
        let byte = buf[*pos];
        *pos += 1;
        if shift >= 63 && byte > 1 {
            return Err(TraceError::Overlong { offset: start });
        }
        out |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
        if shift > 63 {
            return Err(TraceError::Overlong { offset: start });
        }
    }
}

fn read_u32(buf: &[u8], pos: &mut usize, what: &'static str) -> Result<u32, TraceError> {
    let offset = *pos;
    let v = read_varint(buf, pos)?;
    if v > u32::MAX as u64 {
        return Err(TraceError::BadValue { what, offset });
    }
    Ok(v as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Vec<u8> {
        let mut w = TraceWriter::new();
        w.topology(2, &[6, 6, 6], &[(0, 0, 1, 3), (1, 1, 2, 4)]);
        w.add_node(6);
        w.connect(2, 0, 3, 3);
        w.config_delta(7, 0);
        w.config_delta(13, 2);
        w.beep(0);
        w.round_end(&RoundSummary {
            round: 1,
            beeps: 1,
            delivered: 5,
            digest: 0xDEAD_BEEF_0BAD_F00D,
            relabel: RelabelKind::Global,
            circuits: 3,
        });
        w.disconnect(2, 0);
        w.isolate(3);
        w.churn_tag(0, 1, 1);
        w.beep(4);
        w.round_end(&RoundSummary {
            round: 2,
            beeps: 1,
            delivered: 2,
            digest: 42,
            relabel: RelabelKind::Region,
            circuits: 4,
        });
        w.finish(123_456)
    }

    #[test]
    fn encode_decode_round_trip() {
        let blob = sample_trace();
        let mut r = TraceReader::open(&blob).unwrap();
        assert_eq!(r.header().c, 2);
        assert_eq!(r.header().node_ports, vec![6, 6, 6]);
        assert_eq!(r.header().edges.len(), 2);
        let mut events = Vec::new();
        while let Some(ev) = r.next_event().unwrap() {
            events.push(ev);
        }
        assert_eq!(events.len(), 11);
        assert_eq!(events[0], TraceEvent::AddNode { ports: 6 });
        assert!(matches!(events[5], TraceEvent::RoundEnd(s) if s.delivered == 5));
        assert_eq!(
            r.footer(),
            Some(TraceFooter {
                rounds: 2,
                wall_micros: 123_456
            })
        );
        // Idempotent after the footer.
        assert_eq!(r.next_event().unwrap(), None);
    }

    #[test]
    fn flight_key_round_trips_through_the_codec() {
        let mut w = TraceWriter::new();
        w.topology(1, &[4, 4], &[(0, 0, 1, 2)]);
        w.flight_key(0xFEED_F00D, 777, 3);
        w.beep(1);
        w.round_end(&RoundSummary::default());
        let blob = w.finish(0);
        let mut r = TraceReader::open(&blob).unwrap();
        assert_eq!(
            r.next_event().unwrap(),
            Some(TraceEvent::FlightKey {
                plan_seed: 0xFEED_F00D,
                scenario_seed: 777,
                event: 3
            })
        );
        let mut rest = 0;
        while r.next_event().unwrap().is_some() {
            rest += 1;
        }
        assert_eq!(rest, 2);
        assert_eq!(r.footer().map(|f| f.rounds), Some(1));
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let mut blob = sample_trace();
        blob[0] ^= 0x40;
        assert_eq!(TraceReader::open(&blob).unwrap_err(), TraceError::BadMagic);
        let mut blob = sample_trace();
        blob[4] = 9; // version varint
        assert_eq!(
            TraceReader::open(&blob).unwrap_err(),
            TraceError::BadVersion(9)
        );
    }

    #[test]
    fn every_truncation_errors_not_panics() {
        let blob = sample_trace();
        for len in 0..blob.len() {
            let cut = &blob[..len];
            let outcome = match TraceReader::open(cut) {
                Err(_) => Err(()),
                Ok(mut r) => loop {
                    match r.next_event() {
                        Err(_) => break Err(()),
                        Ok(None) => break Ok(()),
                        Ok(Some(_)) => {}
                    }
                },
            };
            assert_eq!(outcome, Err(()), "prefix of {len} bytes decoded cleanly");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut blob = sample_trace();
        blob.push(0);
        let mut r = TraceReader::open(&blob).unwrap();
        let err = loop {
            match r.next_event() {
                Err(e) => break e,
                Ok(None) => panic!("trailing byte accepted"),
                Ok(Some(_)) => {}
            }
        };
        assert!(matches!(err, TraceError::TrailingBytes { .. }));
    }

    #[test]
    fn unknown_tags_carry_their_offset() {
        let mut w = TraceWriter::new();
        w.topology(1, &[2], &[]);
        let header_len = w.len();
        let mut blob = w.finish(0);
        blob[header_len] = 0x7F; // clobber the footer tag
        let mut r = TraceReader::open(&blob).unwrap();
        assert_eq!(
            r.next_event().unwrap_err(),
            TraceError::BadTag {
                tag: 0x7F,
                offset: header_len
            }
        );
    }

    #[test]
    fn writer_without_topology_cannot_finish() {
        let result = std::panic::catch_unwind(|| TraceWriter::new().finish(0));
        assert!(result.is_err());
    }

    #[test]
    fn varints_cover_the_u64_range() {
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            buf.clear();
            push_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
        // An 11-byte varint is overlong.
        let overlong = [0x80u8; 10];
        let mut pos = 0;
        assert!(matches!(
            read_varint(&overlong, &mut pos),
            Err(TraceError::Truncated { .. }) | Err(TraceError::Overlong { .. })
        ));
        let mut too_big = vec![0xFFu8; 9];
        too_big.push(0x7F);
        let mut pos = 0;
        assert_eq!(
            read_varint(&too_big, &mut pos).unwrap_err(),
            TraceError::Overlong { offset: 0 }
        );
    }
}
