//! Zero-dependency telemetry for the simulator workspace.
//!
//! Three pieces, deliberately free of crates.io dependencies (this build
//! environment has none; the vendored rand/criterion shims set the
//! precedent):
//!
//! * [`Metrics`] — a per-engine registry of named counters, gauges and
//!   log2-bucket histograms, with RAII [`Span`] timers. One registry is
//!   owned by one engine (no locks: the simulator is single-threaded per
//!   world; batch runners own one registry per scenario and
//!   [`Metrics::merge`] them afterwards).
//! * [`Recorder`] — the event sink the engine's hot paths emit into.
//!   Emission sites are gated on the associated consts
//!   ([`Recorder::TRACE`], [`Recorder::TIMED`]), so with the no-op
//!   [`NullRecorder`] every emission compiles to nothing.
//! * [`trace`] — the compact binary round-trace format: a self-contained
//!   header (links per edge + full port topology) followed by a stream of
//!   per-round events (config deltas, beeps, structure edits, churn tags,
//!   round summaries). [`trace::TraceWriter`] implements [`Recorder`];
//!   [`trace::TraceReader`] decodes with exact error offsets so a replay
//!   can reject a corrupted blob at the first bad byte.
//! * [`flight`] — the flight recorder: a bounded, allocation-free ring
//!   buffer of recent [`TraceEvent`]s behind the same [`Recorder`]
//!   consts, framed into a standalone `.spft` blob (embedding the full
//!   reproduction key) when a failure needs its black box dumped.
//!
//! See DESIGN.md §1e for the architecture and the trace format spec, and
//! §1i for the observability plane built on top of it.

pub mod flight;
pub mod metrics;
pub mod recorder;
pub mod trace;
pub mod wire;

pub use flight::{FlightRecorder, TimedFlightRecorder, DEFAULT_FLIGHT_CAPACITY};
pub use metrics::{CounterId, GaugeId, HistSummary, Metrics, Span, Stopwatch, TimerId};
pub use recorder::{
    mix64, NullRecorder, Recorder, RelabelKind, RoundSummary, TimedRecorder, BEEP_DIGEST_SALT,
};
pub use trace::{
    TraceError, TraceEvent, TraceFooter, TraceHeader, TraceReader, TraceWriter, TRACE_MAGIC,
    TRACE_VERSION,
};
pub use wire::{SnapshotReader, SnapshotWriter, WireError, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
