//! The shared snapshot wire layer: LEB128 varints, zigzag signed
//! integers, and the `SPFS` envelope every snapshot blob travels in.
//!
//! The trace codec ([`crate::trace`]) established the workspace's binary
//! conventions — a four-byte magic, a little-endian `u16` version,
//! unsigned LEB128 varints, and errors that carry exact byte offsets.
//! Snapshots reuse those conventions but add a **trailing digest**: the
//! last eight bytes of every blob are the FNV-1a 64 hash of everything
//! before them, and [`SnapshotReader::open`] verifies the digest *before*
//! any payload parsing. A single flipped bit anywhere in the blob is
//! therefore rejected up front with a digest error, and a corrupted
//! length field can never drive a huge allocation — the payload is only
//! parsed once it is known to be the payload that was written.
//!
//! ## Envelope (version 1)
//!
//! ```text
//! blob := magic "SPFS" (4 bytes) | version (u16 LE) | kind (1 byte)
//!       | payload | fnv1a64(everything before) (8 bytes LE)
//! ```
//!
//! Payload grammars are owned by the types they serialize (see
//! DESIGN.md §1g); this module only frames them.

/// The four magic bytes every snapshot starts with.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"SPFS";

/// The current snapshot wire-format version.
pub const SNAPSHOT_VERSION: u16 = 1;

/// Payload kind tags (one per snapshottable type).
pub mod kind {
    /// An `AmoebotStructure` (coordinate list).
    pub const STRUCTURE: u8 = 1;
    /// A `World` (topology + pin/beep/labeling state).
    pub const WORLD: u8 = 2;
    /// A `DynamicWorld` (editor + world pair).
    pub const DYNAMIC_WORLD: u8 = 3;
    /// A `scenario-server` session (workload params + dynamic world).
    pub const SESSION: u8 = 4;
}

/// Envelope and payload length: magic + version + kind, and the digest.
const HEADER_LEN: usize = 4 + 2 + 1;
const DIGEST_LEN: usize = 8;

/// A decoding failure, with the byte offset where it was detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The first four bytes are not [`SNAPSHOT_MAGIC`].
    BadMagic {
        /// Offset of the first mismatching magic byte.
        offset: usize,
    },
    /// Unsupported wire-format version.
    BadVersion {
        /// The version found in the header.
        found: u16,
    },
    /// The kind byte does not match the expected payload kind.
    BadKind {
        /// The kind found in the header.
        found: u8,
        /// The kind the caller expected.
        expected: u8,
    },
    /// The blob ends in the middle of a field.
    Truncated {
        /// Offset where the field started.
        offset: usize,
    },
    /// A varint uses more bytes than a `u64` can hold.
    Overlong {
        /// Offset where the varint started.
        offset: usize,
    },
    /// The trailing digest does not match the blob contents.
    BadDigest {
        /// Offset of the digest field.
        offset: usize,
    },
    /// A structurally valid field holds a semantically invalid value.
    BadValue {
        /// What was being decoded.
        what: &'static str,
        /// Offset where the field started.
        offset: usize,
    },
    /// Decoding finished with unconsumed payload bytes left over.
    TrailingBytes {
        /// Offset of the first unconsumed byte.
        offset: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            WireError::BadMagic { offset } => {
                write!(f, "not a snapshot: bad magic at byte {offset}")
            }
            WireError::BadVersion { found } => {
                write!(f, "unsupported snapshot version {found}")
            }
            WireError::BadKind { found, expected } => {
                write!(
                    f,
                    "snapshot kind {found} where kind {expected} was expected"
                )
            }
            WireError::Truncated { offset } => {
                write!(f, "snapshot truncated inside the field at byte {offset}")
            }
            WireError::Overlong { offset } => {
                write!(f, "overlong varint at byte {offset}")
            }
            WireError::BadDigest { offset } => {
                write!(f, "snapshot digest mismatch (digest at byte {offset})")
            }
            WireError::BadValue { what, offset } => {
                write!(f, "invalid {what} at byte {offset}")
            }
            WireError::TrailingBytes { offset } => {
                write!(f, "trailing bytes after the payload at byte {offset}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// FNV-1a 64 over `bytes` — the snapshot integrity digest. Not
/// cryptographic; it exists to reject accidental corruption (truncated
/// writes, bit rot, concatenated files) loudly and cheaply.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The encoding half: header up front, digest appended by
/// [`SnapshotWriter::finish`].
#[derive(Debug, Clone)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// A writer with the envelope header (magic, version, `kind`)
    /// already emitted.
    pub fn new(kind: u8) -> SnapshotWriter {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&SNAPSHOT_MAGIC);
        buf.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        buf.push(kind);
        SnapshotWriter { buf }
    }

    /// Appends an unsigned LEB128 varint.
    pub fn varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Appends a zigzag-encoded signed varint.
    pub fn signed(&mut self, v: i64) {
        self.varint(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Appends one raw byte.
    pub fn byte(&mut self, b: u8) {
        self.buf.push(b);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.varint(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Seals the blob: appends the FNV-1a 64 digest of everything
    /// written so far and returns the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        let digest = fnv1a64(&self.buf);
        self.buf.extend_from_slice(&digest.to_le_bytes());
        self.buf
    }
}

/// The decoding half: [`SnapshotReader::open`] verifies the envelope and
/// digest, then the field readers walk the payload with offset-carrying
/// errors.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    /// The payload slice (header included, digest excluded).
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// Verifies magic, version, kind and the trailing digest, in that
    /// order, and returns a reader positioned at the first payload byte.
    /// The digest is checked before any payload field is parsed, so a
    /// corrupted blob can never drive payload-shaped allocations.
    pub fn open(bytes: &'a [u8], expected_kind: u8) -> Result<SnapshotReader<'a>, WireError> {
        if bytes.len() < SNAPSHOT_MAGIC.len() {
            return Err(WireError::BadMagic {
                offset: bytes.len(),
            });
        }
        for (i, &m) in SNAPSHOT_MAGIC.iter().enumerate() {
            if bytes[i] != m {
                return Err(WireError::BadMagic { offset: i });
            }
        }
        if bytes.len() < HEADER_LEN + DIGEST_LEN {
            return Err(WireError::Truncated {
                offset: bytes.len(),
            });
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != SNAPSHOT_VERSION {
            return Err(WireError::BadVersion { found: version });
        }
        let body_len = bytes.len() - DIGEST_LEN;
        // spf-lint: allow(panic-surface) — invariant: the length check above guarantees 8 trailing bytes
        let stored = u64::from_le_bytes(bytes[body_len..].try_into().expect("8 digest bytes"));
        if fnv1a64(&bytes[..body_len]) != stored {
            return Err(WireError::BadDigest { offset: body_len });
        }
        let kind = bytes[6];
        if kind != expected_kind {
            return Err(WireError::BadKind {
                found: kind,
                expected: expected_kind,
            });
        }
        Ok(SnapshotReader {
            buf: &bytes[..body_len],
            pos: HEADER_LEN,
        })
    }

    /// The current byte offset (for error construction by callers).
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Bytes left in the payload.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads an unsigned LEB128 varint.
    pub fn varint(&mut self) -> Result<u64, WireError> {
        let start = self.pos;
        let mut out = 0u64;
        let mut shift = 0u32;
        loop {
            if self.pos >= self.buf.len() {
                return Err(WireError::Truncated { offset: start });
            }
            let byte = self.buf[self.pos];
            self.pos += 1;
            if shift >= 63 && byte > 1 {
                return Err(WireError::Overlong { offset: start });
            }
            out |= ((byte & 0x7F) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(out);
            }
            shift += 7;
            if shift > 63 {
                return Err(WireError::Overlong { offset: start });
            }
        }
    }

    /// Reads a zigzag-encoded signed varint.
    pub fn signed(&mut self) -> Result<i64, WireError> {
        let z = self.varint()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    /// Reads one raw byte.
    pub fn byte(&mut self) -> Result<u8, WireError> {
        if self.pos >= self.buf.len() {
            return Err(WireError::Truncated { offset: self.pos });
        }
        let b = self.buf[self.pos];
        self.pos += 1;
        Ok(b)
    }

    /// Reads a varint that must fit a `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        let offset = self.pos;
        let v = self.varint()?;
        u32::try_from(v).map_err(|_| WireError::BadValue { what, offset })
    }

    /// Reads a varint that must fit a `u16`.
    pub fn u16(&mut self, what: &'static str) -> Result<u16, WireError> {
        let offset = self.pos;
        let v = self.varint()?;
        u16::try_from(v).map_err(|_| WireError::BadValue { what, offset })
    }

    /// Reads a varint that must fit an `i32` after zigzag decoding.
    pub fn i32(&mut self, what: &'static str) -> Result<i32, WireError> {
        let offset = self.pos;
        let v = self.signed()?;
        i32::try_from(v).map_err(|_| WireError::BadValue { what, offset })
    }

    /// Reads an element count. Every element costs at least one payload
    /// byte, so any count beyond the remaining bytes is invalid — this
    /// bounds allocations by the blob size even for hand-crafted blobs
    /// that pass the digest check.
    pub fn len(&mut self, what: &'static str) -> Result<usize, WireError> {
        let offset = self.pos;
        let v = self.varint()?;
        if v > self.remaining() as u64 {
            return Err(WireError::BadValue { what, offset });
        }
        Ok(v as usize)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &'static str) -> Result<String, WireError> {
        let offset = self.pos;
        let n = self.len(what)?;
        let bytes = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadValue { what, offset })
    }

    /// Declares the payload fully decoded: errors if bytes remain.
    pub fn finish(self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError::TrailingBytes { offset: self.pos });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sealed(kind: u8, fill: impl FnOnce(&mut SnapshotWriter)) -> Vec<u8> {
        let mut w = SnapshotWriter::new(kind);
        fill(&mut w);
        w.finish()
    }

    #[test]
    fn round_trips_every_field_shape() {
        let blob = sealed(kind::WORLD, |w| {
            w.varint(0);
            w.varint(300);
            w.varint(u64::MAX);
            w.signed(-5);
            w.signed(i64::MIN);
            w.byte(0xAB);
            w.str("hex/2");
        });
        let mut r = SnapshotReader::open(&blob, kind::WORLD).unwrap();
        assert_eq!(r.varint().unwrap(), 0);
        assert_eq!(r.varint().unwrap(), 300);
        assert_eq!(r.varint().unwrap(), u64::MAX);
        assert_eq!(r.signed().unwrap(), -5);
        assert_eq!(r.signed().unwrap(), i64::MIN);
        assert_eq!(r.byte().unwrap(), 0xAB);
        assert_eq!(r.str("label").unwrap(), "hex/2");
        r.finish().unwrap();
    }

    #[test]
    fn envelope_rejections_carry_diagnostics() {
        let blob = sealed(kind::WORLD, |w| w.varint(7));
        // Wrong magic.
        let mut bad = blob.clone();
        bad[1] ^= 0xFF;
        assert_eq!(
            SnapshotReader::open(&bad, kind::WORLD).err(),
            Some(WireError::BadMagic { offset: 1 })
        );
        // Wrong version (re-sealed so the digest is valid).
        let mut bad = blob.clone();
        bad[4] = 9;
        let body = bad.len() - 8;
        let digest = fnv1a64(&bad[..body]).to_le_bytes();
        bad[body..].copy_from_slice(&digest);
        assert_eq!(
            SnapshotReader::open(&bad, kind::WORLD).err(),
            Some(WireError::BadVersion { found: 9 })
        );
        // Wrong kind (re-sealed): digest passes, kind does not.
        let other = sealed(kind::SESSION, |w| w.varint(7));
        assert_eq!(
            SnapshotReader::open(&other, kind::WORLD).err(),
            Some(WireError::BadKind {
                found: kind::SESSION,
                expected: kind::WORLD
            })
        );
        // Too short for an envelope at all.
        assert!(matches!(
            SnapshotReader::open(b"SPFS", kind::WORLD),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn every_single_bit_flip_is_rejected_before_parsing() {
        let blob = sealed(kind::DYNAMIC_WORLD, |w| {
            w.varint(42);
            w.str("payload");
            w.signed(-1);
        });
        for byte in 0..blob.len() {
            for bit in 0..8 {
                let mut bad = blob.clone();
                bad[byte] ^= 1 << bit;
                let err = SnapshotReader::open(&bad, kind::DYNAMIC_WORLD)
                    .err()
                    .unwrap_or_else(|| panic!("flip at byte {byte} bit {bit} accepted"));
                // Every rejection carries a diagnostic that names an
                // offset or the offending value.
                let text = err.to_string();
                assert!(!text.is_empty());
            }
        }
    }

    #[test]
    fn truncation_and_trailing_bytes_are_rejected() {
        let blob = sealed(kind::STRUCTURE, |w| w.varint(1000));
        // Any proper prefix fails (digest or envelope length).
        for cut in 0..blob.len() {
            assert!(SnapshotReader::open(&blob[..cut], kind::STRUCTURE).is_err());
        }
        // Undrained payload is an error at finish.
        let r = SnapshotReader::open(&blob, kind::STRUCTURE).unwrap();
        assert!(matches!(
            r.finish(),
            Err(WireError::TrailingBytes { offset: 7 })
        ));
        let mut r = SnapshotReader::open(&blob, kind::STRUCTURE).unwrap();
        r.varint().unwrap();
        r.finish().unwrap();
    }

    #[test]
    fn length_reads_are_bounded_by_the_blob() {
        // A length field claiming more elements than there are bytes left
        // is rejected even though the digest is valid.
        let blob = sealed(kind::WORLD, |w| w.varint(1 << 40));
        let mut r = SnapshotReader::open(&blob, kind::WORLD).unwrap();
        assert!(matches!(
            r.len("element count"),
            Err(WireError::BadValue {
                what: "element count",
                ..
            })
        ));
    }
}
