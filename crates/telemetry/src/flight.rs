//! The flight recorder: a bounded, allocation-free ring buffer of recent
//! [`TraceEvent`]s that runs always-on behind the [`Recorder`] trait and
//! is framed into a standalone `.spft` blob when a failure needs its
//! black box dumped.
//!
//! The ring is pre-allocated at construction; once full, the oldest
//! event is overwritten in place, so the steady-state hot path is one
//! enum store plus an index bump — no heap traffic, no clock reads
//! ([`FlightRecorder`] keeps `TIMED = false`; use
//! [`TimedFlightRecorder`] when the phase timers should stay on too).
//! Both keep `REPLAY = false`: the engine skips the per-pin
//! config-delta stream and the round delivery digests for them
//! (`RoundSummary::digest` records as 0), which is what lets the black
//! box stay armed on relabel-heavy workloads without denting the perf
//! gate — a window is for reading, not for replay-verifying.
//!
//! A dump ([`FlightRecorder::to_trace_bytes`]) reuses the §1e wire codec
//! verbatim: the blob opens with the topology header captured at attach
//! time, then a [`TraceEvent::FlightKey`] stamping the full reproduction
//! key (plan seed + scenario seed + event index), then the window of
//! retained events, sealed with the standard footer (`wall_micros = 0`,
//! keeping dumps byte-deterministic). Any `SPFT` reader decodes it; a
//! flight record is *not* replayable in general — its window usually
//! starts mid-run — which is exactly why the key that rebuilds the full
//! run is embedded in the blob itself.

use crate::recorder::{Recorder, RoundSummary};
use crate::trace::{TraceEvent, TraceWriter};

/// Default ring capacity (events) for [`FlightRecorder::default`] — a
/// few recent rounds of a mid-sized scenario, ~160 KiB of ring.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

/// The always-on black box. See the module docs.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    c: u32,
    node_ports: Vec<u32>,
    edges: Vec<(u32, u32, u32, u32)>,
    attached: bool,
    ring: Vec<TraceEvent>,
    cap: usize,
    /// Index of the oldest retained event once the ring is full.
    head: usize,
    overwritten: u64,
    rounds: u64,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::with_capacity(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder retaining the most recent `capacity` events (at least
    /// one). The ring is allocated here, never on the hot path.
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        let cap = capacity.max(1);
        FlightRecorder {
            c: 0,
            node_ports: Vec::new(),
            edges: Vec::new(),
            attached: false,
            ring: Vec::with_capacity(cap),
            cap,
            head: 0,
            overwritten: 0,
            rounds: 0,
        }
    }

    /// Whether a topology header was captured; without one there is
    /// nothing a dump could anchor to and [`FlightRecorder::to_trace_bytes`]
    /// returns `None`.
    pub fn is_attached(&self) -> bool {
        self.attached
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no event was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events overwritten after the ring filled (how much history the
    /// window has already shed).
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Completed rounds seen over the recorder's whole lifetime (not
    /// just the retained window).
    pub fn rounds_seen(&self) -> u64 {
        self.rounds
    }

    #[inline]
    fn push(&mut self, ev: TraceEvent) {
        if self.ring.len() < self.cap {
            self.ring.push(ev);
        } else {
            self.ring[self.head] = ev;
            self.head += 1;
            if self.head == self.cap {
                self.head = 0;
            }
            self.overwritten += 1;
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        let (wrapped, linear) = self.ring.split_at(self.head.min(self.ring.len()));
        linear.iter().chain(wrapped.iter())
    }

    /// Frames the retained window as a standalone `.spft` blob embedding
    /// the reproduction key; `None` if no topology was ever attached
    /// (structureless scenarios have no black box to dump).
    pub fn to_trace_bytes(
        &self,
        plan_seed: u64,
        scenario_seed: u64,
        event: u64,
    ) -> Option<Vec<u8>> {
        if !self.attached {
            return None;
        }
        let mut w = TraceWriter::new();
        w.topology(self.c, &self.node_ports, &self.edges);
        w.flight_key(plan_seed, scenario_seed, event);
        for ev in self.events() {
            match *ev {
                TraceEvent::ConfigDelta { gid, pset } => w.config_delta(gid, pset),
                TraceEvent::Beep { gid } => w.beep(gid),
                TraceEvent::AddNode { ports } => w.add_node(ports),
                TraceEvent::Connect { v, p, w: x, q } => w.connect(v, p, x, q),
                TraceEvent::Disconnect { v, p } => w.disconnect(v, p),
                TraceEvent::Isolate { v } => w.isolate(v),
                TraceEvent::ChurnTag {
                    index,
                    inserted,
                    removed,
                } => w.churn_tag(index, inserted, removed),
                TraceEvent::RoundEnd(s) => w.round_end(&s),
                TraceEvent::FaultDrop { gid } => w.beep_dropped(gid),
                TraceEvent::FaultInject { gid } => w.beep_injected(gid),
                TraceEvent::FaultTag {
                    index,
                    dropped,
                    injected,
                    disabled,
                    wiped,
                } => w.fault_tag(index, dropped, injected, disabled, wiped),
                TraceEvent::FlightKey {
                    plan_seed,
                    scenario_seed,
                    event,
                } => w.flight_key(plan_seed, scenario_seed, event),
            }
        }
        // Dumps are byte-deterministic: wall time never enters the blob.
        Some(w.finish(0))
    }
}

impl Recorder for FlightRecorder {
    const TRACE: bool = true;
    const TIMED: bool = false;
    const REPLAY: bool = false;

    fn topology(&mut self, c: u32, node_ports: &[u32], edges: &[(u32, u32, u32, u32)]) {
        // First attach wins; the engine contract emits topology once per
        // recording, and the ring documents the world it attached to.
        if self.attached {
            return;
        }
        self.attached = true;
        self.c = c;
        self.node_ports = node_ports.to_vec();
        self.edges = edges.to_vec();
    }

    fn config_delta(&mut self, gid: u32, pset: u16) {
        self.push(TraceEvent::ConfigDelta { gid, pset });
    }

    fn beep(&mut self, gid: u32) {
        self.push(TraceEvent::Beep { gid });
    }

    fn add_node(&mut self, ports: u32) {
        self.push(TraceEvent::AddNode { ports });
    }

    fn connect(&mut self, v: u32, p: u32, w: u32, q: u32) {
        self.push(TraceEvent::Connect { v, p, w, q });
    }

    fn disconnect(&mut self, v: u32, p: u32) {
        self.push(TraceEvent::Disconnect { v, p });
    }

    fn isolate(&mut self, v: u32) {
        self.push(TraceEvent::Isolate { v });
    }

    fn churn_tag(&mut self, index: u32, inserted: u32, removed: u32) {
        self.push(TraceEvent::ChurnTag {
            index,
            inserted,
            removed,
        });
    }

    fn beep_dropped(&mut self, gid: u32) {
        self.push(TraceEvent::FaultDrop { gid });
    }

    fn beep_injected(&mut self, gid: u32) {
        self.push(TraceEvent::FaultInject { gid });
    }

    fn fault_tag(&mut self, index: u32, dropped: u32, injected: u32, disabled: u32, wiped: u32) {
        self.push(TraceEvent::FaultTag {
            index,
            dropped,
            injected,
            disabled,
            wiped,
        });
    }

    fn round_end(&mut self, s: &RoundSummary) {
        self.rounds += 1;
        self.push(TraceEvent::RoundEnd(*s));
    }
}

/// [`FlightRecorder`] with the phase timers left on — what a timed batch
/// run arms so `--metrics-json` timing and the black box coexist.
#[derive(Debug, Clone, Default)]
pub struct TimedFlightRecorder {
    /// The wrapped ring recorder (dump through this).
    pub inner: FlightRecorder,
}

impl Recorder for TimedFlightRecorder {
    const TRACE: bool = true;
    const TIMED: bool = true;
    const REPLAY: bool = false;

    fn topology(&mut self, c: u32, node_ports: &[u32], edges: &[(u32, u32, u32, u32)]) {
        self.inner.topology(c, node_ports, edges);
    }

    fn config_delta(&mut self, gid: u32, pset: u16) {
        self.inner.config_delta(gid, pset);
    }

    fn beep(&mut self, gid: u32) {
        self.inner.beep(gid);
    }

    fn add_node(&mut self, ports: u32) {
        self.inner.add_node(ports);
    }

    fn connect(&mut self, v: u32, p: u32, w: u32, q: u32) {
        self.inner.connect(v, p, w, q);
    }

    fn disconnect(&mut self, v: u32, p: u32) {
        self.inner.disconnect(v, p);
    }

    fn isolate(&mut self, v: u32) {
        self.inner.isolate(v);
    }

    fn churn_tag(&mut self, index: u32, inserted: u32, removed: u32) {
        self.inner.churn_tag(index, inserted, removed);
    }

    fn beep_dropped(&mut self, gid: u32) {
        self.inner.beep_dropped(gid);
    }

    fn beep_injected(&mut self, gid: u32) {
        self.inner.beep_injected(gid);
    }

    fn fault_tag(&mut self, index: u32, dropped: u32, injected: u32, disabled: u32, wiped: u32) {
        self.inner
            .fault_tag(index, dropped, injected, disabled, wiped);
    }

    fn round_end(&mut self, s: &RoundSummary) {
        self.inner.round_end(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::RelabelKind;
    use crate::trace::{TraceReader, TRACE_MAGIC};

    fn summary(round: u64) -> RoundSummary {
        RoundSummary {
            round,
            beeps: 1,
            delivered: 2,
            digest: round.wrapping_mul(0x9E37),
            relabel: RelabelKind::None,
            circuits: 1,
        }
    }

    #[test]
    fn unattached_recorder_has_no_dump() {
        let mut r = FlightRecorder::with_capacity(8);
        r.beep(1);
        assert!(!r.is_attached());
        assert_eq!(r.to_trace_bytes(1, 2, 3), None);
    }

    #[test]
    fn ring_overwrites_oldest_and_dumps_in_order() {
        let mut r = FlightRecorder::with_capacity(4);
        r.topology(1, &[2, 2], &[(0, 0, 1, 1)]);
        for gid in 0..7u32 {
            r.beep(gid);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.overwritten(), 3);
        let gids: Vec<u32> = r
            .events()
            .map(|ev| match ev {
                TraceEvent::Beep { gid } => *gid,
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(gids, vec![3, 4, 5, 6], "oldest-first, post-wrap");
    }

    #[test]
    fn dump_decodes_via_the_trace_codec_with_the_key_first() {
        let mut r = FlightRecorder::with_capacity(16);
        r.topology(2, &[6, 6], &[(0, 0, 1, 3)]);
        r.beep(0);
        r.round_end(&summary(1));
        r.churn_tag(0, 1, 0);
        r.round_end(&summary(2));
        let blob = r.to_trace_bytes(0xAB, 42, 7).expect("attached");
        assert_eq!(&blob[..4], &TRACE_MAGIC);
        let mut rd = TraceReader::open(&blob).unwrap();
        assert_eq!(rd.header().node_ports, vec![6, 6]);
        assert_eq!(
            rd.next_event().unwrap(),
            Some(TraceEvent::FlightKey {
                plan_seed: 0xAB,
                scenario_seed: 42,
                event: 7
            })
        );
        let mut rounds = 0;
        while let Some(ev) = rd.next_event().unwrap() {
            if matches!(ev, TraceEvent::RoundEnd(_)) {
                rounds += 1;
            }
        }
        assert_eq!(rounds, 2);
        // The footer rounds count covers the retained window, and the
        // wall field is pinned to zero for byte-determinism.
        let f = rd.footer().unwrap();
        assert_eq!((f.rounds, f.wall_micros), (2, 0));
        // Dumping twice yields identical bytes.
        assert_eq!(blob, r.to_trace_bytes(0xAB, 42, 7).unwrap());
    }

    #[test]
    fn lifetime_round_count_outlives_the_window() {
        let mut r = FlightRecorder::with_capacity(2);
        r.topology(1, &[1], &[]);
        for i in 0..10 {
            r.round_end(&summary(i));
        }
        assert_eq!(r.rounds_seen(), 10);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn timed_wrapper_delegates_and_keeps_timers_on() {
        const {
            assert!(TimedFlightRecorder::TRACE && TimedFlightRecorder::TIMED);
            assert!(FlightRecorder::TRACE && !FlightRecorder::TIMED);
        }
        let mut t = TimedFlightRecorder::default();
        t.topology(1, &[2], &[]);
        t.beep(5);
        t.round_end(&summary(1));
        assert!(t.inner.is_attached());
        assert_eq!(t.inner.len(), 2);
    }
}
