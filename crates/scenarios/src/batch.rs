//! Parallel batch execution.
//!
//! Each scenario owns its `World`, so scenarios are embarrassingly
//! parallel: a fixed pool of `std::thread` workers pulls indices off an
//! atomic counter and writes results into per-slot cells. Results come
//! back **in scenario order** regardless of which thread ran what or how
//! runs interleaved — thread count never changes a report's content, which
//! the determinism tests pin down.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use amoebot_telemetry::{NullRecorder, Recorder};

use crate::run::{run_scenario_with, ScenarioResult};
use crate::spec::Scenario;

/// How many worker threads to use: an explicit count, or one per
/// available core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Threads {
    /// Autodetect (`std::thread::available_parallelism`).
    Auto,
    /// Exactly this many workers (at least 1).
    Count(usize),
}

impl Threads {
    /// Resolves to a concrete worker count.
    pub fn resolve(self) -> usize {
        match self {
            Threads::Count(n) => n.max(1),
            Threads::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

/// Runs every scenario, spreading them over `threads` workers, and returns
/// the results in scenario order.
pub fn run_batch(scenarios: &[Scenario], threads: Threads) -> Vec<ScenarioResult> {
    run_batch_with::<NullRecorder>(scenarios, threads)
}

/// [`run_batch`] with each worker driving its scenarios through a fresh
/// recorder of type `R` — [`amoebot_telemetry::TimedRecorder`] turns on
/// the per-phase timers that `--metrics-json` and the timed sweep report
/// surface. Whole-run trace writers are deliberately unsupported here (a
/// round trace must capture exactly one world); the per-scenario
/// [`amoebot_telemetry::FlightRecorder`] is fine — every scenario gets a
/// fresh `R::default()`, and [`run_batch_inspect`] exposes it next to
/// the result so a FAIL path can dump the black box.
pub fn run_batch_with<R: Recorder + Default>(
    scenarios: &[Scenario],
    threads: Threads,
) -> Vec<ScenarioResult> {
    run_batch_inspect::<R>(scenarios, threads, |_, _| {})
}

/// [`run_batch_with`] plus a per-scenario hook: `inspect` runs on the
/// worker thread right after each scenario finishes, seeing the result
/// and the recorder that ran it — the flight-record dump path. The hook
/// must not mutate shared state non-commutatively: it runs concurrently
/// across workers, in completion (not scenario) order.
pub fn run_batch_inspect<R: Recorder + Default>(
    scenarios: &[Scenario],
    threads: Threads,
    inspect: impl Fn(&ScenarioResult, &R) + Sync,
) -> Vec<ScenarioResult> {
    let workers = threads.resolve().min(scenarios.len()).max(1);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<ScenarioResult>>> =
        scenarios.iter().map(|_| Mutex::new(None)).collect();
    let inspect = &inspect;

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= scenarios.len() {
                    break;
                }
                let mut rec = R::default();
                let result = run_scenario_with(&scenarios[i], &mut rec);
                inspect(&result, &rec);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every scenario index was claimed by a worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::default_registry;

    #[test]
    fn batch_results_keep_scenario_order_and_content_across_thread_counts() {
        let registry = default_registry();
        let scenarios = registry.random_suite(3, 10, &[]);
        let serial = run_batch(&scenarios, Threads::Count(1));
        let parallel = run_batch(&scenarios, Threads::Count(4));
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.rounds, b.rounds);
            assert_eq!(a.beeps, b.beeps);
            assert_eq!(a.pass, b.pass);
        }
        for (sc, res) in scenarios.iter().zip(&serial) {
            assert_eq!(sc.name, res.name);
        }
    }

    #[test]
    fn more_threads_than_scenarios_is_fine() {
        let registry = default_registry();
        let scenarios = registry.random_suite(5, 2, &[]);
        let results = run_batch(&scenarios, Threads::Count(16));
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|r| r.pass));
    }

    #[test]
    fn thread_resolution() {
        assert_eq!(Threads::Count(0).resolve(), 1);
        assert_eq!(Threads::Count(3).resolve(), 3);
        assert!(Threads::Auto.resolve() >= 1);
    }
}
