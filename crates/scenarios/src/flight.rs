//! Flight-record dumping: when a scenario check FAILs, the black box the
//! [`FlightRecorder`] retained is framed as a `.spft` blob and written
//! next to the run, named by — and embedding — the full reproduction key
//! (plan seed + scenario seed + schedule event index).
//!
//! The key is recovered from the FAIL line contract the adversary and
//! churn engines already guarantee: failing check details carry
//! `schedule seed=<plan>`, `scenario seed=<seed>` and `event=#<i>`
//! needles (see `adversary::fault_fail_line`). Workloads without a plan
//! fall back to the scenario's own seed with zeroed plan/event fields,
//! so every dump still names the scenario that produced it.

use std::io;
use std::path::{Path, PathBuf};

use amoebot_telemetry::FlightRecorder;

use crate::run::ScenarioResult;

/// The PR-9 reproduction key a FAIL line names, in structured form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReproKey {
    /// Churn/fault schedule seed (0 when the failure named none).
    pub plan_seed: u64,
    /// The failing scenario's seed.
    pub scenario_seed: u64,
    /// Schedule event index the failure named (0 when none).
    pub event: u64,
}

/// Parses the decimal run immediately after `needle` in `text`.
fn num_after(text: &str, needle: &str) -> Option<u64> {
    let start = text.find(needle)? + needle.len();
    let digits: String = text[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Recovers the reproduction key from a result's failing check details.
/// Scans failing checks in order and takes the first occurrence of each
/// fragment; anything the FAIL lines never named stays at its fallback
/// (`scenario_seed` defaults to the result's own seed).
pub fn reproduction_key(r: &ScenarioResult) -> ReproKey {
    let mut key = ReproKey {
        scenario_seed: r.seed,
        ..ReproKey::default()
    };
    let mut have_plan = false;
    let mut have_event = false;
    for c in r.checks.iter().filter(|c| !c.pass) {
        if !have_plan {
            // Covers both engines: "fault schedule seed=" and
            // "churn schedule seed=".
            if let Some(v) = num_after(&c.detail, "schedule seed=") {
                key.plan_seed = v;
                have_plan = true;
            }
        }
        if let Some(v) = num_after(&c.detail, "scenario seed=") {
            key.scenario_seed = v;
        }
        if !have_event {
            if let Some(v) = num_after(&c.detail, "event=#") {
                key.event = v;
                have_event = true;
            }
        }
        if have_plan && have_event {
            break;
        }
    }
    key
}

/// The dump's file name: the sanitized scenario name plus every key
/// fragment, so a directory of flight records is greppable by plan seed,
/// scenario seed or event index alone.
pub fn flight_file_name(r: &ScenarioResult, key: ReproKey) -> String {
    let sanitized: String = r
        .name
        .chars()
        .map(|ch| {
            if ch.is_ascii_alphanumeric() || matches!(ch, '.' | '_' | '-') {
                ch
            } else {
                '-'
            }
        })
        .collect();
    format!(
        "{sanitized}-plan{}-seed{}-event{}.spft",
        key.plan_seed, key.scenario_seed, key.event
    )
}

/// Dumps the retained flight window for a failing result into `dir`
/// (created on demand). Returns the written path, or `Ok(None)` when
/// there is nothing to dump — the result passed, or the recorder never
/// attached to a world (structureless self-test workloads).
pub fn dump_flight_record(
    dir: &Path,
    r: &ScenarioResult,
    rec: &FlightRecorder,
) -> io::Result<Option<PathBuf>> {
    if r.pass || !rec.is_attached() {
        return Ok(None);
    }
    let key = reproduction_key(r);
    let bytes = match rec.to_trace_bytes(key.plan_seed, key.scenario_seed, key.event) {
        Some(b) => b,
        None => return Ok(None),
    };
    std::fs::create_dir_all(dir)?;
    let path = dir.join(flight_file_name(r, key));
    std::fs::write(&path, bytes)?;
    Ok(Some(path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::CheckResult;
    use amoebot_telemetry::{Recorder, RoundSummary, TraceEvent, TraceReader};

    fn failing_result(name: &str, seed: u64, detail: &str) -> ScenarioResult {
        ScenarioResult {
            family: "f".to_string(),
            name: name.to_string(),
            seed,
            n: 4,
            k: 1,
            l: 0,
            rounds: 1,
            beeps: 0,
            wall_micros: 0,
            checks: vec![
                CheckResult::pass("ok-check"),
                CheckResult::fail("oracle", detail.to_string()),
            ],
            pass: false,
            metrics: amoebot_telemetry::Metrics::new(),
        }
    }

    #[test]
    fn key_parses_the_adversary_fail_line_format() {
        let r = failing_result(
            "adv/x",
            9,
            "fault schedule seed=123 scenario seed=45 event=#6 (stuck-line): beeps diverged",
        );
        assert_eq!(
            reproduction_key(&r),
            ReproKey {
                plan_seed: 123,
                scenario_seed: 45,
                event: 6
            }
        );
    }

    #[test]
    fn key_parses_the_churn_fail_line_format() {
        let r = failing_result(
            "churn/x",
            7,
            "churn schedule seed=88 event=#3 (blob-churn-broadcast): bad",
        );
        // No "scenario seed=" fragment: falls back to the result's seed.
        assert_eq!(
            reproduction_key(&r),
            ReproKey {
                plan_seed: 88,
                scenario_seed: 7,
                event: 3
            }
        );
    }

    #[test]
    fn key_falls_back_to_the_scenario_seed_alone() {
        let r = failing_result("plain/x", 31, "expected 4 deliveries, got 3");
        assert_eq!(
            reproduction_key(&r),
            ReproKey {
                plan_seed: 0,
                scenario_seed: 31,
                event: 0
            }
        );
    }

    #[test]
    fn file_names_are_sanitized_and_carry_every_fragment() {
        let r = failing_result(
            "blob-churn/n100 e5",
            7,
            "churn schedule seed=88 event=#3 (x)",
        );
        let key = reproduction_key(&r);
        let name = flight_file_name(&r, key);
        assert_eq!(name, "blob-churn-n100-e5-plan88-seed7-event3.spft");
    }

    #[test]
    fn dump_writes_a_decodable_record_and_skips_unattached() {
        let dir = std::env::temp_dir().join(format!("spf-flight-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // Unattached recorder: nothing to dump.
        let r = failing_result(
            "x",
            1,
            "fault schedule seed=5 scenario seed=1 event=#2 (l): d",
        );
        let rec = FlightRecorder::with_capacity(8);
        assert_eq!(dump_flight_record(&dir, &r, &rec).unwrap(), None);

        // Passing result: nothing to dump either.
        let mut rec = FlightRecorder::with_capacity(8);
        rec.topology(1, &[2, 2], &[(0, 0, 1, 1)]);
        let mut passing = failing_result("x", 1, "d");
        passing.pass = true;
        assert_eq!(dump_flight_record(&dir, &passing, &rec).unwrap(), None);

        // Failing + attached: the dump decodes and leads with the key.
        rec.beep(0);
        rec.round_end(&RoundSummary::default());
        let path = dump_flight_record(&dir, &r, &rec)
            .unwrap()
            .expect("a record must be dumped");
        let bytes = std::fs::read(&path).unwrap();
        let mut reader = TraceReader::open(&bytes).unwrap();
        assert_eq!(
            reader.next_event().unwrap(),
            Some(TraceEvent::FlightKey {
                plan_seed: 5,
                scenario_seed: 1,
                event: 2
            })
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
