//! The paper's experiment index E1–E20 as scenario constructors.
//!
//! Before the scenario engine existed these were bespoke functions in
//! `amoebot-bench`; they are now plain [`Scenario`] values so the same
//! definitions serve the benchmark harness (via thin wrappers), the
//! registry's batch runs, and the JSON reports. E10/E15/E16/E19 of the
//! design document are figure/recording entries with no round count of
//! their own, hence no scenario here.

use crate::spec::{MicroWorkload, PlacementSpec, Scenario, StructureAlgorithm, StructureSpec};

/// The standard 2D structure of the SPT/forest experiments: a `w × w/2`
/// parallelogram with roughly `n_target` amoebots.
pub fn standard_structure_spec(n_target: usize) -> StructureSpec {
    let w = ((2 * n_target) as f64).sqrt().ceil() as usize;
    StructureSpec::Parallelogram {
        a: w,
        b: (w / 2).max(1),
    }
}

/// E1 (Lemma 4): PASC distances along a chain of `m` amoebots.
pub fn e1_pasc_chain(m: usize) -> Scenario {
    Scenario::micro("e1-pasc-chain", 0, MicroWorkload::PascChain { m })
}

/// E2 (Corollary 5): PASC depths on a balanced binary tree.
pub fn e2_pasc_tree(levels: usize) -> Scenario {
    Scenario::micro("e2-pasc-tree", 0, MicroWorkload::PascTree { levels })
}

/// E3 (Corollary 6): weighted prefix sums on a chain.
pub fn e3_pasc_prefix(m: usize, weights: usize) -> Scenario {
    Scenario::micro(
        "e3-pasc-prefix",
        0,
        MicroWorkload::PascPrefix { m, weights },
    )
}

/// E4/E5 (Lemmas 14, 20): root-and-prune on a random tree.
pub fn e4_root_prune(n: usize, q: usize) -> Scenario {
    Scenario::micro("e4-root-prune", 7, MicroWorkload::RootPrune { n, q })
}

/// E6 (Lemma 21): the election primitive.
pub fn e6_election(n: usize, q: usize) -> Scenario {
    Scenario::micro("e6-election", 11, MicroWorkload::Election { n, q })
}

/// E7 (Lemma 23): the Q-centroid primitive.
pub fn e7_centroids(n: usize, q: usize) -> Scenario {
    Scenario::micro("e7-centroids", 13, MicroWorkload::Centroids { n, q })
}

/// E8 (Corollary 29): augmentation-set size.
pub fn e8_augmentation(n: usize, q: usize) -> Scenario {
    Scenario::micro("e8-augmentation", 17, MicroWorkload::Augmentation { n, q })
}

/// E9 (Lemmas 30, 31): centroid decomposition.
pub fn e9_decomposition(n: usize, q: usize) -> Scenario {
    Scenario::micro(
        "e9-decomposition",
        19,
        MicroWorkload::Decomposition { n, q },
    )
}

/// E11 (Theorem 39): SPT with `l` spread destinations on the standard
/// structure.
pub fn e11_spt(n_target: usize, l: usize) -> Scenario {
    Scenario::structure(
        "e11-spt",
        0,
        standard_structure_spec(n_target),
        PlacementSpec::First,
        PlacementSpec::Spread { k: l },
        StructureAlgorithm::Spt,
    )
}

/// E12 (Theorem 39): SPSP — source and a single far destination
/// (opposite corners, matching `spsp_rounds` in the benchmark harness).
pub fn e12_spsp(n_target: usize) -> Scenario {
    Scenario::structure(
        "e12-spsp",
        0,
        standard_structure_spec(n_target),
        PlacementSpec::First,
        PlacementSpec::Last,
        StructureAlgorithm::Spt,
    )
}

/// E13 (Theorem 39): SSSP — all nodes are destinations.
pub fn e13_sssp(n_target: usize) -> Scenario {
    Scenario::structure(
        "e13-sssp",
        0,
        standard_structure_spec(n_target),
        PlacementSpec::First,
        PlacementSpec::All,
        StructureAlgorithm::Spt,
    )
}

/// E14 (Lemma 40): the line algorithm with `k` spread sources.
pub fn e14_line(n: usize, k: usize) -> Scenario {
    Scenario::structure(
        "e14-line",
        0,
        StructureSpec::Line { n },
        PlacementSpec::Spread { k },
        PlacementSpec::All,
        StructureAlgorithm::LineForest,
    )
}

/// E17 (Theorem 56): the divide & conquer forest with `k` spread sources.
pub fn e17_forest(n_target: usize, k: usize) -> Scenario {
    Scenario::structure(
        "e17-forest",
        0,
        standard_structure_spec(n_target),
        PlacementSpec::Spread { k: k.max(2) },
        PlacementSpec::All,
        StructureAlgorithm::Forest,
    )
}

/// E18a: the BFS wavefront baseline.
pub fn e18a_wavefront(n_target: usize, k: usize) -> Scenario {
    Scenario::structure(
        "e18a-wavefront",
        0,
        standard_structure_spec(n_target),
        PlacementSpec::Spread { k },
        PlacementSpec::All,
        StructureAlgorithm::Wavefront,
    )
}

/// E18b: the sequential merging baseline.
pub fn e18b_sequential(n_target: usize, k: usize) -> Scenario {
    Scenario::structure(
        "e18b-sequential",
        0,
        standard_structure_spec(n_target),
        PlacementSpec::Spread { k },
        PlacementSpec::All,
        StructureAlgorithm::SequentialForest,
    )
}

/// E20 (Theorem 2 substitute): randomized leader election on a path.
pub fn e20_leader(n: usize, seed: u64) -> Scenario {
    Scenario::micro("e20-leader", seed, MicroWorkload::Leader { n })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::run_scenario;

    #[test]
    fn standard_structure_spec_hits_the_target() {
        let spec = standard_structure_spec(2048);
        if let StructureSpec::Parallelogram { a, b } = spec {
            let n = a * b;
            assert!((1800..=2600).contains(&n), "n = {n}");
        } else {
            panic!("expected a parallelogram");
        }
    }

    #[test]
    fn experiment_scenarios_pass_their_checks() {
        for sc in [
            e1_pasc_chain(64),
            e3_pasc_prefix(128, 16),
            e11_spt(128, 8),
            e13_sssp(128),
            e17_forest(128, 4),
            e18a_wavefront(128, 4),
        ] {
            let r = run_scenario(&sc);
            assert!(r.pass, "{} failed: {:?}", sc.name, r.checks);
        }
    }
}
