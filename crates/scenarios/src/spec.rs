//! Scenario descriptors: *what* to run, declaratively.
//!
//! A [`Scenario`] is a pure description — structure generator, terminal
//! placement, algorithm under test — plus a seed. Materialization and
//! execution live in [`crate::run`]; this split is what lets the batch
//! runner ship scenarios across threads (descriptors are `Send + Sync` and
//! cheap to clone) and lets reports reproduce a run from its JSON alone.

use amoebot_grid::random::{self, Placement};
use amoebot_grid::{shapes, AmoebotStructure, NodeId};
use rand::rngs::StdRng;
use rand::Rng;

/// Which structure to build on the triangular grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StructureSpec {
    /// A horizontal line of `n` amoebots.
    Line {
        /// Number of amoebots.
        n: usize,
    },
    /// An `a × b` parallelogram.
    Parallelogram {
        /// Columns.
        a: usize,
        /// Rows.
        b: usize,
    },
    /// An upward triangle with `side` amoebots per side.
    Triangle {
        /// Side length.
        side: usize,
    },
    /// A hexagon of the given radius.
    Hexagon {
        /// Radius (0 = single amoebot).
        radius: usize,
    },
    /// A comb (spine with teeth).
    Comb {
        /// Spine length.
        width: usize,
        /// Tooth length.
        tooth_len: usize,
    },
    /// A staircase of alternating E / SE runs.
    Staircase {
        /// Number of steps.
        steps: usize,
        /// Step length.
        step_len: usize,
    },
    /// A zigzag corridor.
    Zigzag {
        /// Number of segments.
        segments: usize,
        /// Segment length.
        len: usize,
    },
    /// A random hole-free blob of exactly `n` amoebots.
    RandomBlob {
        /// Number of amoebots.
        n: usize,
    },
    /// A random composition of primitive shapes.
    RandomMix {
        /// Number of pieces.
        pieces: usize,
        /// Characteristic piece size.
        scale: usize,
    },
    /// A random thin corridor.
    RandomSnake {
        /// Number of straight runs.
        segments: usize,
        /// Length of each run.
        seg_len: usize,
    },
}

impl StructureSpec {
    /// Builds the structure, consuming randomness for the random families.
    pub fn materialize(&self, rng: &mut StdRng) -> AmoebotStructure {
        let coords = match *self {
            StructureSpec::Line { n } => shapes::line(n),
            StructureSpec::Parallelogram { a, b } => shapes::parallelogram(a, b),
            StructureSpec::Triangle { side } => shapes::triangle(side),
            StructureSpec::Hexagon { radius } => shapes::hexagon(radius),
            StructureSpec::Comb { width, tooth_len } => shapes::comb(width, tooth_len),
            StructureSpec::Staircase { steps, step_len } => shapes::staircase(steps, step_len),
            StructureSpec::Zigzag { segments, len } => shapes::zigzag(segments, len),
            StructureSpec::RandomBlob { n } => random::random_structure(n, rng),
            StructureSpec::RandomMix { pieces, scale } => {
                random::random_shape_mix(pieces, scale, rng)
            }
            StructureSpec::RandomSnake { segments, seg_len } => {
                random::random_snake(segments, seg_len, rng)
            }
        };
        AmoebotStructure::new(coords).expect("structure generators produce connected sets")
    }

    /// Short human-readable label for scenario names.
    pub fn label(&self) -> String {
        match *self {
            StructureSpec::Line { n } => format!("line{n}"),
            StructureSpec::Parallelogram { a, b } => format!("par{a}x{b}"),
            StructureSpec::Triangle { side } => format!("tri{side}"),
            StructureSpec::Hexagon { radius } => format!("hex{radius}"),
            StructureSpec::Comb { width, tooth_len } => format!("comb{width}x{tooth_len}"),
            StructureSpec::Staircase { steps, step_len } => format!("stair{steps}x{step_len}"),
            StructureSpec::Zigzag { segments, len } => format!("zigzag{segments}x{len}"),
            StructureSpec::RandomBlob { n } => format!("blob{n}"),
            StructureSpec::RandomMix { pieces, scale } => format!("mix{pieces}x{scale}"),
            StructureSpec::RandomSnake { segments, seg_len } => {
                format!("snake{segments}x{seg_len}")
            }
        }
    }
}

/// How to pick terminal sets (sources / destinations) on a structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementSpec {
    /// The single node `#0`.
    First,
    /// The single node `#(n-1)` (the "opposite corner" for the shapes
    /// generated in id order).
    Last,
    /// Every node.
    All,
    /// `k` nodes spread evenly over the id range (deterministic, no
    /// randomness consumed) — the classic benchmark placement.
    Spread {
        /// Number of nodes (clamped to `n`).
        k: usize,
    },
    /// `k` nodes drawn by a [`Placement`] strategy.
    Random {
        /// Number of nodes (clamped to `n`).
        k: usize,
        /// The strategy (uniform / clustered / boundary).
        strategy: Placement,
    },
}

impl PlacementSpec {
    /// Materializes the placement on `structure`. Returns a sorted set of
    /// distinct nodes; `k` is clamped to the structure size.
    pub fn materialize(&self, structure: &AmoebotStructure, rng: &mut StdRng) -> Vec<NodeId> {
        let n = structure.len();
        match *self {
            PlacementSpec::First => vec![NodeId(0)],
            PlacementSpec::Last => vec![NodeId((n - 1) as u32)],
            PlacementSpec::All => structure.nodes().collect(),
            PlacementSpec::Spread { k } => {
                let k = k.clamp(1, n);
                let mut out: Vec<NodeId> = (0..k)
                    .map(|i| NodeId((i * (n - 1) / (k - 1).max(1)) as u32))
                    .collect();
                out.dedup();
                out
            }
            PlacementSpec::Random { k, strategy } => {
                random::random_placement(structure, k.clamp(1, n), strategy, rng)
            }
        }
    }

    /// Short label for scenario names.
    pub fn label(&self) -> String {
        match *self {
            PlacementSpec::First => "first".to_string(),
            PlacementSpec::Last => "last".to_string(),
            PlacementSpec::All => "all".to_string(),
            PlacementSpec::Spread { k } => format!("spread{k}"),
            PlacementSpec::Random { k, strategy } => {
                let s = match strategy {
                    Placement::Uniform => "uni",
                    Placement::Clustered => "clu",
                    Placement::Boundary => "bnd",
                };
                format!("rand{k}{s}")
            }
        }
    }
}

/// Structure-based algorithm under test. Every variant produces a parent
/// forest that the runner cross-validates against the centralized BFS
/// ground truth ([`amoebot_grid::validate_forest`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StructureAlgorithm {
    /// The divide & conquer shortest path forest (Theorem 56).
    Forest,
    /// The shortest path tree from `sources[0]` (Theorem 39).
    Spt,
    /// The line algorithm (Lemma 40); requires a [`StructureSpec::Line`].
    LineForest,
    /// The circuit-less BFS wavefront baseline.
    Wavefront,
    /// The sequential merging baseline (`O(k log n)`).
    SequentialForest,
}

impl StructureAlgorithm {
    /// Short label for scenario names.
    pub fn label(&self) -> &'static str {
        match self {
            StructureAlgorithm::Forest => "forest",
            StructureAlgorithm::Spt => "spt",
            StructureAlgorithm::LineForest => "line",
            StructureAlgorithm::Wavefront => "wavefront",
            StructureAlgorithm::SequentialForest => "sequential",
        }
    }
}

/// Non-structure workloads: the chain/tree micro experiments (E1–E9, E20)
/// that run on synthetic topologies rather than grid structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroWorkload {
    /// E1: PASC on a chain of `m` amoebots.
    PascChain {
        /// Chain length.
        m: usize,
    },
    /// E2: PASC on a balanced binary tree with `levels` levels.
    PascTree {
        /// Tree levels (`n = 2^levels - 1`).
        levels: usize,
    },
    /// E3: weighted prefix sums on a chain.
    PascPrefix {
        /// Chain length.
        m: usize,
        /// Number of unit weights, spread evenly.
        weights: usize,
    },
    /// E4/E5: root-and-prune on a random tree.
    RootPrune {
        /// Tree size.
        n: usize,
        /// `|Q|`.
        q: usize,
    },
    /// E6: the election primitive.
    Election {
        /// Tree size.
        n: usize,
        /// `|Q|`.
        q: usize,
    },
    /// E7: the Q-centroid primitive.
    Centroids {
        /// Tree size.
        n: usize,
        /// `|Q|`.
        q: usize,
    },
    /// E8: augmentation-set size (Corollary 29).
    Augmentation {
        /// Tree size.
        n: usize,
        /// `|Q|`.
        q: usize,
    },
    /// E9: centroid decomposition rounds and depth.
    Decomposition {
        /// Tree size.
        n: usize,
        /// `|Q|`.
        q: usize,
    },
    /// E20: randomized leader election on a path.
    Leader {
        /// Path length.
        n: usize,
    },
    /// Circuit-engine throughput: a random blob of `n` amoebots in the
    /// global-circuit configuration, `rounds` broadcast rounds. Validates
    /// that every amoebot hears every broadcast — the cheapest
    /// structure-wide cross-check, which is what lets this family sweep to
    /// 10^6 nodes inside the CI time budget.
    BlobBroadcast {
        /// Structure size.
        n: usize,
        /// Broadcast rounds to run.
        rounds: usize,
    },
    /// Runtime churn on a random blob under the global-circuit broadcast
    /// configuration: `events` seeded churn events (family drawn from the
    /// scenario seed) of ~`per_event` node joins/leaves each. After
    /// *every* event the incrementally edited world is cross-validated
    /// against a from-scratch rebuild oracle
    /// ([`amoebot_dynamics::verify_against_rebuild`]) and a broadcast
    /// must still reach every live amoebot.
    BlobChurnBroadcast {
        /// Initial structure size.
        n: usize,
        /// Number of churn events.
        events: usize,
        /// Target node joins/leaves per event.
        per_event: usize,
    },
    /// Grow/shrink churn on a line with an SPT restart
    /// ([`amoebot_spf::churn::restart_spt`]) after every event: terminals
    /// are remapped through the churn id map (casualties dropped /
    /// re-anchored) and the restarted tree is cross-validated against
    /// centralized BFS on the post-churn snapshot.
    LineChurnSpt {
        /// Initial line length.
        n: usize,
        /// Number of churn events.
        events: usize,
        /// Target node joins/leaves per event.
        per_event: usize,
    },
    /// Beep-level adversary (drop / spurious-inject menu) on a random
    /// blob under the singleton flood relay: `events` seeded fault events
    /// hit the broadcast, the rebuild oracle
    /// ([`amoebot_dynamics::verify_against_rebuild`]) runs after every
    /// event, and once the burst ends the informed set must re-converge
    /// to all live amoebots within the flood bound (`n + 2` rounds).
    FaultyBlobFlood {
        /// Structure size.
        n: usize,
        /// Number of fault events.
        events: usize,
        /// Target faults per event.
        per_event: usize,
    },
    /// Stuck-at pin adversary on a line's global circuit: events freeze
    /// random pins (cutting the circuit), the final event releases them,
    /// and a repair sweep must re-converge the broadcast within O(1)
    /// rounds — cross-checked against the rebuild oracle per event.
    StuckLineBroadcast {
        /// Line length.
        n: usize,
        /// Number of fault events.
        events: usize,
        /// Target pins frozen per event.
        per_event: usize,
    },
    /// Non-fair scheduling adversary (starve-a-region / alternate-halves
    /// / bursts-then-silence menu) on the blob flood relay: starved
    /// amoebots neither relay nor absorb, yet the informed set must
    /// re-converge within the flood bound once fairness returns.
    UnfairBlobFlood {
        /// Structure size.
        n: usize,
        /// Number of scheduling events.
        events: usize,
        /// Scale of each event's starvation set.
        per_event: usize,
    },
    /// Crash-recovery adversary on the blob global circuit: each event
    /// wipes random amoebots' circuit state (they reboot via the rejoin
    /// protocol but lose their informed bit) and the broadcast must
    /// re-reach everyone within O(1) rounds after the burst.
    CrashRecoverBroadcast {
        /// Structure size.
        n: usize,
        /// Number of crash events.
        events: usize,
        /// Target amoebots crashed per event.
        per_event: usize,
    },
    /// Deliberately-broken adversary variant: the repair sweep is
    /// sabotaged, so the self-stabilization checker *must* trip and its
    /// FAIL line must carry the fault-plan seed and event index.
    /// Registered (non-randomized) so tests and CI can prove the
    /// adversary checks actually fire.
    AdversarySelfTestFail,
    /// Always fails validation. Registered (non-randomized) so tests and
    /// CI can prove the runner's non-zero exit path actually fires.
    SelfTestFail,
}

/// The workload of a scenario: either a structure-based shortest-path
/// problem or a micro experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Workload {
    /// Build `structure`, place `sources`/`dests`, run `algorithm`,
    /// cross-validate the resulting forest against centralized BFS.
    Structure {
        /// The structure generator.
        structure: StructureSpec,
        /// Source placement (`S`).
        sources: PlacementSpec,
        /// Destination placement (`D`).
        dests: PlacementSpec,
        /// Algorithm under test.
        algorithm: StructureAlgorithm,
    },
    /// A micro experiment with its own synthetic world.
    Micro(MicroWorkload),
}

/// A fully described, reproducible experiment: workload + seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Registry family this scenario came from.
    pub family: String,
    /// Human-readable name (family + parameter labels).
    pub name: String,
    /// Scenario-local seed; all randomness (structure growth, placements,
    /// random trees, coin tosses) derives from it.
    pub seed: u64,
    /// What to run.
    pub workload: Workload,
}

impl Scenario {
    /// A structure scenario with a name derived from its parts.
    pub fn structure(
        family: &str,
        seed: u64,
        structure: StructureSpec,
        sources: PlacementSpec,
        dests: PlacementSpec,
        algorithm: StructureAlgorithm,
    ) -> Scenario {
        let name = format!(
            "{family}/{}/{}-s{}-d{}",
            structure.label(),
            algorithm.label(),
            sources.label(),
            dests.label(),
        );
        Scenario {
            family: family.to_string(),
            name,
            seed,
            workload: Workload::Structure {
                structure,
                sources,
                dests,
                algorithm,
            },
        }
    }

    /// A micro scenario with a name derived from the workload.
    pub fn micro(family: &str, seed: u64, micro: MicroWorkload) -> Scenario {
        let label = match micro {
            MicroWorkload::PascChain { m } => format!("m{m}"),
            MicroWorkload::PascTree { levels } => format!("levels{levels}"),
            MicroWorkload::PascPrefix { m, weights } => format!("m{m}-w{weights}"),
            MicroWorkload::RootPrune { n, q }
            | MicroWorkload::Election { n, q }
            | MicroWorkload::Centroids { n, q }
            | MicroWorkload::Augmentation { n, q }
            | MicroWorkload::Decomposition { n, q } => format!("n{n}-q{q}"),
            MicroWorkload::Leader { n } => format!("n{n}"),
            MicroWorkload::BlobBroadcast { n, rounds } => format!("n{n}-r{rounds}"),
            MicroWorkload::BlobChurnBroadcast {
                n,
                events,
                per_event,
            }
            | MicroWorkload::LineChurnSpt {
                n,
                events,
                per_event,
            }
            | MicroWorkload::FaultyBlobFlood {
                n,
                events,
                per_event,
            }
            | MicroWorkload::StuckLineBroadcast {
                n,
                events,
                per_event,
            }
            | MicroWorkload::UnfairBlobFlood {
                n,
                events,
                per_event,
            }
            | MicroWorkload::CrashRecoverBroadcast {
                n,
                events,
                per_event,
            } => {
                format!("n{n}-e{events}x{per_event}")
            }
            MicroWorkload::AdversarySelfTestFail => "broken-repair".to_string(),
            MicroWorkload::SelfTestFail => "always-fails".to_string(),
        };
        Scenario {
            family: family.to_string(),
            name: format!("{family}/{label}"),
            seed,
            workload: Workload::Micro(micro),
        }
    }
}

/// Derives an independent RNG stream for `purpose` from a scenario seed
/// (SplitMix64 over the seed and a purpose tag, so adding a consumer never
/// shifts the streams of the others).
pub fn derive_rng(seed: u64, purpose: u64) -> StdRng {
    use rand::SeedableRng;
    let mut z = seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(purpose.wrapping_mul(0xD1B54A32D192ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

/// Uniform pick out of a fixed menu, driven by an RNG (helper for family
/// builders).
pub fn pick<'a, T>(rng: &mut StdRng, menu: &'a [T]) -> &'a T {
    &menu[rng.gen_range(0..menu.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn materialization_is_deterministic() {
        let spec = StructureSpec::RandomBlob { n: 40 };
        let a = spec.materialize(&mut derive_rng(7, 0));
        let b = spec.materialize(&mut derive_rng(7, 0));
        assert_eq!(a.len(), b.len());
        for v in a.nodes() {
            assert_eq!(a.coord(v), b.coord(v));
        }
    }

    #[test]
    fn placements_respect_clamping() {
        let s = StructureSpec::Parallelogram { a: 4, b: 3 }.materialize(&mut derive_rng(0, 0));
        let p = PlacementSpec::Spread { k: 100 }.materialize(&s, &mut derive_rng(0, 1));
        assert!(p.len() <= s.len());
        let r = PlacementSpec::Random {
            k: 100,
            strategy: Placement::Uniform,
        }
        .materialize(&s, &mut derive_rng(0, 2));
        assert_eq!(r.len(), s.len());
    }

    #[test]
    fn scenario_names_are_descriptive() {
        let sc = Scenario::structure(
            "random-forest",
            3,
            StructureSpec::RandomBlob { n: 50 },
            PlacementSpec::Random {
                k: 4,
                strategy: Placement::Uniform,
            },
            PlacementSpec::All,
            StructureAlgorithm::Forest,
        );
        assert_eq!(sc.name, "random-forest/blob50/forest-srand4uni-dall");
        let mc = Scenario::micro("e1-pasc-chain", 0, MicroWorkload::PascChain { m: 64 });
        assert_eq!(mc.name, "e1-pasc-chain/m64");
    }

    #[test]
    fn derive_rng_streams_are_independent() {
        use rand::Rng;
        let mut a = derive_rng(1, 0);
        let mut b = derive_rng(1, 1);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0..u64::MAX)).collect();
        assert_ne!(xs, ys);
    }
}
