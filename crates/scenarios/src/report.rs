//! Machine-readable batch reports.
//!
//! [`BatchReport`] aggregates a batch's [`ScenarioResult`]s and renders
//! the canonical JSON document. Two renderings exist:
//!
//! * the **canonical** report (`include_timing = false`) is byte-identical
//!   for identical `(master_seed, scenarios)` inputs — wall-clock fields
//!   are omitted entirely, everything else is integers and strings with
//!   fixed ordering;
//! * the **timed** report (`include_timing = true`) adds per-scenario and
//!   total `wall_micros` for performance tracking.

use amoebot_telemetry::Metrics;

use crate::json::Json;
use crate::run::ScenarioResult;

/// Schema identifier embedded in every report.
pub const SCHEMA: &str = "spf-scenario-report/v1";

/// Schema identifier of the standalone `--metrics-json` document.
pub const METRICS_SCHEMA: &str = "spf-metrics-report/v1";

/// The shared JSON report envelope.
///
/// Every document the toolchain emits — `spf-scenario-report/v1`,
/// `spf-metrics-report/v1`, `spf-sweep-report/v1`, and the
/// scenario-server's `query` responses — opens with the same `schema`
/// header and obeys the same canonical rule: wall-clock and execution
/// provenance go through [`Envelope::timed_field`], which drops them in
/// the `--no-timing` rendering, so the canonical form of every schema is
/// byte-stable across runs and thread counts by construction.
#[derive(Debug, Clone)]
pub struct Envelope {
    doc: Json,
    include_timing: bool,
}

impl Envelope {
    /// Opens an envelope: `{"schema": <schema>, ...}`.
    pub fn new(schema: &str, include_timing: bool) -> Envelope {
        Envelope {
            doc: Json::object().field("schema", schema),
            include_timing,
        }
    }

    /// Whether this rendering includes timing fields.
    pub fn timing(&self) -> bool {
        self.include_timing
    }

    /// Appends a content field (present in both renderings).
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Envelope {
        self.doc = self.doc.field(key, value);
        self
    }

    /// Appends a timing/provenance field — dropped from the canonical
    /// rendering.
    pub fn timed_field(self, key: &str, value: impl Into<Json>) -> Envelope {
        if self.include_timing {
            self.field(key, value)
        } else {
            self
        }
    }

    /// Appends a metrics registry (skipped when empty), honoring the
    /// envelope's timing mode for the timer block.
    pub fn metrics(self, m: &Metrics) -> Envelope {
        if m.is_empty() {
            return self;
        }
        let timing = self.include_timing;
        self.field("metrics", metrics_to_json(m, timing))
    }

    /// Seals the envelope into the finished document.
    pub fn finish(self) -> Json {
        self.doc
    }
}

/// Renders one metrics registry as a JSON object. Counters and gauges are
/// deterministic and always included (sorted by name); timers are
/// wall-clock derived and appear only with `include_timing` — each as
/// count/sum/min/max plus the p50/p90/p99 estimates from the log2
/// buckets — so the no-timing rendering stays byte-stable across runs.
pub fn metrics_to_json(m: &Metrics, include_timing: bool) -> Json {
    let mut counters = Json::object();
    for (name, v) in m.counters_sorted() {
        counters = counters.field(name, v);
    }
    let mut doc = Json::object().field("counters", counters);
    let gauges = m.gauges_sorted();
    if !gauges.is_empty() {
        let mut g = Json::object();
        for (name, v) in gauges {
            g = g.field(name, v);
        }
        doc = doc.field("gauges", g);
    }
    if include_timing {
        let mut timers = Json::object();
        for (name, h) in m.timers_sorted() {
            timers = timers.field(
                name,
                Json::object()
                    .field("count", h.count)
                    .field("sum", h.sum)
                    .field("min", h.min)
                    .field("max", h.max)
                    .field("p50", h.p50)
                    .field("p90", h.p90)
                    .field("p99", h.p99),
            );
        }
        doc = doc.field("timers", timers);
    }
    doc
}

/// Builds the standalone `--metrics-json` document: the merge of every
/// result's registry, next to the scenario count it aggregates. With
/// `include_timing` disabled the document is canonical (counters and
/// gauges only).
pub fn metrics_report(results: &[ScenarioResult], include_timing: bool) -> Json {
    let mut merged = Metrics::new();
    for r in results {
        merged.merge(&r.metrics);
    }
    Envelope::new(METRICS_SCHEMA, include_timing)
        .field("scenarios", results.len())
        .field("metrics", metrics_to_json(&merged, include_timing))
        .finish()
}

/// An aggregated batch outcome.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// The master seed the batch was derived from.
    pub master_seed: u64,
    /// Worker threads used (recorded for provenance; never affects
    /// content).
    pub threads: usize,
    /// Per-scenario results, in scenario order.
    pub results: Vec<ScenarioResult>,
}

impl BatchReport {
    /// Number of passing scenarios.
    pub fn passed(&self) -> usize {
        self.results.iter().filter(|r| r.pass).count()
    }

    /// Number of failing scenarios.
    pub fn failed(&self) -> usize {
        self.results.len() - self.passed()
    }

    /// Renders the report as a JSON document. With `include_timing`
    /// disabled the output is the canonical byte-stable form.
    pub fn to_json(&self, include_timing: bool) -> Json {
        let scenarios: Vec<Json> = self
            .results
            .iter()
            .enumerate()
            .map(|(id, r)| {
                let checks: Vec<Json> = r
                    .checks
                    .iter()
                    .map(|c| {
                        let mut doc = Json::object()
                            .field("name", c.name.as_str())
                            .field("pass", c.pass);
                        if !c.pass {
                            doc = doc.field("detail", c.detail.as_str());
                        }
                        doc
                    })
                    .collect();
                let mut doc = Json::object()
                    .field("id", id)
                    .field("family", r.family.as_str())
                    .field("name", r.name.as_str())
                    .field("seed", r.seed)
                    .field("n", r.n)
                    .field("k", r.k)
                    .field("l", r.l)
                    .field("rounds", r.rounds)
                    .field("beeps", r.beeps);
                if include_timing {
                    doc = doc.field("wall_micros", r.wall_micros);
                }
                if !r.metrics.is_empty() {
                    doc = doc.field("metrics", metrics_to_json(&r.metrics, include_timing));
                }
                doc.field("pass", r.pass)
                    .field("checks", Json::Array(checks))
            })
            .collect();

        let total_rounds: u64 = self.results.iter().map(|r| r.rounds).sum();
        let total_beeps: u64 = self.results.iter().map(|r| r.beeps).sum();
        let mut summary = Json::object()
            .field("passed", self.passed())
            .field("failed", self.failed())
            .field("total_rounds", total_rounds)
            .field("total_beeps", total_beeps);
        if include_timing {
            let total_wall: u64 = self.results.iter().map(|r| r.wall_micros).sum();
            summary = summary.field("total_wall_micros", total_wall);
        }

        // Worker count is execution provenance, like wall-clock: it
        // never affects content, and the canonical report must be
        // byte-identical across thread counts.
        Envelope::new(SCHEMA, include_timing)
            .field("master_seed", self.master_seed)
            .field("count", self.results.len())
            .timed_field("threads", self.threads)
            .field("scenarios", Json::Array(scenarios))
            .field("summary", summary)
            .finish()
    }

    /// The canonical pretty-printed JSON string (no timing; byte-stable).
    pub fn canonical_json(&self) -> String {
        self.to_json(false).render_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{run_batch, Threads};
    use crate::registry::default_registry;

    #[test]
    fn report_counts_and_schema() {
        let registry = default_registry();
        let scenarios = registry.random_suite(11, 6, &[]);
        let results = run_batch(&scenarios, Threads::Count(2));
        let report = BatchReport {
            master_seed: 11,
            threads: 2,
            results,
        };
        assert_eq!(report.passed() + report.failed(), 6);
        let text = report.canonical_json();
        assert!(text.contains(SCHEMA));
        assert!(text.contains("\"rounds\""));
        assert!(!text.contains("wall_micros"));
        let timed = report.to_json(true).render_pretty();
        assert!(timed.contains("wall_micros"));
    }
}
