//! Machine-readable batch reports.
//!
//! [`BatchReport`] aggregates a batch's [`ScenarioResult`]s and renders
//! the canonical JSON document. Two renderings exist:
//!
//! * the **canonical** report (`include_timing = false`) is byte-identical
//!   for identical `(master_seed, scenarios)` inputs — wall-clock fields
//!   are omitted entirely, everything else is integers and strings with
//!   fixed ordering;
//! * the **timed** report (`include_timing = true`) adds per-scenario and
//!   total `wall_micros` for performance tracking.

use crate::json::Json;
use crate::run::ScenarioResult;

/// Schema identifier embedded in every report.
pub const SCHEMA: &str = "spf-scenario-report/v1";

/// An aggregated batch outcome.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// The master seed the batch was derived from.
    pub master_seed: u64,
    /// Worker threads used (recorded for provenance; never affects
    /// content).
    pub threads: usize,
    /// Per-scenario results, in scenario order.
    pub results: Vec<ScenarioResult>,
}

impl BatchReport {
    /// Number of passing scenarios.
    pub fn passed(&self) -> usize {
        self.results.iter().filter(|r| r.pass).count()
    }

    /// Number of failing scenarios.
    pub fn failed(&self) -> usize {
        self.results.len() - self.passed()
    }

    /// Renders the report as a JSON document. With `include_timing`
    /// disabled the output is the canonical byte-stable form.
    pub fn to_json(&self, include_timing: bool) -> Json {
        let scenarios: Vec<Json> = self
            .results
            .iter()
            .enumerate()
            .map(|(id, r)| {
                let checks: Vec<Json> = r
                    .checks
                    .iter()
                    .map(|c| {
                        let mut doc = Json::object()
                            .field("name", c.name.as_str())
                            .field("pass", c.pass);
                        if !c.pass {
                            doc = doc.field("detail", c.detail.as_str());
                        }
                        doc
                    })
                    .collect();
                let mut doc = Json::object()
                    .field("id", id)
                    .field("family", r.family.as_str())
                    .field("name", r.name.as_str())
                    .field("seed", r.seed)
                    .field("n", r.n)
                    .field("k", r.k)
                    .field("l", r.l)
                    .field("rounds", r.rounds)
                    .field("beeps", r.beeps);
                if include_timing {
                    doc = doc.field("wall_micros", r.wall_micros);
                }
                doc.field("pass", r.pass)
                    .field("checks", Json::Array(checks))
            })
            .collect();

        let total_rounds: u64 = self.results.iter().map(|r| r.rounds).sum();
        let total_beeps: u64 = self.results.iter().map(|r| r.beeps).sum();
        let mut summary = Json::object()
            .field("passed", self.passed())
            .field("failed", self.failed())
            .field("total_rounds", total_rounds)
            .field("total_beeps", total_beeps);
        if include_timing {
            let total_wall: u64 = self.results.iter().map(|r| r.wall_micros).sum();
            summary = summary.field("total_wall_micros", total_wall);
        }

        let mut doc = Json::object()
            .field("schema", SCHEMA)
            .field("master_seed", self.master_seed)
            .field("count", self.results.len());
        if include_timing {
            // Worker count is execution provenance, like wall-clock: it
            // never affects content, and the canonical report must be
            // byte-identical across thread counts.
            doc = doc.field("threads", self.threads);
        }
        doc.field("scenarios", Json::Array(scenarios))
            .field("summary", summary)
    }

    /// The canonical pretty-printed JSON string (no timing; byte-stable).
    pub fn canonical_json(&self) -> String {
        self.to_json(false).render_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{run_batch, Threads};
    use crate::registry::default_registry;

    #[test]
    fn report_counts_and_schema() {
        let registry = default_registry();
        let scenarios = registry.random_suite(11, 6, &[]);
        let results = run_batch(&scenarios, Threads::Count(2));
        let report = BatchReport {
            master_seed: 11,
            threads: 2,
            results,
        };
        assert_eq!(report.passed() + report.failed(), 6);
        let text = report.canonical_json();
        assert!(text.contains(SCHEMA));
        assert!(text.contains("\"rounds\""));
        assert!(!text.contains("wall_micros"));
        let timed = report.to_json(true).render_pretty();
        assert!(timed.contains("wall_micros"));
    }
}
