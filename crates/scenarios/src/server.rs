//! `scenario-server` — the batch engine as a persistent, session-oriented
//! service (DESIGN.md §1g).
//!
//! A **session** is a named, live [`DynamicWorld`] (plus an optional
//! churn schedule) that survives across requests: a client creates it
//! once, then steps, mutates, queries and snapshots it incrementally —
//! the interactive counterpart to the one-shot `scenario-runner` batch.
//! Session semantics deliberately mirror the `blob-broadcast` /
//! `blob-churn-broadcast` registry families (same seed derivations, same
//! origin stride, same churn-plan construction), so a server session
//! stepped `n` times reports the same rounds/beeps a batch run of the
//! same scenario would.
//!
//! # Wire protocol
//!
//! Length-prefixed JSON frames over TCP or stdio: each frame is a `u32`
//! little-endian payload length followed by that many bytes of JSON
//! (capped at [`MAX_FRAME`]). Requests are objects with an `"op"` field:
//!
//! ```text
//! {"op":"create","session":S,"family":F,"size":N,"seed":N[,"events":N,"per_event":N]}
//! {"op":"step","session":S[,"n":K]}         run K broadcast rounds (default 1)
//! {"op":"mutate","session":S[,"verify":B]}  apply the next churn event
//! {"op":"fault","session":S[,"verify":B]}   stage the next fault event + 1 faulted round
//! {"op":"query","session":S[,"timing":B]}   spf-session-report/v1 envelope
//! {"op":"stats","session":S}                spf-session-stats/v1 metrics envelope
//! {"op":"watch","session":S[,"frames":N]}   stream N stats frames (default 1)
//! {"op":"snapshot","session":S}             write <dir>/<S>.session.spfs
//! {"op":"restore","session":S}              load <dir>/<S>.session.spfs
//! {"op":"close","session":S}                drop the session
//! {"op":"shutdown"}                         snapshot all live sessions, stop
//! ```
//!
//! Control responses are `{"ok":true,...}` / `{"ok":false,"error":...}`;
//! `query` responses use the shared [`Envelope`] (schema
//! [`SESSION_SCHEMA`]) and are canonical without `"timing":true`, like
//! every other report in the workspace.
//!
//! # Observability
//!
//! Every session keeps deterministic **request counters** (total plus a
//! per-op-kind breakdown; no wall-clock anywhere), surfaced by `query`
//! and persisted through snapshot/restore. The `stats` op renders the
//! canonical per-session metrics envelope ([`STATS_SCHEMA`]): rounds,
//! beeps, relabel counters, phase-timer percentile summaries and the
//! request counters — byte-identical regardless of shard count. `watch`
//! turns a connection into a live feed: after the ack, the server pushes
//! one `stats` frame per completed `step`/`mutate`/`fault` batch on the
//! watched session (wherever that batch came from) until the requested
//! frame count is served, then the connection resumes normal requests.
//! Like `shutdown`, `watch` is connection-level: it needs a framed
//! stream to push into, so [`ServerHandle::request`] rejects it.
//!
//! # Concurrency
//!
//! Sessions shard over a fixed worker pool by FNV of the session name;
//! each worker owns its shard's sessions outright (no locks around world
//! state) and drains a channel, so requests to *different* sessions
//! batch across workers while requests to the *same* session serialize
//! naturally. Per-session determinism follows: a session's state depends
//! only on the sequence of requests it received, never on interleaving.
//!
//! # Graceful restart
//!
//! On `shutdown` (or EOF in stdio mode) every live session is snapshotted
//! to the `--snapshot-dir` as a `SESSION`-kind `SPFS` blob. A server
//! started over the same directory finds and resumes them — `create` a
//! session, step it, kill the server, restart, and `query` picks up
//! where it left off. (Signal handlers need libc; the container builds
//! without it, so SIGTERM-initiated snapshots ride on the wire-level
//! `shutdown` op / EOF instead.)

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;

use amoebot_dynamics::{
    verify_against_rebuild, ChurnPlan, DynamicWorld, FaultFamily, FaultPlan, ALL_CHURN_FAMILIES,
    ALL_FAULT_FAMILIES,
};
use amoebot_grid::{shapes, AmoebotStructure};
use amoebot_telemetry::wire::{self, SnapshotReader, SnapshotWriter, WireError};
use rand::RngCore;

use crate::batch::Threads;
use crate::json::Json;
use crate::report::Envelope;
use crate::spec::{derive_rng, pick};

/// Schema identifier of `query` responses.
pub const SESSION_SCHEMA: &str = "spf-session-report/v1";

/// Schema identifier of `stats` responses and `watch` frames.
pub const STATS_SCHEMA: &str = "spf-session-stats/v1";

/// Session-op labels, in render order; indexes into `Session::ops`.
/// Counted on arrival (before execution), so errored requests count too:
/// the counters measure load, not success.
const OP_KINDS: [&str; 8] = [
    "create", "fault", "mutate", "query", "snapshot", "stats", "step", "watch",
];

/// Hard cap on a single wire frame (requests *and* responses).
pub const MAX_FRAME: usize = 1 << 24;

/// The origin stride of the broadcast workload — the same Fibonacci hash
/// `run_micro` uses, so session steps and batch rounds pick identical
/// origins on an unchurned structure.
const ORIGIN_STRIDE: usize = 0x9E3779B9;

// ---- Frame codec.

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    assert!(payload.len() <= MAX_FRAME, "frame over MAX_FRAME");
    // One write per frame: splitting the length prefix into its own
    // write stalls raw TCP streams on Nagle + delayed-ACK interplay.
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` on clean EOF at a frame boundary; EOF
/// mid-frame and oversized lengths are errors.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {MAX_FRAME}"),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(Some(buf))
}

// ---- Sessions.

/// A live named world: the unit the server shards, steps and snapshots.
pub struct Session {
    name: String,
    family: String,
    size: usize,
    seed: u64,
    /// Broadcast rounds issued so far (the origin-stride cursor).
    steps: u64,
    dw: DynamicWorld,
    plan: Option<ChurnPlan>,
    next_event: usize,
    fplan: Option<FaultPlan>,
    next_fault: usize,
    /// Per-kind request counters (see [`OP_KINDS`]): deterministic
    /// uptime accounting, persisted through snapshot/restore.
    ops: [u64; OP_KINDS.len()],
}

/// Session names double as snapshot file stems, so they are restricted
/// to a filesystem- and shard-stable charset.
fn valid_session_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
        && !name.starts_with('.')
}

impl Session {
    /// Builds a fresh session, mirroring the registry families' seed
    /// derivations (structure from `derive_rng(seed, 0)`, churn family
    /// from `(seed, 5)`, schedule seed from `(seed, 6)`).
    pub fn create(
        name: &str,
        family: &str,
        size: usize,
        seed: u64,
        events: usize,
        per_event: usize,
    ) -> Result<Session, String> {
        if !valid_session_name(name) {
            return Err(format!(
                "invalid session name {name:?} (1-64 chars of [A-Za-z0-9._-], no leading dot)"
            ));
        }
        if size == 0 {
            return Err("size must be at least 1".to_string());
        }
        let (plan, fplan) = match family {
            "blob-broadcast" => (None, None),
            "blob-churn-broadcast" => {
                let fam = *pick(&mut derive_rng(seed, 5), &ALL_CHURN_FAMILIES);
                let schedule_seed = derive_rng(seed, 6).next_u64();
                (
                    Some(ChurnPlan::new(schedule_seed, fam, events, per_event)),
                    None,
                )
            }
            "blob-fault-broadcast" => {
                let fam = *pick(&mut derive_rng(seed, 5), &ALL_FAULT_FAMILIES);
                let schedule_seed = derive_rng(seed, 6).next_u64();
                (
                    None,
                    Some(FaultPlan::new(schedule_seed, fam, events, per_event)),
                )
            }
            other => {
                return Err(format!(
                    "unknown session family {other:?} (expected blob-broadcast, \
                     blob-churn-broadcast or blob-fault-broadcast)"
                ))
            }
        };
        let s = AmoebotStructure::new(shapes::random_blob(size, &mut derive_rng(seed, 0)))
            .map_err(|e| format!("structure generation failed: {e:?}"))?;
        let mut dw = DynamicWorld::new(&s, 2);
        for v in 0..size {
            dw.world_mut().global_pin_config(v);
        }
        let mut session = Session {
            name: name.to_string(),
            family: family.to_string(),
            size,
            seed,
            steps: 0,
            dw,
            plan,
            next_event: 0,
            fplan,
            next_fault: 0,
            ops: [0; OP_KINDS.len()],
        };
        // A session is born having served its `create`.
        session.count_op("create");
        Ok(session)
    }

    /// Bumps the request counter for `op` (unknown kinds are ignored).
    fn count_op(&mut self, op: &str) {
        if let Some(i) = OP_KINDS.iter().position(|k| *k == op) {
            self.ops[i] += 1;
        }
    }

    /// Total requests this session has served across its whole life,
    /// snapshots included.
    fn uptime_requests(&self) -> u64 {
        self.ops.iter().sum()
    }

    /// The non-zero per-kind counters as a JSON object, in the fixed
    /// [`OP_KINDS`] order.
    fn ops_json(&self) -> Json {
        let mut doc = Json::object();
        for (kind, &count) in OP_KINDS.iter().zip(&self.ops) {
            if count > 0 {
                doc = doc.field(kind, count);
            }
        }
        doc
    }

    /// Runs `k` broadcast rounds (origin-stride beep + tick each) and
    /// returns the world's cumulative `(rounds, beeps)`.
    pub fn step(&mut self, k: usize) -> Result<(u64, u64), String> {
        for _ in 0..k {
            let live = self.dw.editor().live_ids();
            if live.is_empty() {
                return Err("session has no live amoebots left".to_string());
            }
            let origin = live[(self.steps as usize).wrapping_mul(ORIGIN_STRIDE) % live.len()];
            self.dw.world_mut().beep(origin as usize, 0);
            self.dw.world_mut().tick();
            self.steps += 1;
        }
        Ok((self.dw.world().rounds(), self.dw.world().beeps_sent()))
    }

    /// Applies the next event of the session's churn schedule.
    pub fn mutate(&mut self, verify: bool) -> Result<Json, String> {
        let plan = self
            .plan
            .ok_or("session has no churn plan (created as blob-broadcast)")?;
        if self.next_event >= plan.events {
            return Err(format!(
                "churn schedule exhausted after {} events",
                plan.events
            ));
        }
        let event = self.next_event;
        let applied = plan.apply(&mut self.dw, event);
        for v in &applied.inserted {
            self.dw.world_mut().global_pin_config(v.index());
        }
        self.next_event += 1;
        let holes_ok = self.dw.revalidate_edited_chunks();
        let mut doc = Json::object()
            .field("ok", true)
            .field("event", event)
            .field("inserted", applied.inserted.len())
            .field("removed", applied.removed.len())
            .field("n", self.dw.len())
            .field("holes_ok", holes_ok);
        if verify {
            doc = doc.field("oracle_ok", verify_against_rebuild(&self.dw).is_ok());
        }
        Ok(doc)
    }

    /// Stages the next event of the session's fault schedule and runs
    /// one *faulted* broadcast round under it: crashed amoebots reboot
    /// into the global configuration (informed-state loss is the
    /// algorithm's problem, not the session's), the origin-stride source
    /// beeps unless the event's scheduler mask starves it, and the tick
    /// applies the staged drops/injects.
    pub fn fault(&mut self, verify: bool) -> Result<Json, String> {
        let plan = self
            .fplan
            .ok_or("session has no fault plan (create it as blob-fault-broadcast)")?;
        if self.next_fault >= plan.events {
            return Err(format!(
                "fault schedule exhausted after {} events",
                plan.events
            ));
        }
        let event = self.next_fault;
        let staged = plan.stage(&mut self.dw, event);
        for v in &staged.wiped {
            self.dw.world_mut().global_pin_config(v.index());
        }
        let live = self.dw.editor().live_ids();
        if live.is_empty() {
            return Err("session has no live amoebots left".to_string());
        }
        let origin = live[(self.steps as usize).wrapping_mul(ORIGIN_STRIDE) % live.len()];
        if staged.is_active(origin) {
            self.dw.world_mut().beep(origin as usize, 0);
        }
        self.dw
            .world_mut()
            .tick_faulted(&staged.ticks, &mut amoebot_telemetry::NullRecorder);
        self.steps += 1;
        self.next_fault += 1;
        let mut doc = Json::object()
            .field("ok", true)
            .field("event", event)
            .field("dropped", staged.ticks.drop.len())
            .field("injected", staged.ticks.inject.len())
            .field("starved", staged.inactive.len())
            .field("wiped", staged.wiped.len())
            .field("stuck_armed", staged.stuck_armed as usize)
            .field("stuck_released", staged.stuck_released as usize)
            .field("n", self.dw.len());
        if verify {
            doc = doc.field("oracle_ok", verify_against_rebuild(&self.dw).is_ok());
        }
        Ok(doc)
    }

    /// The session report envelope. Canonical without `timing` — rounds,
    /// beeps, circuit count and engine counters only.
    pub fn query(&mut self, timing: bool) -> Json {
        let circuits = self.dw.world_mut().circuit_count();
        let mut env = Envelope::new(SESSION_SCHEMA, timing)
            .field("session", self.name.as_str())
            .field("family", self.family.as_str())
            .field("size", self.size)
            .field("seed", self.seed)
            .field("n", self.dw.len())
            .field("steps", self.steps)
            .field("rounds", self.dw.world().rounds())
            .field("beeps", self.dw.world().beeps_sent())
            .field("circuits", circuits);
        if let Some(plan) = self.plan {
            env = env
                .field("churn_family", plan.family.label())
                .field("next_event", self.next_event)
                .field("events", plan.events);
        }
        if let Some(plan) = self.fplan {
            env = env
                .field("fault_family", plan.family.label())
                .field("next_fault", self.next_fault)
                .field("fault_events", plan.events)
                .field("stuck_pins", self.dw.world().stuck_pin_count());
        }
        env = env
            .field("uptime_requests", self.uptime_requests())
            .field("ops_by_kind", self.ops_json());
        env.metrics(self.dw.world().metrics()).finish()
    }

    /// The canonical per-session metrics envelope ([`STATS_SCHEMA`]):
    /// rounds, beeps, relabel counters, phase-timer percentile summaries
    /// and the request counters. Deliberately wall-clock-free and
    /// insertion-ordered, so the rendering is byte-identical for the
    /// same request history regardless of shard count — the `watch`
    /// frame format.
    pub fn stats(&mut self) -> Json {
        let circuits = self.dw.world_mut().circuit_count();
        let m = self.dw.world().metrics();
        let mut relabels = Json::object();
        for (cname, v) in m.counters_sorted() {
            if cname.starts_with("relabel_") {
                relabels = relabels.field(cname, v);
            }
        }
        let mut phases = Json::object();
        for (tname, h) in m.timers_sorted() {
            phases = phases.field(
                tname,
                Json::object()
                    .field("count", h.count)
                    .field("p50", h.p50)
                    .field("p90", h.p90)
                    .field("p99", h.p99),
            );
        }
        Json::object()
            .field("schema", STATS_SCHEMA)
            .field("session", self.name.as_str())
            .field("family", self.family.as_str())
            .field("size", self.size)
            .field("seed", self.seed)
            .field("n", self.dw.len())
            .field("steps", self.steps)
            .field("rounds", self.dw.world().rounds())
            .field("beeps", self.dw.world().beeps_sent())
            .field("circuits", circuits)
            .field("relabels", relabels)
            .field("phase_percentiles", phases)
            .field("uptime_requests", self.uptime_requests())
            .field("ops_by_kind", self.ops_json())
    }

    /// The session as a sealed `SPFS` blob (kind `SESSION`): identity +
    /// schedule cursor + the full dynamic-world payload.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(wire::kind::SESSION);
        w.str(&self.name);
        w.str(&self.family);
        w.varint(self.size as u64);
        w.varint(self.seed);
        w.varint(self.steps);
        match &self.plan {
            None => w.byte(0),
            Some(plan) => {
                w.byte(1);
                w.varint(plan.seed);
                w.str(plan.family.label());
                w.varint(plan.events as u64);
                w.varint(plan.per_event as u64);
                w.varint(self.next_event as u64);
            }
        }
        match &self.fplan {
            None => w.byte(0),
            Some(plan) => {
                w.byte(1);
                w.varint(plan.seed);
                w.str(plan.family.label());
                w.varint(plan.events as u64);
                w.varint(plan.per_event as u64);
                w.varint(self.next_fault as u64);
            }
        }
        w.varint(OP_KINDS.len() as u64);
        for &count in &self.ops {
            w.varint(count);
        }
        self.dw.encode_payload(&mut w);
        w.finish()
    }

    /// Restores a session from [`Session::snapshot_bytes`] output.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Session, WireError> {
        let mut r = SnapshotReader::open(bytes, wire::kind::SESSION)?;
        let name_offset = r.offset();
        let name = r.str("session name")?;
        if !valid_session_name(&name) {
            return Err(WireError::BadValue {
                what: "session name",
                offset: name_offset,
            });
        }
        let family_offset = r.offset();
        let family = r.str("session family")?;
        if family != "blob-broadcast"
            && family != "blob-churn-broadcast"
            && family != "blob-fault-broadcast"
        {
            return Err(WireError::BadValue {
                what: "session family",
                offset: family_offset,
            });
        }
        let size = r.varint()? as usize;
        let seed = r.varint()?;
        let steps = r.varint()?;
        let plan_offset = r.offset();
        let (plan, next_event) = match r.byte()? {
            0 => (None, 0),
            1 => {
                let plan_seed = r.varint()?;
                let label_offset = r.offset();
                let label = r.str("churn family label")?;
                let fam = *ALL_CHURN_FAMILIES
                    .iter()
                    .find(|f| f.label() == label)
                    .ok_or(WireError::BadValue {
                        what: "churn family label",
                        offset: label_offset,
                    })?;
                let events = r.varint()? as usize;
                let per_event = r.varint()? as usize;
                let cursor_offset = r.offset();
                let next_event = r.varint()? as usize;
                if next_event > events {
                    return Err(WireError::BadValue {
                        what: "churn-plan cursor",
                        offset: cursor_offset,
                    });
                }
                (
                    Some(ChurnPlan::new(plan_seed, fam, events, per_event)),
                    next_event,
                )
            }
            _ => {
                return Err(WireError::BadValue {
                    what: "churn-plan presence",
                    offset: plan_offset,
                })
            }
        };
        if plan.is_some() != (family == "blob-churn-broadcast") {
            return Err(WireError::BadValue {
                what: "churn-plan presence",
                offset: plan_offset,
            });
        }
        let fplan_offset = r.offset();
        let (fplan, next_fault) = match r.byte()? {
            0 => (None, 0),
            1 => {
                let plan_seed = r.varint()?;
                let label_offset = r.offset();
                let label = r.str("fault family label")?;
                let fam = FaultFamily::from_label(&label).ok_or(WireError::BadValue {
                    what: "fault family label",
                    offset: label_offset,
                })?;
                let events = r.varint()? as usize;
                let per_event = r.varint()? as usize;
                let cursor_offset = r.offset();
                let next_fault = r.varint()? as usize;
                if next_fault > events {
                    return Err(WireError::BadValue {
                        what: "fault-plan cursor",
                        offset: cursor_offset,
                    });
                }
                (
                    Some(FaultPlan::new(plan_seed, fam, events, per_event)),
                    next_fault,
                )
            }
            _ => {
                return Err(WireError::BadValue {
                    what: "fault-plan presence",
                    offset: fplan_offset,
                })
            }
        };
        if fplan.is_some() != (family == "blob-fault-broadcast") {
            return Err(WireError::BadValue {
                what: "fault-plan presence",
                offset: fplan_offset,
            });
        }
        let arity_offset = r.offset();
        if r.varint()? as usize != OP_KINDS.len() {
            return Err(WireError::BadValue {
                what: "op-counter arity",
                offset: arity_offset,
            });
        }
        let mut ops = [0u64; OP_KINDS.len()];
        for slot in ops.iter_mut() {
            *slot = r.varint()?;
        }
        let dw = DynamicWorld::decode_payload(&mut r)?;
        r.finish()?;
        Ok(Session {
            name,
            family,
            size,
            seed,
            steps,
            dw,
            plan,
            next_event,
            fplan,
            next_fault,
            ops,
        })
    }

    /// The session's snapshot file under `dir`.
    fn snapshot_path(dir: &Path, name: &str) -> PathBuf {
        dir.join(format!("{name}.session.spfs"))
    }
}

// ---- The worker pool.

enum Job {
    Request {
        doc: Json,
        reply: mpsc::SyncSender<Json>,
    },
    /// Register a live-stats watcher on a session: every completed
    /// `step`/`mutate`/`fault` on it afterwards pushes one rendered
    /// stats frame into `sink`. Unregistration is lazy — a dropped
    /// receiver makes the next push fail, which unhooks the watcher.
    Watch {
        session: String,
        sink: mpsc::Sender<String>,
        reply: mpsc::SyncSender<Json>,
    },
    Install {
        session: Box<Session>,
        done: mpsc::SyncSender<()>,
    },
    /// Snapshot every live session to the snapshot dir (sessions stay
    /// live). Replies with the number written.
    SnapshotAll {
        done: mpsc::SyncSender<Result<usize, String>>,
    },
    /// Drain and stop. Sent by [`Server::shutdown`]; an explicit job
    /// rather than sender-drop detection, because outstanding
    /// [`ServerHandle`] clones (other connection threads) would
    /// otherwise keep a worker alive forever.
    Exit,
}

fn err_json(msg: impl Into<String>) -> Json {
    Json::object().field("ok", false).field("error", msg.into())
}

fn ok_json() -> Json {
    Json::object().field("ok", true)
}

/// Handles one request against a shard's session map. Pure with respect
/// to I/O except `snapshot`/`restore`, which touch the snapshot dir.
fn handle_request(
    sessions: &mut BTreeMap<String, Session>,
    snapshot_dir: Option<&Path>,
    doc: &Json,
) -> Json {
    let op = match doc.get("op").and_then(Json::as_str) {
        Some(op) => op,
        None => return err_json("request has no \"op\" field"),
    };
    let name = match doc.get("session").and_then(Json::as_str) {
        Some(name) => name,
        None => return err_json(format!("op {op:?} needs a \"session\" field")),
    };
    let num = |key: &str, default: u64| doc.get(key).and_then(Json::as_u64).unwrap_or(default);
    match op {
        "create" => {
            if sessions.contains_key(name) {
                return err_json(format!("session {name:?} already exists"));
            }
            let family = doc
                .get("family")
                .and_then(Json::as_str)
                .unwrap_or("blob-broadcast");
            let session = Session::create(
                name,
                family,
                num("size", 100) as usize,
                num("seed", 42),
                num("events", 10) as usize,
                num("per_event", 4) as usize,
            );
            match session {
                Ok(s) => {
                    let n = s.dw.len();
                    sessions.insert(name.to_string(), s);
                    ok_json().field("session", name).field("n", n)
                }
                Err(e) => err_json(e),
            }
        }
        "step" => match sessions.get_mut(name) {
            Some(s) => {
                s.count_op(op);
                match s.step(num("n", 1) as usize) {
                    Ok((rounds, beeps)) => ok_json().field("rounds", rounds).field("beeps", beeps),
                    Err(e) => err_json(e),
                }
            }
            None => err_json(format!("no such session {name:?}")),
        },
        "mutate" => match sessions.get_mut(name) {
            Some(s) => {
                s.count_op(op);
                let verify = doc.get("verify").and_then(Json::as_bool).unwrap_or(false);
                s.mutate(verify).unwrap_or_else(err_json)
            }
            None => err_json(format!("no such session {name:?}")),
        },
        "fault" => match sessions.get_mut(name) {
            Some(s) => {
                s.count_op(op);
                let verify = doc.get("verify").and_then(Json::as_bool).unwrap_or(false);
                s.fault(verify).unwrap_or_else(err_json)
            }
            None => err_json(format!("no such session {name:?}")),
        },
        "query" => match sessions.get_mut(name) {
            Some(s) => {
                s.count_op(op);
                let timing = doc.get("timing").and_then(Json::as_bool).unwrap_or(false);
                s.query(timing)
            }
            None => err_json(format!("no such session {name:?}")),
        },
        "stats" => match sessions.get_mut(name) {
            Some(s) => {
                s.count_op(op);
                s.stats()
            }
            None => err_json(format!("no such session {name:?}")),
        },
        "watch" => err_json(
            "op \"watch\" is connection-level (it streams frames); \
             send it over a framed connection",
        ),
        "snapshot" => match sessions.get_mut(name) {
            Some(s) => {
                let dir = match snapshot_dir {
                    Some(dir) => dir,
                    None => return err_json("server has no --snapshot-dir"),
                };
                // The snapshot op counts itself *before* serializing, so
                // a restored session and the uninterrupted original
                // agree on every counter.
                s.count_op(op);
                let bytes = s.snapshot_bytes();
                let path = Session::snapshot_path(dir, name);
                match std::fs::write(&path, &bytes) {
                    Ok(()) => ok_json()
                        .field("path", path.display().to_string())
                        .field("bytes", bytes.len()),
                    Err(e) => err_json(format!("cannot write {}: {e}", path.display())),
                }
            }
            None => err_json(format!("no such session {name:?}")),
        },
        "restore" => {
            if !valid_session_name(name) {
                return err_json(format!("invalid session name {name:?}"));
            }
            let dir = match snapshot_dir {
                Some(dir) => dir,
                None => return err_json("server has no --snapshot-dir"),
            };
            let path = Session::snapshot_path(dir, name);
            let bytes = match std::fs::read(&path) {
                Ok(b) => b,
                Err(e) => return err_json(format!("cannot read {}: {e}", path.display())),
            };
            match Session::from_snapshot_bytes(&bytes) {
                Ok(s) if s.name == name => {
                    let n = s.dw.len();
                    sessions.insert(name.to_string(), s);
                    ok_json().field("session", name).field("n", n)
                }
                Ok(s) => err_json(format!(
                    "snapshot {} belongs to session {:?}",
                    path.display(),
                    s.name
                )),
                Err(e) => err_json(format!("corrupt snapshot {}: {e}", path.display())),
            }
        }
        "close" => match sessions.remove(name) {
            Some(_) => ok_json().field("session", name),
            None => err_json(format!("no such session {name:?}")),
        },
        other => err_json(format!("unknown op {other:?}")),
    }
}

fn snapshot_all(
    sessions: &BTreeMap<String, Session>,
    snapshot_dir: Option<&Path>,
) -> Result<usize, String> {
    let Some(dir) = snapshot_dir else {
        // No dir configured: nothing to persist, by configuration.
        return Ok(0);
    };
    let mut written = 0usize;
    for (name, s) in sessions {
        let path = Session::snapshot_path(dir, name);
        std::fs::write(&path, s.snapshot_bytes())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        written += 1;
    }
    Ok(written)
}

fn worker(rx: mpsc::Receiver<Job>, snapshot_dir: Option<PathBuf>) {
    let mut sessions: BTreeMap<String, Session> = BTreeMap::new();
    let mut watchers: BTreeMap<String, Vec<mpsc::Sender<String>>> = BTreeMap::new();
    while let Ok(job) = rx.recv() {
        match job {
            Job::Request { doc, reply } => {
                let resp = handle_request(&mut sessions, snapshot_dir.as_deref(), &doc);
                let op = doc.get("op").and_then(Json::as_str).unwrap_or("");
                let name = doc.get("session").and_then(Json::as_str).unwrap_or("");
                // A completed state-advancing batch notifies watchers;
                // errored requests advance nothing, so they push nothing.
                let notify = matches!(op, "step" | "mutate" | "fault")
                    && resp.get("ok").and_then(Json::as_bool) != Some(false);
                let closed = op == "close";
                let _ = reply.send(resp);
                if notify {
                    if let (Some(list), Some(s)) = (watchers.get_mut(name), sessions.get_mut(name))
                    {
                        let frame = s.stats().render_compact();
                        list.retain(|sink| sink.send(frame.clone()).is_ok());
                        if list.is_empty() {
                            watchers.remove(name);
                        }
                    }
                }
                if closed {
                    // Dropping the senders ends the watchers' streams.
                    watchers.remove(name);
                }
            }
            Job::Watch {
                session,
                sink,
                reply,
            } => {
                let resp = match sessions.get_mut(&session) {
                    Some(s) => {
                        s.count_op("watch");
                        watchers.entry(session.clone()).or_default().push(sink);
                        ok_json().field("watching", session.as_str())
                    }
                    None => err_json(format!("no such session {session:?}")),
                };
                let _ = reply.send(resp);
            }
            Job::Install { session, done } => {
                sessions.insert(session.name.clone(), *session);
                let _ = done.send(());
            }
            Job::SnapshotAll { done } => {
                let _ = done.send(snapshot_all(&sessions, snapshot_dir.as_deref()));
            }
            Job::Exit => break,
        }
    }
}

/// A cloneable handle that routes requests into the worker pool — one
/// per connection thread.
#[derive(Clone)]
pub struct ServerHandle {
    shards: Vec<mpsc::Sender<Job>>,
}

impl ServerHandle {
    fn shard_of(&self, session: &str) -> &mpsc::Sender<Job> {
        let h = wire::fnv1a64(session.as_bytes()) as usize;
        &self.shards[h % self.shards.len()]
    }

    /// Dispatches one session request to its shard and waits for the
    /// response. `shutdown` is connection-level, not a session op — see
    /// [`ServerHandle::snapshot_live_sessions`].
    pub fn request(&self, doc: &Json) -> Json {
        let name = match doc.get("session").and_then(Json::as_str) {
            Some(name) => name,
            None => {
                // Let the worker produce the uniform diagnostics for
                // op-less / session-less requests.
                return handle_request(&mut BTreeMap::new(), None, doc);
            }
        };
        let (reply, rx) = mpsc::sync_channel(1);
        if self
            .shard_of(name)
            .send(Job::Request {
                doc: doc.clone(),
                reply,
            })
            .is_err()
        {
            return err_json("server is shutting down");
        }
        rx.recv()
            .unwrap_or_else(|_| err_json("server is shutting down"))
    }

    /// Registers `sink` as a live-stats watcher on `name`'s session and
    /// returns the ack (or error) response. Frames arrive on the paired
    /// receiver; dropping it unregisters the watcher lazily.
    pub fn watch(&self, name: &str, sink: mpsc::Sender<String>) -> Json {
        let (reply, rx) = mpsc::sync_channel(1);
        if self
            .shard_of(name)
            .send(Job::Watch {
                session: name.to_string(),
                sink,
                reply,
            })
            .is_err()
        {
            return err_json("server is shutting down");
        }
        rx.recv()
            .unwrap_or_else(|_| err_json("server is shutting down"))
    }

    /// Snapshots every live session on every shard (the `shutdown` op's
    /// persistence half). Returns the total written.
    pub fn snapshot_live_sessions(&self) -> Result<usize, String> {
        let mut total = 0usize;
        for shard in &self.shards {
            let (done, rx) = mpsc::sync_channel(1);
            if shard.send(Job::SnapshotAll { done }).is_err() {
                continue;
            }
            total += rx.recv().map_err(|_| "worker died".to_string())??;
        }
        Ok(total)
    }
}

/// The session service: a worker pool plus its snapshot directory.
pub struct Server {
    handle: ServerHandle,
    workers: Vec<thread::JoinHandle<()>>,
}

/// Server configuration.
pub struct ServerConfig {
    /// Worker (shard) count; clamped to at least 1.
    pub threads: usize,
    /// Where session snapshots live; `None` disables snapshot/restore.
    pub snapshot_dir: Option<PathBuf>,
}

impl Server {
    /// Spawns the worker pool and resumes every `*.session.spfs` blob
    /// found in the snapshot dir (corrupt blobs are skipped and
    /// reported in the return's second slot — the sessions they named
    /// simply don't resume).
    pub fn start(config: ServerConfig) -> io::Result<(Server, Vec<String>)> {
        let threads = config.threads.max(1);
        let mut shards = Vec::with_capacity(threads);
        let mut workers = Vec::with_capacity(threads);
        for _ in 0..threads {
            let (tx, rx) = mpsc::channel();
            let dir = config.snapshot_dir.clone();
            shards.push(tx);
            workers.push(thread::spawn(move || worker(rx, dir)));
        }
        let handle = ServerHandle { shards };
        let mut skipped = Vec::new();
        if let Some(dir) = &config.snapshot_dir {
            std::fs::create_dir_all(dir)?;
            let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.ends_with(".session.spfs"))
                })
                .collect();
            paths.sort();
            for path in paths {
                let outcome = std::fs::read(&path)
                    .map_err(|e| e.to_string())
                    .and_then(|bytes| {
                        Session::from_snapshot_bytes(&bytes).map_err(|e| e.to_string())
                    });
                match outcome {
                    Ok(session) => {
                        let (done, rx) = mpsc::sync_channel(1);
                        let _ = handle.shard_of(&session.name).send(Job::Install {
                            session: Box::new(session),
                            done,
                        });
                        let _ = rx.recv();
                    }
                    Err(e) => skipped.push(format!("{}: {e}", path.display())),
                }
            }
        }
        Ok((Server { handle, workers }, skipped))
    }

    /// A cloneable request handle.
    pub fn handle(&self) -> ServerHandle {
        self.handle.clone()
    }

    /// Snapshots all sessions, then stops and joins the pool. Requests
    /// arriving through leftover handles afterwards get a
    /// "shutting down" error response.
    pub fn shutdown(self) -> Result<usize, String> {
        let written = self.handle.snapshot_live_sessions()?;
        for shard in &self.handle.shards {
            let _ = shard.send(Job::Exit);
        }
        for w in self.workers {
            let _ = w.join();
        }
        Ok(written)
    }
}

// ---- Connection service.

/// Serves one framed-JSON connection until EOF or a `shutdown` op.
/// Returns `true` if the peer requested server shutdown.
pub fn serve_connection(
    r: &mut impl Read,
    w: &mut impl Write,
    handle: &ServerHandle,
) -> io::Result<bool> {
    while let Some(frame) = read_frame(r)? {
        let doc = match std::str::from_utf8(&frame)
            .map_err(|e| e.to_string())
            .and_then(Json::parse)
        {
            Ok(doc) => doc,
            Err(e) => {
                let resp = err_json(format!("bad request frame: {e}"));
                write_frame(w, resp.render_compact().as_bytes())?;
                continue;
            }
        };
        if doc.get("op").and_then(Json::as_str) == Some("shutdown") {
            let resp = match handle.snapshot_live_sessions() {
                Ok(n) => ok_json().field("snapshotted", n),
                Err(e) => err_json(format!("snapshot-on-shutdown failed: {e}")),
            };
            write_frame(w, resp.render_compact().as_bytes())?;
            return Ok(true);
        }
        if doc.get("op").and_then(Json::as_str) == Some("watch") {
            serve_watch(&doc, handle, w)?;
            continue;
        }
        let resp = handle.request(&doc);
        write_frame(w, resp.render_compact().as_bytes())?;
    }
    Ok(false)
}

/// The `watch` op's connection half: ack the registration, forward one
/// stats frame per completed `step`/`mutate`/`fault` batch on the
/// watched session until `frames` frames (default 1) are served — or
/// the session closes / the server stops, whichever first — then emit
/// an end marker and hand the connection back to the request loop.
fn serve_watch(doc: &Json, handle: &ServerHandle, w: &mut impl Write) -> io::Result<()> {
    let name = match doc.get("session").and_then(Json::as_str) {
        Some(name) => name,
        None => {
            let resp = err_json("op \"watch\" needs a \"session\" field");
            return write_frame(w, resp.render_compact().as_bytes());
        }
    };
    let frames = doc
        .get("frames")
        .and_then(Json::as_u64)
        .unwrap_or(1)
        .clamp(1, 1 << 16);
    let (sink, rx) = mpsc::channel();
    let ack = handle.watch(name, sink);
    if ack.get("ok").and_then(Json::as_bool) == Some(false) {
        return write_frame(w, ack.render_compact().as_bytes());
    }
    write_frame(w, ack.field("frames", frames).render_compact().as_bytes())?;
    let mut sent = 0u64;
    while sent < frames {
        match rx.recv() {
            Ok(frame) => {
                write_frame(w, frame.as_bytes())?;
                sent += 1;
            }
            // Stream source gone (session closed or server stopping):
            // end the watch early rather than hanging the connection.
            Err(_) => break,
        }
    }
    drop(rx);
    let end = ok_json()
        .field("watch_ended", name)
        .field("frames_sent", sent);
    write_frame(w, end.render_compact().as_bytes())
}

/// Runs the TCP accept loop until a client sends `shutdown`. Sessions
/// are snapshotted by the `shutdown` handler before this returns.
///
/// Connection threads are detached, not joined: a shutdown must not
/// wait for idle keep-alive connections to hang up. The `shutdown`
/// handler snapshots (and replies) before the stop flag is raised, and
/// stopped workers answer any straggler request with a "shutting down"
/// error, so detaching loses nothing.
pub fn serve_tcp(listener: TcpListener, server: Server) -> io::Result<()> {
    let stop = Arc::new(AtomicBool::new(false));
    let addr = listener.local_addr()?;
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = stream?;
        let _ = stream.set_nodelay(true);
        let handle = server.handle();
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut reader = match stream.try_clone() {
                Ok(r) => r,
                Err(_) => return,
            };
            let mut writer = stream;
            if let Ok(true) = serve_connection(&mut reader, &mut writer, &handle) {
                stop.store(true, Ordering::SeqCst);
                // Unblock the acceptor so the loop observes the flag.
                let _ = std::net::TcpStream::connect(addr);
            }
        });
    }
    // The shutdown op already snapshotted; this re-snapshot is a no-op
    // for unchanged sessions and covers EOF-only exits.
    let _ = server.shutdown();
    Ok(())
}

/// Serves a single stdio connection (frames on stdin/stdout); EOF or
/// `shutdown` snapshots all sessions and returns.
pub fn serve_stdio(server: Server) -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    let handle = server.handle();
    serve_connection(&mut stdin.lock(), &mut stdout.lock(), &handle)?;
    server
        .shutdown()
        .map_err(|e| io::Error::other(format!("snapshot on shutdown failed: {e}")))?;
    Ok(())
}

// ---- Binary front end.

const USAGE: &str =
    "usage: scenario-server [--port N] [--threads N] [--snapshot-dir DIR] [--stdio]\n\
     \n\
     --port N           TCP port to listen on (default 0 = ephemeral; the\n\
     \x20                  bound address prints to stderr as `listening on ...`)\n\
     --threads N        worker shard count (default: one per core, max 8)\n\
     --snapshot-dir DIR persist/resume session snapshots here; enables the\n\
     \x20                  snapshot/restore ops and graceful restart\n\
     --stdio            serve one framed connection on stdin/stdout instead\n\
     \x20                  of TCP (EOF acts like shutdown)";

/// Entry point of the `scenario-server` binary: parses `argv` (without
/// the binary name), serves, and returns the exit code under the same
/// `0`/`2` contract as `scenario-runner` (`1` is unused: protocol-level
/// failures are responses, not process exits).
pub fn server_main(argv: &[String], diag: &mut dyn Write) -> u8 {
    let mut port = 0u16;
    let mut threads = Threads::Auto;
    let mut snapshot_dir: Option<PathBuf> = None;
    let mut stdio = false;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        macro_rules! value {
            ($name:literal) => {
                match it.next() {
                    Some(v) => v.as_str(),
                    None => {
                        let _ = writeln!(diag, "missing value for {}", $name);
                        let _ = writeln!(diag, "{USAGE}");
                        return 2;
                    }
                }
            };
        }
        macro_rules! num {
            ($name:literal) => {
                match crate::cli::parse_num_value(value!($name), $name, diag) {
                    Some(v) => v,
                    None => {
                        let _ = writeln!(diag, "{USAGE}");
                        return 2;
                    }
                }
            };
        }
        match arg.as_str() {
            "--port" => port = num!("--port"),
            "--threads" => threads = Threads::Count(num!("--threads")),
            "--snapshot-dir" => snapshot_dir = Some(PathBuf::from(value!("--snapshot-dir"))),
            "--stdio" => stdio = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return 0;
            }
            other => {
                let _ = writeln!(diag, "unknown argument: {other}");
                let _ = writeln!(diag, "{USAGE}");
                return 2;
            }
        }
    }
    let config = ServerConfig {
        threads: threads.resolve().min(8),
        snapshot_dir,
    };
    let (server, skipped) = match Server::start(config) {
        Ok(ok) => ok,
        Err(e) => {
            let _ = writeln!(diag, "cannot start: {e}");
            return 2;
        }
    };
    for s in &skipped {
        let _ = writeln!(diag, "warning: skipping unreadable snapshot {s}");
    }
    let served = if stdio {
        serve_stdio(server)
    } else {
        match TcpListener::bind(("127.0.0.1", port)) {
            Ok(listener) => {
                match listener.local_addr() {
                    Ok(addr) => {
                        let _ = writeln!(diag, "listening on {addr}");
                        let _ = diag.flush();
                    }
                    Err(e) => {
                        let _ = writeln!(diag, "cannot resolve bound address: {e}");
                        return 2;
                    }
                }
                serve_tcp(listener, server)
            }
            Err(e) => {
                let _ = writeln!(diag, "cannot bind 127.0.0.1:{port}: {e}");
                return 2;
            }
        }
    };
    match served {
        Ok(()) => 0,
        Err(e) => {
            let _ = writeln!(diag, "serve failed: {e}");
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(fields: &[(&str, Json)]) -> Json {
        let mut doc = Json::object();
        for (k, v) in fields {
            doc = doc.field(k, v.clone());
        }
        doc
    }

    fn s(v: &str) -> Json {
        Json::Str(v.to_string())
    }

    fn n(v: u64) -> Json {
        Json::U64(v)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("spf-server-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn assert_ok(resp: &Json) {
        assert!(
            resp.get("error").is_none(),
            "expected ok response, got {}",
            resp.render_compact()
        );
    }

    #[test]
    fn create_step_query_mirrors_the_batch_family() {
        let (server, _) = Server::start(ServerConfig {
            threads: 2,
            snapshot_dir: None,
        })
        .unwrap();
        let h = server.handle();
        let resp = h.request(&req(&[
            ("op", s("create")),
            ("session", s("a")),
            ("family", s("blob-broadcast")),
            ("size", n(120)),
            ("seed", n(7)),
        ]));
        assert_ok(&resp);
        let resp = h.request(&req(&[("op", s("step")), ("session", s("a")), ("n", n(5))]));
        assert_ok(&resp);
        assert_eq!(resp.get("rounds").and_then(Json::as_u64), Some(5));
        let doc = h.request(&req(&[("op", s("query")), ("session", s("a"))]));
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(SESSION_SCHEMA)
        );
        assert_eq!(doc.get("rounds").and_then(Json::as_u64), Some(5));
        assert_eq!(doc.get("n").and_then(Json::as_u64), Some(120));
        // Canonical query responses carry counters but no timers.
        let text = doc.render_pretty();
        assert!(text.contains("relabel_global"));
        assert!(!text.contains("timers"));
        // One global circuit per link on a fully-joined global config.
        assert!(doc.get("circuits").and_then(Json::as_u64).unwrap() >= 1);
        server.shutdown().unwrap();
    }

    #[test]
    fn protocol_errors_are_responses_not_panics() {
        let (server, _) = Server::start(ServerConfig {
            threads: 1,
            snapshot_dir: None,
        })
        .unwrap();
        let h = server.handle();
        for bad in [
            req(&[("session", s("a"))]),                            // no op
            req(&[("op", s("nonsense")), ("session", s("a"))]),     // unknown op
            req(&[("op", s("step")), ("session", s("ghost"))]),     // no such session
            req(&[("op", s("create")), ("session", s("../evil"))]), // bad name
            req(&[
                ("op", s("create")),
                ("session", s("x")),
                ("family", s("bogus")),
            ]),
            req(&[("op", s("snapshot")), ("session", s("a"))]), // no snapshot dir
            req(&[("op", s("step"))]),                          // no session field
        ] {
            let resp = h.request(&bad);
            assert_eq!(
                resp.get("ok").and_then(Json::as_bool),
                Some(false),
                "{} should have errored: {}",
                bad.render_compact(),
                resp.render_compact()
            );
            assert!(resp.get("error").is_some());
        }
        // Mutating a plan-less session is an error too.
        assert_ok(&h.request(&req(&[
            ("op", s("create")),
            ("session", s("a")),
            ("size", n(30)),
        ])));
        let resp = h.request(&req(&[("op", s("mutate")), ("session", s("a"))]));
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
        server.shutdown().unwrap();
    }

    /// The tentpole differential test at the service level: a session
    /// snapshotted mid-churn and restored into a *fresh server* replays
    /// the rest of its schedule byte-identically to the uninterrupted
    /// session.
    #[test]
    fn restore_into_fresh_server_matches_uninterrupted_session() {
        let dir = temp_dir("restore");
        let mk = |threads| {
            Server::start(ServerConfig {
                threads,
                snapshot_dir: Some(dir.clone()),
            })
            .unwrap()
        };
        let (server, _) = mk(2);
        let h = server.handle();
        let create = req(&[
            ("op", s("create")),
            ("session", s("churny")),
            ("family", s("blob-churn-broadcast")),
            ("size", n(40)),
            ("seed", n(11)),
            ("events", n(6)),
            ("per_event", n(3)),
        ]);
        assert_ok(&h.request(&create));
        for _ in 0..3 {
            assert_ok(&h.request(&req(&[("op", s("mutate")), ("session", s("churny"))])));
            assert_ok(&h.request(&req(&[("op", s("step")), ("session", s("churny"))])));
        }
        assert_ok(&h.request(&req(&[("op", s("snapshot")), ("session", s("churny"))])));
        // Uninterrupted continuation in the original server.
        for _ in 0..3 {
            assert_ok(&h.request(&req(&[
                ("op", s("mutate")),
                ("session", s("churny")),
                ("verify", Json::Bool(true)),
            ])));
            assert_ok(&h.request(&req(&[("op", s("step")), ("session", s("churny"))])));
        }
        let reference = h.request(&req(&[("op", s("query")), ("session", s("churny"))]));
        // Close before shutdown: shutdown's snapshot-all would otherwise
        // overwrite the mid-churn snapshot with the finished state.
        assert_ok(&h.request(&req(&[("op", s("close")), ("session", s("churny"))])));
        assert_eq!(server.shutdown().unwrap(), 0);

        // Fresh server, explicit restore, same continuation.
        let (server, skipped) = mk(1);
        assert!(skipped.is_empty(), "{skipped:?}");
        let h = server.handle();
        // Startup resume already installed the session (snapshot-dir
        // scan); `restore` must also work as an explicit reload.
        assert_ok(&h.request(&req(&[("op", s("restore")), ("session", s("churny"))])));
        for _ in 0..3 {
            assert_ok(&h.request(&req(&[
                ("op", s("mutate")),
                ("session", s("churny")),
                ("verify", Json::Bool(true)),
            ])));
            assert_ok(&h.request(&req(&[("op", s("step")), ("session", s("churny"))])));
        }
        let resumed = h.request(&req(&[("op", s("query")), ("session", s("churny"))]));
        assert_eq!(
            reference.render_pretty(),
            resumed.render_pretty(),
            "restored session diverged from the uninterrupted run"
        );
        server.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Graceful-restart path: shutdown snapshots every live session; a
    /// new server over the same dir resumes them without explicit
    /// restore ops.
    #[test]
    fn shutdown_snapshots_and_restart_resumes() {
        let dir = temp_dir("restart");
        let (server, _) = Server::start(ServerConfig {
            threads: 3,
            snapshot_dir: Some(dir.clone()),
        })
        .unwrap();
        let h = server.handle();
        for name in ["s0", "s1", "s2", "s3", "s4"] {
            assert_ok(&h.request(&req(&[
                ("op", s("create")),
                ("session", s(name)),
                ("size", n(50)),
                ("seed", n(3)),
            ])));
            assert_ok(&h.request(&req(&[
                ("op", s("step")),
                ("session", s(name)),
                ("n", n(4)),
            ])));
        }
        assert_eq!(server.shutdown().unwrap(), 5);

        let (server, skipped) = Server::start(ServerConfig {
            threads: 2,
            snapshot_dir: Some(dir.clone()),
        })
        .unwrap();
        assert!(skipped.is_empty(), "{skipped:?}");
        let h = server.handle();
        for name in ["s0", "s1", "s2", "s3", "s4"] {
            let doc = h.request(&req(&[("op", s("query")), ("session", s(name))]));
            assert_eq!(
                doc.get("rounds").and_then(Json::as_u64),
                Some(4),
                "session {name} did not resume: {}",
                doc.render_compact()
            );
        }
        // A corrupt snapshot is skipped with a diagnostic, not fatal.
        server.shutdown().unwrap();
        let path = Session::snapshot_path(&dir, "s0");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (server, skipped) = Server::start(ServerConfig {
            threads: 1,
            snapshot_dir: Some(dir.clone()),
        })
        .unwrap();
        assert_eq!(skipped.len(), 1);
        let h = server.handle();
        let resp = h.request(&req(&[("op", s("query")), ("session", s("s0"))]));
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
        assert_ok(&h.request(&req(&[("op", s("query")), ("session", s("s1"))])));
        server.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The concurrency smoke: 64 client threads, each driving its own
    /// session through create + steps + query simultaneously. Shard
    /// ownership makes this race-free by construction; the test pins
    /// the per-session determinism claim under real contention.
    #[test]
    fn sixty_four_concurrent_sessions() {
        let (server, _) = Server::start(ServerConfig {
            threads: 4,
            snapshot_dir: None,
        })
        .unwrap();
        let rounds: Vec<u64> = thread::scope(|scope| {
            let mut joins = Vec::new();
            for i in 0..64 {
                let h = server.handle();
                joins.push(scope.spawn(move || {
                    let name = format!("c{i}");
                    let resp = h.request(&req(&[
                        ("op", s("create")),
                        ("session", s(&name)),
                        ("size", n(60)),
                        ("seed", n(i)),
                    ]));
                    assert_ok(&resp);
                    for _ in 0..10 {
                        assert_ok(&h.request(&req(&[
                            ("op", s("step")),
                            ("session", s(&name)),
                            ("n", n(3)),
                        ])));
                    }
                    let doc = h.request(&req(&[("op", s("query")), ("session", s(&name))]));
                    doc.get("rounds").and_then(Json::as_u64).unwrap()
                }));
            }
            joins.into_iter().map(|j| j.join().unwrap()).collect()
        });
        assert!(rounds.iter().all(|&r| r == 30));
        server.shutdown().unwrap();
    }

    #[test]
    fn frame_codec_round_trips_and_bounds() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"op\":\"query\"}").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"{\"op\":\"query\"}");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
        // Oversized length prefix is rejected before allocation.
        let huge = (MAX_FRAME as u32 + 1).to_le_bytes();
        assert!(read_frame(&mut &huge[..]).is_err());
        // Truncated payload is an error, not silent EOF.
        let torn = [5u8, 0, 0, 0, b'x'];
        assert!(read_frame(&mut &torn[..]).is_err());
    }

    /// End-to-end over a real socket: the TCP loop, the shutdown op
    /// (snapshot-all + stop), and restart-from-dir.
    #[test]
    fn tcp_round_trip_with_shutdown_and_restart() {
        let dir = temp_dir("tcp");
        let start = |threads| {
            let (server, _) = Server::start(ServerConfig {
                threads,
                snapshot_dir: Some(dir.clone()),
            })
            .unwrap();
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            (thread::spawn(move || serve_tcp(listener, server)), addr)
        };
        let roundtrip = |conn: &mut std::net::TcpStream, doc: &Json| -> Json {
            write_frame(conn, doc.render_compact().as_bytes()).unwrap();
            let frame = read_frame(conn).unwrap().expect("response frame");
            Json::parse(std::str::from_utf8(&frame).unwrap()).unwrap()
        };

        let (serve, addr) = start(2);
        let mut conn = std::net::TcpStream::connect(addr).unwrap();
        assert_ok(&roundtrip(
            &mut conn,
            &req(&[
                ("op", s("create")),
                ("session", s("tcp-a")),
                ("size", n(80)),
                ("seed", n(5)),
            ]),
        ));
        assert_ok(&roundtrip(
            &mut conn,
            &req(&[("op", s("step")), ("session", s("tcp-a")), ("n", n(7))]),
        ));
        let resp = roundtrip(&mut conn, &req(&[("op", s("shutdown"))]));
        assert_eq!(resp.get("snapshotted").and_then(Json::as_u64), Some(1));
        serve.join().unwrap().unwrap();

        // Restart over the same dir: the session is live again.
        let (serve, addr) = start(1);
        let mut conn = std::net::TcpStream::connect(addr).unwrap();
        let doc = roundtrip(
            &mut conn,
            &req(&[("op", s("query")), ("session", s("tcp-a"))]),
        );
        assert_eq!(doc.get("rounds").and_then(Json::as_u64), Some(7));
        let _ = roundtrip(&mut conn, &req(&[("op", s("shutdown"))]));
        serve.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The adversary counterpart of the churn restore differential: a
    /// session snapshotted mid-fault-schedule (stuck pins possibly armed
    /// in the world) and restored into a fresh server replays the rest
    /// of the schedule identically to the uninterrupted session.
    #[test]
    fn fault_session_restores_mid_schedule_byte_identically() {
        // Several seeds so the drawn fault families vary. Each gets its
        // own snapshot dir so resumed leftovers don't leak across seeds.
        for seed in [0u64, 3, 11, 27] {
            let dir = temp_dir(&format!("fault-restore-{seed}"));
            let mk = |threads| {
                Server::start(ServerConfig {
                    threads,
                    snapshot_dir: Some(dir.clone()),
                })
                .unwrap()
            };
            let name = format!("faulty{seed}");
            let (server, _) = mk(2);
            let h = server.handle();
            assert_ok(&h.request(&req(&[
                ("op", s("create")),
                ("session", s(&name)),
                ("family", s("blob-fault-broadcast")),
                ("size", n(40)),
                ("seed", n(seed)),
                ("events", n(6)),
                ("per_event", n(3)),
            ])));
            for _ in 0..3 {
                assert_ok(&h.request(&req(&[("op", s("fault")), ("session", s(&name))])));
                assert_ok(&h.request(&req(&[("op", s("step")), ("session", s(&name))])));
            }
            assert_ok(&h.request(&req(&[("op", s("snapshot")), ("session", s(&name))])));
            for _ in 0..3 {
                assert_ok(&h.request(&req(&[
                    ("op", s("fault")),
                    ("session", s(&name)),
                    ("verify", Json::Bool(true)),
                ])));
                assert_ok(&h.request(&req(&[("op", s("step")), ("session", s(&name))])));
            }
            let reference = h.request(&req(&[("op", s("query")), ("session", s(&name))]));
            assert_ok(&h.request(&req(&[("op", s("close")), ("session", s(&name))])));
            assert_eq!(server.shutdown().unwrap(), 0);

            let (server, skipped) = mk(1);
            assert!(skipped.is_empty(), "{skipped:?}");
            let h = server.handle();
            assert_ok(&h.request(&req(&[("op", s("restore")), ("session", s(&name))])));
            for _ in 0..3 {
                assert_ok(&h.request(&req(&[
                    ("op", s("fault")),
                    ("session", s(&name)),
                    ("verify", Json::Bool(true)),
                ])));
                assert_ok(&h.request(&req(&[("op", s("step")), ("session", s(&name))])));
            }
            let resumed = h.request(&req(&[("op", s("query")), ("session", s(&name))]));
            assert_eq!(
                reference.render_pretty(),
                resumed.render_pretty(),
                "restored fault session diverged (seed {seed})"
            );
            // The schedule is exhausted on both paths.
            let resp = h.request(&req(&[("op", s("fault")), ("session", s(&name))]));
            assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
            server.shutdown().unwrap();
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn fault_op_errors_are_responses() {
        let (server, _) = Server::start(ServerConfig {
            threads: 1,
            snapshot_dir: None,
        })
        .unwrap();
        let h = server.handle();
        // Faulting a plan-less session is an error.
        assert_ok(&h.request(&req(&[
            ("op", s("create")),
            ("session", s("plain")),
            ("size", n(20)),
        ])));
        let resp = h.request(&req(&[("op", s("fault")), ("session", s("plain"))]));
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
        // Mutating a fault session is an error (no churn plan).
        assert_ok(&h.request(&req(&[
            ("op", s("create")),
            ("session", s("adv")),
            ("family", s("blob-fault-broadcast")),
            ("size", n(20)),
            ("events", n(2)),
            ("per_event", n(1)),
        ])));
        let resp = h.request(&req(&[("op", s("mutate")), ("session", s("adv"))]));
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
        // The query envelope reports the fault-plan cursor.
        let doc = h.request(&req(&[("op", s("query")), ("session", s("adv"))]));
        assert!(doc.get("fault_family").is_some());
        assert_eq!(doc.get("next_fault").and_then(Json::as_u64), Some(0));
        assert_eq!(doc.get("fault_events").and_then(Json::as_u64), Some(2));
        server.shutdown().unwrap();
    }

    #[test]
    fn session_snapshot_rejects_every_bit_flip() {
        let mut churny = Session::create("bits", "blob-churn-broadcast", 20, 9, 4, 2).unwrap();
        churny.mutate(false).unwrap();
        churny.step(2).unwrap();
        let mut faulty = Session::create("fbits", "blob-fault-broadcast", 20, 9, 4, 2).unwrap();
        faulty.fault(false).unwrap();
        faulty.step(2).unwrap();
        for session in [churny, faulty] {
            let blob = session.snapshot_bytes();
            for byte in 0..blob.len() {
                for bit in 0..8 {
                    let mut bad = blob.clone();
                    bad[byte] ^= 1 << bit;
                    assert!(
                        Session::from_snapshot_bytes(&bad).is_err(),
                        "flip at byte {byte} bit {bit} was accepted"
                    );
                }
            }
        }
    }

    /// Satellite: the per-session request counters are deterministic,
    /// wall-clock-free, and survive snapshot → fresh-server restore.
    #[test]
    fn op_counters_survive_snapshot_restore() {
        let dir = temp_dir("counters");
        let mk = |threads| {
            Server::start(ServerConfig {
                threads,
                snapshot_dir: Some(dir.clone()),
            })
            .unwrap()
        };
        let (server, _) = mk(2);
        let h = server.handle();
        assert_ok(&h.request(&req(&[
            ("op", s("create")),
            ("session", s("counted")),
            ("size", n(30)),
            ("seed", n(4)),
        ])));
        for _ in 0..2 {
            assert_ok(&h.request(&req(&[("op", s("step")), ("session", s("counted"))])));
        }
        // create + 2 steps + this query = 4 requests so far.
        let doc = h.request(&req(&[("op", s("query")), ("session", s("counted"))]));
        assert_eq!(doc.get("uptime_requests").and_then(Json::as_u64), Some(4));
        let kinds = doc
            .get("ops_by_kind")
            .expect("ops_by_kind")
            .render_compact();
        assert!(kinds.contains("\"create\":1"), "{kinds}");
        assert!(kinds.contains("\"step\":2"), "{kinds}");
        assert!(kinds.contains("\"query\":1"), "{kinds}");
        // The snapshot counts itself before serializing (5 on the wire).
        assert_ok(&h.request(&req(&[("op", s("snapshot")), ("session", s("counted"))])));
        assert_ok(&h.request(&req(&[("op", s("close")), ("session", s("counted"))])));
        assert_eq!(server.shutdown().unwrap(), 0);

        let (server, skipped) = mk(1);
        assert!(skipped.is_empty(), "{skipped:?}");
        let h = server.handle();
        // Restored counters resume from the serialized 5: this query is 6.
        let doc = h.request(&req(&[("op", s("query")), ("session", s("counted"))]));
        assert_eq!(
            doc.get("uptime_requests").and_then(Json::as_u64),
            Some(6),
            "{}",
            doc.render_compact()
        );
        let kinds = doc
            .get("ops_by_kind")
            .expect("ops_by_kind")
            .render_compact();
        assert!(kinds.contains("\"snapshot\":1"), "{kinds}");
        assert!(kinds.contains("\"step\":2"), "{kinds}");
        assert!(kinds.contains("\"query\":2"), "{kinds}");
        server.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Tentpole: `stats` renders byte-identically for the same request
    /// history regardless of shard count, and carries the phase-timer
    /// percentile objects plus the request counters.
    #[test]
    fn stats_is_deterministic_across_shard_counts() {
        let renders: Vec<String> = [1usize, 8]
            .into_iter()
            .map(|threads| {
                let (server, _) = Server::start(ServerConfig {
                    threads,
                    snapshot_dir: None,
                })
                .unwrap();
                let h = server.handle();
                assert_ok(&h.request(&req(&[
                    ("op", s("create")),
                    ("session", s("statty")),
                    ("family", s("blob-churn-broadcast")),
                    ("size", n(40)),
                    ("seed", n(13)),
                    ("events", n(4)),
                    ("per_event", n(2)),
                ])));
                for _ in 0..2 {
                    assert_ok(&h.request(&req(&[("op", s("mutate")), ("session", s("statty"))])));
                    assert_ok(&h.request(&req(&[
                        ("op", s("step")),
                        ("session", s("statty")),
                        ("n", n(3)),
                    ])));
                }
                let doc = h.request(&req(&[("op", s("stats")), ("session", s("statty"))]));
                assert_eq!(doc.get("schema").and_then(Json::as_str), Some(STATS_SCHEMA));
                assert_eq!(doc.get("rounds").and_then(Json::as_u64), Some(6));
                let text = doc.render_pretty();
                assert!(text.contains("phase_percentiles"), "{text}");
                assert!(text.contains("phase_propagate_micros"), "{text}");
                assert!(text.contains("\"p99\""), "{text}");
                assert!(text.contains("uptime_requests"), "{text}");
                server.shutdown().unwrap();
                text
            })
            .collect();
        assert_eq!(
            renders[0], renders[1],
            "stats must not depend on shard count"
        );
    }

    /// Tentpole: `watch` over a real socket — a second connection's
    /// steps push live stats frames to the watcher, then the watcher's
    /// connection resumes normal request service.
    #[test]
    fn watch_streams_stats_frames_over_tcp() {
        let (server, _) = Server::start(ServerConfig {
            threads: 2,
            snapshot_dir: None,
        })
        .unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let serve = thread::spawn(move || serve_tcp(listener, server));
        let roundtrip = |conn: &mut std::net::TcpStream, doc: &Json| -> Json {
            write_frame(conn, doc.render_compact().as_bytes()).unwrap();
            let frame = read_frame(conn).unwrap().expect("response frame");
            Json::parse(std::str::from_utf8(&frame).unwrap()).unwrap()
        };

        let mut driver = std::net::TcpStream::connect(addr).unwrap();
        assert_ok(&roundtrip(
            &mut driver,
            &req(&[
                ("op", s("create")),
                ("session", s("watched")),
                ("size", n(40)),
                ("seed", n(2)),
            ]),
        ));
        // Watching a missing session is an error response, not a hang.
        let mut watcher = std::net::TcpStream::connect(addr).unwrap();
        let resp = roundtrip(
            &mut watcher,
            &req(&[("op", s("watch")), ("session", s("ghost"))]),
        );
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
        // Register for two frames; the ack confirms before any step.
        let ack = roundtrip(
            &mut watcher,
            &req(&[
                ("op", s("watch")),
                ("session", s("watched")),
                ("frames", n(2)),
            ]),
        );
        assert_eq!(ack.get("watching").and_then(Json::as_str), Some("watched"));
        assert_eq!(ack.get("frames").and_then(Json::as_u64), Some(2));
        // Each completed step batch pushes exactly one stats frame.
        assert_ok(&roundtrip(
            &mut driver,
            &req(&[("op", s("step")), ("session", s("watched")), ("n", n(3))]),
        ));
        let frame = read_frame(&mut watcher).unwrap().expect("first frame");
        let frame = Json::parse(std::str::from_utf8(&frame).unwrap()).unwrap();
        assert_eq!(
            frame.get("schema").and_then(Json::as_str),
            Some(STATS_SCHEMA)
        );
        assert_eq!(frame.get("rounds").and_then(Json::as_u64), Some(3));
        assert_ok(&roundtrip(
            &mut driver,
            &req(&[("op", s("step")), ("session", s("watched"))]),
        ));
        let frame = read_frame(&mut watcher).unwrap().expect("second frame");
        let frame = Json::parse(std::str::from_utf8(&frame).unwrap()).unwrap();
        assert_eq!(frame.get("rounds").and_then(Json::as_u64), Some(4));
        // End marker, then the connection serves ordinary requests again.
        let end = read_frame(&mut watcher).unwrap().expect("end marker");
        let end = Json::parse(std::str::from_utf8(&end).unwrap()).unwrap();
        assert_eq!(end.get("frames_sent").and_then(Json::as_u64), Some(2));
        let doc = roundtrip(
            &mut watcher,
            &req(&[("op", s("query")), ("session", s("watched"))]),
        );
        assert_eq!(doc.get("rounds").and_then(Json::as_u64), Some(4));
        let _ = roundtrip(&mut driver, &req(&[("op", s("shutdown"))]));
        serve.join().unwrap().unwrap();
    }

    #[test]
    fn server_main_usage_contract() {
        let mut diag = Vec::new();
        assert_eq!(server_main(&["--bogus".to_string()], &mut diag), 2);
        assert_eq!(server_main(&["--port".to_string()], &mut diag), 2);
        assert_eq!(
            server_main(&["--port".to_string(), "abc".to_string()], &mut diag),
            2
        );
        let text = String::from_utf8(diag).unwrap();
        assert!(text.contains("unknown argument"));
        assert!(text.contains("invalid value for --port"));
    }
}
