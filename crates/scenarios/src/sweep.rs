//! Structure-size sweeps: throughput as a measured, tracked quantity.
//!
//! A sweep runs every sweepable registry family across a geometric size
//! ladder (1k → 10k → 100k → 1M nodes, capped by `--max-nodes` and by
//! each family's own [`Family::sweep_max_n`] ceiling) and reports
//! per-(family, size) throughput. The timed rendering
//! (`BENCH_sweep.json`) is what the CI perf gate diffs against
//! `bench/baseline.json`; the canonical rendering (`--no-timing`) carries
//! the same byte-determinism guarantee as batch reports: identical for
//! identical `(seed, ladder)` inputs regardless of thread count.
//!
//! [`Family::sweep_max_n`]: crate::registry::Family::sweep_max_n

use amoebot_telemetry::{NullRecorder, Recorder};

use crate::batch::{run_batch_with, Threads};
use crate::json::Json;
use crate::registry::Registry;
use crate::report::metrics_to_json;
use crate::run::ScenarioResult;
use crate::spec::{derive_rng, Scenario};
use rand::RngCore;

/// Schema identifier embedded in every sweep report.
pub const SWEEP_SCHEMA: &str = "spf-sweep-report/v1";

/// The default geometric size ladder.
pub const DEFAULT_SIZES: [usize; 4] = [1_000, 10_000, 100_000, 1_000_000];

/// One rung of a sweep: a scenario pinned to a target structure size.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Registry family name.
    pub family: String,
    /// Target structure size (the ladder rung; the realized size is in
    /// the result's `n`).
    pub size: usize,
    /// The concrete scenario to run.
    pub scenario: Scenario,
}

/// Builds the sweep suite: every sweepable family (or the sweepable
/// subset of `only`, if non-empty), each at every ladder rung within both
/// `max_nodes` and the family's own ceiling. Deterministic: the rung's
/// seed derives from `(master_seed, family name, size)` only, so adding
/// families or rungs never reshuffles the others.
pub fn sweep_suite(
    registry: &Registry,
    master_seed: u64,
    sizes: &[usize],
    max_nodes: usize,
    only: &[String],
) -> Vec<SweepPoint> {
    let mut out = Vec::new();
    for family in registry.families() {
        if !family.sweepable() {
            continue;
        }
        if !only.is_empty() && !only.iter().any(|n| n == family.name) {
            continue;
        }
        for &size in sizes {
            if size > max_nodes || size > family.sweep_max_n {
                continue;
            }
            // Tag with the family name hash so two families at the same
            // rung never share a seed stream.
            let tag = family
                .name
                .bytes()
                .fold(0u64, |h, b| h.wrapping_mul(131).wrapping_add(b as u64));
            let seed = derive_rng(master_seed ^ tag, size as u64).next_u64();
            let scenario = family
                .build_sized(seed, size)
                .expect("sweepable family has a sized builder");
            out.push(SweepPoint {
                family: family.name.to_string(),
                size,
                scenario,
            });
        }
    }
    out
}

/// Runs a sweep suite over `threads` workers and pairs each point with
/// its result, in suite order (thread count never affects content).
pub fn run_sweep(points: &[SweepPoint], threads: Threads) -> Vec<(SweepPoint, ScenarioResult)> {
    run_sweep_with::<NullRecorder>(points, threads)
}

/// [`run_sweep`] with an explicit per-worker recorder type, like
/// [`run_batch_with`] — the timed `BENCH_sweep.json` runs with
/// [`amoebot_telemetry::TimedRecorder`] so each rung carries its
/// per-phase micros breakdown.
pub fn run_sweep_with<R: Recorder + Default>(
    points: &[SweepPoint],
    threads: Threads,
) -> Vec<(SweepPoint, ScenarioResult)> {
    let scenarios: Vec<Scenario> = points.iter().map(|p| p.scenario.clone()).collect();
    let results = run_batch_with::<R>(&scenarios, threads);
    points.iter().cloned().zip(results).collect()
}

/// An aggregated sweep outcome, renderable as `BENCH_sweep.json`.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// The master seed the sweep was derived from.
    pub master_seed: u64,
    /// The `--max-nodes` ceiling the ladder was clipped to.
    pub max_nodes: usize,
    /// Worker threads used (provenance; never affects content).
    pub threads: usize,
    /// Per-rung outcomes in suite order.
    pub entries: Vec<(SweepPoint, ScenarioResult)>,
}

impl SweepReport {
    /// Number of rungs that passed cross-validation.
    pub fn passed(&self) -> usize {
        self.entries.iter().filter(|(_, r)| r.pass).count()
    }

    /// Number of rungs that failed cross-validation.
    pub fn failed(&self) -> usize {
        self.entries.len() - self.passed()
    }

    /// Renders the report. With `include_timing` the per-rung
    /// `wall_micros` and the derived `nodes_per_sec` throughput are
    /// included (this is the `BENCH_sweep.json` the perf gate consumes);
    /// without, the output is canonical and byte-stable across runs and
    /// thread counts.
    pub fn to_json(&self, include_timing: bool) -> Json {
        let entries: Vec<Json> = self
            .entries
            .iter()
            .map(|(p, r)| {
                let mut doc = Json::object()
                    .field("family", p.family.as_str())
                    .field("size", p.size)
                    .field("name", r.name.as_str())
                    .field("seed", r.seed)
                    .field("n", r.n)
                    .field("k", r.k)
                    .field("l", r.l)
                    .field("rounds", r.rounds)
                    .field("beeps", r.beeps);
                if include_timing {
                    doc = doc
                        .field("wall_micros", r.wall_micros)
                        .field("nodes_per_sec", nodes_per_sec(r.n, r.wall_micros));
                }
                // The per-rung engine breakdown (relabel counts, beep
                // totals, phase micros) so a perf-gate regression names
                // the phase that moved, not just the rung.
                if !r.metrics.is_empty() {
                    doc = doc.field("metrics", metrics_to_json(&r.metrics, include_timing));
                }
                doc.field("pass", r.pass)
            })
            .collect();
        let mut summary = Json::object()
            .field("passed", self.passed())
            .field("failed", self.failed())
            .field(
                "total_rounds",
                self.entries.iter().map(|(_, r)| r.rounds).sum::<u64>(),
            )
            .field(
                "total_beeps",
                self.entries.iter().map(|(_, r)| r.beeps).sum::<u64>(),
            );
        if include_timing {
            summary = summary.field(
                "total_wall_micros",
                self.entries.iter().map(|(_, r)| r.wall_micros).sum::<u64>(),
            );
        }
        let mut doc = Json::object()
            .field("schema", SWEEP_SCHEMA)
            .field("master_seed", self.master_seed)
            .field("max_nodes", self.max_nodes)
            .field("count", self.entries.len());
        if include_timing {
            doc = doc.field("threads", self.threads);
        }
        doc.field("entries", Json::Array(entries))
            .field("summary", summary)
    }

    /// The canonical pretty-printed JSON string (no timing; byte-stable).
    pub fn canonical_json(&self) -> String {
        self.to_json(false).render_pretty()
    }
}

/// Whole-structure throughput of one rung: nodes simulated per wall-clock
/// second, saturating and division-safe.
pub fn nodes_per_sec(n: usize, wall_micros: u64) -> u64 {
    ((n as u128) * 1_000_000 / (wall_micros.max(1) as u128)).min(u64::MAX as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::default_registry;

    #[test]
    fn suite_respects_ceilings_and_filters() {
        let r = default_registry();
        let suite = sweep_suite(&r, 42, &DEFAULT_SIZES, 100_000, &[]);
        assert!(!suite.is_empty());
        for p in &suite {
            assert!(p.size <= 100_000, "{}: rung {} over max", p.family, p.size);
            let fam = r.get(&p.family).unwrap();
            assert!(
                p.size <= fam.sweep_max_n,
                "{} over family ceiling",
                p.family
            );
        }
        // The DnC forest family reaches its lifted 100k ceiling...
        assert!(suite
            .iter()
            .any(|p| p.family == "random-blob-forest" && p.size == 100_000));
        // ...but no further: 1M stays above the ceiling.
        let unclipped = sweep_suite(&r, 42, &DEFAULT_SIZES, 1_000_000, &[]);
        assert!(!unclipped
            .iter()
            .any(|p| p.family == "random-blob-forest" && p.size > 100_000));
        // Filtering restricts to the named family.
        let only = sweep_suite(&r, 42, &DEFAULT_SIZES, 10_000, &["blob-broadcast".into()]);
        assert!(only.iter().all(|p| p.family == "blob-broadcast"));
        assert_eq!(only.len(), 2); // 1k and 10k rungs
    }

    #[test]
    fn rung_seeds_are_stable_under_suite_composition() {
        let r = default_registry();
        let all = sweep_suite(&r, 7, &DEFAULT_SIZES, 10_000, &[]);
        let only = sweep_suite(&r, 7, &DEFAULT_SIZES, 10_000, &["random-blob-spt".into()]);
        for p in &only {
            let same = all
                .iter()
                .find(|q| q.family == p.family && q.size == p.size)
                .expect("family present in the full suite");
            assert_eq!(same.scenario.seed, p.scenario.seed);
            assert_eq!(same.scenario.name, p.scenario.name);
        }
    }

    #[test]
    fn small_sweep_runs_and_renders() {
        let r = default_registry();
        let suite = sweep_suite(&r, 3, &[100, 200], 200, &[]);
        let entries = run_sweep(&suite, Threads::Count(2));
        assert!(entries.iter().all(|(_, res)| res.pass));
        let report = SweepReport {
            master_seed: 3,
            max_nodes: 200,
            threads: 2,
            entries,
        };
        let canon = report.canonical_json();
        assert!(canon.contains(SWEEP_SCHEMA));
        assert!(!canon.contains("wall_micros"));
        assert!(!canon.contains("nodes_per_sec"));
        let timed = report.to_json(true).render_pretty();
        assert!(timed.contains("nodes_per_sec"));
    }

    #[test]
    fn nodes_per_sec_is_division_safe() {
        assert_eq!(nodes_per_sec(1000, 0), 1_000_000_000);
        assert_eq!(nodes_per_sec(1000, 1_000_000), 1000);
        assert_eq!(nodes_per_sec(0, 5), 0);
    }
}
