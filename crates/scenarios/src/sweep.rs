//! Structure-size sweeps: throughput as a measured, tracked quantity.
//!
//! A sweep runs every sweepable registry family across a geometric size
//! ladder (1k → 10k → 100k → 1M nodes, capped by `--max-nodes` and by
//! each family's own [`Family::sweep_max_n`] ceiling) and reports
//! per-(family, size) throughput. The timed rendering
//! (`BENCH_sweep.json`) is what the CI perf gate diffs against
//! `bench/baseline.json`; the canonical rendering (`--no-timing`) carries
//! the same byte-determinism guarantee as batch reports: identical for
//! identical `(seed, ladder)` inputs regardless of thread count.
//!
//! [`Family::sweep_max_n`]: crate::registry::Family::sweep_max_n

use std::path::{Path, PathBuf};

use amoebot_telemetry::{NullRecorder, Recorder};

use crate::batch::{run_batch_inspect, Threads};
use crate::json::Json;
use crate::registry::Registry;
use crate::report::{metrics_to_json, Envelope};
use crate::run::ScenarioResult;
use crate::spec::{derive_rng, Scenario};
use rand::RngCore;

/// Schema identifier embedded in every sweep report.
pub const SWEEP_SCHEMA: &str = "spf-sweep-report/v1";

/// The default geometric size ladder.
pub const DEFAULT_SIZES: [usize; 4] = [1_000, 10_000, 100_000, 1_000_000];

/// One rung of a sweep: a scenario pinned to a target structure size.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Registry family name.
    pub family: String,
    /// Target structure size (the ladder rung; the realized size is in
    /// the result's `n`).
    pub size: usize,
    /// The concrete scenario to run.
    pub scenario: Scenario,
}

/// Builds the sweep suite: every sweepable family (or the sweepable
/// subset of `only`, if non-empty), each at every ladder rung within both
/// `max_nodes` and the family's own ceiling. Deterministic: the rung's
/// seed derives from `(master_seed, family name, size)` only, so adding
/// families or rungs never reshuffles the others.
pub fn sweep_suite(
    registry: &Registry,
    master_seed: u64,
    sizes: &[usize],
    max_nodes: usize,
    only: &[String],
) -> Vec<SweepPoint> {
    let mut out = Vec::new();
    for family in registry.families() {
        if !family.sweepable() {
            continue;
        }
        if !only.is_empty() && !only.iter().any(|n| n == family.name) {
            continue;
        }
        for &size in sizes {
            if size > max_nodes || size > family.sweep_max_n {
                continue;
            }
            // Tag with the family name hash so two families at the same
            // rung never share a seed stream.
            let tag = family
                .name
                .bytes()
                .fold(0u64, |h, b| h.wrapping_mul(131).wrapping_add(b as u64));
            let seed = derive_rng(master_seed ^ tag, size as u64).next_u64();
            let scenario = family
                .build_sized(seed, size)
                .expect("sweepable family has a sized builder");
            out.push(SweepPoint {
                family: family.name.to_string(),
                size,
                scenario,
            });
        }
    }
    out
}

/// One finished rung, with **both** report renderings pre-rendered.
///
/// Rendering happens once, while the live [`ScenarioResult`] (and its
/// metrics registry, whose wall-clock timers cannot be reconstructed
/// from summaries) is still in hand. A rung resumed from a checkpoint
/// file therefore re-emits exactly the bytes the original run would
/// have — the resumed report is byte-identical by construction, not by
/// re-derivation.
#[derive(Debug, Clone)]
pub struct SweepEntry {
    /// Registry family name (checkpoint key, with `size` and `seed`).
    pub family: String,
    /// Ladder rung (target size).
    pub size: usize,
    /// The rung's derived scenario seed. Part of the checkpoint key: a
    /// different master seed derives different rung seeds, so stale
    /// checkpoint files can never be resumed against the wrong sweep.
    pub seed: u64,
    /// Realized structure size.
    pub n: usize,
    /// Rounds simulated.
    pub rounds: u64,
    /// Beeps delivered.
    pub beeps: u64,
    /// Wall-clock micros of the original run (provenance).
    pub wall_micros: u64,
    /// Whether cross-validation passed.
    pub pass: bool,
    /// Pre-rendered canonical per-rung report object (no timing).
    pub canonical: Json,
    /// Pre-rendered timed per-rung report object.
    pub timed: Json,
}

impl SweepEntry {
    /// Renders a finished rung into its two report forms.
    pub fn from_result(p: &SweepPoint, r: &ScenarioResult) -> SweepEntry {
        let render = |include_timing: bool| {
            let mut doc = Json::object()
                .field("family", p.family.as_str())
                .field("size", p.size)
                .field("name", r.name.as_str())
                .field("seed", r.seed)
                .field("n", r.n)
                .field("k", r.k)
                .field("l", r.l)
                .field("rounds", r.rounds)
                .field("beeps", r.beeps);
            if include_timing {
                doc = doc
                    .field("wall_micros", r.wall_micros)
                    .field("nodes_per_sec", nodes_per_sec(r.n, r.wall_micros));
            }
            // The per-rung engine breakdown (relabel counts, beep
            // totals, phase micros) so a perf-gate regression names
            // the phase that moved, not just the rung.
            if !r.metrics.is_empty() {
                doc = doc.field("metrics", metrics_to_json(&r.metrics, include_timing));
            }
            doc.field("pass", r.pass)
        };
        SweepEntry {
            family: p.family.clone(),
            size: p.size,
            seed: r.seed,
            n: r.n,
            rounds: r.rounds,
            beeps: r.beeps,
            wall_micros: r.wall_micros,
            pass: r.pass,
            canonical: render(false),
            timed: render(true),
        }
    }

    /// One compact JSON line for the checkpoint file.
    pub fn to_checkpoint_line(&self) -> String {
        Json::object()
            .field("family", self.family.as_str())
            .field("size", self.size)
            .field("seed", self.seed)
            .field("n", self.n)
            .field("rounds", self.rounds)
            .field("beeps", self.beeps)
            .field("wall_micros", self.wall_micros)
            .field("pass", self.pass)
            .field("canonical", self.canonical.clone())
            .field("timed", self.timed.clone())
            .render_compact()
    }

    /// Parses one checkpoint line back. Any malformed or truncated line
    /// (say, from a run killed mid-write) is an `Err` the store skips.
    pub fn from_checkpoint_line(line: &str) -> Result<SweepEntry, String> {
        let doc = Json::parse(line)?;
        let str_field = |k: &str| -> Result<String, String> {
            doc.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field {k:?}"))
        };
        let num_field = |k: &str| -> Result<u64, String> {
            doc.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing numeric field {k:?}"))
        };
        let obj_field = |k: &str| -> Result<Json, String> {
            match doc.get(k) {
                Some(v @ Json::Object(_)) => Ok(v.clone()),
                _ => Err(format!("missing object field {k:?}")),
            }
        };
        Ok(SweepEntry {
            family: str_field("family")?,
            size: num_field("size")? as usize,
            seed: num_field("seed")?,
            n: num_field("n")? as usize,
            rounds: num_field("rounds")?,
            beeps: num_field("beeps")?,
            wall_micros: num_field("wall_micros")?,
            pass: doc
                .get("pass")
                .and_then(Json::as_bool)
                .ok_or("missing bool field \"pass\"")?,
            canonical: obj_field("canonical")?,
            timed: obj_field("timed")?,
        })
    }
}

/// A `--checkpoint-dir` store: one JSON-lines file per master seed,
/// appended as rungs finish, scanned on startup.
///
/// Resume semantics: only **passed** rungs are skipped. A failed rung —
/// most often a churn schedule that tripped the rebuild oracle — re-runs
/// on every resume, so the workflow for a red 100k–1M sweep is to fix,
/// re-invoke with the same `--checkpoint-dir`, and pay only for the
/// failed rungs: the checkpoint bisects the suite down to the breakage.
#[derive(Debug)]
pub struct CheckpointStore {
    path: PathBuf,
    entries: Vec<SweepEntry>,
    /// The file ends in a torn (unterminated) line — the next append
    /// must open a fresh line or it would corrupt itself by
    /// concatenating onto the fragment.
    torn_tail: bool,
}

impl CheckpointStore {
    /// Opens (creating the directory if needed) the checkpoint file for
    /// `master_seed` under `dir` and loads every well-formed line.
    pub fn open(dir: &Path, master_seed: u64) -> std::io::Result<CheckpointStore> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("sweep-{master_seed}.jsonl"));
        let mut entries = Vec::new();
        let mut torn_tail = false;
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                for line in text.lines() {
                    if line.trim().is_empty() {
                        continue;
                    }
                    // A torn tail line from an interrupted append is
                    // expected; its rung simply re-runs.
                    if let Ok(e) = SweepEntry::from_checkpoint_line(line) {
                        entries.push(e);
                    }
                }
                torn_tail = !text.is_empty() && !text.ends_with('\n');
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        Ok(CheckpointStore {
            path,
            entries,
            torn_tail,
        })
    }

    /// Number of loaded (resumable) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no entries yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The completed-and-passed entry for a rung, if any.
    pub fn lookup(&self, family: &str, size: usize, seed: u64) -> Option<&SweepEntry> {
        self.entries
            .iter()
            .find(|e| e.pass && e.family == family && e.size == size && e.seed == seed)
    }

    /// Appends a finished rung and flushes it to disk immediately, so an
    /// interruption loses at most the in-flight chunk.
    pub fn append(&mut self, entry: &SweepEntry) -> std::io::Result<()> {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        if self.torn_tail {
            // Seal the interrupted line so this entry starts fresh
            // instead of concatenating onto the fragment.
            writeln!(f)?;
            self.torn_tail = false;
        }
        writeln!(f, "{}", entry.to_checkpoint_line())?;
        f.sync_data()?;
        self.entries.push(entry.clone());
        Ok(())
    }
}

/// How one rung of a checkpointed sweep was satisfied (the progress
/// callback's view).
pub enum RungOutcome<'a> {
    /// Skipped: a passed entry for this rung was found in the store.
    Resumed(&'a SweepEntry),
    /// Freshly executed this run.
    Ran(&'a SweepPoint, &'a ScenarioResult),
}

/// Runs a sweep suite over `threads` workers and returns the finished
/// entries in suite order (thread count never affects content).
pub fn run_sweep(points: &[SweepPoint], threads: Threads) -> Vec<SweepEntry> {
    run_sweep_with::<NullRecorder>(points, threads)
}

/// [`run_sweep`] with an explicit per-worker recorder type, like
/// [`run_batch_with`] — the timed `BENCH_sweep.json` runs with
/// [`amoebot_telemetry::TimedRecorder`] so each rung carries its
/// per-phase micros breakdown.
pub fn run_sweep_with<R: Recorder + Default>(
    points: &[SweepPoint],
    threads: Threads,
) -> Vec<SweepEntry> {
    run_sweep_checkpointed::<R>(points, threads, None, &mut |_| {})
        // spf-lint: allow(panic-surface) — invariant: the only Err path is checkpoint I/O, and no store is passed
        .expect("no checkpoint store, so no checkpoint I/O can fail")
        .0
}

/// The checkpoint-aware sweep driver.
///
/// Rungs with a passed entry in `checkpoint` are resumed without
/// running; the rest execute in chunks of roughly two batches per
/// worker, each chunk's entries appended (and synced) to the store
/// before the next chunk starts — a `kill -9` mid-sweep loses at most
/// one chunk of work. `on_rung` fires once per rung in completion
/// order (resumed rungs first). Returns the entries in suite order plus
/// the freshly-run results (for `--metrics-json` merging; resumed rungs
/// carry their metrics only inside the pre-rendered JSON).
pub fn run_sweep_checkpointed<R: Recorder + Default>(
    points: &[SweepPoint],
    threads: Threads,
    checkpoint: Option<&mut CheckpointStore>,
    on_rung: &mut dyn FnMut(RungOutcome<'_>),
) -> std::io::Result<(Vec<SweepEntry>, Vec<ScenarioResult>)> {
    run_sweep_observed::<R>(points, threads, checkpoint, on_rung, |_, _| {})
}

/// [`run_sweep_checkpointed`] plus the per-scenario `inspect` hook of
/// [`crate::batch::run_batch_inspect`]: each freshly-run rung's recorder
/// is exposed next to its result on the worker thread — the sweep FAIL
/// path's flight-record dump. Resumed rungs never re-run, so the hook
/// does not fire for them.
pub fn run_sweep_observed<R: Recorder + Default>(
    points: &[SweepPoint],
    threads: Threads,
    mut checkpoint: Option<&mut CheckpointStore>,
    on_rung: &mut dyn FnMut(RungOutcome<'_>),
    inspect: impl Fn(&ScenarioResult, &R) + Sync,
) -> std::io::Result<(Vec<SweepEntry>, Vec<ScenarioResult>)> {
    let mut slots: Vec<Option<SweepEntry>> = points.iter().map(|_| None).collect();
    let mut pending: Vec<usize> = Vec::new();
    for (i, p) in points.iter().enumerate() {
        let hit = checkpoint
            .as_deref()
            .and_then(|s| s.lookup(&p.family, p.size, p.scenario.seed))
            .cloned();
        match hit {
            Some(entry) => {
                on_rung(RungOutcome::Resumed(&entry));
                slots[i] = Some(entry);
            }
            None => pending.push(i),
        }
    }
    let chunk = threads.resolve().max(1) * 2;
    let mut fresh = Vec::new();
    for ids in pending.chunks(chunk) {
        let scenarios: Vec<Scenario> = ids.iter().map(|&i| points[i].scenario.clone()).collect();
        let results = run_batch_inspect::<R>(&scenarios, threads, &inspect);
        for (&i, r) in ids.iter().zip(&results) {
            let entry = SweepEntry::from_result(&points[i], r);
            if let Some(store) = checkpoint.as_deref_mut() {
                store.append(&entry)?;
            }
            on_rung(RungOutcome::Ran(&points[i], r));
            slots[i] = Some(entry);
        }
        fresh.extend(results);
    }
    let entries = slots
        .into_iter()
        // spf-lint: allow(panic-surface) — invariant: the resume loop and run loop jointly fill every slot
        .map(|s| s.expect("every rung either resumed or ran"))
        .collect();
    Ok((entries, fresh))
}

/// An aggregated sweep outcome, renderable as `BENCH_sweep.json`.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// The master seed the sweep was derived from.
    pub master_seed: u64,
    /// The `--max-nodes` ceiling the ladder was clipped to.
    pub max_nodes: usize,
    /// Worker threads used (provenance; never affects content).
    pub threads: usize,
    /// Per-rung outcomes in suite order.
    pub entries: Vec<SweepEntry>,
}

impl SweepReport {
    /// Number of rungs that passed cross-validation.
    pub fn passed(&self) -> usize {
        self.entries.iter().filter(|e| e.pass).count()
    }

    /// Number of rungs that failed cross-validation.
    pub fn failed(&self) -> usize {
        self.entries.len() - self.passed()
    }

    /// Renders the report. With `include_timing` the per-rung
    /// `wall_micros` and the derived `nodes_per_sec` throughput are
    /// included (this is the `BENCH_sweep.json` the perf gate consumes);
    /// without, the output is canonical and byte-stable across runs,
    /// thread counts *and* checkpoint resumes (the per-rung objects are
    /// pre-rendered at run time; see [`SweepEntry`]).
    pub fn to_json(&self, include_timing: bool) -> Json {
        let entries: Vec<Json> = self
            .entries
            .iter()
            .map(|e| {
                if include_timing {
                    e.timed.clone()
                } else {
                    e.canonical.clone()
                }
            })
            .collect();
        let mut summary = Json::object()
            .field("passed", self.passed())
            .field("failed", self.failed())
            .field(
                "total_rounds",
                self.entries.iter().map(|e| e.rounds).sum::<u64>(),
            )
            .field(
                "total_beeps",
                self.entries.iter().map(|e| e.beeps).sum::<u64>(),
            );
        if include_timing {
            summary = summary.field(
                "total_wall_micros",
                self.entries.iter().map(|e| e.wall_micros).sum::<u64>(),
            );
        }
        Envelope::new(SWEEP_SCHEMA, include_timing)
            .field("master_seed", self.master_seed)
            .field("max_nodes", self.max_nodes)
            .field("count", self.entries.len())
            .timed_field("threads", self.threads)
            .field("entries", Json::Array(entries))
            .field("summary", summary)
            .finish()
    }

    /// The canonical pretty-printed JSON string (no timing; byte-stable).
    pub fn canonical_json(&self) -> String {
        self.to_json(false).render_pretty()
    }
}

/// Whole-structure throughput of one rung: nodes simulated per wall-clock
/// second, saturating and division-safe.
pub fn nodes_per_sec(n: usize, wall_micros: u64) -> u64 {
    ((n as u128) * 1_000_000 / (wall_micros.max(1) as u128)).min(u64::MAX as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::default_registry;

    #[test]
    fn suite_respects_ceilings_and_filters() {
        let r = default_registry();
        let suite = sweep_suite(&r, 42, &DEFAULT_SIZES, 100_000, &[]);
        assert!(!suite.is_empty());
        for p in &suite {
            assert!(p.size <= 100_000, "{}: rung {} over max", p.family, p.size);
            let fam = r.get(&p.family).unwrap();
            assert!(
                p.size <= fam.sweep_max_n,
                "{} over family ceiling",
                p.family
            );
        }
        // The DnC forest family reaches its lifted 100k ceiling...
        assert!(suite
            .iter()
            .any(|p| p.family == "random-blob-forest" && p.size == 100_000));
        // ...but no further: 1M stays above the ceiling.
        let unclipped = sweep_suite(&r, 42, &DEFAULT_SIZES, 1_000_000, &[]);
        assert!(!unclipped
            .iter()
            .any(|p| p.family == "random-blob-forest" && p.size > 100_000));
        // Filtering restricts to the named family.
        let only = sweep_suite(&r, 42, &DEFAULT_SIZES, 10_000, &["blob-broadcast".into()]);
        assert!(only.iter().all(|p| p.family == "blob-broadcast"));
        assert_eq!(only.len(), 2); // 1k and 10k rungs
    }

    #[test]
    fn rung_seeds_are_stable_under_suite_composition() {
        let r = default_registry();
        let all = sweep_suite(&r, 7, &DEFAULT_SIZES, 10_000, &[]);
        let only = sweep_suite(&r, 7, &DEFAULT_SIZES, 10_000, &["random-blob-spt".into()]);
        for p in &only {
            let same = all
                .iter()
                .find(|q| q.family == p.family && q.size == p.size)
                .expect("family present in the full suite");
            assert_eq!(same.scenario.seed, p.scenario.seed);
            assert_eq!(same.scenario.name, p.scenario.name);
        }
    }

    #[test]
    fn small_sweep_runs_and_renders() {
        let r = default_registry();
        let suite = sweep_suite(&r, 3, &[100, 200], 200, &[]);
        let entries = run_sweep(&suite, Threads::Count(2));
        assert!(entries.iter().all(|e| e.pass));
        let report = SweepReport {
            master_seed: 3,
            max_nodes: 200,
            threads: 2,
            entries,
        };
        let canon = report.canonical_json();
        assert!(canon.contains(SWEEP_SCHEMA));
        assert!(!canon.contains("wall_micros"));
        assert!(!canon.contains("nodes_per_sec"));
        let timed = report.to_json(true).render_pretty();
        assert!(timed.contains("nodes_per_sec"));
    }

    #[test]
    fn checkpoint_lines_round_trip() {
        let r = default_registry();
        let suite = sweep_suite(&r, 13, &[100], 100, &["blob-broadcast".into()]);
        let entries = run_sweep(&suite, Threads::Count(1));
        for e in &entries {
            let back = SweepEntry::from_checkpoint_line(&e.to_checkpoint_line()).unwrap();
            assert_eq!(back.family, e.family);
            assert_eq!(back.seed, e.seed);
            assert_eq!(back.canonical, e.canonical);
            assert_eq!(back.timed, e.timed);
        }
        assert!(SweepEntry::from_checkpoint_line("{\"family\": 3}").is_err());
        assert!(SweepEntry::from_checkpoint_line("not json").is_err());
    }

    /// The resume contract: a sweep interrupted after some rungs and
    /// resumed from its `--checkpoint-dir` renders byte-identical
    /// reports (canonical *and* timed), skips the finished rungs, and
    /// survives a torn tail line.
    #[test]
    fn checkpointed_resume_is_byte_identical_and_skips_finished_rungs() {
        let r = default_registry();
        let suite = sweep_suite(&r, 29, &[64, 128], 128, &[]);
        assert!(suite.len() >= 2, "need at least two rungs to interrupt");
        let dir = std::env::temp_dir().join(format!("spf-ckpt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // The uninterrupted reference run (no checkpointing).
        let reference = SweepReport {
            master_seed: 29,
            max_nodes: 128,
            threads: 1,
            entries: run_sweep(&suite, Threads::Count(1)),
        };

        // "Interrupted" run: only the first rung completes.
        let mut store = CheckpointStore::open(&dir, 29).unwrap();
        let (_, fresh) = run_sweep_checkpointed::<NullRecorder>(
            &suite[..1],
            Threads::Count(1),
            Some(&mut store),
            &mut |_| {},
        )
        .unwrap();
        assert_eq!(fresh.len(), 1);

        // Simulate a kill mid-append: a torn half-line at the tail.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(store.path())
                .unwrap();
            write!(f, "{{\"family\": \"torn").unwrap();
        }

        // Resume: the finished rung must come from the store.
        let mut store = CheckpointStore::open(&dir, 29).unwrap();
        assert_eq!(store.len(), 1, "torn tail line must be dropped");
        let mut resumed_count = 0usize;
        let (entries, fresh) = run_sweep_checkpointed::<NullRecorder>(
            &suite,
            Threads::Count(1),
            Some(&mut store),
            &mut |o| {
                if matches!(o, RungOutcome::Resumed(_)) {
                    resumed_count += 1;
                }
            },
        )
        .unwrap();
        assert_eq!(resumed_count, 1);
        assert_eq!(fresh.len(), suite.len() - 1);
        let resumed = SweepReport {
            master_seed: 29,
            max_nodes: 128,
            threads: 1,
            entries,
        };
        assert_eq!(resumed.canonical_json(), reference.canonical_json());
        // The timed rendering of the resumed rung replays the original
        // run's wall numbers (pre-rendered), so even the timed report is
        // reproduced byte-for-byte.
        let timed_a = resumed.to_json(true).render_pretty();
        let timed_b = {
            let mut store = CheckpointStore::open(&dir, 29).unwrap();
            let (entries, _) = run_sweep_checkpointed::<NullRecorder>(
                &suite,
                Threads::Count(1),
                Some(&mut store),
                &mut |_| {},
            )
            .unwrap();
            SweepReport {
                master_seed: 29,
                max_nodes: 128,
                threads: 1,
                entries,
            }
            .to_json(true)
            .render_pretty()
        };
        assert_eq!(
            timed_a, timed_b,
            "fully-resumed timed report must be stable"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Failed rungs re-run on resume — the checkpoint "bisects" a red
    /// sweep down to its failures instead of replaying the green rungs.
    #[test]
    fn failed_rungs_are_not_resumed() {
        let r = default_registry();
        // selftest-fail is not sweepable, so fabricate a failing entry.
        let suite = sweep_suite(&r, 31, &[64], 64, &["blob-broadcast".into()]);
        assert_eq!(suite.len(), 1);
        let dir = std::env::temp_dir().join(format!("spf-ckpt-fail-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = CheckpointStore::open(&dir, 31).unwrap();
        let entries = run_sweep(&suite, Threads::Count(1));
        let mut failed = entries[0].clone();
        failed.pass = false;
        store.append(&failed).unwrap();
        assert!(
            store
                .lookup(&failed.family, failed.size, failed.seed)
                .is_none(),
            "failed entries must not satisfy a resume lookup"
        );
        // A passed entry for the same rung (the re-run) does.
        store.append(&entries[0]).unwrap();
        assert!(store
            .lookup(&failed.family, failed.size, failed.seed)
            .is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn nodes_per_sec_is_division_safe() {
        assert_eq!(nodes_per_sec(1000, 0), 1_000_000_000);
        assert_eq!(nodes_per_sec(1000, 1_000_000), 1000);
        assert_eq!(nodes_per_sec(0, 5), 0);
    }
}
