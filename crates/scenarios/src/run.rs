//! Scenario execution and cross-validation.
//!
//! [`run_scenario`] materializes a [`Scenario`], runs its algorithm in a
//! private [`World`] and — crucially — **cross-validates every distributed
//! result against a centralized baseline**: forests are checked with
//! [`amoebot_grid::validate_forest`] (which compares tree depths against
//! multi-source BFS distances), PASC values against centrally computed
//! prefix sums, primitives against the paper's counting invariants. A
//! scenario passes only if every check passes.

use std::time::Instant;

use amoebot_circuits::{leader, Topology, World};
use amoebot_grid::{multi_source_bfs, shapes, validate_forest, AmoebotStructure, NodeId};
use amoebot_pasc::{chain_specs, tree_specs, PascRun};
use amoebot_spf::forest::{line_forest, shortest_path_forest};
use amoebot_spf::links::{FWD_PRIMARY, FWD_SECONDARY, LINKS, SYNC};
use amoebot_spf::primitives::{centroid_decomposition, elect, q_centroids, root_and_prune};
use amoebot_spf::spt::shortest_path_tree;
use amoebot_spf::Tree;
use amoebot_telemetry::{Metrics, NullRecorder, Recorder};
use rand::rngs::StdRng;
use rand::{Rng, RngCore};

use crate::spec::{derive_rng, MicroWorkload, Scenario, StructureAlgorithm, Workload};

/// One validation check's outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckResult {
    /// Check name, e.g. `"forest-valid"`.
    pub name: String,
    /// Whether the check passed.
    pub pass: bool,
    /// Failure detail (empty when passing).
    pub detail: String,
}

impl CheckResult {
    pub(crate) fn pass(name: &str) -> CheckResult {
        CheckResult {
            name: name.to_string(),
            pass: true,
            detail: String::new(),
        }
    }

    pub(crate) fn fail(name: &str, detail: String) -> CheckResult {
        CheckResult {
            name: name.to_string(),
            pass: false,
            detail,
        }
    }

    pub(crate) fn from_bool(name: &str, ok: bool, detail: impl FnOnce() -> String) -> CheckResult {
        if ok {
            CheckResult::pass(name)
        } else {
            CheckResult::fail(name, detail())
        }
    }
}

/// The measured outcome of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Registry family.
    pub family: String,
    /// Scenario name.
    pub name: String,
    /// Scenario seed.
    pub seed: u64,
    /// Problem size (`n`: amoebots / world nodes).
    pub n: usize,
    /// Number of sources / `|Q|` (1 where not applicable).
    pub k: usize,
    /// Number of destinations (0 where not applicable).
    pub l: usize,
    /// Simulator rounds consumed.
    pub rounds: u64,
    /// Distinct beeps sent (0 for circuit-less baselines).
    pub beeps: u64,
    /// Wall-clock time of the run, in microseconds. Excluded from
    /// canonical reports (timing is inherently non-deterministic).
    pub wall_micros: u64,
    /// Every validation check executed for this scenario.
    pub checks: Vec<CheckResult>,
    /// Whether all checks passed.
    pub pass: bool,
    /// Engine telemetry accumulated by the run: relabel counters, SPT
    /// restart totals and — when the run was driven with a timing
    /// recorder — per-phase timers. Empty for workloads that own no
    /// instrumented world.
    pub metrics: Metrics,
}

/// Runs one scenario start to finish: materialize, execute, cross-validate.
pub fn run_scenario(scenario: &Scenario) -> ScenarioResult {
    run_scenario_with(scenario, &mut NullRecorder)
}

/// [`run_scenario`] with an explicit [`Recorder`] driving the engine's
/// instrumentation: a timing recorder populates the result's phase
/// timers, a trace recorder captures a replayable round trace. Event
/// recording covers the micro workloads that own a circuit world end to
/// end (the blob broadcast families); structure workloads run their
/// algorithm-internal simulators and ignore the recorder's trace side.
pub fn run_scenario_with<R: Recorder>(scenario: &Scenario, rec: &mut R) -> ScenarioResult {
    // spf-lint: allow(wall-clock) — feeds `elapsed`, which --no-timing strips from canonical reports
    let start = Instant::now();
    let mut outcome = match &scenario.workload {
        Workload::Structure {
            structure,
            sources,
            dests,
            algorithm,
        } => {
            let s = structure.materialize(&mut derive_rng(scenario.seed, 0));
            let src = sources.materialize(&s, &mut derive_rng(scenario.seed, 1));
            let dst = dests.materialize(&s, &mut derive_rng(scenario.seed, 2));
            run_structure_workload(&s, &src, &dst, *algorithm)
        }
        Workload::Micro(micro) => run_micro(*micro, scenario.seed, rec),
    };
    outcome.wall_micros = start.elapsed().as_micros() as u64;
    outcome.family = scenario.family.clone();
    outcome.name = scenario.name.clone();
    outcome.seed = scenario.seed;
    outcome
}

fn blank_result() -> ScenarioResult {
    ScenarioResult {
        family: String::new(),
        name: String::new(),
        seed: 0,
        n: 0,
        k: 1,
        l: 0,
        rounds: 0,
        beeps: 0,
        wall_micros: 0,
        checks: Vec::new(),
        pass: false,
        metrics: Metrics::new(),
    }
}

/// Feeds `world`'s complete current wiring to a trace recorder (each
/// edge once, from its lower endpoint); compiles away unless `R::TRACE`.
pub(crate) fn emit_topology<R: Recorder>(world: &World, rec: &mut R) {
    if !R::TRACE {
        return;
    }
    let topo = world.topology();
    let n = topo.len();
    let node_ports: Vec<u32> = (0..n).map(|v| topo.ports_len(v) as u32).collect();
    let mut edges: Vec<(u32, u32, u32, u32)> = Vec::new();
    for v in 0..n {
        for p in 0..topo.ports_len(v) {
            if let Some((w, q)) = topo.peer(v, p) {
                if v < w {
                    edges.push((v as u32, p as u32, w as u32, q as u32));
                }
            }
        }
    }
    rec.topology(world.links_per_edge() as u32, &node_ports, &edges);
}

/// Cross-validates a parent forest against the centralized BFS ground
/// truth. `validate_forest` checks all five §1.3 properties, including that
/// every member's tree depth equals its multi-source BFS distance — this is
/// the "distributed result vs centralized baseline" check.
fn check_forest(
    structure: &AmoebotStructure,
    sources: &[NodeId],
    dests: &[NodeId],
    parents: &[Option<NodeId>],
) -> Vec<CheckResult> {
    let violations = validate_forest(structure, sources, dests, parents);
    let forest_ok = CheckResult::from_bool("forest-valid", violations.is_empty(), || {
        let mut msgs: Vec<String> = violations.iter().take(3).map(|v| v.to_string()).collect();
        if violations.len() > 3 {
            msgs.push(format!("... and {} more", violations.len() - 3));
        }
        msgs.join("; ")
    });
    // Make the BFS agreement explicit: every source-reachable node that the
    // forest covers sits at its exact BFS distance (already implied by
    // property 5, but reported separately so JSON consumers see the
    // centralized cross-check by name).
    let (dist, _) = multi_source_bfs(structure, sources);
    let mut bad = 0usize;
    for v in structure.nodes() {
        let mut depth = 0u32;
        let mut cur = v;
        let covered = sources.contains(&v) || parents[v.index()].is_some();
        if !covered {
            continue;
        }
        let mut steps = 0usize;
        while let Some(p) = parents[cur.index()] {
            depth += 1;
            cur = p;
            steps += 1;
            if steps > structure.len() {
                bad += 1; // cycle; already reported by validate_forest
                break;
            }
        }
        if Some(depth) != dist[v.index()] {
            bad += 1;
        }
    }
    let bfs_ok = CheckResult::from_bool("bfs-distances-agree", bad == 0, || {
        format!("{bad} nodes disagree with multi-source BFS distances")
    });
    vec![forest_ok, bfs_ok]
}

/// Runs a structure algorithm on an already-materialized structure with
/// explicit terminal sets, returning the measured, cross-validated result.
/// This is the execution path behind [`run_scenario`]'s structure
/// workloads; the benchmark harness calls it directly so Criterion benches
/// and scenario batches exercise exactly the same code.
pub fn run_structure_workload(
    structure: &AmoebotStructure,
    sources: &[NodeId],
    dests: &[NodeId],
    algorithm: StructureAlgorithm,
) -> ScenarioResult {
    let (mut r, parents, val_sources, val_dests) =
        execute_structure(structure, sources, dests, algorithm);
    r.checks = check_forest(structure, &val_sources, &val_dests, &parents);
    r.pass = r.checks.iter().all(|c| c.pass);
    r
}

/// Runs a structure algorithm **without** the centralized
/// cross-validation, returning only the round count. For wall-clock
/// benchmarks: validation is O(n)-ish centralized work that would
/// otherwise be timed inside the benchmark loop and skew comparisons
/// against cheap baselines. Correctness still gets checked — benches
/// call the validating sibling once outside the timed loop.
pub fn measure_structure_rounds(
    structure: &AmoebotStructure,
    sources: &[NodeId],
    dests: &[NodeId],
    algorithm: StructureAlgorithm,
) -> u64 {
    execute_structure(structure, sources, dests, algorithm)
        .0
        .rounds
}

/// Executes the algorithm and returns the measurements plus everything
/// validation needs (parents and the effective terminal sets).
fn execute_structure(
    structure: &AmoebotStructure,
    sources: &[NodeId],
    dests: &[NodeId],
    algorithm: StructureAlgorithm,
) -> (
    ScenarioResult,
    Vec<Option<NodeId>>,
    Vec<NodeId>,
    Vec<NodeId>,
) {
    let mut r = blank_result();
    r.n = structure.len();
    r.k = sources.len();
    r.l = dests.len();
    let all = || -> Vec<NodeId> { structure.nodes().collect() };
    let (parents, val_sources, val_dests) = match algorithm {
        StructureAlgorithm::Forest => {
            let out = shortest_path_forest(structure, sources, dests);
            r.rounds = out.rounds;
            r.beeps = out.beeps;
            (out.parents, sources.to_vec(), dests.to_vec())
        }
        StructureAlgorithm::Spt => {
            let source = sources[0];
            let out = shortest_path_tree(structure, source, dests);
            r.k = 1;
            r.rounds = out.rounds;
            r.beeps = out.beeps;
            (out.parents, vec![source], dests.to_vec())
        }
        StructureAlgorithm::LineForest => {
            // The chain follows node-id order; Line structures are generated
            // in +x order, so consecutive ids are adjacent.
            let n = structure.len();
            let mut world = World::new(Topology::from_structure(structure), LINKS);
            let chain: Vec<usize> = (0..n).collect();
            let mut is_source = vec![false; n];
            for s in sources {
                is_source[s.index()] = true;
            }
            let forest = line_forest(&mut world, &chain, &is_source);
            r.rounds = world.rounds();
            r.beeps = world.beeps_sent();
            r.metrics.merge(world.metrics());
            let parents: Vec<Option<NodeId>> = forest
                .parents
                .iter()
                .map(|p| p.map(|v| NodeId(v as u32)))
                .collect();
            r.l = n;
            (parents, sources.to_vec(), all())
        }
        StructureAlgorithm::Wavefront => {
            let out = amoebot_baselines::bfs_wavefront(structure, sources);
            r.rounds = out.rounds;
            r.beeps = out.beeps;
            r.l = structure.len();
            (out.parents, sources.to_vec(), all())
        }
        StructureAlgorithm::SequentialForest => {
            let out = amoebot_baselines::sequential_forest(structure, sources);
            r.rounds = out.rounds;
            r.beeps = out.beeps;
            r.l = structure.len();
            (out.parents, sources.to_vec(), all())
        }
    };
    (r, parents, val_sources, val_dests)
}

/// A path world with `n` nodes and the standard link count.
pub fn path_world(n: usize) -> World {
    let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    World::new(Topology::from_edges(n, &edges), LINKS)
}

/// A deterministic random tree over `n` nodes (each node attaches to a
/// random earlier node) plus a `Q` of the given size.
pub fn random_tree_and_q(n: usize, q_size: usize, rng: &mut StdRng) -> (World, Tree, Vec<bool>) {
    let edges: Vec<(usize, usize)> = (1..n).map(|v| (rng.gen_range(0..v), v)).collect();
    let world = World::new(Topology::from_edges(n, &edges), LINKS);
    let tree = Tree::from_edges(n, 0, &edges);
    let mut q = vec![false; n];
    for i in shapes::random_subset(n, q_size.min(n), rng) {
        q[i] = true;
    }
    (world, tree, q)
}

fn run_micro<R: Recorder>(micro: MicroWorkload, seed: u64, rec: &mut R) -> ScenarioResult {
    let mut r = blank_result();
    match micro {
        MicroWorkload::PascChain { m } => {
            let mut world = path_world(m);
            let nodes: Vec<usize> = (0..m).collect();
            let specs = chain_specs(world.topology(), &nodes, FWD_PRIMARY, FWD_SECONDARY, None);
            let mut run = PascRun::new(&mut world, specs, SYNC);
            let values = run.run_to_completion(&mut world);
            r.n = m;
            r.rounds = world.rounds();
            r.beeps = world.beeps_sent();
            r.metrics.merge(world.metrics());
            let ok = values.iter().enumerate().all(|(i, &v)| v == i as u64);
            r.checks = vec![CheckResult::from_bool(
                "pasc-values-are-distances",
                ok,
                || "chain PASC values disagree with positions".to_string(),
            )];
        }
        MicroWorkload::PascTree { levels } => {
            let n = (1usize << levels) - 1;
            let edges: Vec<(usize, usize)> = (1..n).map(|v| ((v - 1) / 2, v)).collect();
            let mut world = World::new(Topology::from_edges(n, &edges), LINKS);
            let parent: Vec<Option<usize>> = (0..n).map(|v| (v > 0).then(|| (v - 1) / 2)).collect();
            let participates = vec![true; n];
            let (specs, instance_of) = tree_specs(
                world.topology(),
                &parent,
                &participates,
                FWD_PRIMARY,
                FWD_SECONDARY,
            );
            let mut run = PascRun::new(&mut world, specs, SYNC);
            let values = run.run_to_completion(&mut world);
            r.n = n;
            r.rounds = world.rounds();
            r.beeps = world.beeps_sent();
            r.metrics.merge(world.metrics());
            // Centralized ground truth: depth in the balanced binary tree.
            let mut bad = 0usize;
            for v in 0..n {
                let mut depth = 0u64;
                let mut cur = v;
                while let Some(p) = parent[cur] {
                    depth += 1;
                    cur = p;
                }
                if values[instance_of[v]] != depth {
                    bad += 1;
                }
            }
            r.checks = vec![CheckResult::from_bool(
                "pasc-values-are-depths",
                bad == 0,
                || format!("{bad} nodes disagree with central depths"),
            )];
        }
        MicroWorkload::PascPrefix { m, weights } => {
            let mut world = path_world(m);
            let nodes: Vec<usize> = (0..m).collect();
            let w: Vec<bool> = (0..m)
                .map(|i| weights > 0 && i % m.div_ceil(weights).max(1) == 0)
                .collect();
            let specs = chain_specs(
                world.topology(),
                &nodes,
                FWD_PRIMARY,
                FWD_SECONDARY,
                Some(&w),
            );
            let mut run = PascRun::new(&mut world, specs, SYNC);
            let values = run.run_to_completion(&mut world);
            r.n = m;
            r.k = w.iter().filter(|&&b| b).count().max(1);
            r.rounds = world.rounds();
            r.beeps = world.beeps_sent();
            r.metrics.merge(world.metrics());
            // Centralized ground truth: inclusive weighted prefix sums.
            let mut acc = 0u64;
            let mut bad = 0usize;
            for i in 0..m {
                if w[i] {
                    acc += 1;
                }
                if values[i] != acc {
                    bad += 1;
                }
            }
            r.checks = vec![CheckResult::from_bool(
                "pasc-values-are-prefix-sums",
                bad == 0,
                || format!("{bad} positions disagree with central prefix sums"),
            )];
        }
        MicroWorkload::RootPrune { n, q } | MicroWorkload::Augmentation { n, q } => {
            let mut rng = derive_rng(seed, 0);
            let (mut world, tree, qs) = random_tree_and_q(n, q.max(1), &mut rng);
            let rp = root_and_prune(&mut world, std::slice::from_ref(&tree), &qs);
            r.n = n;
            r.k = qs.iter().filter(|&&b| b).count();
            r.rounds = world.rounds();
            r.beeps = world.beeps_sent();
            r.metrics.merge(world.metrics());
            // Corollary 29: |A_Q| <= |Q| - 1.
            let a = rp.augmentation_set().len();
            r.checks = vec![
                CheckResult::from_bool("augmentation-bound", a < r.k.max(1), || {
                    format!("|A_Q| = {a} exceeds |Q| - 1 = {}", r.k.saturating_sub(1))
                }),
                // Corollary 15: the root counts |Q| exactly.
                CheckResult::from_bool(
                    "root-counts-q",
                    rp.q_count.first().copied() == Some(r.k as u64),
                    || format!("root counted {:?}, |Q| = {}", rp.q_count.first(), r.k),
                ),
            ];
        }
        MicroWorkload::Election { n, q } => {
            let mut rng = derive_rng(seed, 0);
            let (mut world, tree, qs) = random_tree_and_q(n, q.max(1), &mut rng);
            let before = world.rounds();
            let winners = elect(&mut world, std::slice::from_ref(&tree), &qs);
            r.n = n;
            r.k = qs.iter().filter(|&&b| b).count();
            r.rounds = world.rounds() - before;
            r.beeps = world.beeps_sent();
            r.metrics.merge(world.metrics());
            // The winner exists and is a member of Q.
            let ok = matches!(winners.first(), Some(Some(w)) if qs[*w]);
            r.checks = vec![CheckResult::from_bool("winner-in-q", ok, || {
                format!("election winner {:?} not in Q", winners.first())
            })];
        }
        MicroWorkload::Centroids { n, q } => {
            let mut rng = derive_rng(seed, 0);
            let (mut world, tree, qs) = random_tree_and_q(n, q.max(1), &mut rng);
            let out = q_centroids(&mut world, std::slice::from_ref(&tree), &qs);
            r.n = n;
            r.k = qs.iter().filter(|&&b| b).count();
            r.rounds = world.rounds();
            r.beeps = world.beeps_sent();
            r.metrics.merge(world.metrics());
            // Cross-validate against the centralized definition: a Q node is
            // a Q-centroid iff every component of T - u holds at most |Q|/2
            // of Q.
            let total = r.k;
            let mut bad = 0usize;
            for u in 0..n {
                let expect = qs[u] && {
                    tree.adj[u].iter().all(|&start| {
                        let mut seen = vec![false; n];
                        seen[u] = true;
                        seen[start] = true;
                        let mut stack = vec![start];
                        let mut cnt = usize::from(qs[start]);
                        while let Some(v) = stack.pop() {
                            for &w in &tree.adj[v] {
                                if !seen[w] {
                                    seen[w] = true;
                                    cnt += usize::from(qs[w]);
                                    stack.push(w);
                                }
                            }
                        }
                        2 * cnt <= total
                    })
                };
                if out.is_centroid[u] != expect {
                    bad += 1;
                }
            }
            r.checks = vec![CheckResult::from_bool(
                "centroids-match-reference",
                bad == 0,
                || format!("{bad} nodes disagree with the centralized Q-centroid definition"),
            )];
        }
        MicroWorkload::Decomposition { n, q } => {
            let mut rng = derive_rng(seed, 0);
            let (mut world, tree, qs) = random_tree_and_q(n, q.max(1), &mut rng);
            let rp = root_and_prune(&mut world, std::slice::from_ref(&tree), &qs);
            let mut qp = qs.clone();
            for v in rp.augmentation_set() {
                qp[v] = true;
            }
            let before = world.rounds();
            let d = centroid_decomposition(&mut world, &tree, &qp);
            r.n = n;
            r.k = qs.iter().filter(|&&b| b).count();
            r.rounds = world.rounds() - before;
            r.beeps = world.beeps_sent();
            r.metrics.merge(world.metrics());
            // Lemma 31: the decomposition depth is O(log |Q'|); with the
            // exact halving argument it is at most log2(|Q'|) + 1.
            let qp_size = qp.iter().filter(|&&b| b).count();
            let bound = 64 - (qp_size as u64).leading_zeros() + 2;
            r.checks = vec![CheckResult::from_bool(
                "decomposition-depth",
                d.levels <= bound,
                || format!("{} levels exceeds bound {bound}", d.levels),
            )];
        }
        MicroWorkload::BlobBroadcast { n, rounds } => {
            let mut rng = derive_rng(seed, 0);
            let s = AmoebotStructure::new(shapes::random_blob(n, &mut rng))
                .expect("blob generator produces connected sets");
            let mut world = World::new(Topology::from_structure(&s), 2);
            for v in 0..n {
                world.global_pin_config(v);
            }
            emit_topology(&world, rec);
            // Deterministically spread the broadcast origins over the
            // structure (Fibonacci-hash stride) so consecutive rounds hit
            // different cache-distant nodes.
            let mut missed = 0usize;
            for round in 0..rounds {
                let origin = (round.wrapping_mul(0x9E3779B9)) % n;
                world.beep(origin, 0);
                world.tick_with(rec);
                for v in 0..n {
                    missed += usize::from(!world.received(v, 0));
                }
            }
            r.n = n;
            r.rounds = world.rounds();
            r.beeps = world.beeps_sent();
            r.metrics.merge(world.metrics());
            r.checks = vec![CheckResult::from_bool(
                "broadcast-reaches-all",
                missed == 0,
                || format!("{missed} (node, round) deliveries missing on the global circuit"),
            )];
        }
        MicroWorkload::BlobChurnBroadcast {
            n,
            events,
            per_event,
        } => {
            use amoebot_dynamics::{
                verify_against_rebuild, ChurnPlan, DynamicWorld, ALL_CHURN_FAMILIES,
            };
            let mut rng = derive_rng(seed, 0);
            let s = AmoebotStructure::new(shapes::random_blob(n, &mut rng))
                .expect("blob generator produces connected sets");
            let mut dw = DynamicWorld::new(&s, 2);
            for v in 0..n {
                dw.world_mut().global_pin_config(v);
            }
            emit_topology(dw.world(), rec);
            let family = *crate::spec::pick(&mut derive_rng(seed, 5), &ALL_CHURN_FAMILIES);
            // An explicit schedule seed, surfaced in every failure detail:
            // together with the event index it reproduces the failing
            // churn schedule from the log alone.
            let schedule_seed = derive_rng(seed, 6).next_u64();
            let plan = ChurnPlan::new(schedule_seed, family, events, per_event);
            let mut oracle_fail: Option<String> = None;
            let mut broadcast_fail: Option<String> = None;
            let mut holes_fail: Option<String> = None;
            for e in 0..events {
                let applied = plan.apply_with(&mut dw, e, rec);
                for v in &applied.inserted {
                    dw.world_mut().global_pin_config(v.index());
                }
                // Geometry first: the scoped hole revalidation over the
                // chunks this event touched.
                if holes_fail.is_none() && !dw.revalidate_edited_chunks() {
                    holes_fail = Some(format!(
                        "churn schedule seed={schedule_seed} event=#{e} ({}): \
                         scoped hole revalidation failed",
                        family.label()
                    ));
                }
                // Cross-validation: the incrementally edited world vs a
                // from-scratch rebuild, after *every* event.
                if oracle_fail.is_none() {
                    if let Err(msg) = verify_against_rebuild(&dw) {
                        oracle_fail = Some(format!(
                            "churn schedule seed={schedule_seed} event=#{e} ({}): {msg}",
                            family.label()
                        ));
                    }
                }
                // And the workload itself: the global circuit must still
                // span the churned structure.
                let origin = dw.editor().live_ids()[0] as usize;
                dw.world_mut().beep(origin, 0);
                dw.world_mut().tick_with(rec);
                if broadcast_fail.is_none() {
                    let missed = dw
                        .editor()
                        .live_ids()
                        .iter()
                        .filter(|&&v| !dw.world().received(v as usize, 0))
                        .count();
                    if missed > 0 {
                        broadcast_fail = Some(format!(
                            "churn schedule seed={schedule_seed} event=#{e} ({}): \
                             {missed} live amoebots missed the broadcast",
                            family.label()
                        ));
                    }
                }
            }
            r.n = n;
            r.k = events;
            r.l = dw.len();
            r.rounds = dw.world().rounds();
            r.beeps = dw.world().beeps_sent();
            r.metrics.merge(dw.world().metrics());
            let oracle_ok = oracle_fail.is_none();
            let broadcast_ok = broadcast_fail.is_none();
            let holes_ok = holes_fail.is_none();
            r.checks = vec![
                CheckResult::from_bool("churn-chunks-hole-free", holes_ok, || {
                    holes_fail.unwrap_or_default()
                }),
                CheckResult::from_bool("churn-oracle-equivalent", oracle_ok, || {
                    oracle_fail.unwrap_or_default()
                }),
                CheckResult::from_bool("churn-broadcast-reaches-all", broadcast_ok, || {
                    broadcast_fail.unwrap_or_default()
                }),
            ];
        }
        MicroWorkload::LineChurnSpt {
            n,
            events,
            per_event,
        } => {
            use amoebot_dynamics::{ChurnFamily, ChurnPlan, DynamicWorld};
            use amoebot_spf::churn::{remap_terminals, restart_spt, RestartCounter};
            let s = AmoebotStructure::new(shapes::line(n)).expect("lines are connected");
            let mut dw = DynamicWorld::new(&s, 1);
            let mut p = derive_rng(seed, 5);
            let l = p.gen_range(1..=8usize).min(n);
            // Terminals live in the editor's stable id space. A terminal
            // whose amoebot leaves is a casualty (dropped / re-anchored
            // by the restart hook); if churn later recycles the id, the
            // replacement amoebot takes over the terminal role — a
            // deterministic, documented policy.
            let source_old = NodeId(p.gen_range(0..n as u32));
            let dests_old: Vec<NodeId> = shapes::random_subset(n, l, &mut p)
                .into_iter()
                .map(|i| NodeId(i as u32))
                .collect();
            let schedule_seed = derive_rng(seed, 6).next_u64();
            let plan = ChurnPlan::new(schedule_seed, ChurnFamily::GrowShrink, events, per_event);
            let mut counter = RestartCounter::default();
            let mut fail: Option<String> = None;
            let mut holes_fail: Option<String> = None;
            for e in 0..events {
                plan.apply(&mut dw, e);
                if holes_fail.is_none() && !dw.revalidate_edited_chunks() {
                    holes_fail = Some(format!(
                        "churn schedule seed={schedule_seed} event=#{e}: \
                         scoped hole revalidation failed"
                    ));
                }
                let (snapshot, map) = dw.editor().snapshot();
                let source = map[source_old.index()];
                let dests = remap_terminals(&map, &dests_old);
                // Restart hook: re-run the SPT on the post-churn
                // snapshot, then cross-validate against centralized BFS.
                let restart = restart_spt(&snapshot, source, &dests, &mut counter);
                if fail.is_none() {
                    let violations = validate_forest(
                        &snapshot,
                        std::slice::from_ref(&restart.source),
                        &restart.dests,
                        &restart.outcome.parents,
                    );
                    if let Some(first) = violations.first() {
                        fail = Some(format!(
                            "churn schedule seed={schedule_seed} event=#{e}: {first}{}",
                            if violations.len() > 1 {
                                format!(" (+{} more)", violations.len() - 1)
                            } else {
                                String::new()
                            }
                        ));
                    }
                }
            }
            r.n = n;
            r.k = events;
            r.l = l;
            r.rounds = counter.rounds();
            r.beeps = counter.beeps();
            r.metrics.merge(counter.metrics());
            let ok = fail.is_none();
            let holes_ok = holes_fail.is_none();
            r.checks = vec![
                CheckResult::from_bool("churn-chunks-hole-free", holes_ok, || {
                    holes_fail.unwrap_or_default()
                }),
                CheckResult::from_bool("churn-spt-forest-valid", ok, || fail.unwrap_or_default()),
            ];
        }
        MicroWorkload::FaultyBlobFlood {
            n,
            events,
            per_event,
        } => {
            crate::adversary::run_adversary(
                &mut r,
                crate::adversary::AdversaryKind::LossyFlood,
                n,
                events,
                per_event,
                seed,
                false,
                rec,
            );
        }
        MicroWorkload::StuckLineBroadcast {
            n,
            events,
            per_event,
        } => {
            crate::adversary::run_adversary(
                &mut r,
                crate::adversary::AdversaryKind::StuckLine,
                n,
                events,
                per_event,
                seed,
                false,
                rec,
            );
        }
        MicroWorkload::UnfairBlobFlood {
            n,
            events,
            per_event,
        } => {
            crate::adversary::run_adversary(
                &mut r,
                crate::adversary::AdversaryKind::UnfairFlood,
                n,
                events,
                per_event,
                seed,
                false,
                rec,
            );
        }
        MicroWorkload::CrashRecoverBroadcast {
            n,
            events,
            per_event,
        } => {
            crate::adversary::run_adversary(
                &mut r,
                crate::adversary::AdversaryKind::CrashGlobal,
                n,
                events,
                per_event,
                seed,
                false,
                rec,
            );
        }
        MicroWorkload::AdversarySelfTestFail => {
            // Fixed parameters, sabotage on: the repair sweep is skipped
            // and a cutting stuck pin survives the burst, so the
            // re-convergence checker must fail with the seeded FAIL line.
            crate::adversary::run_adversary(
                &mut r,
                crate::adversary::AdversaryKind::StuckLine,
                12,
                2,
                1,
                0,
                true,
                rec,
            );
        }
        MicroWorkload::SelfTestFail => {
            r.n = 1;
            r.checks = vec![CheckResult::fail(
                "selftest",
                "intentional failure (exercises the runner's non-zero exit path)".to_string(),
            )];
        }
        MicroWorkload::Leader { n } => {
            let mut rng = derive_rng(seed, 0);
            let mut world = path_world(n);
            let result = leader::elect_leader(&mut world, &mut rng);
            r.n = n;
            r.rounds = result.rounds;
            r.beeps = world.beeps_sent();
            r.metrics.merge(world.metrics());
            r.checks = vec![
                CheckResult::from_bool(
                    "candidates-nonempty",
                    !result.candidates.is_empty(),
                    || "candidate set became empty".to_string(),
                ),
                CheckResult::from_bool("leader-unique", result.leader().is_some(), || {
                    format!(
                        "{} candidates left after the budget",
                        result.candidates.len()
                    )
                }),
            ];
        }
    }
    r.pass = r.checks.iter().all(|c| c.pass);
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{PlacementSpec, StructureSpec};
    use amoebot_grid::Placement;

    fn run_ok(sc: &Scenario) -> ScenarioResult {
        let r = run_scenario(sc);
        assert!(
            r.pass,
            "{} failed: {:?}",
            sc.name,
            r.checks.iter().filter(|c| !c.pass).collect::<Vec<_>>()
        );
        r
    }

    #[test]
    fn forest_scenario_cross_validates() {
        let sc = Scenario::structure(
            "t",
            7,
            StructureSpec::RandomBlob { n: 40 },
            PlacementSpec::Random {
                k: 3,
                strategy: Placement::Uniform,
            },
            PlacementSpec::All,
            StructureAlgorithm::Forest,
        );
        let r = run_ok(&sc);
        assert!(r.rounds > 0);
        assert!(r.beeps > 0);
        assert_eq!(r.n, 40);
        assert_eq!(r.k, 3);
    }

    #[test]
    fn all_structure_algorithms_pass_on_a_parallelogram() {
        for alg in [
            StructureAlgorithm::Forest,
            StructureAlgorithm::Spt,
            StructureAlgorithm::Wavefront,
            StructureAlgorithm::SequentialForest,
        ] {
            let sc = Scenario::structure(
                "t",
                3,
                StructureSpec::Parallelogram { a: 8, b: 4 },
                PlacementSpec::Spread { k: 3 },
                PlacementSpec::All,
                alg,
            );
            run_ok(&sc);
        }
    }

    #[test]
    fn line_forest_scenario() {
        let sc = Scenario::structure(
            "t",
            5,
            StructureSpec::Line { n: 32 },
            PlacementSpec::Random {
                k: 4,
                strategy: Placement::Uniform,
            },
            PlacementSpec::All,
            StructureAlgorithm::LineForest,
        );
        run_ok(&sc);
    }

    #[test]
    fn micro_scenarios_pass() {
        for micro in [
            MicroWorkload::PascChain { m: 64 },
            MicroWorkload::PascTree { levels: 5 },
            MicroWorkload::PascPrefix { m: 64, weights: 8 },
            MicroWorkload::RootPrune { n: 128, q: 16 },
            MicroWorkload::Election { n: 64, q: 8 },
            MicroWorkload::Centroids { n: 64, q: 8 },
            MicroWorkload::Augmentation { n: 128, q: 16 },
            MicroWorkload::Decomposition { n: 64, q: 16 },
            MicroWorkload::Leader { n: 64 },
        ] {
            run_ok(&Scenario::micro("t", 11, micro));
        }
    }

    /// The churn workloads: every event is rebuild-oracle-checked
    /// (blob) / BFS-cross-validated after an SPT restart (line), across
    /// several seeds so all four schedule families get sampled.
    #[test]
    fn churn_scenarios_pass_across_seeds() {
        for seed in [0u64, 3, 11, 27, 42] {
            let blob = Scenario::micro(
                "t",
                seed,
                MicroWorkload::BlobChurnBroadcast {
                    n: 40,
                    events: 5,
                    per_event: 4,
                },
            );
            let r = run_ok(&blob);
            assert_eq!(r.k, 5, "k reports the event count");
            assert!(r.rounds >= 5, "one broadcast round per event");
            let line = Scenario::micro(
                "t",
                seed,
                MicroWorkload::LineChurnSpt {
                    n: 28,
                    events: 4,
                    per_event: 2,
                },
            );
            let r = run_ok(&line);
            assert!(r.rounds > 0, "SPT restarts consume rounds");
        }
    }

    /// The adversary workloads: every fault event is rebuild-oracle
    /// checked and the broadcast must re-converge within the stated
    /// bound after the burst, across several seeds so each kind samples
    /// its whole family menu.
    #[test]
    fn adversary_scenarios_pass_across_seeds() {
        for seed in [0u64, 3, 11, 27, 42] {
            for micro in [
                MicroWorkload::FaultyBlobFlood {
                    n: 30,
                    events: 5,
                    per_event: 3,
                },
                MicroWorkload::StuckLineBroadcast {
                    n: 24,
                    events: 5,
                    per_event: 2,
                },
                MicroWorkload::UnfairBlobFlood {
                    n: 30,
                    events: 5,
                    per_event: 3,
                },
                MicroWorkload::CrashRecoverBroadcast {
                    n: 30,
                    events: 5,
                    per_event: 3,
                },
            ] {
                let r = run_ok(&Scenario::micro("t", seed, micro));
                assert_eq!(r.k, 5, "k reports the event count");
                assert!(r.rounds >= 5, "one broadcast round per event");
            }
        }
    }

    /// The deliberately-broken variant must trip the self-stabilization
    /// checker, and its FAIL line must carry the full reproduction key
    /// (fault-plan seed + scenario seed + event index).
    #[test]
    fn adversary_selftest_trips_with_the_seeded_fail_line() {
        let r = run_scenario(&Scenario::micro(
            "t",
            0,
            MicroWorkload::AdversarySelfTestFail,
        ));
        assert!(!r.pass, "the sabotaged repair sweep must be caught");
        let check = r
            .checks
            .iter()
            .find(|c| c.name == "fault-reconvergence-bound")
            .expect("the re-convergence check ran");
        assert!(!check.pass);
        for needle in [
            "fault schedule seed=",
            "scenario seed=",
            "event=#",
            "(stuckpin)",
        ] {
            assert!(
                check.detail.contains(needle),
                "FAIL line {:?} lost {needle:?}",
                check.detail
            );
        }
    }

    #[test]
    fn results_are_deterministic() {
        let sc = Scenario::structure(
            "t",
            99,
            StructureSpec::RandomMix {
                pieces: 3,
                scale: 4,
            },
            PlacementSpec::Random {
                k: 2,
                strategy: Placement::Boundary,
            },
            PlacementSpec::All,
            StructureAlgorithm::Forest,
        );
        let a = run_scenario(&sc);
        let b = run_scenario(&sc);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.beeps, b.beeps);
        assert_eq!(a.n, b.n);
        assert_eq!(a.pass, b.pass);
    }
}
