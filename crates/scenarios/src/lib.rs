//! Scenario engine for the shortest-path-forest reproduction.
//!
//! This crate turns the workspace's experiments from bespoke functions
//! into **data**: a [`Scenario`] describes a structure generator, a
//! source/destination placement, an algorithm under test and its
//! validation checks; the [`registry`] names scenario families (the
//! paper's E1–E20 experiment index plus randomized families over the
//! generators in [`amoebot_grid::random`]); the [`batch`] runner executes
//! scenarios in parallel (each owns its `World`); and every distributed
//! result is **cross-validated against the centralized BFS baselines** of
//! [`amoebot_grid::validate`]. Reports render as deterministic JSON
//! ([`report`]): identical seeds produce byte-identical canonical reports,
//! regardless of thread count.
//!
//! The `scenario-runner` binary is the CLI front end:
//!
//! ```text
//! cargo run --release --bin scenario-runner -- --seed 42 --count 20
//! ```
//!
//! # Example
//!
//! ```
//! use amoebot_scenarios::batch::{run_batch, Threads};
//! use amoebot_scenarios::registry::default_registry;
//! use amoebot_scenarios::report::BatchReport;
//!
//! let registry = default_registry();
//! let scenarios = registry.random_suite(42, 4, &[]);
//! let results = run_batch(&scenarios, Threads::Count(2));
//! assert!(results.iter().all(|r| r.pass));
//! let report = BatchReport { master_seed: 42, threads: 2, results };
//! assert!(report.canonical_json().contains("\"passed\": 4"));
//! ```

pub mod adversary;
pub mod batch;
pub mod cli;
pub mod experiments;
pub mod flight;
pub mod json;
pub mod record;
pub mod registry;
pub mod report;
pub mod run;
pub mod server;
pub mod spec;
pub mod sweep;

pub use adversary::fault_fail_line;
pub use batch::{run_batch, Threads};
pub use flight::{dump_flight_record, flight_file_name, reproduction_key, ReproKey};
pub use record::{record_scenario, recordable};
pub use registry::{default_registry, Family, Registry};
pub use report::{BatchReport, Envelope};
pub use run::{run_scenario, run_scenario_with, CheckResult, ScenarioResult};
pub use spec::{
    MicroWorkload, PlacementSpec, Scenario, StructureAlgorithm, StructureSpec, Workload,
};
pub use sweep::{
    run_sweep, run_sweep_checkpointed, run_sweep_observed, sweep_suite, CheckpointStore,
    RungOutcome, SweepEntry, SweepPoint, SweepReport, DEFAULT_SIZES, SWEEP_SCHEMA,
};
