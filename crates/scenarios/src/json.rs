//! Minimal JSON document model with deterministic rendering.
//!
//! The build environment has no serde, and the scenario engine needs a
//! stronger property than serde gives by default anyway: **byte-identical
//! output for identical inputs**. This module therefore models JSON with
//! order-preserving objects and integer-only numbers, and renders with a
//! fixed layout — no floats, no hash-map iteration order, no locale.

use std::fmt::Write as _;

/// A JSON value. Numbers are restricted to `u64`/`i64`: everything the
/// report format needs is a count, and integers render identically on
/// every platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// String (escaped on render).
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object with **insertion-ordered** keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Parses a JSON document (the subset this module renders: integer
    /// numbers, strings, bools, null, arrays, insertion-ordered objects).
    /// The bench tooling uses this to read reports back — floats are
    /// rejected, matching the renderer's integers-only guarantee.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut at = 0usize;
        let value = parse_value(bytes, &mut at)?;
        skip_ws(bytes, &mut at);
        if at != bytes.len() {
            return Err(format!("trailing data at byte {at}"));
        }
        Ok(value)
    }

    /// Looks up a field of an object (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Appends a field to an object (panics on non-objects).
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Object(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("field() requires an object"),
        }
        self
    }

    /// Renders with 2-space indentation and a trailing newline — the
    /// canonical report format (stable across runs and platforms).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, true);
        out.push('\n');
        out
    }

    /// Renders compactly (no whitespace).
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, false);
        out
    }

    fn write(&self, out: &mut String, indent: usize, pretty: bool) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        out.push('\n');
                        push_indent(out, indent + 1);
                    }
                    item.write(out, indent + 1, pretty);
                }
                if pretty {
                    out.push('\n');
                    push_indent(out, indent);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        out.push('\n');
                        push_indent(out, indent + 1);
                    }
                    write_escaped(out, key);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    value.write(out, indent + 1, pretty);
                }
                if pretty {
                    out.push('\n');
                    push_indent(out, indent);
                }
                out.push('}');
            }
        }
    }
}

fn skip_ws(bytes: &[u8], at: &mut usize) {
    while *at < bytes.len() && matches!(bytes[*at], b' ' | b'\t' | b'\n' | b'\r') {
        *at += 1;
    }
}

fn expect(bytes: &[u8], at: &mut usize, token: &str) -> Result<(), String> {
    if bytes[*at..].starts_with(token.as_bytes()) {
        *at += token.len();
        Ok(())
    } else {
        Err(format!("expected {token:?} at byte {at}"))
    }
}

fn parse_value(bytes: &[u8], at: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, at);
    match bytes.get(*at) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(bytes, at, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, at, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, at, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, at).map(Json::Str),
        Some(b'[') => {
            *at += 1;
            let mut items = Vec::new();
            skip_ws(bytes, at);
            if bytes.get(*at) == Some(&b']') {
                *at += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(bytes, at)?);
                skip_ws(bytes, at);
                match bytes.get(*at) {
                    Some(b',') => *at += 1,
                    Some(b']') => {
                        *at += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {at}")),
                }
            }
        }
        Some(b'{') => {
            *at += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, at);
            if bytes.get(*at) == Some(&b'}') {
                *at += 1;
                return Ok(Json::Object(fields));
            }
            loop {
                skip_ws(bytes, at);
                let key = parse_string(bytes, at)?;
                skip_ws(bytes, at);
                expect(bytes, at, ":")?;
                fields.push((key, parse_value(bytes, at)?));
                skip_ws(bytes, at);
                match bytes.get(*at) {
                    Some(b',') => *at += 1,
                    Some(b'}') => {
                        *at += 1;
                        return Ok(Json::Object(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {at}")),
                }
            }
        }
        Some(_) => parse_number(bytes, at),
    }
}

fn parse_string(bytes: &[u8], at: &mut usize) -> Result<String, String> {
    if bytes.get(*at) != Some(&b'"') {
        return Err(format!("expected string at byte {at}"));
    }
    *at += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*at) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *at += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *at += 1;
                match bytes.get(*at) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*at + 1..*at + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("invalid \\u escape {code:#x}"))?,
                        );
                        *at += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *at += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences included).
                let rest = std::str::from_utf8(&bytes[*at..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().expect("non-empty by bounds check");
                out.push(ch);
                *at += ch.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], at: &mut usize) -> Result<Json, String> {
    let start = *at;
    if bytes.get(*at) == Some(&b'-') {
        *at += 1;
    }
    while matches!(bytes.get(*at), Some(b'0'..=b'9')) {
        *at += 1;
    }
    if matches!(bytes.get(*at), Some(b'.') | Some(b'e') | Some(b'E')) {
        return Err(format!(
            "floating-point numbers are not part of the report format (byte {start})"
        ));
    }
    let text = std::str::from_utf8(&bytes[start..*at]).expect("digits are ASCII");
    if text.is_empty() || text == "-" {
        return Err(format!("expected a value at byte {start}"));
    }
    if text.starts_with('-') {
        text.parse::<i64>()
            .map(Json::I64)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    } else {
        text.parse::<u64>()
            .map(Json::U64)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::U64(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::I64(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Array(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_deterministically() {
        let doc = Json::object()
            .field("name", "scenario \"x\"\n")
            .field("rounds", 42u64)
            .field("delta", -3i64)
            .field("pass", true)
            .field("tags", Json::Array(vec![Json::from("a"), Json::from("b")]))
            .field("empty", Json::object());
        let a = doc.render_pretty();
        let b = doc.render_pretty();
        assert_eq!(a, b);
        assert!(a.contains("\"scenario \\\"x\\\"\\n\""));
        assert!(a.ends_with('\n'));
        let compact = doc.render_compact();
        assert!(compact.contains("\"rounds\":42"));
        assert!(compact.contains("\"delta\":-3"));
        assert!(compact.contains("\"empty\":{}"));
    }

    #[test]
    fn control_chars_are_escaped() {
        let s = Json::Str("\u{1}".to_string()).render_compact();
        assert_eq!(s, "\"\\u0001\"");
    }

    #[test]
    fn parse_round_trips_renderings() {
        let doc = Json::object()
            .field("name", "scenario \"x\"\n\u{1}")
            .field("rounds", 42u64)
            .field("delta", -3i64)
            .field("pass", true)
            .field("nothing", Json::Null)
            .field(
                "tags",
                Json::Array(vec![Json::from("a"), Json::U64(7), Json::object()]),
            )
            .field("empty", Json::Array(vec![]));
        assert_eq!(Json::parse(&doc.render_pretty()).unwrap(), doc);
        assert_eq!(Json::parse(&doc.render_compact()).unwrap(), doc);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1.5").is_err(), "floats are not in the format");
        assert!(Json::parse("{\"a\":1} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn accessors_navigate_parsed_documents() {
        let doc = Json::parse(r#"{"summary": {"passed": 3}, "entries": [{"n": 10, "ok": true}]}"#)
            .unwrap();
        assert_eq!(
            doc.get("summary")
                .and_then(|s| s.get("passed"))
                .and_then(Json::as_u64),
            Some(3)
        );
        let entries = doc.get("entries").and_then(Json::as_array).unwrap();
        assert_eq!(entries[0].get("n").and_then(Json::as_u64), Some(10));
        assert_eq!(entries[0].get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(Json::U64(1).get("x"), None);
    }
}
