//! Minimal JSON document model with deterministic rendering.
//!
//! The build environment has no serde, and the scenario engine needs a
//! stronger property than serde gives by default anyway: **byte-identical
//! output for identical inputs**. This module therefore models JSON with
//! order-preserving objects and integer-only numbers, and renders with a
//! fixed layout — no floats, no hash-map iteration order, no locale.

use std::fmt::Write as _;

/// A JSON value. Numbers are restricted to `u64`/`i64`: everything the
/// report format needs is a count, and integers render identically on
/// every platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// String (escaped on render).
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object with **insertion-ordered** keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Appends a field to an object (panics on non-objects).
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Object(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("field() requires an object"),
        }
        self
    }

    /// Renders with 2-space indentation and a trailing newline — the
    /// canonical report format (stable across runs and platforms).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, true);
        out.push('\n');
        out
    }

    /// Renders compactly (no whitespace).
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, false);
        out
    }

    fn write(&self, out: &mut String, indent: usize, pretty: bool) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        out.push('\n');
                        push_indent(out, indent + 1);
                    }
                    item.write(out, indent + 1, pretty);
                }
                if pretty {
                    out.push('\n');
                    push_indent(out, indent);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        out.push('\n');
                        push_indent(out, indent + 1);
                    }
                    write_escaped(out, key);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    value.write(out, indent + 1, pretty);
                }
                if pretty {
                    out.push('\n');
                    push_indent(out, indent);
                }
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::U64(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::I64(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Array(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_deterministically() {
        let doc = Json::object()
            .field("name", "scenario \"x\"\n")
            .field("rounds", 42u64)
            .field("delta", -3i64)
            .field("pass", true)
            .field("tags", Json::Array(vec![Json::from("a"), Json::from("b")]))
            .field("empty", Json::object());
        let a = doc.render_pretty();
        let b = doc.render_pretty();
        assert_eq!(a, b);
        assert!(a.contains("\"scenario \\\"x\\\"\\n\""));
        assert!(a.ends_with('\n'));
        let compact = doc.render_compact();
        assert!(compact.contains("\"rounds\":42"));
        assert!(compact.contains("\"delta\":-3"));
        assert!(compact.contains("\"empty\":{}"));
    }

    #[test]
    fn control_chars_are_escaped() {
        let s = Json::Str("\u{1}".to_string()).render_compact();
        assert_eq!(s, "\"\\u0001\"");
    }
}
