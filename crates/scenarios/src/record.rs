//! Round-trace recording for scenarios.
//!
//! [`record_scenario`] runs a scenario with a [`TraceWriter`] attached to
//! the engine's recorded mutation paths and returns the serialized trace
//! next to the ordinary cross-validated result. The trace replays through
//! [`amoebot_circuits::replay_trace`], which re-verifies every recorded
//! round against the live engine and reports the round and event index of
//! the first divergence.
//!
//! Recording is restricted to the scenario families whose every relabel
//! is consumed by a recorded tick (the blob broadcast families, with and
//! without churn); other families drive algorithm-internal simulators the
//! trace format cannot see, so asking to record one is an error rather
//! than a silently unreplayable blob.

use amoebot_telemetry::TraceWriter;

use crate::run::{run_scenario_with, ScenarioResult};
use crate::spec::{MicroWorkload, Scenario, Workload};

/// Whether `scenario` belongs to a family whose run can be recorded as a
/// replayable round trace.
pub fn recordable(scenario: &Scenario) -> bool {
    matches!(
        scenario.workload,
        Workload::Micro(MicroWorkload::BlobBroadcast { .. })
            | Workload::Micro(MicroWorkload::BlobChurnBroadcast { .. })
    )
}

/// Runs `scenario` with a trace recorder attached and returns the result
/// together with the serialized trace bytes. Fails (with the supported
/// family list) when the scenario is not [`recordable`].
pub fn record_scenario(scenario: &Scenario) -> Result<(ScenarioResult, Vec<u8>), String> {
    if !recordable(scenario) {
        return Err(format!(
            "scenario {:?} is not recordable: traces cover the blob-broadcast \
             and blob-churn-broadcast families only",
            scenario.name
        ));
    }
    let mut writer = TraceWriter::new();
    let result = run_scenario_with(scenario, &mut writer);
    // The footer's wall_micros field is stamped 0 here so that two
    // same-seed recordings are byte-identical (the determinism gate
    // diffs whole trace files); wall time lives in the scenario result
    // and the CLI's diagnostics instead.
    let bytes = writer.finish(0);
    Ok((result, bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::default_registry;
    use amoebot_circuits::replay_trace;

    #[test]
    fn recorded_blob_broadcast_replays() {
        let registry = default_registry();
        let sc = registry
            .get("blob-broadcast")
            .unwrap()
            .build_sized(7, 300)
            .unwrap();
        let (result, bytes) = record_scenario(&sc).unwrap();
        assert!(result.pass);
        let report = replay_trace(&bytes).unwrap_or_else(|e| panic!("replay failed: {e}"));
        assert_eq!(report.rounds, result.rounds);
        assert_eq!(report.nodes, result.n);
        assert_eq!(report.recorded_wall_micros, 0, "recordings are canonical");
    }

    #[test]
    fn recorded_churn_run_replays() {
        let registry = default_registry();
        let sc = registry
            .get("blob-churn-broadcast")
            .unwrap()
            .build_sized(11, 200)
            .unwrap();
        let (result, bytes) = record_scenario(&sc).unwrap();
        assert!(result.pass);
        let report = replay_trace(&bytes).unwrap_or_else(|e| panic!("replay failed: {e}"));
        assert_eq!(report.rounds, result.rounds);
    }

    #[test]
    fn unrecordable_family_is_refused() {
        let registry = default_registry();
        let sc = registry.get("selftest-fail").unwrap().build(1);
        let err = record_scenario(&sc).unwrap_err();
        assert!(err.contains("not recordable"), "{err}");
    }
}
