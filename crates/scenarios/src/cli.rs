//! `scenario-runner` — batch-run randomized scenarios and emit a JSON
//! report.
//!
//! ```text
//! scenario-runner --seed 42 --count 20 [--threads N] [--family NAME]...
//!                 [--out PATH] [--no-timing] [--list] [--quiet]
//! scenario-runner --sweep [--max-nodes N] [--out BENCH_sweep.json] ...
//! ```
//!
//! Every scenario is derived deterministically from `--seed`, executed in
//! parallel across `--threads` workers (each scenario owns its simulator
//! world), cross-validated against the centralized BFS baselines, and
//! reported with round counts, beep counts and pass/fail. With
//! `--no-timing` the report is canonical: byte-identical across runs and
//! thread counts for the same seed.
//!
//! `--sweep` switches to the size-sweep mode: every sweepable family runs
//! across the geometric ladder 1k → 10k → 100k → 1M (clipped by
//! `--max-nodes` and per-family ceilings) and the report carries
//! per-(family, size) throughput — the `BENCH_sweep.json` the CI perf
//! gate diffs against `bench/baseline.json`.
//!
//! Failures are never silent: per-scenario `FAIL` lines print even under
//! `--quiet`, a `summary:` line always reports pass/fail counts, and the
//! exit code is non-zero whenever any scenario fails cross-validation.

use std::process::ExitCode;

use crate::batch::{run_batch, Threads};
use crate::registry::default_registry;
use crate::report::BatchReport;
use crate::run::ScenarioResult;
use crate::sweep::{run_sweep, sweep_suite, SweepPoint, SweepReport, DEFAULT_SIZES};

struct Args {
    seed: u64,
    count: usize,
    threads: Threads,
    families: Vec<String>,
    out: Option<String>,
    timing: bool,
    list: bool,
    quiet: bool,
    sweep: bool,
    max_nodes: usize,
}

const USAGE: &str = "usage: scenario-runner [--seed N] [--count N] [--threads N] \
     [--family NAME]... [--out PATH] [--no-timing] [--list] [--quiet]\n\
     \x20      scenario-runner --sweep [--max-nodes N] [common flags]\n\
     \n\
     --seed N       master seed for the randomized suite (default 42)\n\
     --count N      number of scenarios to run (default 20)\n\
     --threads N    worker threads (default: one per core)\n\
     --family NAME  restrict to a registry family (repeatable; see --list)\n\
     --out PATH     write the JSON report to PATH (default: stdout)\n\
     --no-timing    canonical report: omit wall-clock fields\n\
     --list         list registered scenario families and exit\n\
     --quiet        suppress progress lines (failures still print)\n\
     --sweep        run the size sweep (1k/10k/100k/1M per sweepable family)\n\
     --max-nodes N  clip the sweep ladder at N nodes (default 1000000)";

enum ParseOutcome {
    Run(Box<Args>),
    /// Exit immediately with this code (bad usage, or `--help`).
    Exit(u8),
}

fn parse_args(argv: &[String]) -> ParseOutcome {
    let mut args = Args {
        seed: 42,
        count: 20,
        threads: Threads::Auto,
        families: Vec::new(),
        out: None,
        timing: true,
        list: false,
        quiet: false,
        sweep: false,
        max_nodes: 1_000_000,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        macro_rules! value {
            ($name:literal) => {
                match it.next() {
                    Some(v) => v.clone(),
                    None => {
                        eprintln!("missing value for {}", $name);
                        eprintln!("{USAGE}");
                        return ParseOutcome::Exit(2);
                    }
                }
            };
        }
        // Numeric flags name the offending flag and value before the usage
        // text, so a typo like `--seed abc` is diagnosable at a glance.
        macro_rules! num {
            ($name:literal) => {{
                let raw = value!($name);
                match raw.parse() {
                    Ok(v) => v,
                    Err(_) => {
                        eprintln!("invalid value for {}: {raw:?}", $name);
                        eprintln!("{USAGE}");
                        return ParseOutcome::Exit(2);
                    }
                }
            }};
        }
        match arg.as_str() {
            "--seed" => args.seed = num!("--seed"),
            "--count" => args.count = num!("--count"),
            "--threads" => args.threads = Threads::Count(num!("--threads")),
            "--family" => args.families.push(value!("--family")),
            "--out" => args.out = Some(value!("--out")),
            "--no-timing" => args.timing = false,
            "--list" => args.list = true,
            "--quiet" => args.quiet = true,
            "--sweep" => args.sweep = true,
            "--max-nodes" => args.max_nodes = num!("--max-nodes"),
            "--help" | "-h" => {
                // Requested help is a success, not a usage error.
                println!("{USAGE}");
                return ParseOutcome::Exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("{USAGE}");
                return ParseOutcome::Exit(2);
            }
        }
    }
    ParseOutcome::Run(Box::new(args))
}

fn write_report(rendered: &str, out: &Option<String>, quiet: bool) -> Result<(), u8> {
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, rendered) {
                eprintln!("cannot write {path}: {e}");
                return Err(2);
            }
            if !quiet {
                eprintln!("report written to {path}");
            }
        }
        None => print!("{rendered}"),
    }
    Ok(())
}

/// Runs the CLI against an explicit argument list (everything after the
/// binary name) and returns the process exit code: `0` all scenarios
/// passed, `1` at least one failed cross-validation, `2` usage or I/O
/// error. Extracted from `main` so the exit-code contract is testable —
/// CI leans on it to catch correctness breaks.
pub fn run(argv: &[String]) -> u8 {
    let args = match parse_args(argv) {
        ParseOutcome::Run(args) => args,
        ParseOutcome::Exit(code) => return code,
    };
    let registry = default_registry();

    if args.list {
        println!(
            "{:<24} {:<10} {:<10} description",
            "family", "randomized", "sweep-max"
        );
        for family in registry.families() {
            println!(
                "{:<24} {:<10} {:<10} {}",
                family.name,
                if family.randomized { "yes" } else { "no" },
                if family.sweepable() {
                    family.sweep_max_n.to_string()
                } else {
                    "-".to_string()
                },
                family.description
            );
        }
        return 0;
    }

    for name in &args.families {
        if registry.get(name).is_none() {
            eprintln!("unknown scenario family {name:?} (see --list)");
            return 2;
        }
    }

    let threads = args.threads.resolve();
    if args.sweep {
        return run_sweep_mode(&args, &registry, threads);
    }

    let scenarios = registry.random_suite(args.seed, args.count, &args.families);
    if !args.quiet {
        eprintln!(
            "running {} scenarios (seed {}) on {} threads...",
            scenarios.len(),
            args.seed,
            threads
        );
    }

    let results = run_batch(&scenarios, Threads::Count(threads));
    for r in &results {
        // FAIL lines are diagnostics, not progress: they print even under
        // --quiet so a red CI batch always names the broken scenarios.
        if !r.pass || !args.quiet {
            eprintln!("{}", batch_line(r));
        }
        if !r.pass {
            for c in r.checks.iter().filter(|c| !c.pass) {
                eprintln!("       check {}: {}", c.name, c.detail);
            }
        }
    }

    let report = BatchReport {
        master_seed: args.seed,
        threads,
        results,
    };
    let rendered = report.to_json(args.timing).render_pretty();
    if let Err(code) = write_report(&rendered, &args.out, args.quiet) {
        return code;
    }

    let (passed, failed) = (report.passed(), report.failed());
    eprintln!(
        "summary: {passed}/{} scenarios passed, {failed} failed",
        report.results.len()
    );
    if failed > 0 {
        return 1;
    }
    if report.results.is_empty() {
        eprintln!("warning: no scenarios were run (--count 0); nothing was validated");
    } else if !args.quiet {
        eprintln!(
            "all {} scenarios passed cross-validation ({} rounds simulated)",
            report.results.len(),
            report.results.iter().map(|r| r.rounds).sum::<u64>()
        );
    }
    0
}

fn run_sweep_mode(args: &Args, registry: &crate::registry::Registry, threads: usize) -> u8 {
    let suite = sweep_suite(
        registry,
        args.seed,
        &DEFAULT_SIZES,
        args.max_nodes,
        &args.families,
    );
    if suite.is_empty() {
        eprintln!(
            "no sweep rungs selected (families: {:?}, max-nodes {}); see --list",
            args.families, args.max_nodes
        );
        return 2;
    }
    if !args.quiet {
        eprintln!(
            "sweeping {} (family, size) rungs up to {} nodes (seed {}) on {threads} threads...",
            suite.len(),
            args.max_nodes,
            args.seed
        );
    }
    let entries = run_sweep(&suite, Threads::Count(threads));
    for (p, r) in &entries {
        if !r.pass || !args.quiet {
            eprintln!("{}", sweep_line(p, r));
        }
        if !r.pass {
            for c in r.checks.iter().filter(|c| !c.pass) {
                eprintln!("       check {}: {}", c.name, c.detail);
            }
        }
    }
    let report = SweepReport {
        master_seed: args.seed,
        max_nodes: args.max_nodes,
        threads,
        entries,
    };
    let rendered = report.to_json(args.timing).render_pretty();
    if let Err(code) = write_report(&rendered, &args.out, args.quiet) {
        return code;
    }
    let (passed, failed) = (report.passed(), report.failed());
    eprintln!(
        "summary: {passed}/{} sweep rungs passed, {failed} failed",
        report.entries.len()
    );
    if failed > 0 {
        return 1;
    }
    0
}

/// One batch progress/diagnostic line. FAIL lines carry the scenario
/// seed so a red run is reproducible from the log alone
/// (`--seed N --family F` rebuilds the exact scenario; churn check
/// details additionally name their schedule seed and event index).
fn batch_line(r: &ScenarioResult) -> String {
    if r.pass {
        format!(
            "  ok   {:<52} n={:<5} k={:<3} rounds={:<6} beeps={}",
            r.name, r.n, r.k, r.rounds, r.beeps
        )
    } else {
        format!(
            "  FAIL {:<52} seed={} n={:<5} k={:<3} rounds={:<6} beeps={}",
            r.name, r.seed, r.n, r.k, r.rounds, r.beeps
        )
    }
}

/// One sweep progress/diagnostic line; FAIL lines carry the rung's seed,
/// like [`batch_line`].
fn sweep_line(p: &SweepPoint, r: &ScenarioResult) -> String {
    if r.pass {
        format!(
            "  ok   {:<24} size={:<8} n={:<8} rounds={:<6} {:>12} nodes/s",
            p.family,
            p.size,
            r.n,
            r.rounds,
            crate::sweep::nodes_per_sec(r.n, r.wall_micros)
        )
    } else {
        format!(
            "  FAIL {:<24} size={:<8} seed={} n={:<8} rounds={:<6} {:>12} nodes/s",
            p.family,
            p.size,
            r.seed,
            r.n,
            r.rounds,
            crate::sweep::nodes_per_sec(r.n, r.wall_micros)
        )
    }
}

/// Entry point of the `scenario-runner` binary (parses `std::env::args`).
pub fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    ExitCode::from(run(&argv))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn failing_scenario_propagates_nonzero_exit() {
        let code = run(&args(&[
            "--family",
            "selftest-fail",
            "--count",
            "2",
            "--quiet",
            "--no-timing",
            "--out",
            "/dev/null",
        ]));
        assert_eq!(code, 1, "validation failures must exit non-zero");
    }

    #[test]
    fn passing_batch_exits_zero() {
        let code = run(&args(&[
            "--seed",
            "5",
            "--count",
            "3",
            "--quiet",
            "--no-timing",
            "--out",
            "/dev/null",
        ]));
        assert_eq!(code, 0);
    }

    #[test]
    fn bad_flags_exit_two() {
        assert_eq!(run(&args(&["--bogus"])), 2);
        assert_eq!(run(&args(&["--seed", "abc"])), 2);
        assert_eq!(run(&args(&["--seed"])), 2);
        assert_eq!(run(&args(&["--family", "no-such-family"])), 2);
    }

    #[test]
    fn requested_help_exits_zero() {
        assert_eq!(run(&args(&["--help"])), 0);
        assert_eq!(run(&args(&["-h"])), 0);
    }

    #[test]
    fn tiny_sweep_exits_zero() {
        let code = run(&args(&[
            "--sweep",
            "--max-nodes",
            "1000",
            "--family",
            "blob-broadcast",
            "--quiet",
            "--no-timing",
            "--out",
            "/dev/null",
        ]));
        assert_eq!(code, 0);
    }

    #[test]
    fn sweep_with_no_rungs_exits_two() {
        let code = run(&args(&["--sweep", "--family", "selftest-fail", "--quiet"]));
        assert_eq!(code, 2);
    }

    /// Satellite: FAIL lines carry the seed, in batch and sweep form, so
    /// a failed cross-validation is reproducible from the log alone.
    #[test]
    fn fail_lines_carry_the_seed() {
        use crate::run::run_scenario;
        let registry = default_registry();
        let sc = registry.get("selftest-fail").unwrap().build(777);
        let failing = run_scenario(&sc);
        assert!(!failing.pass);
        let line = batch_line(&failing);
        assert!(
            line.contains("FAIL") && line.contains("seed=777"),
            "batch FAIL line must carry the seed: {line}"
        );
        let point = SweepPoint {
            family: "selftest-fail".to_string(),
            size: 1,
            scenario: sc,
        };
        let line = sweep_line(&point, &failing);
        assert!(
            line.contains("FAIL") && line.contains("seed=777"),
            "sweep FAIL line must carry the seed: {line}"
        );
        // Passing lines stay compact (no seed clutter).
        let passing = run_scenario(&registry.get("blob-broadcast").unwrap().build(5));
        assert!(passing.pass);
        assert!(!batch_line(&passing).contains("seed="));
    }
}
