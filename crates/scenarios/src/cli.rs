//! `scenario-runner` — batch-run randomized scenarios and emit a JSON
//! report.
//!
//! ```text
//! scenario-runner --seed 42 --count 20 [--threads N] [--family NAME]...
//!                 [--out PATH] [--no-timing] [--list] [--quiet]
//! ```
//!
//! Every scenario is derived deterministically from `--seed`, executed in
//! parallel across `--threads` workers (each scenario owns its simulator
//! world), cross-validated against the centralized BFS baselines, and
//! reported with round counts, beep counts and pass/fail. With
//! `--no-timing` the report is canonical: byte-identical across runs and
//! thread counts for the same seed. Exits non-zero if any scenario fails
//! validation.

use std::process::ExitCode;

use crate::batch::{run_batch, Threads};
use crate::registry::default_registry;
use crate::report::BatchReport;

struct Args {
    seed: u64,
    count: usize,
    threads: Threads,
    families: Vec<String>,
    out: Option<String>,
    timing: bool,
    list: bool,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: scenario-runner [--seed N] [--count N] [--threads N] \
         [--family NAME]... [--out PATH] [--no-timing] [--list] [--quiet]\n\
         \n\
         --seed N       master seed for the randomized suite (default 42)\n\
         --count N      number of scenarios to run (default 20)\n\
         --threads N    worker threads (default: one per core)\n\
         --family NAME  restrict to a registry family (repeatable; see --list)\n\
         --out PATH     write the JSON report to PATH (default: stdout)\n\
         --no-timing    canonical report: omit wall-clock fields\n\
         --list         list registered scenario families and exit\n\
         --quiet        suppress the per-scenario progress lines"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 42,
        count: 20,
        threads: Threads::Auto,
        families: Vec::new(),
        out: None,
        timing: true,
        list: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        // Numeric flags name the offending flag and value before the usage
        // text, so a typo like `--seed abc` is diagnosable at a glance.
        fn parse_num<T: std::str::FromStr>(name: &str, raw: &str) -> T {
            raw.parse().unwrap_or_else(|_| {
                eprintln!("invalid value for {name}: {raw:?}");
                usage()
            })
        }
        match arg.as_str() {
            "--seed" => {
                let raw = value("--seed");
                args.seed = parse_num("--seed", &raw);
            }
            "--count" => {
                let raw = value("--count");
                args.count = parse_num("--count", &raw);
            }
            "--threads" => {
                let raw = value("--threads");
                args.threads = Threads::Count(parse_num("--threads", &raw));
            }
            "--family" => args.families.push(value("--family")),
            "--out" => args.out = Some(value("--out")),
            "--no-timing" => args.timing = false,
            "--list" => args.list = true,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
    }
    args
}

/// Entry point of the `scenario-runner` binary (parses `std::env::args`).
pub fn main() -> ExitCode {
    let args = parse_args();
    let registry = default_registry();

    if args.list {
        println!("{:<24} {:<10} description", "family", "randomized");
        for family in registry.families() {
            println!(
                "{:<24} {:<10} {}",
                family.name,
                if family.randomized { "yes" } else { "no" },
                family.description
            );
        }
        return ExitCode::SUCCESS;
    }

    for name in &args.families {
        if registry.get(name).is_none() {
            eprintln!("unknown scenario family {name:?} (see --list)");
            return ExitCode::from(2);
        }
    }

    let scenarios = registry.random_suite(args.seed, args.count, &args.families);
    let threads = args.threads.resolve();
    if !args.quiet {
        eprintln!(
            "running {} scenarios (seed {}) on {} threads...",
            scenarios.len(),
            args.seed,
            threads
        );
    }

    let results = run_batch(&scenarios, Threads::Count(threads));
    if !args.quiet {
        for r in &results {
            let status = if r.pass { "ok  " } else { "FAIL" };
            eprintln!(
                "  {status} {:<52} n={:<5} k={:<3} rounds={:<6} beeps={}",
                r.name, r.n, r.k, r.rounds, r.beeps
            );
        }
    }

    let report = BatchReport {
        master_seed: args.seed,
        threads,
        results,
    };
    let rendered = report.to_json(args.timing).render_pretty();
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::from(2);
            }
            if !args.quiet {
                eprintln!("report written to {path}");
            }
        }
        None => print!("{rendered}"),
    }

    let failed = report.failed();
    if failed > 0 {
        eprintln!(
            "{failed} of {} scenarios FAILED cross-validation",
            report.results.len()
        );
        return ExitCode::FAILURE;
    }
    if report.results.is_empty() {
        eprintln!("warning: no scenarios were run (--count 0); nothing was validated");
    } else if !args.quiet {
        eprintln!(
            "all {} scenarios passed cross-validation ({} rounds simulated)",
            report.results.len(),
            report.results.iter().map(|r| r.rounds).sum::<u64>()
        );
    }
    ExitCode::SUCCESS
}
