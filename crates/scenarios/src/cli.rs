//! `scenario-runner` — batch-run randomized scenarios and emit a JSON
//! report.
//!
//! ```text
//! scenario-runner run    [--seed N] [--count N] [--threads N] [--family NAME]...
//!                        [--out PATH] [--metrics-json PATH] [--no-timing]
//!                        [--list] [--quiet]
//! scenario-runner sweep  [--max-nodes N] [--checkpoint-dir DIR] [common flags]
//! scenario-runner profile [--max-nodes N] [common flags]
//! scenario-runner trace  PATH [--family NAME] [--size N] [--seed N]
//! scenario-runner replay PATH
//! ```
//!
//! The flat-flag spellings (`--sweep`, `--record-trace PATH`,
//! `--replay-trace PATH`, or a bare flag list for a batch run) remain
//! accepted as **deprecated aliases** for one release; they print a
//! deprecation note to the diagnostic stream and behave identically,
//! including the exit-code contract (`0` pass / `1` validation failure /
//! `2` usage or I/O error). The `serve` mode lives in the separate
//! `scenario-server` binary, built from the same parsing helpers.
//!
//! Every scenario is derived deterministically from `--seed`, executed in
//! parallel across `--threads` workers (each scenario owns its simulator
//! world), cross-validated against the centralized BFS baselines, and
//! reported with round counts, beep counts and pass/fail. With
//! `--no-timing` the report is canonical: byte-identical across runs and
//! thread counts for the same seed.
//!
//! `--sweep` switches to the size-sweep mode: every sweepable family runs
//! across the geometric ladder 1k → 10k → 100k → 1M (clipped by
//! `--max-nodes` and per-family ceilings) and the report carries
//! per-(family, size) throughput — the `BENCH_sweep.json` the CI perf
//! gate diffs against `bench/baseline.json`. Timed sweeps run with the
//! phase timers on, so every rung additionally carries its engine metric
//! breakdown (relabel counts, beep totals, per-phase micros).
//!
//! `--metrics-json PATH` writes the run's merged engine-metrics document
//! (schema `spf-metrics-report/v1`) next to the main report; under
//! `--no-timing` it is canonical (counters and gauges only, timers
//! stripped).
//!
//! `--record-trace PATH` records a single scenario (`--family`, `--size`,
//! `--seed`; blob-broadcast families only) as a compact binary round
//! trace; `--replay-trace PATH` re-verifies such a trace against the live
//! engine, failing loudly with the round and event index of the first
//! divergence.
//!
//! `profile` runs the sweep ladder with the phase timers armed and emits
//! a deterministic folded-stack profile (`family;n<size>;<phase> <count>`
//! lines) weighing each engine phase by its invocation count — the format
//! flamegraph tooling consumes, byte-identical across thread counts.
//!
//! Batch and sweep runs additionally arm a per-scenario **flight
//! recorder** (disable with `--no-flight`): a bounded ring of the most
//! recent trace events. When a scenario check FAILs, the retained window
//! is dumped under `--flight-dir` as a `.spft` blob named by — and
//! embedding — the full reproduction key (plan seed, scenario seed,
//! schedule event index), decodable with the standard trace tooling.
//!
//! Failures are never silent: per-scenario `FAIL` lines print even under
//! `--quiet`, a `summary:` line always reports pass/fail counts, and the
//! exit code is non-zero whenever any scenario fails cross-validation
//! (or a replay diverges).

use std::io::Write;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Mutex;

use amoebot_telemetry::{FlightRecorder, TimedFlightRecorder, TimedRecorder};

use crate::batch::{run_batch_inspect, run_batch_with, Threads};
use crate::flight::dump_flight_record;
use crate::record::record_scenario;
use crate::registry::{default_registry, Registry};
use crate::report::{metrics_report, BatchReport};
use crate::run::ScenarioResult;
use crate::spec::{MicroWorkload, Scenario, Workload};
use crate::sweep::{
    run_sweep_observed, sweep_suite, CheckpointStore, RungOutcome, SweepPoint, SweepReport,
    DEFAULT_SIZES,
};

struct Args {
    seed: u64,
    count: usize,
    threads: Threads,
    families: Vec<String>,
    out: Option<String>,
    metrics_json: Option<String>,
    record_trace: Option<String>,
    replay_trace: Option<String>,
    size: usize,
    rounds: Option<usize>,
    timing: bool,
    list: bool,
    quiet: bool,
    sweep: bool,
    profile: bool,
    max_nodes: usize,
    checkpoint_dir: Option<String>,
    flight_dir: String,
    no_flight: bool,
}

const USAGE: &str = "usage: scenario-runner run    [--seed N] [--count N] [--threads N] \
     [--family NAME]... [--out PATH] [--metrics-json PATH] [--no-timing] [--list] [--quiet]\n\
     \x20      scenario-runner sweep  [--max-nodes N] [--checkpoint-dir DIR] [common flags]\n\
     \x20      scenario-runner profile [--max-nodes N] [common flags]\n\
     \x20      scenario-runner trace  PATH [--family NAME] [--size N] [--seed N]\n\
     \x20      scenario-runner replay PATH\n\
     \x20      (the old flat-flag spellings --sweep / --record-trace / --replay-trace\n\
     \x20       remain accepted as deprecated aliases)\n\
     \n\
     --seed N       master seed for the randomized suite (default 42)\n\
     --count N      number of scenarios to run (default 20)\n\
     --threads N    worker threads (default: one per core)\n\
     --family NAME  restrict to a registry family (repeatable; see --list)\n\
     --out PATH     write the JSON report to PATH (default: stdout)\n\
     --metrics-json PATH  write the merged engine-metrics JSON to PATH\n\
     --no-timing    canonical report: omit wall-clock and timer fields\n\
     --list         list registered scenario families and exit\n\
     --quiet        suppress progress lines (failures still print)\n\
     --max-nodes N  clip the sweep/profile ladder at N nodes (default 1000000)\n\
     --checkpoint-dir DIR  sweep only: append finished rungs to DIR and\n\
     \x20              resume, skipping rungs already passed there\n\
     --flight-dir DIR  where failing scenarios dump their flight records\n\
     \x20              (default: flight-records)\n\
     --no-flight    disarm the flight recorder (no black-box dumps)\n\
     --size N       structure size for trace recording (default 10000)\n\
     --rounds N     recorded run length override: broadcast rounds, or churn\n\
     \x20              events for blob-churn-broadcast (default: family-defined)";

enum ParseOutcome {
    Run(Box<Args>),
    /// Exit immediately with this code (bad usage, or `--help`).
    Exit(u8),
}

/// Parses one numeric flag value, naming the flag and the offending text
/// on failure. Shared by the `scenario-runner` and `scenario-server`
/// front ends so both diagnose `--port abc` the same way.
pub(crate) fn parse_num_value<T: std::str::FromStr>(
    raw: &str,
    flag: &str,
    out: &mut dyn Write,
) -> Option<T> {
    match raw.parse() {
        Ok(v) => Some(v),
        Err(_) => {
            let _ = writeln!(out, "invalid value for {flag}: {raw:?}");
            None
        }
    }
}

/// The subcommand an invocation resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Batch,
    Sweep,
    Profile,
    Replay,
    Trace,
}

fn parse_args(argv: &[String], out: &mut dyn Write) -> ParseOutcome {
    let mut args = Args {
        seed: 42,
        count: 20,
        threads: Threads::Auto,
        families: Vec::new(),
        out: None,
        metrics_json: None,
        record_trace: None,
        replay_trace: None,
        size: 10_000,
        rounds: None,
        timing: true,
        list: false,
        quiet: false,
        sweep: false,
        profile: false,
        max_nodes: 1_000_000,
        checkpoint_dir: None,
        flight_dir: "flight-records".to_string(),
        no_flight: false,
    };
    // A leading bare word selects the subcommand; absent one, the flat
    // flags below choose the mode (the deprecated spelling).
    let (mode, rest) = match argv.first().map(String::as_str) {
        Some("run") => (Some(Mode::Batch), &argv[1..]),
        Some("sweep") => (Some(Mode::Sweep), &argv[1..]),
        Some("profile") => (Some(Mode::Profile), &argv[1..]),
        Some("replay") => (Some(Mode::Replay), &argv[1..]),
        Some("trace") => (Some(Mode::Trace), &argv[1..]),
        _ => (None, argv),
    };
    if let Some(m) = mode {
        args.sweep = m == Mode::Sweep;
        args.profile = m == Mode::Profile;
    }
    let mut deprecated: Option<&str> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        macro_rules! value {
            ($name:literal) => {
                match it.next() {
                    Some(v) => v.clone(),
                    None => {
                        let _ = writeln!(out, "missing value for {}", $name);
                        let _ = writeln!(out, "{USAGE}");
                        return ParseOutcome::Exit(2);
                    }
                }
            };
        }
        // Numeric flags name the offending flag and value before the usage
        // text, so a typo like `--seed abc` is diagnosable at a glance.
        macro_rules! num {
            ($name:literal) => {{
                let raw = value!($name);
                match parse_num_value(&raw, $name, out) {
                    Some(v) => v,
                    None => {
                        let _ = writeln!(out, "{USAGE}");
                        return ParseOutcome::Exit(2);
                    }
                }
            }};
        }
        // A mode-selecting flat flag under an explicit subcommand is a
        // contradiction, not an alias; reject rather than guess.
        macro_rules! mode_flag {
            ($name:literal) => {
                if mode.is_some() {
                    let _ = writeln!(out, "{} conflicts with the subcommand form", $name);
                    let _ = writeln!(out, "{USAGE}");
                    return ParseOutcome::Exit(2);
                } else {
                    deprecated = Some($name);
                }
            };
        }
        match arg.as_str() {
            "--seed" => args.seed = num!("--seed"),
            "--count" => args.count = num!("--count"),
            "--threads" => args.threads = Threads::Count(num!("--threads")),
            "--family" => args.families.push(value!("--family")),
            "--out" => args.out = Some(value!("--out")),
            "--metrics-json" => args.metrics_json = Some(value!("--metrics-json")),
            "--record-trace" => {
                args.record_trace = Some(value!("--record-trace"));
                mode_flag!("--record-trace");
            }
            "--replay-trace" => {
                args.replay_trace = Some(value!("--replay-trace"));
                mode_flag!("--replay-trace");
            }
            "--size" => args.size = num!("--size"),
            "--rounds" => args.rounds = Some(num!("--rounds")),
            "--no-timing" => args.timing = false,
            "--list" => args.list = true,
            "--quiet" => args.quiet = true,
            "--sweep" => {
                args.sweep = true;
                mode_flag!("--sweep");
            }
            "--max-nodes" => args.max_nodes = num!("--max-nodes"),
            "--checkpoint-dir" => args.checkpoint_dir = Some(value!("--checkpoint-dir")),
            "--flight-dir" => args.flight_dir = value!("--flight-dir"),
            "--no-flight" => args.no_flight = true,
            "--help" | "-h" => {
                // Requested help is a success, not a usage error.
                println!("{USAGE}");
                return ParseOutcome::Exit(0);
            }
            other => {
                // `replay PATH` / `trace PATH` take one positional path.
                let positional_slot = match mode {
                    Some(Mode::Replay) if !other.starts_with('-') => Some(&mut args.replay_trace),
                    Some(Mode::Trace) if !other.starts_with('-') => Some(&mut args.record_trace),
                    _ => None,
                };
                match positional_slot {
                    Some(slot @ None) => *slot = Some(other.to_string()),
                    _ => {
                        let _ = writeln!(out, "unknown argument: {other}");
                        let _ = writeln!(out, "{USAGE}");
                        return ParseOutcome::Exit(2);
                    }
                }
            }
        }
    }
    match mode {
        Some(Mode::Replay) if args.replay_trace.is_none() => {
            let _ = writeln!(out, "replay needs a trace path");
            let _ = writeln!(out, "{USAGE}");
            return ParseOutcome::Exit(2);
        }
        Some(Mode::Trace) if args.record_trace.is_none() => {
            let _ = writeln!(out, "trace needs an output path");
            let _ = writeln!(out, "{USAGE}");
            return ParseOutcome::Exit(2);
        }
        _ => {}
    }
    if let Some(flag) = deprecated {
        // One-release alias: same behavior, same exit codes, but say so
        // on the diagnostic stream (never into a report).
        let _ = writeln!(
            out,
            "note: {flag} is deprecated; use the subcommand form (see --help)"
        );
    }
    // Sized builds feed `--size` straight into the blob generators, whose
    // smallest structure is one amoebot; reject the bad input here with a
    // usage diagnostic instead of panicking deep inside a generator.
    if args.size == 0 {
        let _ = writeln!(out, "invalid value for --size: must be at least 1");
        let _ = writeln!(out, "{USAGE}");
        return ParseOutcome::Exit(2);
    }
    ParseOutcome::Run(Box::new(args))
}

fn write_report(
    rendered: &str,
    target: &Option<String>,
    quiet: bool,
    out: &mut dyn Write,
) -> Result<(), u8> {
    match target {
        Some(path) => {
            if let Err(e) = std::fs::write(path, rendered) {
                let _ = writeln!(out, "cannot write {path}: {e}");
                return Err(2);
            }
            if !quiet {
                let _ = writeln!(out, "report written to {path}");
            }
        }
        None => print!("{rendered}"),
    }
    Ok(())
}

/// Writes the merged `spf-metrics-report/v1` document for `results` to
/// `path` (canonical under `--no-timing`).
fn write_metrics_json(
    path: &str,
    results: &[ScenarioResult],
    timing: bool,
    quiet: bool,
    out: &mut dyn Write,
) -> Result<(), u8> {
    let rendered = metrics_report(results, timing).render_pretty();
    if let Err(e) = std::fs::write(path, &rendered) {
        let _ = writeln!(out, "cannot write {path}: {e}");
        return Err(2);
    }
    if !quiet {
        let _ = writeln!(out, "metrics written to {path}");
    }
    Ok(())
}

/// The flight-record directory, or `None` under `--no-flight`.
fn flight_dir_of(args: &Args) -> Option<&Path> {
    (!args.no_flight).then(|| Path::new(args.flight_dir.as_str()))
}

/// The per-scenario flight-dump hook shared by batch and sweep mode: runs
/// on a worker thread right after each scenario, writes the retained black
/// box for failures, and queues one diagnostic line per dump. Lines are
/// collected rather than printed here — hooks fire concurrently in
/// completion order, so they are sorted before printing to keep the
/// diagnostic stream deterministic across thread counts.
fn flight_dump_hook(
    dir: Option<&Path>,
    lines: &Mutex<Vec<String>>,
    r: &ScenarioResult,
    rec: &FlightRecorder,
) {
    let Some(dir) = dir else { return };
    let line = match dump_flight_record(dir, r, rec) {
        Ok(Some(path)) => format!("flight record written to {}", path.display()),
        Ok(None) => return,
        Err(e) => format!("cannot write flight record for {}: {e}", r.name),
    };
    match lines.lock() {
        Ok(mut queued) => queued.push(line),
        Err(poisoned) => poisoned.into_inner().push(line),
    }
}

/// Drains and prints the queued flight-record lines in sorted order.
fn print_flight_lines(lines: Mutex<Vec<String>>, out: &mut dyn Write) {
    let mut lines = match lines.into_inner() {
        Ok(queued) => queued,
        Err(poisoned) => poisoned.into_inner(),
    };
    lines.sort_unstable();
    for line in lines {
        let _ = writeln!(out, "  {line}");
    }
}

/// Runs the CLI against an explicit argument list (everything after the
/// binary name) and returns the process exit code: `0` all scenarios
/// passed (or the replayed trace verified), `1` at least one failure,
/// `2` usage or I/O error. Diagnostics go to stderr; see
/// [`run_with_output`] for the testable sink-injected form.
pub fn run(argv: &[String]) -> u8 {
    run_with_output(argv, &mut std::io::stderr())
}

/// [`run`] with every diagnostic line (progress, FAIL lines, the final
/// `summary:`) routed to `out` instead of stderr, so tests can assert on
/// the exact output contract — in particular that `--quiet` never
/// swallows FAIL lines or the summary, in batch *and* sweep mode.
pub fn run_with_output(argv: &[String], out: &mut dyn Write) -> u8 {
    let args = match parse_args(argv, out) {
        ParseOutcome::Run(args) => args,
        ParseOutcome::Exit(code) => return code,
    };
    let registry = default_registry();

    if args.list {
        println!(
            "{:<24} {:<10} {:<10} description",
            "family", "randomized", "sweep-max"
        );
        for family in registry.families() {
            println!(
                "{:<24} {:<10} {:<10} {}",
                family.name,
                if family.randomized { "yes" } else { "no" },
                if family.sweepable() {
                    family.sweep_max_n.to_string()
                } else {
                    "-".to_string()
                },
                family.description
            );
        }
        return 0;
    }

    if let Some(path) = &args.replay_trace {
        return run_replay_mode(path, out);
    }

    for name in &args.families {
        if registry.get(name).is_none() {
            let _ = writeln!(out, "unknown scenario family {name:?} (see --list)");
            return 2;
        }
    }

    if args.record_trace.is_some() {
        return run_record_mode(&args, &registry, out);
    }

    let threads = args.threads.resolve();
    if args.sweep {
        return run_sweep_mode(&args, &registry, threads, out);
    }
    if args.profile {
        return run_profile_mode(&args, &registry, threads, out);
    }

    let scenarios = registry.random_suite(args.seed, args.count, &args.families);
    if !args.quiet {
        let _ = writeln!(
            out,
            "running {} scenarios (seed {}) on {} threads...",
            scenarios.len(),
            args.seed,
            threads
        );
    }

    // Phase timers cost two clock reads per phase, so they are on only
    // when a metrics document was asked for (and timing is on at all).
    // The flight recorder, by contrast, is always on (unless --no-flight):
    // every scenario runs with its own black box, dumped only on FAIL.
    let timed = args.timing && args.metrics_json.is_some();
    let flight_dir = flight_dir_of(&args);
    let flight_lines = Mutex::new(Vec::new());
    let results = if timed {
        run_batch_inspect::<TimedFlightRecorder>(&scenarios, Threads::Count(threads), |r, rec| {
            flight_dump_hook(flight_dir, &flight_lines, r, &rec.inner)
        })
    } else {
        run_batch_inspect::<FlightRecorder>(&scenarios, Threads::Count(threads), |r, rec| {
            flight_dump_hook(flight_dir, &flight_lines, r, rec)
        })
    };
    for r in &results {
        // FAIL lines are diagnostics, not progress: they print even under
        // --quiet so a red CI batch always names the broken scenarios.
        if !r.pass || !args.quiet {
            let _ = writeln!(out, "{}", batch_line(r));
        }
        if !r.pass {
            for c in r.checks.iter().filter(|c| !c.pass) {
                let _ = writeln!(out, "       check {}: {}", c.name, c.detail);
            }
        }
    }
    print_flight_lines(flight_lines, out);

    let report = BatchReport {
        master_seed: args.seed,
        threads,
        results,
    };
    let (passed, failed) = (report.passed(), report.failed());
    // The summary prints before any report I/O, so even a bad --out path
    // never swallows the batch verdict.
    let _ = writeln!(
        out,
        "summary: {passed}/{} scenarios passed, {failed} failed",
        report.results.len()
    );
    let rendered = report.to_json(args.timing).render_pretty();
    if let Err(code) = write_report(&rendered, &args.out, args.quiet, out) {
        return code;
    }
    if let Some(path) = &args.metrics_json {
        if let Err(code) = write_metrics_json(path, &report.results, args.timing, args.quiet, out) {
            return code;
        }
    }

    if failed > 0 {
        return 1;
    }
    if report.results.is_empty() {
        let _ = writeln!(
            out,
            "warning: no scenarios were run (--count 0); nothing was validated"
        );
    } else if !args.quiet {
        let _ = writeln!(
            out,
            "all {} scenarios passed cross-validation ({} rounds simulated)",
            report.results.len(),
            report.results.iter().map(|r| r.rounds).sum::<u64>()
        );
    }
    0
}

fn run_sweep_mode(args: &Args, registry: &Registry, threads: usize, out: &mut dyn Write) -> u8 {
    let suite = sweep_suite(
        registry,
        args.seed,
        &DEFAULT_SIZES,
        args.max_nodes,
        &args.families,
    );
    if suite.is_empty() {
        let _ = writeln!(
            out,
            "no sweep rungs selected (families: {:?}, max-nodes {}); see --list",
            args.families, args.max_nodes
        );
        return 2;
    }
    if !args.quiet {
        let _ = writeln!(
            out,
            "sweeping {} (family, size) rungs up to {} nodes (seed {}) on {threads} threads...",
            suite.len(),
            args.max_nodes,
            args.seed
        );
    }
    // `--checkpoint-dir`: long ladders (100k–1M rungs) survive
    // interruption; finished-and-passed rungs are skipped on resume,
    // failed ones re-run.
    let mut store = match &args.checkpoint_dir {
        Some(dir) => match CheckpointStore::open(std::path::Path::new(dir), args.seed) {
            Ok(store) => {
                if !args.quiet && !store.is_empty() {
                    let _ = writeln!(
                        out,
                        "resuming from {} ({} finished rungs on record)",
                        store.path().display(),
                        store.len()
                    );
                }
                Some(store)
            }
            Err(e) => {
                let _ = writeln!(out, "cannot open checkpoint dir {dir}: {e}");
                return 2;
            }
        },
        None => None,
    };
    let quiet = args.quiet;
    let mut progress = |o: RungOutcome<'_>| match o {
        RungOutcome::Resumed(e) => {
            if !quiet {
                let _ = writeln!(
                    out,
                    "  skip {:<24} size={:<8} (checkpointed: passed)",
                    e.family, e.size
                );
            }
        }
        RungOutcome::Ran(p, r) => {
            if !r.pass || !quiet {
                let _ = writeln!(out, "{}", sweep_line(p, r));
            }
            if !r.pass {
                for c in r.checks.iter().filter(|c| !c.pass) {
                    let _ = writeln!(out, "       check {}: {}", c.name, c.detail);
                }
            }
        }
    };
    // Timed sweeps keep the phase timers on: BENCH_sweep.json is the
    // perf-gate artifact, and its per-rung metric breakdown is what lets
    // a regression name the phase that moved. Either way the flight
    // recorder rides along (unless --no-flight) and dumps on FAIL.
    let flight_dir = flight_dir_of(args);
    let flight_lines = Mutex::new(Vec::new());
    let ran = if args.timing {
        run_sweep_observed::<TimedFlightRecorder>(
            &suite,
            Threads::Count(threads),
            store.as_mut(),
            &mut progress,
            |r, rec| flight_dump_hook(flight_dir, &flight_lines, r, &rec.inner),
        )
    } else {
        run_sweep_observed::<FlightRecorder>(
            &suite,
            Threads::Count(threads),
            store.as_mut(),
            &mut progress,
            |r, rec| flight_dump_hook(flight_dir, &flight_lines, r, rec),
        )
    };
    let (entries, fresh) = match ran {
        Ok(ok) => ok,
        Err(e) => {
            let _ = writeln!(out, "cannot write checkpoint: {e}");
            return 2;
        }
    };
    print_flight_lines(flight_lines, out);
    let report = SweepReport {
        master_seed: args.seed,
        max_nodes: args.max_nodes,
        threads,
        entries,
    };
    let (passed, failed) = (report.passed(), report.failed());
    // Like the batch path: the sweep verdict prints before report I/O,
    // so --quiet plus a bad --out can never swallow it.
    let _ = writeln!(
        out,
        "summary: {passed}/{} sweep rungs passed, {failed} failed",
        report.entries.len()
    );
    let rendered = report.to_json(args.timing).render_pretty();
    if let Err(code) = write_report(&rendered, &args.out, args.quiet, out) {
        return code;
    }
    if let Some(path) = &args.metrics_json {
        // Resumed rungs carry their metrics only inside the pre-rendered
        // report entries; the merged document covers the freshly-run
        // rungs of *this* invocation.
        if let Err(code) = write_metrics_json(path, &fresh, args.timing, args.quiet, out) {
            return code;
        }
    }
    if failed > 0 {
        return 1;
    }
    0
}

/// The engine's phase timers, keyed by the folded-stack frame label each
/// maps to, in engine execution order (see `amoebot_circuits::World`).
const PROFILE_PHASES: [(&str, &str); 5] = [
    ("phase_propagate_micros", "propagate"),
    ("phase_region_dissolve_micros", "dissolve"),
    ("phase_region_reunion_micros", "re-union"),
    ("phase_membership_repack_micros", "repack"),
    ("phase_global_relabel_micros", "relabel"),
];

/// `scenario-runner profile`: run the sweep ladder with the phase timers
/// armed and emit a folded-stack profile — one
/// `family;n<size>;<phase> <weight>` line per (rung, phase), the format
/// flamegraph tooling consumes. Weights are phase *invocation counts*,
/// not micros: counts are a pure function of the scenario, so the profile
/// is byte-identical across runs and thread counts, and it still shows
/// where a family's rounds go as sizes scale. Zero-count phases are
/// omitted.
fn run_profile_mode(args: &Args, registry: &Registry, threads: usize, out: &mut dyn Write) -> u8 {
    let suite = sweep_suite(
        registry,
        args.seed,
        &DEFAULT_SIZES,
        args.max_nodes,
        &args.families,
    );
    if suite.is_empty() {
        let _ = writeln!(
            out,
            "no profile rungs selected (families: {:?}, max-nodes {}); see --list",
            args.families, args.max_nodes
        );
        return 2;
    }
    if !args.quiet {
        let _ = writeln!(
            out,
            "profiling {} (family, size) rungs up to {} nodes (seed {}) on {threads} threads...",
            suite.len(),
            args.max_nodes,
            args.seed
        );
    }
    let scenarios: Vec<Scenario> = suite.iter().map(|p| p.scenario.clone()).collect();
    let results = run_batch_with::<TimedRecorder>(&scenarios, Threads::Count(threads));
    let mut folded = String::new();
    let mut failed = 0usize;
    for (p, r) in suite.iter().zip(&results) {
        if !r.pass {
            failed += 1;
            let _ = writeln!(out, "{}", sweep_line(p, r));
            for c in r.checks.iter().filter(|c| !c.pass) {
                let _ = writeln!(out, "       check {}: {}", c.name, c.detail);
            }
        }
        for (timer, phase) in PROFILE_PHASES {
            let count = r.metrics.timer_summary(timer).count;
            if count > 0 {
                folded.push_str(&format!("{};n{};{phase} {count}\n", p.family, p.size));
            }
        }
    }
    let _ = writeln!(
        out,
        "summary: {}/{} profile rungs passed, {failed} failed",
        results.len() - failed,
        results.len()
    );
    if let Err(code) = write_report(&folded, &args.out, args.quiet, out) {
        return code;
    }
    u8::from(failed > 0)
}

/// `--record-trace PATH`: run one sized scenario with the trace recorder
/// attached and persist the binary round trace.
fn run_record_mode(args: &Args, registry: &Registry, out: &mut dyn Write) -> u8 {
    let path = args.record_trace.as_deref().expect("record mode");
    let family = match args.families.as_slice() {
        [] => "blob-broadcast",
        [one] => one.as_str(),
        _ => {
            let _ = writeln!(
                out,
                "--record-trace records a single scenario; pass at most one --family"
            );
            return 2;
        }
    };
    let fam = registry.get(family).expect("family validated above");
    let scenario = fam
        .build_sized(args.seed, args.size)
        .unwrap_or_else(|| fam.build(args.seed));
    // Longer recorded runs are where replay's amortization shows: the
    // sized builds fix a short sweep-friendly run, so record mode lets
    // the run length be dialed up independently.
    let scenario = match (args.rounds, &scenario.workload) {
        (Some(len), Workload::Micro(MicroWorkload::BlobBroadcast { n, .. })) => Scenario::micro(
            family,
            scenario.seed,
            MicroWorkload::BlobBroadcast { n: *n, rounds: len },
        ),
        (Some(len), Workload::Micro(MicroWorkload::BlobChurnBroadcast { n, per_event, .. })) => {
            Scenario::micro(
                family,
                scenario.seed,
                MicroWorkload::BlobChurnBroadcast {
                    n: *n,
                    events: len,
                    per_event: *per_event,
                },
            )
        }
        _ => scenario,
    };
    let (result, bytes) = match record_scenario(&scenario) {
        Ok(ok) => ok,
        Err(msg) => {
            let _ = writeln!(out, "cannot record: {msg}");
            return 2;
        }
    };
    if let Err(e) = std::fs::write(path, &bytes) {
        let _ = writeln!(out, "cannot write {path}: {e}");
        return 2;
    }
    let _ = writeln!(out, "{}", batch_line(&result));
    if !result.pass {
        for c in result.checks.iter().filter(|c| !c.pass) {
            let _ = writeln!(out, "       check {}: {}", c.name, c.detail);
        }
    }
    if !args.quiet {
        let _ = writeln!(
            out,
            "trace written to {path} ({} bytes, {} rounds)",
            bytes.len(),
            result.rounds
        );
    }
    if let Some(mpath) = &args.metrics_json {
        if let Err(code) = write_metrics_json(
            mpath,
            std::slice::from_ref(&result),
            args.timing,
            args.quiet,
            out,
        ) {
            return code;
        }
    }
    let _ = writeln!(
        out,
        "summary: {}/1 scenarios passed, {} failed",
        u8::from(result.pass),
        u8::from(!result.pass)
    );
    u8::from(!result.pass)
}

/// `--replay-trace PATH`: re-verify a recorded round trace against the
/// live engine. Exit 0 on a clean verification, 1 on divergence or a
/// malformed trace (the message carries the round and event index), 2 on
/// I/O errors.
fn run_replay_mode(path: &str, out: &mut dyn Write) -> u8 {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            let _ = writeln!(out, "cannot read {path}: {e}");
            return 2;
        }
    };
    // spf-lint: allow(wall-clock) — verification wall time is human-facing progress info, never part of canonical output
    let start = std::time::Instant::now();
    match amoebot_circuits::replay_trace(&bytes) {
        Ok(rep) => {
            let _ = writeln!(
                out,
                "replay ok: {path}: {} nodes, {} rounds, {} events verified in {} us",
                rep.nodes,
                rep.rounds,
                rep.events,
                start.elapsed().as_micros(),
            );
            0
        }
        Err(e) => {
            let _ = writeln!(out, "replay FAILED: {path}: {e}");
            1
        }
    }
}

/// One batch progress/diagnostic line. FAIL lines carry the scenario
/// seed so a red run is reproducible from the log alone
/// (`--seed N --family F` rebuilds the exact scenario; churn check
/// details additionally name their schedule seed and event index).
fn batch_line(r: &ScenarioResult) -> String {
    if r.pass {
        format!(
            "  ok   {:<52} n={:<5} k={:<3} rounds={:<6} beeps={}",
            r.name, r.n, r.k, r.rounds, r.beeps
        )
    } else {
        format!(
            "  FAIL {:<52} seed={} n={:<5} k={:<3} rounds={:<6} beeps={}",
            r.name, r.seed, r.n, r.k, r.rounds, r.beeps
        )
    }
}

/// One sweep progress/diagnostic line; FAIL lines carry the rung's seed,
/// like [`batch_line`].
fn sweep_line(p: &SweepPoint, r: &ScenarioResult) -> String {
    if r.pass {
        format!(
            "  ok   {:<24} size={:<8} n={:<8} rounds={:<6} {:>12} nodes/s",
            p.family,
            p.size,
            r.n,
            r.rounds,
            crate::sweep::nodes_per_sec(r.n, r.wall_micros)
        )
    } else {
        format!(
            "  FAIL {:<24} size={:<8} seed={} n={:<8} rounds={:<6} {:>12} nodes/s",
            p.family,
            p.size,
            r.seed,
            r.n,
            r.rounds,
            crate::sweep::nodes_per_sec(r.n, r.wall_micros)
        )
    }
}

/// Entry point of the `scenario-runner` binary (parses `std::env::args`).
pub fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    ExitCode::from(run(&argv))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    /// Runs the CLI with a captured sink and returns `(exit, output)`.
    fn run_captured(list: &[&str]) -> (u8, String) {
        let mut sink = Vec::new();
        let code = run_with_output(&args(list), &mut sink);
        (
            code,
            String::from_utf8(sink).expect("diagnostics are UTF-8"),
        )
    }

    /// A collision-free scratch path under the system temp dir.
    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("spf-cli-test-{}-{tag}", std::process::id()))
    }

    #[test]
    fn failing_scenario_propagates_nonzero_exit() {
        let code = run(&args(&[
            "--family",
            "selftest-fail",
            "--count",
            "2",
            "--quiet",
            "--no-timing",
            "--out",
            "/dev/null",
        ]));
        assert_eq!(code, 1, "validation failures must exit non-zero");
    }

    #[test]
    fn passing_batch_exits_zero() {
        let code = run(&args(&[
            "--seed",
            "5",
            "--count",
            "3",
            "--quiet",
            "--no-timing",
            "--out",
            "/dev/null",
        ]));
        assert_eq!(code, 0);
    }

    #[test]
    fn bad_flags_exit_two() {
        assert_eq!(run(&args(&["--bogus"])), 2);
        assert_eq!(run(&args(&["--seed", "abc"])), 2);
        assert_eq!(run(&args(&["--seed"])), 2);
        assert_eq!(run(&args(&["--family", "no-such-family"])), 2);
    }

    #[test]
    fn requested_help_exits_zero() {
        assert_eq!(run(&args(&["--help"])), 0);
        assert_eq!(run(&args(&["-h"])), 0);
    }

    #[test]
    fn tiny_sweep_exits_zero() {
        let code = run(&args(&[
            "--sweep",
            "--max-nodes",
            "1000",
            "--family",
            "blob-broadcast",
            "--quiet",
            "--no-timing",
            "--out",
            "/dev/null",
        ]));
        assert_eq!(code, 0);
    }

    #[test]
    fn sweep_with_no_rungs_exits_two() {
        let code = run(&args(&["--sweep", "--family", "selftest-fail", "--quiet"]));
        assert_eq!(code, 2);
    }

    /// Satellite: `--quiet` must never swallow the `summary:` line — in
    /// sweep mode as much as in batch mode.
    #[test]
    fn quiet_sweep_still_prints_the_summary() {
        let (code, output) = run_captured(&[
            "--sweep",
            "--max-nodes",
            "1000",
            "--family",
            "blob-broadcast",
            "--quiet",
            "--no-timing",
            "--out",
            "/dev/null",
        ]);
        assert_eq!(code, 0);
        assert!(
            output.contains("summary:"),
            "quiet sweep swallowed the summary: {output:?}"
        );
        assert!(
            !output.contains("sweeping"),
            "quiet sweep still printed progress: {output:?}"
        );
    }

    /// Satellite: `--quiet` must never swallow FAIL lines either.
    #[test]
    fn quiet_batch_still_prints_fail_lines_and_summary() {
        let (code, output) = run_captured(&[
            "--family",
            "selftest-fail",
            "--count",
            "1",
            "--quiet",
            "--no-timing",
            "--out",
            "/dev/null",
        ]);
        assert_eq!(code, 1);
        assert!(
            output.contains("FAIL"),
            "no FAIL line under --quiet: {output:?}"
        );
        assert!(
            output.contains("summary:"),
            "no summary under --quiet: {output:?}"
        );
    }

    /// Record → replay round trip through the CLI, plus the corruption
    /// contract: a flipped byte is rejected with round + event index.
    #[test]
    fn record_replay_roundtrip_and_corruption() {
        let trace = temp_path("trace.bin");
        let trace_s = trace.to_str().unwrap();
        let (code, output) = run_captured(&[
            "--record-trace",
            trace_s,
            "--family",
            "blob-broadcast",
            "--size",
            "300",
            "--seed",
            "9",
            "--quiet",
        ]);
        assert_eq!(code, 0, "recording failed: {output}");
        let (code, output) = run_captured(&["--replay-trace", trace_s]);
        assert_eq!(code, 0, "replay failed: {output}");
        assert!(output.contains("replay ok"), "{output:?}");

        // Corrupt one byte in the middle of the blob: replay must fail
        // with an error naming the round and event index.
        let mut bytes = std::fs::read(&trace).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&trace, &bytes).unwrap();
        let (code, output) = run_captured(&["--replay-trace", trace_s]);
        assert_eq!(code, 1, "corrupted trace verified cleanly: {output}");
        assert!(
            output.contains("round") && output.contains("event"),
            "divergence report must carry round + event index: {output:?}"
        );
        let _ = std::fs::remove_file(&trace);
    }

    /// Regression: `--record-trace … --size 0` used to reach
    /// `random_blob`'s `assert!(n >= 1)` and panic; user input must come
    /// back as a usage diagnostic under the 0/1/2 exit-code contract.
    #[test]
    fn size_zero_is_a_usage_error_not_a_panic() {
        let trace = temp_path("size-zero.bin");
        let (code, output) =
            run_captured(&["--record-trace", trace.to_str().unwrap(), "--size", "0"]);
        assert_eq!(code, 2);
        assert!(
            output.contains("--size") && output.contains("at least 1"),
            "diagnostic must name the flag and the constraint: {output:?}"
        );
        assert!(!trace.exists(), "no trace may be written on a usage error");
    }

    #[test]
    fn replaying_a_missing_file_exits_two() {
        let (code, output) = run_captured(&["--replay-trace", "/no/such/trace.bin"]);
        assert_eq!(code, 2);
        assert!(output.contains("cannot read"), "{output:?}");
    }

    #[test]
    fn recording_an_unrecordable_family_exits_two() {
        let trace = temp_path("unrecordable.bin");
        let (code, output) = run_captured(&[
            "--record-trace",
            trace.to_str().unwrap(),
            "--family",
            "selftest-fail",
        ]);
        assert_eq!(code, 2);
        assert!(output.contains("not recordable"), "{output:?}");
    }

    /// `--metrics-json` writes the merged metrics document; canonical
    /// (no timers) under `--no-timing`, timers present otherwise.
    #[test]
    fn metrics_json_is_written_and_respects_timing() {
        let path = temp_path("metrics.json");
        let path_s = path.to_str().unwrap();
        let (code, _) = run_captured(&[
            "--family",
            "blob-broadcast",
            "--count",
            "2",
            "--quiet",
            "--no-timing",
            "--out",
            "/dev/null",
            "--metrics-json",
            path_s,
        ]);
        assert_eq!(code, 0);
        let canonical = std::fs::read_to_string(&path).unwrap();
        assert!(canonical.contains(crate::report::METRICS_SCHEMA));
        assert!(canonical.contains("relabel_global"));
        assert!(!canonical.contains("timers"));

        let (code, _) = run_captured(&[
            "--family",
            "blob-broadcast",
            "--count",
            "2",
            "--quiet",
            "--out",
            "/dev/null",
            "--metrics-json",
            path_s,
        ]);
        assert_eq!(code, 0);
        let timed = std::fs::read_to_string(&path).unwrap();
        assert!(timed.contains("timers"));
        assert!(
            timed.contains("phase_propagate_micros"),
            "timed metrics must carry the phase timers: {timed}"
        );
        let _ = std::fs::remove_file(&path);
    }

    /// Satellite: a canonical metrics document is byte-stable across
    /// runs and thread counts.
    #[test]
    fn canonical_metrics_json_is_deterministic() {
        let a = temp_path("metrics-a.json");
        let b = temp_path("metrics-b.json");
        for (path, threads) in [(&a, "1"), (&b, "4")] {
            let (code, _) = run_captured(&[
                "--seed",
                "21",
                "--count",
                "4",
                "--threads",
                threads,
                "--quiet",
                "--no-timing",
                "--out",
                "/dev/null",
                "--metrics-json",
                path.to_str().unwrap(),
            ]);
            assert_eq!(code, 0);
        }
        assert_eq!(
            std::fs::read_to_string(&a).unwrap(),
            std::fs::read_to_string(&b).unwrap(),
            "canonical metrics documents must not depend on thread count"
        );
        let _ = std::fs::remove_file(&a);
        let _ = std::fs::remove_file(&b);
    }

    /// Satellite: FAIL lines carry the seed, in batch and sweep form, so
    /// a failed cross-validation is reproducible from the log alone.
    #[test]
    fn fail_lines_carry_the_seed() {
        use crate::run::run_scenario;
        let registry = default_registry();
        let sc = registry.get("selftest-fail").unwrap().build(777);
        let failing = run_scenario(&sc);
        assert!(!failing.pass);
        let line = batch_line(&failing);
        assert!(
            line.contains("FAIL") && line.contains("seed=777"),
            "batch FAIL line must carry the seed: {line}"
        );
        let point = SweepPoint {
            family: "selftest-fail".to_string(),
            size: 1,
            scenario: sc,
        };
        let line = sweep_line(&point, &failing);
        assert!(
            line.contains("FAIL") && line.contains("seed=777"),
            "sweep FAIL line must carry the seed: {line}"
        );
        // Passing lines stay compact (no seed clutter).
        let passing = run_scenario(&registry.get("blob-broadcast").unwrap().build(5));
        assert!(passing.pass);
        assert!(!batch_line(&passing).contains("seed="));
    }

    /// Satellite: the subcommand spellings and their flat-flag aliases
    /// produce identical reports and exit codes; only the alias prints a
    /// deprecation note.
    #[test]
    fn subcommands_match_their_deprecated_aliases() {
        let new_out = temp_path("sub-new.json");
        let old_out = temp_path("sub-old.json");
        let common = [
            "--max-nodes",
            "1000",
            "--family",
            "blob-broadcast",
            "--seed",
            "77",
            "--quiet",
            "--no-timing",
        ];
        let mut new_args = vec!["sweep"];
        new_args.extend_from_slice(&common);
        new_args.extend_from_slice(&["--out", new_out.to_str().unwrap()]);
        let (code, output) = run_captured(&new_args);
        assert_eq!(code, 0);
        assert!(
            !output.contains("deprecated"),
            "subcommand form must not warn: {output}"
        );
        let mut old_args = vec!["--sweep"];
        old_args.extend_from_slice(&common);
        old_args.extend_from_slice(&["--out", old_out.to_str().unwrap()]);
        let (code, output) = run_captured(&old_args);
        assert_eq!(code, 0);
        assert!(
            output.contains("deprecated"),
            "flat-flag form must warn: {output}"
        );
        assert_eq!(
            std::fs::read_to_string(&new_out).unwrap(),
            std::fs::read_to_string(&old_out).unwrap(),
            "both spellings must render the same report"
        );
        let _ = std::fs::remove_file(&new_out);
        let _ = std::fs::remove_file(&old_out);
        // `run` is the explicit spelling of the default batch mode.
        assert_eq!(
            run(&args(&[
                "run",
                "--count",
                "2",
                "--quiet",
                "--out",
                "/dev/null"
            ])),
            0
        );
    }

    #[test]
    fn subcommand_and_mode_flag_conflict_exits_two() {
        assert_eq!(run(&args(&["run", "--sweep"])), 2);
        assert_eq!(run(&args(&["sweep", "--sweep"])), 2);
        assert_eq!(run(&args(&["replay", "--replay-trace", "x.trace"])), 2);
        assert_eq!(run(&args(&["trace", "--record-trace", "x.trace"])), 2);
        // Positional paths only exist for replay/trace.
        assert_eq!(run(&args(&["run", "stray-positional"])), 2);
        // replay/trace demand their PATH operand.
        assert_eq!(run(&args(&["replay"])), 2);
        assert_eq!(run(&args(&["trace"])), 2);
    }

    #[test]
    fn trace_and_replay_subcommands_round_trip() {
        let path = temp_path("sub-trace.trace");
        let code = run(&args(&[
            "trace",
            path.to_str().unwrap(),
            "--family",
            "blob-broadcast",
            "--size",
            "60",
            "--seed",
            "4",
        ]));
        assert_eq!(code, 0, "trace subcommand records");
        assert_eq!(
            run(&args(&["replay", path.to_str().unwrap()])),
            0,
            "replay subcommand verifies"
        );
        let _ = std::fs::remove_file(&path);
    }

    /// Tentpole: a failing adversary scenario dumps a flight record named
    /// by the full reproduction key, and the blob decodes through the
    /// standard trace codec with the key as its first event.
    #[test]
    fn failing_adversary_run_dumps_a_decodable_flight_record() {
        use amoebot_telemetry::{TraceEvent, TraceReader};
        let dir = temp_path("flight-dump");
        let _ = std::fs::remove_dir_all(&dir);
        let (code, output) = run_captured(&[
            "run",
            "--family",
            "adversary-selftest-fail",
            "--count",
            "1",
            "--quiet",
            "--no-timing",
            "--out",
            "/dev/null",
            "--flight-dir",
            dir.to_str().unwrap(),
        ]);
        assert_eq!(code, 1);
        assert!(
            output.contains("flight record written to"),
            "no flight-record diagnostic: {output:?}"
        );
        let entries: Vec<_> = std::fs::read_dir(&dir)
            .expect("flight dir must exist")
            .map(|e| e.unwrap().path())
            .collect();
        assert_eq!(entries.len(), 1, "exactly one failing scenario ran");
        let name = entries[0]
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .to_string();
        assert!(
            name.ends_with(".spft")
                && name.contains("-plan")
                && name.contains("-seed")
                && name.contains("-event"),
            "file name must carry every key fragment: {name}"
        );
        let bytes = std::fs::read(&entries[0]).unwrap();
        let mut reader = TraceReader::open(&bytes).expect("dump must decode");
        match reader.next_event().expect("first event readable") {
            Some(TraceEvent::FlightKey { .. }) => {}
            other => panic!("flight record must lead with its key, got {other:?}"),
        }
        while reader.next_event().expect("every event decodes").is_some() {}
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// `--no-flight` disarms the recorder: same failing run, no dump.
    #[test]
    fn no_flight_suppresses_the_dump() {
        let dir = temp_path("flight-off");
        let _ = std::fs::remove_dir_all(&dir);
        let (code, output) = run_captured(&[
            "run",
            "--family",
            "adversary-selftest-fail",
            "--count",
            "1",
            "--quiet",
            "--no-timing",
            "--no-flight",
            "--out",
            "/dev/null",
            "--flight-dir",
            dir.to_str().unwrap(),
        ]);
        assert_eq!(code, 1, "the scenario still fails");
        assert!(
            !output.contains("flight record"),
            "--no-flight must suppress dump diagnostics: {output:?}"
        );
        assert!(!dir.exists(), "--no-flight must not create the flight dir");
    }

    /// Tentpole: the folded-stack profile is byte-identical across thread
    /// counts and carries every engine phase label.
    #[test]
    fn profile_output_is_deterministic_across_thread_counts() {
        let a = temp_path("profile-a.folded");
        let b = temp_path("profile-b.folded");
        for (path, threads) in [(&a, "1"), (&b, "8")] {
            let (code, output) = run_captured(&[
                "profile",
                "--max-nodes",
                "1000",
                "--family",
                "blob-broadcast",
                "--seed",
                "11",
                "--threads",
                threads,
                "--quiet",
                "--out",
                path.to_str().unwrap(),
            ]);
            assert_eq!(code, 0, "profile run failed: {output}");
            assert!(output.contains("summary:"), "{output:?}");
        }
        let folded = std::fs::read_to_string(&a).unwrap();
        assert_eq!(
            folded,
            std::fs::read_to_string(&b).unwrap(),
            "profile must not depend on thread count"
        );
        assert!(
            folded.contains("blob-broadcast;n1000;propagate "),
            "folded lines must be family;n<size>;phase weight: {folded}"
        );
        for line in folded.lines() {
            let (stack, weight) = line.rsplit_once(' ').expect("weight separator");
            assert_eq!(stack.split(';').count(), 3, "three folded frames: {line}");
            weight.parse::<u64>().expect("weight is a count");
        }
        let _ = std::fs::remove_file(&a);
        let _ = std::fs::remove_file(&b);
    }

    /// Satellite + tentpole: `sweep --checkpoint-dir` resumes through
    /// the CLI — an interrupted sweep's finished rungs are skipped and
    /// the final report is byte-identical to an uninterrupted one.
    #[test]
    fn sweep_checkpoint_dir_resumes_through_the_cli() {
        let dir = temp_path("ckpt-cli");
        let _ = std::fs::remove_dir_all(&dir);
        let full_out = temp_path("ckpt-full.json");
        let resumed_out = temp_path("ckpt-resumed.json");
        let common = [
            "--max-nodes",
            "1000",
            "--seed",
            "29",
            "--threads",
            "1",
            "--no-timing",
        ];
        let both = [
            "--family",
            "blob-broadcast",
            "--family",
            "blob-churn-broadcast",
        ];
        // Uninterrupted reference (no checkpointing).
        let mut full = vec!["sweep", "--quiet"];
        full.extend_from_slice(&common);
        full.extend_from_slice(&both);
        full.extend_from_slice(&["--out", full_out.to_str().unwrap()]);
        assert_eq!(run(&args(&full)), 0);
        // "Interrupted": one family's rungs complete under the dir.
        let mut first = vec!["sweep", "--quiet"];
        first.extend_from_slice(&common);
        first.extend_from_slice(&[
            "--family",
            "blob-broadcast",
            "--checkpoint-dir",
            dir.to_str().unwrap(),
            "--out",
            "/dev/null",
        ]);
        assert_eq!(run(&args(&first)), 0);
        // Resume over the full ladder: checkpointed rungs are skipped.
        let mut resume = vec!["sweep"];
        resume.extend_from_slice(&common);
        resume.extend_from_slice(&both);
        resume.extend_from_slice(&[
            "--checkpoint-dir",
            dir.to_str().unwrap(),
            "--out",
            resumed_out.to_str().unwrap(),
        ]);
        let (code, output) = run_captured(&resume);
        assert_eq!(code, 0);
        assert!(
            output.contains("resuming from") && output.contains("checkpointed: passed"),
            "resume diagnostics missing: {output}"
        );
        assert_eq!(
            std::fs::read_to_string(&full_out).unwrap(),
            std::fs::read_to_string(&resumed_out).unwrap(),
            "resumed sweep report must match the uninterrupted one"
        );
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_file(&full_out);
        let _ = std::fs::remove_file(&resumed_out);
    }
}
