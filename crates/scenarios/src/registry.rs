//! The workload registry: named scenario families.
//!
//! A [`Family`] maps a seed to a concrete [`Scenario`] — fixed-parameter
//! families (the E1–E20 experiment index) ignore most of the seed's
//! entropy, randomized families use it to draw structures, placements and
//! algorithm parameters. [`Registry::random_suite`] derives a reproducible
//! batch of scenarios from a single master seed by cycling through the
//! randomized families; this is what `scenario-runner --seed N --count M`
//! executes.

use amoebot_grid::random::ALL_PLACEMENTS;
use rand::{Rng, RngCore};

use crate::experiments;
use crate::spec::{derive_rng, PlacementSpec, Scenario, StructureAlgorithm, StructureSpec};

/// A named scenario generator.
pub struct Family {
    /// Unique family name (stable; appears in reports).
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Whether the family draws its parameters from the seed. Only
    /// randomized families participate in [`Registry::random_suite`].
    pub randomized: bool,
    /// Largest structure size at which this family participates in
    /// `--sweep` size ladders (`0` = not sweepable). Ceilings are set per
    /// family because algorithm costs diverge by orders of magnitude: the
    /// global-circuit broadcast sweeps to 10^6 nodes in seconds while the
    /// DnC forest is capped where a single run stays within the CI budget.
    pub sweep_max_n: usize,
    build: Box<dyn Fn(u64) -> Scenario + Send + Sync>,
    /// Size-parameterized builder used by sweeps.
    sized: Option<Box<dyn Fn(u64, usize) -> Scenario + Send + Sync>>,
}

impl Family {
    /// Builds the family's scenario for `seed`.
    pub fn build(&self, seed: u64) -> Scenario {
        let mut sc = (self.build)(seed);
        // The registry owns family identity: a builder cannot mislabel its
        // scenarios.
        sc.family = self.name.to_string();
        sc
    }

    /// Builds the family's scenario at a target structure size, for size
    /// sweeps. `None` if the family is not sweepable.
    pub fn build_sized(&self, seed: u64, n: usize) -> Option<Scenario> {
        let sized = self.sized.as_ref()?;
        let mut sc = sized(seed, n);
        sc.family = self.name.to_string();
        Some(sc)
    }

    /// Whether the family participates in size sweeps.
    pub fn sweepable(&self) -> bool {
        self.sized.is_some()
    }
}

impl std::fmt::Debug for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Family")
            .field("name", &self.name)
            .field("randomized", &self.randomized)
            .finish()
    }
}

/// An ordered collection of [`Family`]s with name lookup.
#[derive(Debug, Default)]
pub struct Registry {
    families: Vec<Family>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers a family.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken (names are report identifiers).
    pub fn register<F>(
        &mut self,
        name: &'static str,
        description: &'static str,
        randomized: bool,
        build: F,
    ) where
        F: Fn(u64) -> Scenario + Send + Sync + 'static,
    {
        assert!(
            self.get(name).is_none(),
            "scenario family {name:?} registered twice"
        );
        self.families.push(Family {
            name,
            description,
            randomized,
            sweep_max_n: 0,
            build: Box::new(build),
            sized: None,
        });
    }

    /// Registers a family that additionally supports size-parameterized
    /// builds for `--sweep`, up to `sweep_max_n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken or `sweep_max_n == 0`.
    pub fn register_sweepable<F, S>(
        &mut self,
        name: &'static str,
        description: &'static str,
        randomized: bool,
        sweep_max_n: usize,
        build: F,
        sized: S,
    ) where
        F: Fn(u64) -> Scenario + Send + Sync + 'static,
        S: Fn(u64, usize) -> Scenario + Send + Sync + 'static,
    {
        assert!(sweep_max_n > 0, "sweepable family needs a size ceiling");
        assert!(
            self.get(name).is_none(),
            "scenario family {name:?} registered twice"
        );
        self.families.push(Family {
            name,
            description,
            randomized,
            sweep_max_n,
            build: Box::new(build),
            sized: Some(Box::new(sized)),
        });
    }

    /// All families, in registration order.
    pub fn families(&self) -> &[Family] {
        &self.families
    }

    /// Looks a family up by name.
    pub fn get(&self, name: &str) -> Option<&Family> {
        self.families.iter().find(|f| f.name == name)
    }

    /// Builds `count` scenarios from `master_seed`, cycling through the
    /// randomized families (or through `only` if non-empty). Deterministic:
    /// scenario `i` gets a seed derived from `(master_seed, i)` only.
    ///
    /// # Panics
    ///
    /// Panics if a name in `only` is unknown.
    pub fn random_suite(&self, master_seed: u64, count: usize, only: &[String]) -> Vec<Scenario> {
        let pool: Vec<&Family> = if only.is_empty() {
            self.families.iter().filter(|f| f.randomized).collect()
        } else {
            only.iter()
                .map(|name| {
                    self.get(name)
                        .unwrap_or_else(|| panic!("unknown scenario family {name:?}"))
                })
                .collect()
        };
        assert!(!pool.is_empty(), "no families to draw from");
        (0..count)
            .map(|i| {
                let mut rng = derive_rng(master_seed, i as u64);
                // Full-range draw: `gen_range(0..u64::MAX)` can never yield
                // `u64::MAX` (half-open range), silently excluding one seed.
                let scenario_seed: u64 = rng.next_u64();
                pool[i % pool.len()].build(scenario_seed)
            })
            .collect()
    }
}

/// Menu pick driven by a scenario seed and a purpose tag (keeps parameter
/// draws independent of the structure/placement randomness).
fn menu_pick<T: Copy>(seed: u64, purpose: u64, menu: &[T]) -> T {
    let mut rng = derive_rng(seed, purpose);
    menu[rng.gen_range(0..menu.len())]
}

/// The default registry: the E1–E20 experiment index (fixed parameters,
/// menu-selected by seed) plus the randomized structure families used by
/// `scenario-runner`.
pub fn default_registry() -> Registry {
    let mut r = Registry::new();

    // ---- Experiment index (fixed-parameter families). The seed selects
    // from the parameter menus that the `experiments` binary prints.
    r.register_sweepable(
        "e1-pasc-chain",
        "E1 (Lemma 4): PASC distances along a chain",
        false,
        1_000_000,
        |seed| experiments::e1_pasc_chain(menu_pick(seed, 100, &[16, 64, 256, 1024])),
        |_seed, n| experiments::e1_pasc_chain(n),
    );
    r.register(
        "e2-pasc-tree",
        "E2 (Corollary 5): PASC depths on a balanced binary tree",
        false,
        |seed| experiments::e2_pasc_tree(menu_pick(seed, 100, &[3, 5, 7, 9])),
    );
    r.register(
        "e3-pasc-prefix",
        "E3 (Corollary 6): weighted prefix sums on a chain",
        false,
        |seed| experiments::e3_pasc_prefix(1024, menu_pick(seed, 100, &[1, 4, 32, 256])),
    );
    r.register(
        "e4-root-prune",
        "E4/E5 (Lemmas 14, 20): root-and-prune on a random tree",
        false,
        |seed| {
            let (n, q) = menu_pick(seed, 100, &[(512, 8), (512, 64), (512, 512)]);
            experiments::e4_root_prune(n, q)
        },
    );
    r.register(
        "e6-election",
        "E6 (Lemma 21): the election primitive",
        false,
        |seed| {
            let (n, q) = menu_pick(seed, 100, &[(64, 4), (512, 32)]);
            experiments::e6_election(n, q)
        },
    );
    r.register(
        "e7-centroids",
        "E7 (Lemma 23): the Q-centroid primitive",
        false,
        |seed| {
            let (n, q) = menu_pick(seed, 100, &[(256, 4), (256, 64), (1024, 64)]);
            experiments::e7_centroids(n, q)
        },
    );
    r.register(
        "e8-augmentation",
        "E8 (Corollary 29): |A_Q| <= |Q| - 1",
        false,
        |seed| {
            let (n, q) = menu_pick(seed, 100, &[(256, 4), (256, 16), (1024, 32)]);
            experiments::e8_augmentation(n, q)
        },
    );
    r.register(
        "e9-decomposition",
        "E9 (Lemmas 30, 31): centroid decomposition",
        false,
        |seed| {
            let (n, q) = menu_pick(seed, 100, &[(128, 8), (256, 32), (512, 128)]);
            experiments::e9_decomposition(n, q)
        },
    );
    r.register(
        "e11-spt",
        "E11 (Theorem 39): SPT round counts vs number of destinations",
        false,
        |seed| experiments::e11_spt(512, menu_pick(seed, 100, &[1, 2, 8, 32, 128])),
    );
    r.register(
        "e12-spsp",
        "E12 (Theorem 39): SPSP is O(1) rounds",
        false,
        |seed| experiments::e12_spsp(menu_pick(seed, 100, &[128, 512, 2048])),
    );
    r.register(
        "e13-sssp",
        "E13 (Theorem 39): SSSP is O(log n) rounds",
        false,
        |seed| experiments::e13_sssp(menu_pick(seed, 100, &[128, 512, 2048])),
    );
    r.register(
        "e14-line",
        "E14 (Lemma 40): the line algorithm",
        false,
        |seed| {
            let (n, k) = menu_pick(seed, 100, &[(64, 1), (64, 8), (512, 8)]);
            experiments::e14_line(n, k)
        },
    );
    r.register(
        "e17-forest",
        "E17 (Theorem 56): divide & conquer forest",
        false,
        |seed| {
            let (n, k) = menu_pick(seed, 100, &[(256, 2), (256, 8), (1024, 8)]);
            experiments::e17_forest(n, k)
        },
    );
    r.register(
        "e18a-wavefront",
        "E18a: circuit-less BFS wavefront baseline",
        false,
        |seed| {
            let (n, k) = menu_pick(seed, 100, &[(256, 2), (1024, 8)]);
            experiments::e18a_wavefront(n, k)
        },
    );
    r.register(
        "e18b-sequential",
        "E18b: sequential merging baseline",
        false,
        |seed| {
            let (n, k) = menu_pick(seed, 100, &[(256, 2), (256, 8)]);
            experiments::e18b_sequential(n, k)
        },
    );
    r.register(
        "e20-leader",
        "E20 (Theorem 2 substitute): randomized leader election",
        false,
        |seed| experiments::e20_leader(menu_pick(seed, 100, &[16, 64, 256]), seed),
    );

    // ---- Randomized families (the batch-runner workhorses). Every one
    // cross-validates a distributed forest against centralized BFS on a
    // randomly generated structure.
    r.register_sweepable(
        "random-blob-forest",
        "DnC forest on a random hole-free blob, random multi-source placement",
        true,
        // Region-scoped relabeling makes reconfig-heavy rounds
        // O(affected circuits): the 10k rung dropped from ~15 s to ~3 s
        // and 100k fits the weekly sweep budget. The per-PR perf gate
        // still clips at `--max-nodes 10000`, so this ceiling only
        // extends the weekly ladder.
        100_000,
        |seed| {
            let mut p = derive_rng(seed, 90);
            let n = p.gen_range(24..=160usize);
            let k = p.gen_range(2..=6usize).min(n);
            let strategy = *crate::spec::pick(&mut p, &ALL_PLACEMENTS);
            Scenario::structure(
                "random-blob-forest",
                seed,
                StructureSpec::RandomBlob { n },
                PlacementSpec::Random { k, strategy },
                PlacementSpec::All,
                StructureAlgorithm::Forest,
            )
        },
        |seed, n| {
            Scenario::structure(
                "random-blob-forest",
                seed,
                StructureSpec::RandomBlob { n },
                PlacementSpec::Random {
                    k: 4.min(n),
                    strategy: amoebot_grid::Placement::Uniform,
                },
                PlacementSpec::All,
                StructureAlgorithm::Forest,
            )
        },
    );
    r.register(
        "random-mix-forest",
        "DnC forest on a random parallelogram/hexagon/triangle/line mix",
        true,
        |seed| {
            let mut p = derive_rng(seed, 90);
            let pieces = p.gen_range(2..=5usize);
            let scale = p.gen_range(3..=6usize);
            let k = p.gen_range(2..=5usize);
            let strategy = *crate::spec::pick(&mut p, &ALL_PLACEMENTS);
            Scenario::structure(
                "random-mix-forest",
                seed,
                StructureSpec::RandomMix { pieces, scale },
                PlacementSpec::Random { k, strategy },
                PlacementSpec::All,
                StructureAlgorithm::Forest,
            )
        },
    );
    r.register(
        "random-snake-forest",
        "DnC forest on a random thin corridor (worst case for O(diam) baselines)",
        true,
        |seed| {
            let mut p = derive_rng(seed, 90);
            let segments = p.gen_range(3..=10usize);
            let seg_len = p.gen_range(2..=6usize);
            let k = p.gen_range(2..=4usize);
            Scenario::structure(
                "random-snake-forest",
                seed,
                StructureSpec::RandomSnake { segments, seg_len },
                PlacementSpec::Random {
                    k,
                    strategy: amoebot_grid::Placement::Uniform,
                },
                PlacementSpec::All,
                StructureAlgorithm::Forest,
            )
        },
    );
    r.register_sweepable(
        "random-blob-spt",
        "SPT on a random blob with random destination subset",
        true,
        1_000_000,
        |seed| {
            let mut p = derive_rng(seed, 90);
            let n = p.gen_range(24..=200usize);
            let l = p.gen_range(1..=12usize);
            let strategy = *crate::spec::pick(&mut p, &ALL_PLACEMENTS);
            Scenario::structure(
                "random-blob-spt",
                seed,
                StructureSpec::RandomBlob { n },
                PlacementSpec::Random {
                    k: 1,
                    strategy: amoebot_grid::Placement::Uniform,
                },
                PlacementSpec::Random { k: l, strategy },
                StructureAlgorithm::Spt,
            )
        },
        |seed, n| {
            Scenario::structure(
                "random-blob-spt",
                seed,
                StructureSpec::RandomBlob { n },
                PlacementSpec::Random {
                    k: 1,
                    strategy: amoebot_grid::Placement::Uniform,
                },
                PlacementSpec::Random {
                    k: 8.min(n),
                    strategy: amoebot_grid::Placement::Uniform,
                },
                StructureAlgorithm::Spt,
            )
        },
    );
    r.register(
        "random-mix-sssp",
        "SSSP on a random shape mix",
        true,
        |seed| {
            let mut p = derive_rng(seed, 90);
            let pieces = p.gen_range(2..=4usize);
            let scale = p.gen_range(3..=6usize);
            Scenario::structure(
                "random-mix-sssp",
                seed,
                StructureSpec::RandomMix { pieces, scale },
                PlacementSpec::Random {
                    k: 1,
                    strategy: amoebot_grid::Placement::Uniform,
                },
                PlacementSpec::All,
                StructureAlgorithm::Spt,
            )
        },
    );
    r.register_sweepable(
        "random-line-forest",
        "line algorithm with random multi-source placement",
        true,
        // ~2 s at 10^5 but ~160 s at 10^6 (superlinear merge glue): the
        // 1M rung belongs to the blob-broadcast/SPT families, which stay
        // well inside the per-rung minute.
        100_000,
        |seed| {
            let mut p = derive_rng(seed, 90);
            let n = p.gen_range(16..=256usize);
            let k = p.gen_range(1..=8usize).min(n);
            Scenario::structure(
                "random-line-forest",
                seed,
                StructureSpec::Line { n },
                PlacementSpec::Random {
                    k,
                    strategy: amoebot_grid::Placement::Uniform,
                },
                PlacementSpec::All,
                StructureAlgorithm::LineForest,
            )
        },
        |seed, n| {
            Scenario::structure(
                "random-line-forest",
                seed,
                StructureSpec::Line { n },
                PlacementSpec::Random {
                    k: 8.min(n),
                    strategy: amoebot_grid::Placement::Uniform,
                },
                PlacementSpec::All,
                StructureAlgorithm::LineForest,
            )
        },
    );
    r.register(
        "random-blob-baselines",
        "wavefront + sequential baselines on random blobs (round-count foils)",
        true,
        |seed| {
            let mut p = derive_rng(seed, 90);
            let n = p.gen_range(24..=120usize);
            let k = p.gen_range(2..=5usize).min(n);
            let algorithm = if p.gen_bool(0.5) {
                StructureAlgorithm::Wavefront
            } else {
                StructureAlgorithm::SequentialForest
            };
            Scenario::structure(
                "random-blob-baselines",
                seed,
                StructureSpec::RandomBlob { n },
                PlacementSpec::Random {
                    k,
                    strategy: amoebot_grid::Placement::Uniform,
                },
                PlacementSpec::All,
                algorithm,
            )
        },
    );
    r.register_sweepable(
        "blob-broadcast",
        "global-circuit broadcast throughput on a random blob (pure engine sweep)",
        true,
        1_000_000,
        |seed| {
            let mut p = derive_rng(seed, 90);
            let n = p.gen_range(64..=256usize);
            Scenario::micro(
                "blob-broadcast",
                seed,
                crate::spec::MicroWorkload::BlobBroadcast { n, rounds: 8 },
            )
        },
        |seed, n| {
            Scenario::micro(
                "blob-broadcast",
                seed,
                crate::spec::MicroWorkload::BlobBroadcast { n, rounds: 8 },
            )
        },
    );
    r.register_sweepable(
        "blob-churn-broadcast",
        "runtime churn on a blob under global-circuit broadcast, rebuild-oracle-checked per event",
        true,
        // Each event pays one rebuild-oracle pass (O(n)), so the rung
        // cost is ~events × the blob-broadcast rung; 10^5 keeps the
        // weekly sweep comfortably inside its budget.
        100_000,
        |seed| {
            let mut p = derive_rng(seed, 90);
            let n = p.gen_range(24..=128usize);
            let events = p.gen_range(4..=10usize);
            let per_event = p.gen_range(1..=(n / 8).max(1));
            Scenario::micro(
                "blob-churn-broadcast",
                seed,
                crate::spec::MicroWorkload::BlobChurnBroadcast {
                    n,
                    events,
                    per_event,
                },
            )
        },
        |seed, n| {
            Scenario::micro(
                "blob-churn-broadcast",
                seed,
                crate::spec::MicroWorkload::BlobChurnBroadcast {
                    n,
                    events: 8,
                    // 1% churn per event at sweep sizes — the cost model
                    // rung the churn_ticks bench mirrors.
                    per_event: (n / 100).max(1),
                },
            )
        },
    );
    r.register_sweepable(
        "line-churn-spt",
        "grow/shrink churn on a line with SPT restarts + BFS cross-validation per event",
        true,
        // Each event restarts the SPT (~the random-blob-spt rung cost)
        // and validates against BFS; 6 restarts at 10^5 stay well under
        // the weekly per-rung minute.
        100_000,
        |seed| {
            let mut p = derive_rng(seed, 90);
            let n = p.gen_range(16..=96usize);
            let events = p.gen_range(3..=8usize);
            let per_event = p.gen_range(1..=4usize);
            Scenario::micro(
                "line-churn-spt",
                seed,
                crate::spec::MicroWorkload::LineChurnSpt {
                    n,
                    events,
                    per_event,
                },
            )
        },
        |seed, n| {
            Scenario::micro(
                "line-churn-spt",
                seed,
                crate::spec::MicroWorkload::LineChurnSpt {
                    n,
                    events: 6,
                    per_event: (n / 100).max(1),
                },
            )
        },
    );
    // ---- Adversary families (DESIGN.md §1h): seeded fault schedules
    // against a live broadcast, rebuild-oracle-checked per event, with a
    // self-stabilization re-convergence bound after the burst.
    r.register_sweepable(
        "fault-lossy-broadcast",
        "beep drop / spurious-inject adversary on the blob flood relay, oracle-checked per event",
        true,
        // The flood relay beeps every informed amoebot's pin set each
        // round, and recovery runs up to the eccentricity of the blob:
        // ~O(n^1.5) work per rung keeps the ceiling at 10^4.
        10_000,
        |seed| {
            let mut p = derive_rng(seed, 90);
            let n = p.gen_range(16..=80usize);
            let events = p.gen_range(3..=8usize);
            let per_event = p.gen_range(1..=(n / 10).max(1));
            Scenario::micro(
                "fault-lossy-broadcast",
                seed,
                crate::spec::MicroWorkload::FaultyBlobFlood {
                    n,
                    events,
                    per_event,
                },
            )
        },
        |seed, n| {
            Scenario::micro(
                "fault-lossy-broadcast",
                seed,
                crate::spec::MicroWorkload::FaultyBlobFlood {
                    n,
                    events: 6,
                    per_event: (n / 100).max(1),
                },
            )
        },
    );
    r.register_sweepable(
        "fault-stuckpin-broadcast",
        "stuck-at pin adversary on a line's global circuit, released + repaired after the burst",
        true,
        // Global-circuit ticks are cheap; each event pays one rebuild
        // oracle (O(n)) like the churn family, so 10^5 fits the budget.
        100_000,
        |seed| {
            let mut p = derive_rng(seed, 90);
            let n = p.gen_range(12..=96usize);
            let events = p.gen_range(3..=8usize);
            let per_event = p.gen_range(1..=4usize);
            Scenario::micro(
                "fault-stuckpin-broadcast",
                seed,
                crate::spec::MicroWorkload::StuckLineBroadcast {
                    n,
                    events,
                    per_event,
                },
            )
        },
        |seed, n| {
            Scenario::micro(
                "fault-stuckpin-broadcast",
                seed,
                crate::spec::MicroWorkload::StuckLineBroadcast {
                    n,
                    events: 6,
                    per_event: (n / 100).max(1),
                },
            )
        },
    );
    r.register_sweepable(
        "fault-unfair-broadcast",
        "non-fair scheduling adversary (starve / alternate / silence) on the blob flood relay",
        true,
        10_000,
        |seed| {
            let mut p = derive_rng(seed, 90);
            let n = p.gen_range(16..=80usize);
            let events = p.gen_range(3..=8usize);
            let per_event = p.gen_range(1..=(n / 10).max(1));
            Scenario::micro(
                "fault-unfair-broadcast",
                seed,
                crate::spec::MicroWorkload::UnfairBlobFlood {
                    n,
                    events,
                    per_event,
                },
            )
        },
        |seed, n| {
            Scenario::micro(
                "fault-unfair-broadcast",
                seed,
                crate::spec::MicroWorkload::UnfairBlobFlood {
                    n,
                    events: 6,
                    per_event: (n / 100).max(1),
                },
            )
        },
    );
    r.register_sweepable(
        "fault-crashrecover-broadcast",
        "crash-recovery adversary on the blob global circuit (wiped state, rejoin, re-inform)",
        true,
        100_000,
        |seed| {
            let mut p = derive_rng(seed, 90);
            let n = p.gen_range(16..=96usize);
            let events = p.gen_range(3..=8usize);
            let per_event = p.gen_range(1..=(n / 8).max(1));
            Scenario::micro(
                "fault-crashrecover-broadcast",
                seed,
                crate::spec::MicroWorkload::CrashRecoverBroadcast {
                    n,
                    events,
                    per_event,
                },
            )
        },
        |seed, n| {
            Scenario::micro(
                "fault-crashrecover-broadcast",
                seed,
                crate::spec::MicroWorkload::CrashRecoverBroadcast {
                    n,
                    events: 6,
                    per_event: (n / 100).max(1),
                },
            )
        },
    );
    r.register(
        "adversary-selftest-fail",
        "deliberately-broken repair sweep proving the self-stabilization checker trips (never sampled)",
        false,
        |seed| {
            Scenario::micro(
                "adversary-selftest-fail",
                seed,
                crate::spec::MicroWorkload::AdversarySelfTestFail,
            )
        },
    );
    r.register(
        "selftest-fail",
        "always-failing scenario proving the runner's non-zero exit path (never sampled)",
        false,
        |seed| {
            Scenario::micro(
                "selftest-fail",
                seed,
                crate::spec::MicroWorkload::SelfTestFail,
            )
        },
    );
    r.register(
        "random-zigzag-sssp",
        "SSSP on zigzag corridors (deterministic shape, random source)",
        true,
        |seed| {
            let mut p = derive_rng(seed, 90);
            let segments = p.gen_range(3..=8usize);
            let len = p.gen_range(2..=6usize);
            Scenario::structure(
                "random-zigzag-sssp",
                seed,
                StructureSpec::Zigzag { segments, len },
                PlacementSpec::Random {
                    k: 1,
                    strategy: amoebot_grid::Placement::Uniform,
                },
                PlacementSpec::All,
                StructureAlgorithm::Spt,
            )
        },
    );

    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::run_scenario;

    #[test]
    fn registry_has_experiments_and_random_families() {
        let r = default_registry();
        assert!(r.families().len() >= 20);
        assert!(r.get("e17-forest").is_some());
        assert!(r.get("random-blob-forest").is_some());
        let randomized = r.families().iter().filter(|f| f.randomized).count();
        assert!(randomized >= 6);
    }

    #[test]
    fn family_identity_is_enforced() {
        let r = default_registry();
        for f in r.families() {
            let sc = f.build(5);
            assert_eq!(sc.family, f.name);
        }
    }

    #[test]
    fn random_suite_is_deterministic_and_covers_families() {
        let r = default_registry();
        let a = r.random_suite(42, 16, &[]);
        let b = r.random_suite(42, 16, &[]);
        assert_eq!(a, b);
        let distinct: std::collections::HashSet<&str> =
            a.iter().map(|s| s.family.as_str()).collect();
        assert!(distinct.len() >= 6, "suite covers many families");
        // A different master seed gives a different suite.
        let c = r.random_suite(43, 16, &[]);
        assert_ne!(a, c);
    }

    #[test]
    fn random_suite_scenarios_all_pass() {
        let r = default_registry();
        for sc in r.random_suite(7, 8, &[]) {
            let out = run_scenario(&sc);
            assert!(out.pass, "{} failed: {:?}", sc.name, out.checks);
        }
    }

    #[test]
    fn only_filter_restricts_families() {
        let r = default_registry();
        let suite = r.random_suite(1, 6, &["random-blob-spt".to_string()]);
        assert!(suite.iter().all(|s| s.family == "random-blob-spt"));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_names_panic() {
        let mut r = Registry::new();
        r.register("x", "", false, |_| crate::experiments::e1_pasc_chain(4));
        r.register("x", "", false, |_| crate::experiments::e1_pasc_chain(4));
    }
}
