//! Adversary workloads: fault injection, non-fair scheduling and
//! self-stabilization checks (DESIGN.md §1h).
//!
//! Each workload runs an informed-set broadcast on a live structure
//! while a seeded [`FaultPlan`] attacks it, then checks the
//! **self-stabilization contract**: once the burst ends (and, for
//! hardware faults, a repair sweep re-asserts the configuration), the
//! broadcast must re-converge to *every* live amoebot within the stated
//! bound — `n + 2` relay rounds for the hop-by-hop flood, `O(1)` ticks
//! for the global circuit. Along the way the incrementally mutated
//! world is cross-validated against the from-scratch rebuild oracle
//! after every event, exactly like the churn families.
//!
//! Every failure detail goes through [`fault_fail_line`], which carries
//! the fault-plan seed, the scenario seed and the event index — the full
//! reproduction key, mirroring the churn FAIL-line contract.

use amoebot_dynamics::{verify_against_rebuild, DynamicWorld, FaultFamily, FaultPlan, StagedFault};
use amoebot_grid::{shapes, AmoebotStructure};
use amoebot_telemetry::Recorder;
use rand::RngCore;

use crate::run::{emit_topology, CheckResult, ScenarioResult};
use crate::spec::derive_rng;

/// The four registered adversary shapes: what structure the broadcast
/// runs on, how it relays, and which fault families the seed may draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AdversaryKind {
    /// Beep-level faults (drop / spurious-inject) against the blob flood.
    LossyFlood,
    /// Stuck-at pin faults against the line's global circuit.
    StuckLine,
    /// Non-fair scheduling against the blob flood.
    UnfairFlood,
    /// Crash-recovery against the blob's global circuit.
    CrashGlobal,
}

impl AdversaryKind {
    fn menu(self) -> &'static [FaultFamily] {
        match self {
            AdversaryKind::LossyFlood => &[FaultFamily::LossyBeeps, FaultFamily::SpuriousBeeps],
            AdversaryKind::StuckLine => &[FaultFamily::StuckPins],
            AdversaryKind::UnfairFlood => &[
                FaultFamily::StarveRegion,
                FaultFamily::AlternateHalves,
                FaultFamily::BurstsThenSilence,
            ],
            AdversaryKind::CrashGlobal => &[FaultFamily::CrashRecover],
        }
    }

    /// Flood kinds relay hop-by-hop over singleton pin sets; the others
    /// broadcast over the global circuit.
    fn flood(self) -> bool {
        matches!(self, AdversaryKind::LossyFlood | AdversaryKind::UnfairFlood)
    }
}

/// The FAIL-line contract for adversary checks: fault-plan seed,
/// scenario seed, event index and family label in one line — everything
/// needed to replay the failing schedule from a log alone.
pub fn fault_fail_line(scenario_seed: u64, plan: &FaultPlan, event: usize, msg: &str) -> String {
    format!(
        "fault schedule seed={} scenario seed={scenario_seed} event=#{event} ({}): {msg}",
        plan.seed,
        plan.family.label()
    )
}

/// One flood relay round: every *active* informed amoebot beeps on all
/// of its (singleton) partition sets, the world ticks under the staged
/// beep faults, and every active amoebot that heard anything becomes
/// informed. Starved amoebots neither relay nor absorb — the scheduler
/// withheld their activation.
fn flood_round<R: Recorder>(
    dw: &mut DynamicWorld,
    informed: &mut [bool],
    staged: &StagedFault,
    rec: &mut R,
) {
    let live = dw.editor().live_ids().to_vec();
    for &v in &live {
        if informed[v as usize] && staged.is_active(v) {
            let cap = dw.world().pset_capacity(v as usize);
            for pset in 0..cap {
                dw.world_mut().beep(v as usize, pset as u16);
            }
        }
    }
    dw.world_mut().tick_faulted(&staged.ticks, rec);
    for &v in &live {
        if !informed[v as usize] && staged.is_active(v) {
            let cap = dw.world().pset_capacity(v as usize);
            if (0..cap).any(|pset| dw.world().received(v as usize, pset as u16)) {
                informed[v as usize] = true;
            }
        }
    }
}

/// One global-circuit round: the origin beeps (if the scheduler lets
/// it), the world ticks under the staged faults, and active listeners
/// that heard the beep become informed.
fn global_round<R: Recorder>(
    dw: &mut DynamicWorld,
    origin: usize,
    informed: &mut [bool],
    staged: &StagedFault,
    rec: &mut R,
) {
    if staged.is_active(origin as u32) {
        dw.world_mut().beep(origin, 0);
    }
    dw.world_mut().tick_faulted(&staged.ticks, rec);
    for &v in dw.editor().live_ids() {
        if !informed[v as usize] && staged.is_active(v) && dw.world().received(v as usize, 0) {
            informed[v as usize] = true;
        }
    }
}

/// Runs one adversary workload end to end: burst (one staged fault
/// event + one broadcast round each, rebuild-oracle-checked), repair,
/// recovery (fault-free rounds up to the bound), final oracle pass.
///
/// `sabotage` is the deliberately-broken variant behind
/// `adversary-selftest-fail`: the repair sweep is skipped and a stuck
/// pin is silently re-armed after the burst, so the re-convergence
/// checker must trip.
#[allow(clippy::too_many_arguments)] // one call site; a params struct would only relabel the same eight knobs
pub(crate) fn run_adversary<R: Recorder>(
    r: &mut ScenarioResult,
    kind: AdversaryKind,
    n: usize,
    events: usize,
    per_event: usize,
    seed: u64,
    sabotage: bool,
    rec: &mut R,
) {
    let (structure, c) = if kind == AdversaryKind::StuckLine {
        (
            AmoebotStructure::new(shapes::line(n)).expect("lines are connected"),
            1,
        )
    } else {
        (
            AmoebotStructure::new(shapes::random_blob(n, &mut derive_rng(seed, 0)))
                .expect("blob generator produces connected sets"),
            2,
        )
    };
    let mut dw = DynamicWorld::new(&structure, c);
    for v in 0..n {
        if kind.flood() {
            dw.world_mut().singleton_pin_config(v);
        } else {
            dw.world_mut().global_pin_config(v);
        }
    }
    emit_topology(dw.world(), rec);

    let family = *crate::spec::pick(&mut derive_rng(seed, 5), kind.menu());
    // An explicit fault-plan seed, surfaced in every failure detail: with
    // the event index it reproduces the failing schedule from the log
    // alone (same policy as the churn schedule seed).
    let plan_seed = derive_rng(seed, 6).next_u64();
    let plan = FaultPlan::new(plan_seed, family, events, per_event);
    let last_event = events.saturating_sub(1);

    // The informed-set broadcast state. Node 0 is the source; its
    // informed bit is protocol *input*, re-asserted even across a crash.
    let origin = 0usize;
    let mut informed = vec![false; n];
    informed[origin] = true;

    // ---- Burst: one staged fault event + one broadcast round each.
    let mut oracle_fail: Option<String> = None;
    for e in 0..events {
        let staged = plan.stage_with(&mut dw, e, rec);
        for v in &staged.wiped {
            // Crash-recovery: the rejoin protocol restores the circuit
            // configuration, but the algorithm state (the informed bit)
            // is gone.
            informed[v.index()] = false;
            dw.world_mut().global_pin_config(v.index());
        }
        informed[origin] = true;
        if kind.flood() {
            flood_round(&mut dw, &mut informed, &staged, rec);
        } else {
            global_round(&mut dw, origin, &mut informed, &staged, rec);
        }
        // Cross-validation after *every* event: the fault-mutated world
        // vs a from-scratch rebuild.
        if oracle_fail.is_none() {
            if let Err(msg) = verify_against_rebuild(&dw) {
                oracle_fail = Some(fault_fail_line(seed, &plan, e, &msg));
            }
        }
    }

    // ---- Repair: hardware faults leave broken pin values behind even
    // after release; the self-stabilizing configuration sweep re-asserts
    // the intended circuit. (Flood configs were never overwritten; crash
    // reboots already re-applied theirs.)
    if sabotage {
        // The deliberately-broken variant: everyone crashes (informed
        // bits lost), the repair sweep is skipped, and one pin of the
        // middle amoebot is silently frozen onto a cutting partition
        // set — recovery has to re-broadcast through the cut, so the
        // checker below must catch it.
        informed.fill(false);
        informed[origin] = true;
        let mid = n / 2;
        let port = (0..6)
            .find(|&p| {
                dw.world()
                    .topology()
                    .peer(mid, p)
                    .is_some_and(|(u, _)| u > mid)
            })
            .expect("the middle of a line has an up-neighbor");
        dw.world_mut().stick_pin(mid, port, 0, 1);
    } else if kind == AdversaryKind::StuckLine {
        for v in 0..n {
            dw.world_mut().global_pin_config(v);
        }
    }

    // ---- Recovery: fault-free rounds until everyone is informed, up to
    // the stated self-stabilization bound.
    let bound = if kind.flood() { n + 2 } else { 3 };
    let calm = StagedFault::default();
    let mut recovery_rounds = 0usize;
    let all_informed = |dw: &DynamicWorld, informed: &[bool]| {
        dw.editor().live_ids().iter().all(|&v| informed[v as usize])
    };
    while recovery_rounds < bound && !all_informed(&dw, &informed) {
        if kind.flood() {
            flood_round(&mut dw, &mut informed, &calm, rec);
        } else {
            global_round(&mut dw, origin, &mut informed, &calm, rec);
        }
        recovery_rounds += 1;
    }
    let uninformed = dw
        .editor()
        .live_ids()
        .iter()
        .filter(|&&v| !informed[v as usize])
        .count();
    let converge_fail: Option<String> = (uninformed > 0).then(|| {
        fault_fail_line(
            seed,
            &plan,
            last_event,
            &format!(
                "{uninformed} of {} amoebots still uninformed after \
                 {recovery_rounds} recovery rounds (bound {bound})",
                dw.len()
            ),
        )
    });
    // The recovered state itself must still match a from-scratch rebuild.
    let final_oracle_fail: Option<String> = verify_against_rebuild(&dw)
        .err()
        .map(|msg| fault_fail_line(seed, &plan, last_event, &format!("after recovery: {msg}")));

    r.n = n;
    r.k = events;
    r.l = dw.len();
    r.rounds = dw.world().rounds();
    r.beeps = dw.world().beeps_sent();
    r.metrics.merge(dw.world().metrics());
    let oracle_ok = oracle_fail.is_none();
    let converge_ok = converge_fail.is_none();
    let final_ok = final_oracle_fail.is_none();
    r.checks = vec![
        CheckResult::from_bool("fault-oracle-equivalent", oracle_ok, || {
            oracle_fail.unwrap_or_default()
        }),
        CheckResult::from_bool("fault-reconvergence-bound", converge_ok, || {
            converge_fail.unwrap_or_default()
        }),
        CheckResult::from_bool("fault-recovered-oracle", final_ok, || {
            final_oracle_fail.unwrap_or_default()
        }),
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The FAIL-line format is a contract (logs are grepped for it):
    /// fault-plan seed, scenario seed, event index, family label, detail.
    #[test]
    fn fail_lines_carry_the_full_reproduction_key() {
        let plan = FaultPlan::new(0xDEAD, FaultFamily::StuckPins, 6, 2);
        let line = fault_fail_line(42, &plan, 3, "1 amoebot uninformed");
        assert_eq!(
            line,
            "fault schedule seed=57005 scenario seed=42 event=#3 (stuckpin): 1 amoebot uninformed"
        );
        for needle in ["seed=57005", "seed=42", "event=#3", "(stuckpin)"] {
            assert!(line.contains(needle), "FAIL line lost {needle:?}");
        }
    }
}
