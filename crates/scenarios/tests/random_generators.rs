//! Property tests for the random structure generators (ISSUE 1 satellite):
//! every generated structure is connected and hole-free, and the
//! distributed `shortest_path_forest` agrees with centralized
//! `multi_source_bfs` distances under `validate_forest`, for a sweep of
//! seeds across all three generator families and all placement strategies.

use amoebot_grid::random::{
    random_placement, random_shape_mix, random_snake, random_structure, ALL_PLACEMENTS,
};
use amoebot_grid::{multi_source_bfs, validate_forest, AmoebotStructure, NodeId};
use amoebot_scenarios::spec::derive_rng;
use amoebot_spf::forest::shortest_path_forest;
use proptest::prelude::*;

fn forest_agrees_with_bfs(structure: &AmoebotStructure, sources: &[NodeId]) {
    let dests: Vec<NodeId> = structure.nodes().collect();
    let out = shortest_path_forest(structure, sources, &dests);
    // validate_forest property 5 compares every tree depth against
    // multi-source BFS — the centralized cross-check.
    let violations = validate_forest(structure, sources, &dests, &out.parents);
    assert!(violations.is_empty(), "violations: {violations:?}");
    // Belt and braces: recompute depths explicitly.
    let (dist, _) = multi_source_bfs(structure, sources);
    for v in structure.nodes() {
        let mut depth = 0u32;
        let mut cur = v;
        while let Some(p) = out.parents[cur.index()] {
            depth += 1;
            cur = p;
        }
        assert_eq!(Some(depth), dist[v.index()], "depth mismatch at {v}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Blobs: exact size, connected (constructor), hole-free.
    #[test]
    fn blobs_are_connected_and_hole_free(n in 1usize..150, seed in 0u64..10_000) {
        let coords = random_structure(n, &mut derive_rng(seed, 1));
        prop_assert_eq!(coords.len(), n);
        let s = AmoebotStructure::new(coords).unwrap();
        prop_assert!(s.is_hole_free());
    }

    /// Shape mixes: connected, hole-free.
    #[test]
    fn mixes_are_connected_and_hole_free(pieces in 1usize..6, scale in 2usize..7, seed in 0u64..10_000) {
        let coords = random_shape_mix(pieces, scale, &mut derive_rng(seed, 2));
        let s = AmoebotStructure::new(coords).unwrap();
        prop_assert!(s.is_hole_free());
    }

    /// Snakes: connected, hole-free.
    #[test]
    fn snakes_are_connected_and_hole_free(segments in 1usize..12, seg_len in 1usize..7, seed in 0u64..10_000) {
        let coords = random_snake(segments, seg_len, &mut derive_rng(seed, 3));
        let s = AmoebotStructure::new(coords).unwrap();
        prop_assert!(s.is_hole_free());
    }

    /// The paper's forest algorithm agrees with centralized BFS on random
    /// blobs with every placement strategy.
    #[test]
    fn forest_matches_bfs_on_blobs(n in 12usize..70, k in 2usize..5, seed in 0u64..5_000) {
        let s = AmoebotStructure::new(random_structure(n, &mut derive_rng(seed, 4))).unwrap();
        let strategy = ALL_PLACEMENTS[(seed % 3) as usize];
        let sources = random_placement(&s, k.min(s.len()), strategy, &mut derive_rng(seed, 5));
        forest_agrees_with_bfs(&s, &sources);
    }

    /// Same agreement on shape mixes.
    #[test]
    fn forest_matches_bfs_on_mixes(pieces in 2usize..5, scale in 3usize..6, seed in 0u64..5_000) {
        let s = AmoebotStructure::new(
            random_shape_mix(pieces, scale, &mut derive_rng(seed, 6))
        ).unwrap();
        let k = 2 + (seed % 3) as usize;
        let sources = random_placement(
            &s,
            k.min(s.len()),
            ALL_PLACEMENTS[(seed % 3) as usize],
            &mut derive_rng(seed, 7),
        );
        forest_agrees_with_bfs(&s, &sources);
    }

    /// Same agreement on snakes (thin corridors, many portals).
    #[test]
    fn forest_matches_bfs_on_snakes(segments in 2usize..8, seg_len in 2usize..5, seed in 0u64..5_000) {
        let s = AmoebotStructure::new(
            random_snake(segments, seg_len, &mut derive_rng(seed, 8))
        ).unwrap();
        let k = 2 + (seed % 2) as usize;
        let sources = random_placement(
            &s,
            k.min(s.len()),
            amoebot_grid::Placement::Uniform,
            &mut derive_rng(seed, 9),
        );
        forest_agrees_with_bfs(&s, &sources);
    }
}
