//! Determinism guarantees (ISSUE 1 satellite): the same master seed
//! produces **byte-identical** canonical JSON reports across independent
//! runs, regardless of worker thread count. The whole pipeline is driven
//! by seeded `StdRng` streams — no ambient randomness, no wall-clock in
//! the canonical report.

use amoebot_scenarios::batch::{run_batch, Threads};
use amoebot_scenarios::registry::default_registry;
use amoebot_scenarios::report::BatchReport;

fn canonical_report(master_seed: u64, count: usize, threads: usize) -> String {
    let registry = default_registry();
    let scenarios = registry.random_suite(master_seed, count, &[]);
    let results = run_batch(&scenarios, Threads::Count(threads));
    BatchReport {
        master_seed,
        threads,
        results,
    }
    .canonical_json()
}

#[test]
fn same_seed_same_bytes_across_runs() {
    let a = canonical_report(42, 12, 4);
    let b = canonical_report(42, 12, 4);
    assert_eq!(a, b, "two runs with the same seed must render identically");
}

#[test]
fn thread_count_does_not_change_canonical_bytes() {
    // Worker count is execution provenance (only rendered in timed
    // reports); the canonical bytes must not depend on it at all.
    let serial = canonical_report(7, 10, 1);
    let parallel = canonical_report(7, 10, 8);
    assert_eq!(
        serial, parallel,
        "canonical reports must not depend on the worker count"
    );
}

#[test]
fn different_seeds_differ() {
    let a = canonical_report(1, 6, 2);
    let b = canonical_report(2, 6, 2);
    assert_ne!(a, b);
}

#[test]
fn canonical_report_has_no_timing_fields() {
    let report = canonical_report(42, 4, 2);
    assert!(!report.contains("wall_micros"));
    assert!(report.contains("\"rounds\""));
    assert!(report.contains("\"pass\""));
}
