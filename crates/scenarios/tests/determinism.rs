//! Determinism guarantees (ISSUE 1 satellite): the same master seed
//! produces **byte-identical** canonical JSON reports across independent
//! runs, regardless of worker thread count. The whole pipeline is driven
//! by seeded `StdRng` streams — no ambient randomness, no wall-clock in
//! the canonical report.

use amoebot_scenarios::batch::{run_batch, Threads};
use amoebot_scenarios::registry::default_registry;
use amoebot_scenarios::report::BatchReport;

fn canonical_report(master_seed: u64, count: usize, threads: usize) -> String {
    let registry = default_registry();
    let scenarios = registry.random_suite(master_seed, count, &[]);
    let results = run_batch(&scenarios, Threads::Count(threads));
    BatchReport {
        master_seed,
        threads,
        results,
    }
    .canonical_json()
}

#[test]
fn same_seed_same_bytes_across_runs() {
    let a = canonical_report(42, 12, 4);
    let b = canonical_report(42, 12, 4);
    assert_eq!(a, b, "two runs with the same seed must render identically");
}

#[test]
fn thread_count_does_not_change_canonical_bytes() {
    // Worker count is execution provenance (only rendered in timed
    // reports); the canonical bytes must not depend on it at all.
    let serial = canonical_report(7, 10, 1);
    let parallel = canonical_report(7, 10, 8);
    assert_eq!(
        serial, parallel,
        "canonical reports must not depend on the worker count"
    );
}

#[test]
fn different_seeds_differ() {
    let a = canonical_report(1, 6, 2);
    let b = canonical_report(2, 6, 2);
    assert_ne!(a, b);
}

#[test]
fn canonical_report_has_no_timing_fields() {
    let report = canonical_report(42, 4, 2);
    assert!(!report.contains("wall_micros"));
    assert!(report.contains("\"rounds\""));
    assert!(report.contains("\"pass\""));
}

mod sweep_determinism {
    //! ISSUE 3 satellite: `BENCH_sweep.json` must carry the same
    //! byte-determinism guarantee as batch reports — identical canonical
    //! bytes for `--threads 1` vs `--threads 8`.

    use amoebot_scenarios::batch::Threads;
    use amoebot_scenarios::registry::default_registry;
    use amoebot_scenarios::sweep::{run_sweep, sweep_suite, SweepReport};

    fn canonical_sweep(master_seed: u64, sizes: &[usize], threads: usize) -> String {
        let registry = default_registry();
        let suite = sweep_suite(&registry, master_seed, sizes, usize::MAX, &[]);
        let entries = run_sweep(&suite, Threads::Count(threads));
        SweepReport {
            master_seed,
            max_nodes: *sizes.iter().max().unwrap(),
            threads,
            entries,
        }
        .canonical_json()
    }

    #[test]
    fn sweep_bytes_identical_across_thread_counts() {
        // Small rungs so the test stays fast; the determinism argument is
        // size-independent (per-scenario seeds, results in suite order).
        let serial = canonical_sweep(42, &[64, 256], 1);
        let parallel = canonical_sweep(42, &[64, 256], 8);
        assert_eq!(
            serial, parallel,
            "canonical BENCH_sweep.json must not depend on the worker count"
        );
        assert!(serial.contains("spf-sweep-report/v1"));
        assert!(!serial.contains("wall_micros"));
        assert!(!serial.contains("nodes_per_sec"));
    }

    #[test]
    fn sweep_bytes_identical_across_runs() {
        let a = canonical_sweep(7, &[64, 128], 3);
        let b = canonical_sweep(7, &[64, 128], 3);
        assert_eq!(a, b);
    }
}
