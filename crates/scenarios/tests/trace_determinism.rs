//! Trace-layer integration gates: same-seed recordings are byte-identical,
//! recorded traces replay cleanly against the live engine, corruption is
//! rejected with a location, and replay verification is cheaper than the
//! simulation it certifies.

use std::time::Instant;

use amoebot_circuits::replay_trace;
use amoebot_scenarios::registry::default_registry;
use amoebot_scenarios::{record_scenario, recordable};

/// The two recordable families, at sizes that exercise multi-region
/// structures (and, for churn, the dynamic edit path) without dominating
/// the test wall time.
fn recordable_scenarios() -> Vec<amoebot_scenarios::Scenario> {
    let registry = default_registry();
    vec![
        registry
            .get("blob-broadcast")
            .unwrap()
            .build_sized(33, 400)
            .unwrap(),
        registry
            .get("blob-churn-broadcast")
            .unwrap()
            .build_sized(33, 250)
            .unwrap(),
    ]
}

#[test]
fn same_seed_runs_record_byte_identical_traces() {
    for sc in recordable_scenarios() {
        assert!(recordable(&sc));
        let (ra, a) = record_scenario(&sc).unwrap();
        let (rb, b) = record_scenario(&sc).unwrap();
        assert!(ra.pass && rb.pass, "{}: recorded runs must pass", sc.name);
        assert_eq!(a, b, "{}: same-seed traces must be byte-identical", sc.name);
    }
}

#[test]
fn recorded_traces_replay_cleanly() {
    for sc in recordable_scenarios() {
        let (result, bytes) = record_scenario(&sc).unwrap();
        let report =
            replay_trace(&bytes).unwrap_or_else(|e| panic!("{}: replay failed: {e}", sc.name));
        assert_eq!(report.rounds, result.rounds, "{}", sc.name);
        assert_eq!(report.nodes, result.n, "{}", sc.name);
        assert!(report.events > 0, "{}: trace carries events", sc.name);
    }
}

#[test]
fn corrupted_traces_are_rejected_with_a_location() {
    let sc = &recordable_scenarios()[0];
    let (_, bytes) = record_scenario(sc).unwrap();
    // Flip one bit at a spread of positions across the blob. Every
    // corruption must be caught (decode error or divergence), and any
    // divergence report must carry the round and event index. The
    // exhaustive every-bit sweep lives in the circuits replay tests; this
    // gate checks the property survives at scenario scale.
    for pos in [4, bytes.len() / 4, bytes.len() / 2, bytes.len() - 10] {
        let mut bad = bytes.clone();
        bad[pos] ^= 0x04;
        match replay_trace(&bad) {
            Ok(_) => panic!("bit flip at byte {pos} went undetected"),
            Err(e) => {
                let msg = e.to_string();
                assert!(
                    !msg.is_empty(),
                    "corruption at byte {pos} must explain itself"
                );
                if msg.contains("divergence") {
                    assert!(
                        msg.contains("round") && msg.contains("event"),
                        "divergence at byte {pos} lacks a location: {msg}"
                    );
                }
            }
        }
    }
}

#[test]
fn replay_is_cheaper_than_the_run_it_verifies() {
    use amoebot_scenarios::spec::{MicroWorkload, Workload};

    // Debug builds shift the sim/replay cost balance and would make a
    // percentage assertion meaningless; the release suite (CI runs both)
    // carries the real bar.
    let (n, rounds, percent_bar) = if cfg!(debug_assertions) {
        (2_000, 8, 100)
    } else {
        // The acceptance measurement: a recorded 100k-node
        // blob-broadcast run must verify in < 25% of the simulation
        // wall time. Replay's cost is one relabel + one digest pass +
        // trace decode regardless of run length (per-round digests are
        // memoized), so a run long enough for the per-round work to
        // matter — 512 rounds here, measured ~14% with ~1.8x headroom —
        // is where the bar applies; see DESIGN.md §1e.
        (100_000, 512, 25)
    };
    let sc = amoebot_scenarios::Scenario::micro(
        "blob-broadcast",
        42,
        MicroWorkload::BlobBroadcast { n, rounds },
    );
    assert!(matches!(sc.workload, Workload::Micro(_)));
    let (result, bytes) = record_scenario(&sc).unwrap();
    assert!(result.pass);
    let start = Instant::now();
    replay_trace(&bytes).unwrap_or_else(|e| panic!("replay failed: {e}"));
    let replay_micros = start.elapsed().as_micros() as u64;
    assert!(
        replay_micros * 100 < result.wall_micros.max(1) * percent_bar,
        "replay took {replay_micros}us, over {percent_bar}% of the {}us simulation",
        result.wall_micros
    );
}
