//! Mid-fault-plan kill/restart twins (ISSUE 9 satellite: snapshot
//! fidelity under the adversary).
//!
//! A [`FaultPlan`] is stateless by construction — event `i` derives from
//! `(seed, i)` alone — so the only adversary state that must survive a
//! kill/restart is what the plan has already armed *in the world*:
//! stuck-at pins (carried in the SPFS payload), wiped pin configs, and
//! mid-flight beeps. The property: cut a faulted run at any event
//! boundary, restore from the snapshot, finish the schedule, and the
//! result is byte-identical to the twin that ran uninterrupted.

use amoebot_dynamics::{derive_rng, DynamicWorld, FaultFamily, FaultPlan, ALL_FAULT_FAMILIES};
use amoebot_grid::{shapes, AmoebotStructure};
use amoebot_telemetry::NullRecorder;
use proptest::prelude::*;

fn faulted_blob(n: usize, seed: u64, c: usize) -> DynamicWorld {
    let coords = shapes::random_blob(n, &mut derive_rng(seed, 1));
    let mut dw = DynamicWorld::new(&AmoebotStructure::new(coords).unwrap(), c);
    for v in dw.editor().live_ids().to_vec() {
        dw.world_mut().global_pin_config(v as usize);
    }
    dw
}

/// One adversarial round per event: stage the fault, reboot wiped nodes
/// onto the global circuit, let the first *active* node beep, tick with
/// the staged beep faults.
fn run_events(dw: &mut DynamicWorld, plan: &FaultPlan, from: usize, to: usize) {
    for e in from..to {
        let staged = plan.stage(dw, e);
        for v in &staged.wiped {
            dw.world_mut().global_pin_config(v.index());
        }
        let origin = dw
            .editor()
            .live_ids()
            .iter()
            .copied()
            .find(|&v| staged.is_active(v));
        if let Some(v) = origin {
            dw.world_mut().beep(v as usize, 0);
        }
        dw.world_mut()
            .tick_faulted(&staged.ticks, &mut NullRecorder);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Kill/restart at any event boundary of any family is invisible:
    /// the resumed run's final snapshot is byte-identical to the
    /// uninterrupted twin's.
    #[test]
    fn mid_plan_restore_matches_the_uninterrupted_twin(
        seed in 0u64..100_000,
        n in 10usize..40,
        family_ix in 0usize..7,
        events in 2usize..7,
        cut in 1usize..6,
    ) {
        let cut = cut.min(events - 1);
        let plan = FaultPlan::new(seed ^ 0xFA17, ALL_FAULT_FAMILIES[family_ix], events, 2);
        let mut uncut = faulted_blob(n, seed, 2);
        let mut resumed = {
            let mut first_half = faulted_blob(n, seed, 2);
            run_events(&mut first_half, &plan, 0, cut);
            let blob = first_half.snapshot_bytes();
            let resumed = DynamicWorld::from_snapshot_bytes(&blob)
                .expect("mid-fault blob must restore");
            prop_assert_eq!(resumed.snapshot_bytes(), blob, "restore must re-encode identically");
            resumed
        };
        run_events(&mut uncut, &plan, 0, plan.events);
        run_events(&mut resumed, &plan, cut, plan.events);
        prop_assert_eq!(
            resumed.snapshot_bytes(),
            uncut.snapshot_bytes(),
            "family {:?}: resumed twin diverged from the uninterrupted run",
            plan.family
        );
    }
}

/// Pins the interesting path deterministically: the cut lands while
/// stuck-at pins are armed, so the snapshot must carry live hardware
/// faults across the restart (proptest above may or may not sample it).
#[test]
fn the_cut_can_land_on_armed_stuck_pins() {
    let plan = FaultPlan::new(77, FaultFamily::StuckPins, 5, 3);
    let cut = 3;
    let mut uncut = faulted_blob(24, 9, 2);
    let mut first_half = faulted_blob(24, 9, 2);
    run_events(&mut uncut, &plan, 0, plan.events);
    run_events(&mut first_half, &plan, 0, cut);
    assert!(
        first_half.world().stuck_pin_count() > 0,
        "the cut must land with faults armed for this test to mean anything"
    );
    let blob = first_half.snapshot_bytes();
    let mut resumed = DynamicWorld::from_snapshot_bytes(&blob).unwrap();
    assert_eq!(
        resumed.world().stuck_pin_count(),
        first_half.world().stuck_pin_count(),
        "armed faults must survive the restart"
    );
    run_events(&mut resumed, &plan, cut, plan.events);
    assert_eq!(resumed.snapshot_bytes(), uncut.snapshot_bytes());
    assert_eq!(
        resumed.world().stuck_pin_count(),
        0,
        "the final event released everything"
    );
}
