//! The churn differential suite (acceptance criterion of the
//! dynamic-structure subsystem): after **every** churn event of a
//! proptest schedule, the incrementally edited `Topology`/`World` must be
//! equivalent to a from-scratch rebuild — same adjacency, same circuit
//! labels up to relabeling, same beep delivery — and the structure must
//! stay connected and hole-free.
//!
//! The incremental path under test is the real one: tombstoned ids,
//! recycled link-table slots, region-scoped relabels seeded by the
//! spliced edges. The oracle rebuilds a dense structure + world from
//! scratch after each event and copies the pin configuration over.

use amoebot_dynamics::{
    derive_rng, verify_against_rebuild, ChurnPlan, DynamicWorld, ALL_CHURN_FAMILIES,
};
use amoebot_grid::AmoebotStructure;
use proptest::prelude::*;
use rand::Rng;

fn dynamic_blob(n: usize, seed: u64, c: usize) -> DynamicWorld {
    let coords = amoebot_grid::shapes::random_blob(n, &mut derive_rng(seed, 1000));
    DynamicWorld::new(&AmoebotStructure::new(coords).unwrap(), c)
}

/// Scatter a random mix of pin configurations over the live nodes so the
/// oracle compares interesting circuits, not just singletons.
fn randomize_configs(dw: &mut DynamicWorld, seed: u64, nodes: &[u32]) {
    let mut rng = derive_rng(seed, 2000);
    for &v in nodes {
        match rng.gen_range(0..3u32) {
            0 => dw.world_mut().global_pin_config(v as usize),
            1 => dw.world_mut().singleton_pin_config(v as usize),
            _ => {
                dw.world_mut().group_pins(v as usize, &[(0, 0), (1, 0)]);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The tentpole differential: every family, every event, against the
    /// rebuild oracle.
    #[test]
    fn every_churn_event_matches_the_rebuild_oracle(
        seed in 0u64..10_000,
        n in 6usize..36,
        events in 2usize..9,
        family_ix in 0usize..4,
        per_event in 1usize..6,
    ) {
        let family = ALL_CHURN_FAMILIES[family_ix];
        let mut dw = dynamic_blob(n, seed, 2);
        let live: Vec<u32> = dw.editor().live_ids().to_vec();
        randomize_configs(&mut dw, seed, &live);
        let plan = ChurnPlan::new(seed ^ 0xC0FFEE, family, events, per_event);
        for e in 0..events {
            let applied = plan.apply(&mut dw, e);
            // Newly joined nodes get their own random configurations so
            // the comparison also covers fresh ids and recycled ids.
            let fresh: Vec<u32> = applied.inserted.iter().map(|v| v.0).collect();
            randomize_configs(&mut dw, seed.wrapping_add(e as u64), &fresh);
            if let Err(msg) = verify_against_rebuild(&dw) {
                prop_assert!(
                    false,
                    "schedule seed={} family={:?} event=#{e}: {msg}",
                    plan.seed, family
                );
            }
            // Structure invariants hold after every event.
            let (snapshot, _) = dw.editor().snapshot();
            prop_assert!(snapshot.is_hole_free(), "event #{e} left a hole");
            prop_assert_eq!(snapshot.len(), dw.len());
        }
    }

    /// Interleaving ticks between events must not desynchronize the
    /// incremental engine from the oracle: beeps cross churned edges in
    /// the very next round.
    #[test]
    fn ticks_between_events_stay_equivalent(
        seed in 0u64..10_000,
        n in 6usize..28,
        events in 2usize..6,
    ) {
        let mut dw = dynamic_blob(n, seed, 2);
        let live: Vec<u32> = dw.editor().live_ids().to_vec();
        for &v in &live {
            dw.world_mut().global_pin_config(v as usize);
        }
        let plan = ChurnPlan::new(seed, amoebot_dynamics::ChurnFamily::GrowShrink, events, 2);
        for e in 0..events {
            let applied = plan.apply(&mut dw, e);
            for v in &applied.inserted {
                dw.world_mut().global_pin_config(v.index());
            }
            // Run a real broadcast round on the incremental world.
            let origin = dw.editor().live_ids()[0] as usize;
            dw.world_mut().beep(origin, 0);
            dw.world_mut().tick();
            for &v in dw.editor().live_ids() {
                prop_assert!(
                    dw.world().received(v as usize, 0),
                    "schedule seed={} event=#{e}: node #{v} missed the broadcast",
                    plan.seed
                );
            }
            if let Err(msg) = verify_against_rebuild(&dw) {
                prop_assert!(false, "schedule seed={} event=#{e}: {msg}", plan.seed);
            }
        }
    }
}

/// A deterministic long-haul case: heavy grow–shrink churn with id and
/// link-slot recycling, oracle-checked at every step (not sampled, so it
/// always runs in CI even if proptest cases shrink).
#[test]
fn long_grow_shrink_cycle_stays_equivalent() {
    let mut dw = dynamic_blob(24, 99, 2);
    let live: Vec<u32> = dw.editor().live_ids().to_vec();
    for &v in &live {
        dw.world_mut().global_pin_config(v as usize);
    }
    let plan = ChurnPlan::new(4242, amoebot_dynamics::ChurnFamily::GrowShrink, 12, 5);
    let mut population = Vec::new();
    for e in 0..plan.events {
        let applied = plan.apply(&mut dw, e);
        for v in &applied.inserted {
            dw.world_mut().global_pin_config(v.index());
        }
        population.push(dw.len());
        verify_against_rebuild(&dw)
            .unwrap_or_else(|msg| panic!("schedule seed={} event=#{e}: {msg}", plan.seed));
    }
    // The cycle actually moved the population both ways.
    assert!(population.iter().any(|&p| p > 24));
    assert!(population.windows(2).any(|w| w[1] < w[0]));
    // Dead-id recycling really happened: the id space stayed well below
    // one fresh id per insertion.
    assert!(dw.editor().capacity() < 24 + 12 * 5);
    // And the final structure is still a legal amoebot structure.
    let (snapshot, map) = dw.editor().snapshot();
    assert!(snapshot.is_hole_free());
    assert_eq!(
        map.iter().filter(|m| m.is_some()).count(),
        dw.len(),
        "id map covers exactly the live nodes"
    );
}
