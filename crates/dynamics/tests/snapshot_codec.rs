//! Property tests for the `SPFS` snapshot codec (DESIGN.md §1g).
//!
//! The unit tests in `snapshot.rs` pin the codec on hand-picked worlds;
//! these properties sweep it across randomized ones — arbitrary blob
//! sizes, pin configurations, and churn prefixes (so the encoded state
//! includes tombstoned ids, recycled link-table slots and mid-schedule
//! cursors) — and assert the three codec invariants:
//!
//! 1. **Round trip**: decode(encode(w)) is the same world — its
//!    re-encoding is byte-identical;
//! 2. **Continuation**: a restored world ticks exactly like the
//!    original (the restore is semantically lossless, not just
//!    structurally);
//! 3. **Corruption rejection**: flipping any single bit of a blob makes
//!    it un-openable (the trailing digest plus field validation leave
//!    no silent corruption path).

use amoebot_dynamics::{derive_rng, ChurnPlan, DynamicWorld, ALL_CHURN_FAMILIES};
use amoebot_grid::AmoebotStructure;
use proptest::prelude::*;
use rand::{Rng, RngCore};

/// A randomized dynamic world: blob structure, mixed pin configs, and a
/// churn prefix that leaves tombstones and recycled slots behind.
fn churned_world(n: usize, seed: u64, family_ix: usize, events: usize) -> DynamicWorld {
    let coords = amoebot_grid::shapes::random_blob(n, &mut derive_rng(seed, 1));
    let mut dw = DynamicWorld::new(&AmoebotStructure::new(coords).unwrap(), 2);
    let mut rng = derive_rng(seed, 2);
    for v in dw.editor().live_ids().to_vec() {
        match rng.gen_range(0..3u32) {
            0 => dw.world_mut().global_pin_config(v as usize),
            1 => dw.world_mut().singleton_pin_config(v as usize),
            _ => {
                dw.world_mut().group_pins(v as usize, &[(0, 0), (1, 0)]);
            }
        }
    }
    let plan = ChurnPlan::new(seed ^ 0xDECAF, ALL_CHURN_FAMILIES[family_ix], events, 3);
    for e in 0..events {
        let applied = plan.apply(&mut dw, e);
        for v in &applied.inserted {
            dw.world_mut().global_pin_config(v.index());
        }
        dw.revalidate_edited_chunks();
        // Interleave a broadcast round so rounds/beeps/charge state are
        // mid-flight when the snapshot is cut.
        let origin = dw.editor().live_ids()[0] as usize;
        dw.world_mut().beep(origin, 0);
        dw.world_mut().tick();
    }
    dw
}

/// Steps `k` broadcast rounds and returns the re-encoded state.
fn advance(dw: &mut DynamicWorld, k: usize) -> Vec<u8> {
    for i in 0..k {
        let live = dw.editor().live_ids();
        let origin = live[i % live.len()] as usize;
        dw.world_mut().beep(origin, 0);
        dw.world_mut().tick();
    }
    dw.snapshot_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Invariants 1 + 2 over random churned worlds: byte-stable
    /// re-encoding, and identical evolution after restore.
    #[test]
    fn restored_worlds_re_encode_and_evolve_identically(
        seed in 0u64..100_000,
        n in 8usize..48,
        family_ix in 0usize..4,
        events in 0usize..6,
        k in 1usize..8,
    ) {
        let mut original = churned_world(n, seed, family_ix, events);
        let blob = original.snapshot_bytes();
        let mut restored = DynamicWorld::from_snapshot_bytes(&blob).expect("valid blob");
        prop_assert_eq!(restored.snapshot_bytes(), blob.clone(), "re-encoding must be byte-identical");
        prop_assert_eq!(advance(&mut restored, k), advance(&mut original, k),
            "restored world diverged within {} rounds", k);
    }

    /// Invariant 3, sampled: random single-bit flips over random worlds
    /// are always rejected. (The exhaustive every-bit loop lives in the
    /// unit tests on a fixed world; here the *world* varies too.)
    #[test]
    fn sampled_bit_flips_are_rejected(
        seed in 0u64..100_000,
        n in 8usize..32,
        family_ix in 0usize..4,
    ) {
        let dw = churned_world(n, seed, family_ix, 2);
        let blob = dw.snapshot_bytes();
        let mut rng = derive_rng(seed, 3);
        for _ in 0..64 {
            let bit = (rng.next_u64() as usize) % (blob.len() * 8);
            let mut bad = blob.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            prop_assert!(
                DynamicWorld::from_snapshot_bytes(&bad).is_err(),
                "bit flip at byte {} bit {} was accepted", bit / 8, bit % 8
            );
        }
    }

    /// Truncation at every prefix length is rejected — no partial decode
    /// can pass the digest check.
    #[test]
    fn every_truncation_is_rejected(
        seed in 0u64..100_000,
        n in 8usize..24,
    ) {
        let dw = churned_world(n, seed, 0, 1);
        let blob = dw.snapshot_bytes();
        for cut in 0..blob.len() {
            prop_assert!(
                DynamicWorld::from_snapshot_bytes(&blob[..cut]).is_err(),
                "truncation to {} bytes was accepted", cut
            );
        }
    }
}
