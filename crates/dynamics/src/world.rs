//! The editor–engine pair and the rebuild oracle.

use amoebot_circuits::{Topology, World};
use amoebot_grid::{AmoebotStructure, Coord, NodeId, StructureEditor, ALL_DIRECTIONS};
use amoebot_telemetry::{NullRecorder, Recorder};
use std::collections::BTreeMap;

/// A simulated world whose structure can churn at runtime.
///
/// The two halves share one id space: editor node ids *are* world node
/// ids. A removed amoebot leaves a tombstone on both sides (the editor
/// frees the id for recycling; the world keeps the node isolated with
/// singleton pins), and a later insertion reuses the tombstone — the
/// world only ever grows by genuinely new ids, so pin bases never
/// renumber and the engine's cached labeling survives every event.
#[derive(Debug, Clone)]
pub struct DynamicWorld {
    pub(crate) editor: StructureEditor,
    pub(crate) world: World,
    pub(crate) c: usize,
}

impl DynamicWorld {
    /// Wraps `structure` (ids preserved) with `c` links per edge.
    pub fn new(structure: &AmoebotStructure, c: usize) -> DynamicWorld {
        DynamicWorld {
            editor: StructureEditor::from_structure(structure),
            world: World::new(Topology::from_structure(structure), c),
            c,
        }
    }

    /// Number of live amoebots.
    #[inline]
    pub fn len(&self) -> usize {
        self.editor.len()
    }

    /// Whether no amoebot is live (never true; removal keeps one).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.editor.is_empty()
    }

    /// The geometry half (read-only: edits must go through
    /// [`DynamicWorld::insert`]/[`DynamicWorld::remove`] so the world
    /// stays in sync).
    #[inline]
    pub fn editor(&self) -> &StructureEditor {
        &self.editor
    }

    /// The simulator half, read-only.
    #[inline]
    pub fn world(&self) -> &World {
        &self.world
    }

    /// The simulator half, mutable — for pin configuration, beeps and
    /// ticks. Structure mutation must go through
    /// [`DynamicWorld::insert`]/[`DynamicWorld::remove`].
    #[inline]
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    /// Whether an amoebot may join at `coord` (vacant, attached,
    /// hole-safe — see [`StructureEditor::can_insert`]).
    #[inline]
    pub fn can_insert(&self, coord: Coord) -> bool {
        self.editor.can_insert(coord)
    }

    /// Whether `v` may leave (see [`StructureEditor::can_remove`]).
    #[inline]
    pub fn can_remove(&self, v: NodeId) -> bool {
        self.editor.can_remove(v)
    }

    /// An amoebot joins at `coord`: the editor splices the geometry, the
    /// world grows (or recycles a tombstone id) and wires the new edges
    /// through its dirty-pin machinery. The new node starts in the
    /// singleton pin configuration. O(Δ · c) amortized.
    ///
    /// # Panics
    ///
    /// Panics if [`DynamicWorld::can_insert`] is false for `coord`.
    pub fn insert(&mut self, coord: Coord) -> NodeId {
        self.insert_with(coord, &mut NullRecorder)
    }

    /// [`DynamicWorld::insert`] with the structure edits recorded
    /// (node append, if any, plus every spliced edge).
    pub fn insert_with<R: Recorder>(&mut self, coord: Coord, rec: &mut R) -> NodeId {
        let (v, links) = self.editor.insert(coord);
        if v.index() >= self.world.topology().len() {
            let appended = self.world.add_node_with(6, rec);
            debug_assert_eq!(appended, v.index(), "id spaces out of sync");
        }
        for (d, peer) in links {
            self.world.connect_with(
                v.index(),
                d.index(),
                peer.index(),
                d.opposite().index(),
                rec,
            );
        }
        v
    }

    /// Amoebot `v` leaves: the world severs its edges (dirtying exactly
    /// the circuits that ran through them) and the editor frees the id.
    /// O(Δ · c) amortized.
    ///
    /// # Panics
    ///
    /// Panics if [`DynamicWorld::can_remove`] is false for `v`.
    pub fn remove(&mut self, v: NodeId) {
        self.remove_with(v, &mut NullRecorder)
    }

    /// [`DynamicWorld::remove`] with the departure recorded.
    pub fn remove_with<R: Recorder>(&mut self, v: NodeId, rec: &mut R) {
        assert!(
            self.editor.can_remove(v),
            "node {v} is not removable from the structure"
        );
        self.world.isolate_with(v.index(), rec);
        self.editor.remove(v);
    }

    /// Scoped hole revalidation over the chunks churn has touched since
    /// the last call — defense in depth behind the per-edit arc rule
    /// (see [`StructureEditor::revalidate_edited_chunks`]). The churn
    /// scenario families run this after every event.
    pub fn revalidate_edited_chunks(&mut self) -> bool {
        self.editor.revalidate_edited_chunks()
    }

    /// From-scratch rebuild of the current state: a dense structure
    /// snapshot, a fresh world over it with the live nodes' pin
    /// configurations copied over, and the id map `old -> dense`. This is
    /// the oracle the differential suite compares against; it costs the
    /// O(n) the incremental path avoids.
    pub fn rebuild(&self) -> (AmoebotStructure, World, Vec<Option<NodeId>>) {
        let (structure, map) = self.editor.snapshot();
        let mut oracle = World::new(Topology::from_structure(&structure), self.c);
        for old in self.editor.live_ids() {
            let old = *old as usize;
            let dense = map[old].expect("live id maps to a dense id").index();
            for port in 0..6 {
                for link in 0..self.c {
                    oracle.set_pin(dense, port, link, self.world.pin_config(old, port, link));
                }
            }
        }
        (structure, oracle, map)
    }
}

/// Cross-validates the incrementally edited world against a from-scratch
/// rebuild: identical adjacency under the id map, identical circuit
/// partition up to relabeling (label-bijection over every live pin), and
/// identical beep delivery for a deterministic probe round. `Err` carries
/// a diagnostic naming the first divergence.
///
/// Mutates both worlds only through relabels and one probe tick of the
/// *oracle* (the incremental world's probe runs on a clone, so its round
/// counter and beep state are left untouched).
pub fn verify_against_rebuild(dw: &DynamicWorld) -> Result<(), String> {
    let (structure, mut oracle, map) = dw.rebuild();
    let c = dw.c;
    let mut inc = dw.world.clone();

    // 1. Adjacency: editor, incremental topology and snapshot agree.
    for &old in dw.editor.live_ids() {
        let v = NodeId(old);
        let dense = map[old as usize].expect("live id maps densely");
        for d in ALL_DIRECTIONS {
            let via_editor = dw.editor.neighbor(v, d);
            let via_topo = inc
                .topology()
                .peer(old as usize, d.index())
                .map(|(w, _)| NodeId(w as u32));
            if via_editor != via_topo {
                return Err(format!(
                    "adjacency split-brain at {v} towards {d}: editor {via_editor:?}, topology {via_topo:?}"
                ));
            }
            let via_snapshot = structure.neighbor(dense, d);
            if via_editor.map(|w| map[w.index()]) != via_snapshot.map(Some) {
                return Err(format!(
                    "adjacency of {v} towards {d} disagrees with the rebuilt snapshot"
                ));
            }
        }
    }
    // Dead ids must be fully detached in the incremental topology.
    for old in 0..dw.editor.capacity() {
        if !dw.editor.is_alive(NodeId(old as u32)) && inc.topology().degree(old) != 0 {
            return Err(format!("dead node #{old} still has live edges"));
        }
    }

    // 2. Circuit partition up to relabeling: the label pairs over every
    // live pin must form a bijection.
    let mut fwd: BTreeMap<u32, u32> = BTreeMap::new();
    let mut bwd: BTreeMap<u32, u32> = BTreeMap::new();
    for &old in dw.editor.live_ids() {
        let dense = map[old as usize].expect("live id maps densely").index();
        for port in 0..6 {
            for link in 0..c {
                let pset = inc.pin_config(old as usize, port, link);
                let li = inc.pset_circuit(old as usize, pset);
                let lo = oracle.pset_circuit(dense, pset);
                if *fwd.entry(li).or_insert(lo) != lo || *bwd.entry(lo).or_insert(li) != li {
                    return Err(format!(
                        "circuit partition diverges at node #{old} pin (port {port}, link {link})"
                    ));
                }
            }
        }
    }

    // 3. Beep delivery: a deterministic probe set beeps on its pin-0
    // partition set; after one tick every live pin must agree.
    let live = dw.editor.live_ids();
    let stride = (live.len() / 4).max(1);
    for i in (0..live.len()).step_by(stride) {
        let old = live[i] as usize;
        let dense = map[old].expect("live id maps densely").index();
        let pset = inc.pin_config(old, 0, 0);
        inc.beep(old, pset);
        oracle.beep(dense, pset);
    }
    inc.tick();
    oracle.tick();
    for &old in live {
        let dense = map[old as usize].expect("live id maps densely").index();
        for pset in 0..(6 * c) as u16 {
            if inc.received(old as usize, pset) != oracle.received(dense, pset) {
                return Err(format!(
                    "beep delivery diverges at node #{old} pset {pset} (incremental {}, rebuilt {})",
                    inc.received(old as usize, pset),
                    oracle.received(dense, pset)
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoebot_grid::shapes;

    fn blob(n: usize, seed: u64) -> AmoebotStructure {
        AmoebotStructure::new(shapes::random_blob(n, &mut crate::derive_rng(seed, 0))).unwrap()
    }

    #[test]
    fn insert_and_remove_keep_both_halves_in_sync() {
        let s = blob(20, 7);
        let mut dw = DynamicWorld::new(&s, 2);
        assert!(verify_against_rebuild(&dw).is_ok());
        // Grow three cells at the boundary.
        let mut added = Vec::new();
        let anchors: Vec<u32> = dw.editor().live_ids().to_vec();
        'outer: for anchor in anchors {
            for d in ALL_DIRECTIONS {
                let cell = dw.editor().coord(NodeId(anchor)).neighbor(d);
                if dw.can_insert(cell) {
                    added.push(dw.insert(cell));
                    if added.len() == 3 {
                        break 'outer;
                    }
                }
            }
        }
        assert_eq!(added.len(), 3);
        assert_eq!(dw.len(), 23);
        verify_against_rebuild(&dw).unwrap();
        for v in added {
            if dw.can_remove(v) {
                dw.remove(v);
            }
        }
        verify_against_rebuild(&dw).unwrap();
    }

    #[test]
    fn churned_global_circuit_still_spans_the_structure() {
        let s = blob(16, 3);
        let n = s.len();
        let mut dw = DynamicWorld::new(&s, 2);
        for v in 0..n {
            dw.world_mut().global_pin_config(v);
        }
        // Attach a new amoebot, put it on the global circuit too.
        let anchor = NodeId(dw.editor().live_ids()[0]);
        let cell = (0..6)
            .map(|i| dw.editor().coord(anchor).neighbor(ALL_DIRECTIONS[i]))
            .find(|&c| dw.can_insert(c))
            .expect("some neighbor cell is insertable");
        let v = dw.insert(cell);
        dw.world_mut().global_pin_config(v.index());
        verify_against_rebuild(&dw).unwrap();
        dw.world_mut().beep(v.index(), 0);
        dw.world_mut().tick();
        for &live in dw.editor().live_ids() {
            assert!(
                dw.world().received(live as usize, 0),
                "node #{live} missed the broadcast from the newcomer"
            );
        }
    }

    #[test]
    fn rebuild_maps_configurations_onto_dense_ids() {
        let s = blob(12, 11);
        let mut dw = DynamicWorld::new(&s, 2);
        // A distinctive config on node 5: bridge its first two pins.
        dw.world_mut().group_pins(5, &[(0, 0), (1, 0)]);
        let (_, oracle, map) = dw.rebuild();
        let dense = map[5].unwrap().index();
        assert_eq!(
            oracle.pin_config(dense, 0, 0),
            dw.world().pin_config(5, 0, 0)
        );
        assert_eq!(
            oracle.pin_config(dense, 1, 0),
            dw.world().pin_config(5, 1, 0)
        );
    }

    #[test]
    #[should_panic(expected = "not removable")]
    fn removing_an_articulation_cell_panics() {
        let s = AmoebotStructure::new(shapes::line(3)).unwrap();
        let mut dw = DynamicWorld::new(&s, 1);
        dw.remove(NodeId(1));
    }
}
