//! The `SPFS` snapshot codec for [`DynamicWorld`] — the editor/engine
//! pair as one blob.
//!
//! The two halves are serialized with their own payload codecs
//! ([`StructureEditor::encode_snapshot`], [`World::encode_payload`])
//! and the composition re-checks the one cross-invariant the pair
//! maintains: the halves share a single id space, so the editor's id
//! capacity must equal the world's node count. Everything that makes
//! churn deterministic survives verbatim — the live-list order (uniform
//! sampling), the free-list order (id recycling), and the engine's
//! cached labeling — so a [`crate::ChurnPlan`] applied after a restore
//! makes byte-for-byte the same edits an uninterrupted run would make.
//! A mid-plan snapshot therefore needs nothing beyond the next event
//! index: the plan itself is stateless by construction.

use amoebot_circuits::World;
use amoebot_grid::StructureEditor;
use amoebot_telemetry::wire::{self, SnapshotReader, SnapshotWriter, WireError};

use crate::world::DynamicWorld;

impl DynamicWorld {
    /// Writes the dynamic-world payload (no envelope) into `w` — the
    /// composable form the scenario-server's session codec embeds.
    pub fn encode_payload(&self, w: &mut SnapshotWriter) {
        w.varint(self.c as u64);
        self.editor.encode_snapshot(w);
        self.world.encode_payload(w);
    }

    /// Decodes a payload written by [`DynamicWorld::encode_payload`].
    pub fn decode_payload(r: &mut SnapshotReader<'_>) -> Result<DynamicWorld, WireError> {
        let c_offset = r.offset();
        let c = r.len("dynamic-world links per edge")?;
        let editor = StructureEditor::decode_snapshot(r)?;
        let world = World::decode_payload(r)?;
        if world.links_per_edge() != c {
            return Err(WireError::BadValue {
                what: "dynamic-world links per edge",
                offset: c_offset,
            });
        }
        if editor.capacity() != world.topology().len() {
            return Err(WireError::BadValue {
                what: "dynamic-world id space",
                offset: c_offset,
            });
        }
        Ok(DynamicWorld { editor, world, c })
    }

    /// The pair as a sealed `SPFS` blob (kind `DYNAMIC_WORLD`).
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(wire::kind::DYNAMIC_WORLD);
        self.encode_payload(&mut w);
        w.finish()
    }

    /// Restores a pair from [`DynamicWorld::snapshot_bytes`] output.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<DynamicWorld, WireError> {
        let mut r = SnapshotReader::open(bytes, wire::kind::DYNAMIC_WORLD)?;
        let dw = DynamicWorld::decode_payload(&mut r)?;
        r.finish()?;
        Ok(dw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{ChurnFamily, ChurnPlan, ALL_CHURN_FAMILIES};
    use crate::world::verify_against_rebuild;
    use amoebot_grid::{shapes, AmoebotStructure};
    use amoebot_telemetry::{Recorder, RoundSummary};

    #[derive(Default)]
    struct Summaries(Vec<RoundSummary>);

    impl Recorder for Summaries {
        const TRACE: bool = true;
        const TIMED: bool = false;
        fn round_end(&mut self, s: &RoundSummary) {
            self.0.push(*s);
        }
    }

    fn churny_world(n: usize, seed: u64) -> DynamicWorld {
        let s =
            AmoebotStructure::new(shapes::random_blob(n, &mut crate::derive_rng(seed, 0))).unwrap();
        let mut dw = DynamicWorld::new(&s, 2);
        for v in 0..n {
            dw.world_mut().global_pin_config(v);
        }
        dw
    }

    /// Drives one broadcast round the way the churn scenario family
    /// does: beep from the first live amoebot, tick, note the summary.
    fn broadcast_round(dw: &mut DynamicWorld, rec: &mut Summaries) {
        let origin = dw.editor().live_ids()[0] as usize;
        dw.world_mut().beep(origin, 0);
        dw.world_mut().tick_with(rec);
    }

    /// The headline differential test: snapshot mid-`ChurnPlan`, restore,
    /// and run the remaining events — the restored run must be
    /// *byte-identical* to the uninterrupted one (same round summaries
    /// with the same digests, and the same final snapshot bytes).
    #[test]
    fn mid_churn_restore_matches_uninterrupted_run() {
        for (i, &family) in ALL_CHURN_FAMILIES.iter().enumerate() {
            let plan = ChurnPlan::new(0xC0FFEE + i as u64, family, 6, 3);
            let mut uninterrupted = churny_world(30, 17 + i as u64);
            let mut rec_a = Summaries::default();
            // First half of the schedule.
            for event in 0..3 {
                let applied = plan.apply(&mut uninterrupted, event);
                for v in &applied.inserted {
                    uninterrupted.world_mut().global_pin_config(v.index());
                }
                assert!(uninterrupted.revalidate_edited_chunks());
                broadcast_round(&mut uninterrupted, &mut rec_a);
            }
            // Interrupt here: snapshot, restore, and let both worlds run
            // the second half independently.
            let blob = uninterrupted.snapshot_bytes();
            let mut restored = DynamicWorld::from_snapshot_bytes(&blob).unwrap();
            let mut rec_b = Summaries(rec_a.0.clone());
            for event in 3..6 {
                for (dw, rec) in [
                    (&mut uninterrupted, &mut rec_a),
                    (&mut restored, &mut rec_b),
                ] {
                    let applied = plan.apply(dw, event);
                    for v in &applied.inserted {
                        dw.world_mut().global_pin_config(v.index());
                    }
                    assert!(dw.revalidate_edited_chunks());
                    broadcast_round(dw, rec);
                }
            }
            assert_eq!(rec_a.0, rec_b.0, "family {family:?} diverged after restore");
            verify_against_rebuild(&restored)
                .unwrap_or_else(|e| panic!("restored world fails the oracle: {e}"));
            assert_eq!(
                uninterrupted.snapshot_bytes(),
                restored.snapshot_bytes(),
                "family {family:?}: final states differ byte-for-byte"
            );
        }
    }

    #[test]
    fn re_encoding_a_restored_world_is_byte_identical() {
        let mut dw = churny_world(24, 5);
        let plan = ChurnPlan::new(99, ChurnFamily::GrowShrink, 4, 4);
        for event in 0..4 {
            let applied = plan.apply(&mut dw, event);
            for v in &applied.inserted {
                dw.world_mut().global_pin_config(v.index());
            }
            broadcast_round(&mut dw, &mut Summaries::default());
        }
        let blob = dw.snapshot_bytes();
        let restored = DynamicWorld::from_snapshot_bytes(&blob).unwrap();
        assert_eq!(restored.snapshot_bytes(), blob);
        assert_eq!(restored.len(), dw.len());
    }

    #[test]
    fn every_single_bit_corruption_is_rejected() {
        let mut dw = churny_world(10, 3);
        let plan = ChurnPlan::new(7, ChurnFamily::CrashBursts, 2, 2);
        for event in 0..2 {
            plan.apply(&mut dw, event);
            broadcast_round(&mut dw, &mut Summaries::default());
        }
        let blob = dw.snapshot_bytes();
        for byte in 0..blob.len() {
            for bit in 0..8 {
                let mut bad = blob.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    DynamicWorld::from_snapshot_bytes(&bad).is_err(),
                    "flip at byte {byte} bit {bit} was accepted"
                );
            }
        }
    }
}
