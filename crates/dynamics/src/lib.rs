//! Dynamic-structure subsystem: runtime node churn (system **S21** of
//! DESIGN.md §1d).
//!
//! The paper defines its primitives on a fixed amoebot structure; real
//! deployments see amoebots joining, leaving and crashing mid-run. This
//! crate makes the structure itself mutable at the same incremental cost
//! the engine already pays for pin reconfiguration:
//!
//! * [`DynamicWorld`] pairs a
//!   [`StructureEditor`](amoebot_grid::StructureEditor) (geometry: O(Δ)
//!   index and neighbor-table edits, scoped hole revalidation) with a
//!   [`World`](amoebot_circuits::World) whose topology is spliced in
//!   place — an insert or remove
//!   feeds the engine's dirty-pin/region-relabel machinery, so a k-node
//!   churn event costs O(k · deg) amortized instead of the O(n) a
//!   rebuild-per-event pays;
//! * [`ChurnPlan`] drives deterministic seeded churn schedules (the
//!   scenario families: attach-at-boundary growth, random detach, crash
//!   bursts, grow-then-shrink cycles);
//! * [`verify_against_rebuild`] is the oracle: after any churn event the
//!   incrementally edited world must be equivalent to a from-scratch
//!   rebuild — same adjacency, same circuits up to relabeling, same beep
//!   delivery. The scenario layer runs it after *every* event.

pub mod fault;
pub mod plan;
pub mod snapshot;
pub mod world;

pub use fault::{FaultFamily, FaultPlan, StagedFault, ALL_FAULT_FAMILIES};
pub use plan::{AppliedEvent, ChurnFamily, ChurnPlan, ALL_CHURN_FAMILIES};
pub use world::{verify_against_rebuild, DynamicWorld};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives an independent RNG stream for `purpose` from a schedule seed
/// (SplitMix64; the same mixing the scenario engine uses, duplicated here
/// so `dynamics` stays below `scenarios` in the crate graph).
pub fn derive_rng(seed: u64, purpose: u64) -> StdRng {
    let mut z = seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(purpose.wrapping_mul(0xD1B54A32D192ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}
