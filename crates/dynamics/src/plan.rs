//! Deterministic seeded churn schedules.
//!
//! A [`ChurnPlan`] turns `(seed, event index)` into a concrete batch of
//! structure edits, with no state carried between events: event `i`'s
//! randomness derives from `(seed, i)` alone, so a failed
//! cross-validation is reproducible from the schedule seed and the event
//! index printed in the failure line — no replay of earlier events'
//! randomness is needed (the *structure* state still depends on the
//! prefix, which the runner replays deterministically).
//!
//! All edits go through the editor's safety gate
//! ([`StructureEditor::can_insert`]/[`can_remove`]), so a schedule can
//! never drive the structure out of the algorithms' supported class
//! (connected, hole-free); an event that runs out of legal candidates
//! under-fills rather than forcing an illegal edit.
//!
//! [`StructureEditor::can_insert`]: amoebot_grid::StructureEditor::can_insert
//! [`can_remove`]: amoebot_grid::StructureEditor::can_remove

use amoebot_grid::{NodeId, ALL_DIRECTIONS};
use amoebot_telemetry::{NullRecorder, Recorder};
use rand::rngs::StdRng;
use rand::Rng;

use crate::world::DynamicWorld;

/// The churn schedule families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnFamily {
    /// Every event attaches `per_event` amoebots at random boundary
    /// cells — monotone growth.
    BoundaryGrowth,
    /// Every event detaches `per_event` uniformly random removable
    /// amoebots — monotone shrinkage.
    RandomDetach,
    /// Every event picks a random epicenter and crashes `per_event`
    /// amoebots around it, nearest-first — spatially correlated failure.
    CrashBursts,
    /// Events alternate: even events grow, odd events shrink — the
    /// steady-state churn a long-running deployment sees.
    GrowShrink,
}

/// All churn families, for seeded menu picks.
pub const ALL_CHURN_FAMILIES: [ChurnFamily; 4] = [
    ChurnFamily::BoundaryGrowth,
    ChurnFamily::RandomDetach,
    ChurnFamily::CrashBursts,
    ChurnFamily::GrowShrink,
];

impl ChurnFamily {
    /// Stable label for scenario names and logs.
    pub fn label(&self) -> &'static str {
        match self {
            ChurnFamily::BoundaryGrowth => "grow",
            ChurnFamily::RandomDetach => "detach",
            ChurnFamily::CrashBursts => "crash",
            ChurnFamily::GrowShrink => "growshrink",
        }
    }
}

/// What one applied event actually did (events under-fill when legal
/// candidates run out; the counts here are the ground truth).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AppliedEvent {
    /// Nodes that joined, in application order.
    pub inserted: Vec<NodeId>,
    /// Nodes that left, in application order (their ids are dead until
    /// recycled).
    pub removed: Vec<NodeId>,
}

/// A deterministic churn schedule: `events` events of roughly
/// `per_event` edits each, drawn from `family`'s distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnPlan {
    /// Schedule seed; event `i` uses randomness derived from
    /// `(seed, i)` only.
    pub seed: u64,
    /// The event distribution.
    pub family: ChurnFamily,
    /// Number of events in the schedule.
    pub events: usize,
    /// Target edits per event (a best effort, see [`AppliedEvent`]).
    pub per_event: usize,
}

impl ChurnPlan {
    /// A plan with `events` events of `per_event` edits.
    pub fn new(seed: u64, family: ChurnFamily, events: usize, per_event: usize) -> ChurnPlan {
        ChurnPlan {
            seed,
            family,
            events,
            per_event,
        }
    }

    /// Applies event `index` (0-based) to `dw`. Deterministic in
    /// `(self, index, current structure)`; returns what was done.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.events`.
    pub fn apply(&self, dw: &mut DynamicWorld, index: usize) -> AppliedEvent {
        self.apply_with(dw, index, &mut NullRecorder)
    }

    /// [`ChurnPlan::apply`] with the structure edits recorded: every
    /// insert/remove flows through the world's recorded mutation path,
    /// and the event is tagged with its index and net counts so a trace
    /// reader can attribute the edits to the schedule.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.events`.
    pub fn apply_with<R: Recorder>(
        &self,
        dw: &mut DynamicWorld,
        index: usize,
        rec: &mut R,
    ) -> AppliedEvent {
        assert!(index < self.events, "event {index} outside the schedule");
        let mut rng = crate::derive_rng(self.seed, index as u64);
        let mut out = AppliedEvent::default();
        match self.family {
            ChurnFamily::BoundaryGrowth => grow(dw, &mut rng, self.per_event, &mut out, rec),
            ChurnFamily::RandomDetach => detach(dw, &mut rng, self.per_event, &mut out, rec),
            ChurnFamily::CrashBursts => crash_burst(dw, &mut rng, self.per_event, &mut out, rec),
            ChurnFamily::GrowShrink => {
                if index.is_multiple_of(2) {
                    grow(dw, &mut rng, self.per_event, &mut out, rec)
                } else {
                    detach(dw, &mut rng, self.per_event, &mut out, rec)
                }
            }
        }
        if R::TRACE {
            rec.churn_tag(
                index as u32,
                out.inserted.len() as u32,
                out.removed.len() as u32,
            );
        }
        out
    }
}

/// Attaches up to `k` amoebots at random boundary cells (random live
/// anchor, random direction, retried against the safety gate).
fn grow<R: Recorder>(
    dw: &mut DynamicWorld,
    rng: &mut StdRng,
    k: usize,
    out: &mut AppliedEvent,
    rec: &mut R,
) {
    let budget = 20 * k.max(1);
    for _ in 0..budget {
        if out.inserted.len() >= k {
            break;
        }
        let anchor = dw.editor().live_ids()[rng.gen_range(0..dw.len())];
        let d = ALL_DIRECTIONS[rng.gen_range(0..6)];
        let cell = dw.editor().coord(NodeId(anchor)).neighbor(d);
        if dw.can_insert(cell) {
            out.inserted.push(dw.insert_with(cell, rec));
        }
    }
}

/// Detaches up to `k` uniformly random removable amoebots.
fn detach<R: Recorder>(
    dw: &mut DynamicWorld,
    rng: &mut StdRng,
    k: usize,
    out: &mut AppliedEvent,
    rec: &mut R,
) {
    let budget = 20 * k.max(1);
    for _ in 0..budget {
        if out.removed.len() >= k || dw.len() <= 1 {
            break;
        }
        let victim = NodeId(dw.editor().live_ids()[rng.gen_range(0..dw.len())]);
        if dw.can_remove(victim) {
            dw.remove_with(victim, rec);
            out.removed.push(victim);
        }
    }
}

/// Crashes up to `k` amoebots around a random epicenter, nearest-first.
/// Removability changes as the burst eats inward, so the candidate window
/// is rescanned a bounded number of passes.
fn crash_burst<R: Recorder>(
    dw: &mut DynamicWorld,
    rng: &mut StdRng,
    k: usize,
    out: &mut AppliedEvent,
    rec: &mut R,
) {
    let epicenter = {
        let id = dw.editor().live_ids()[rng.gen_range(0..dw.len())];
        dw.editor().coord(NodeId(id))
    };
    // Nearest-first candidate window, a few times the burst size: far
    // cells are irrelevant to a localized crash.
    let mut candidates: Vec<(u32, u32)> = dw
        .editor()
        .live_ids()
        .iter()
        .map(|&id| (dw.editor().coord(NodeId(id)).grid_distance(epicenter), id))
        .collect();
    candidates.sort_unstable();
    candidates.truncate((8 * k.max(1)).min(candidates.len()));
    for _pass in 0..4 {
        let before = out.removed.len();
        for &(_, id) in &candidates {
            if out.removed.len() >= k || dw.len() <= 1 {
                return;
            }
            let v = NodeId(id);
            if dw.editor().is_alive(v) && dw.can_remove(v) {
                dw.remove_with(v, rec);
                out.removed.push(v);
            }
        }
        if out.removed.len() == before {
            return; // nothing in the window is removable anymore
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::verify_against_rebuild;
    use amoebot_grid::{shapes, AmoebotStructure};

    fn dynamic_blob(n: usize, seed: u64, c: usize) -> DynamicWorld {
        let s = AmoebotStructure::new(shapes::random_blob(n, &mut crate::derive_rng(seed, 99)))
            .unwrap();
        DynamicWorld::new(&s, c)
    }

    #[test]
    fn schedules_are_deterministic() {
        for family in ALL_CHURN_FAMILIES {
            let plan = ChurnPlan::new(42, family, 4, 3);
            let mut a = dynamic_blob(24, 1, 1);
            let mut b = dynamic_blob(24, 1, 1);
            for e in 0..plan.events {
                assert_eq!(
                    plan.apply(&mut a, e),
                    plan.apply(&mut b, e),
                    "{family:?} event {e} diverged"
                );
            }
            assert_eq!(a.len(), b.len());
        }
    }

    #[test]
    fn families_move_the_population_as_advertised() {
        let mut grow = dynamic_blob(20, 2, 1);
        let plan = ChurnPlan::new(7, ChurnFamily::BoundaryGrowth, 3, 4);
        for e in 0..3 {
            plan.apply(&mut grow, e);
        }
        assert_eq!(grow.len(), 20 + 12, "growth attaches its full budget");

        let mut shrink = dynamic_blob(30, 2, 1);
        let plan = ChurnPlan::new(7, ChurnFamily::RandomDetach, 3, 4);
        for e in 0..3 {
            plan.apply(&mut shrink, e);
        }
        assert!(shrink.len() < 30, "detach removes nodes");
        assert!(!shrink.is_empty());

        let mut burst = dynamic_blob(40, 5, 1);
        let plan = ChurnPlan::new(9, ChurnFamily::CrashBursts, 1, 6);
        let applied = plan.apply(&mut burst, 0);
        assert!(!applied.removed.is_empty(), "burst crashes someone");
        assert_eq!(burst.len(), 40 - applied.removed.len());
    }

    #[test]
    fn grow_shrink_alternates_and_stays_valid() {
        let mut dw = dynamic_blob(24, 8, 2);
        let plan = ChurnPlan::new(13, ChurnFamily::GrowShrink, 6, 3);
        for e in 0..plan.events {
            let applied = plan.apply(&mut dw, e);
            if e % 2 == 0 {
                assert!(applied.removed.is_empty());
                assert!(!applied.inserted.is_empty());
            } else {
                assert!(applied.inserted.is_empty());
            }
            verify_against_rebuild(&dw).unwrap_or_else(|e| panic!("oracle divergence: {e}"));
        }
        let (snapshot, _) = dw.editor().snapshot();
        assert!(snapshot.is_hole_free());
    }

    #[test]
    #[should_panic(expected = "outside the schedule")]
    fn event_index_is_bounded() {
        let mut dw = dynamic_blob(10, 0, 1);
        ChurnPlan::new(0, ChurnFamily::BoundaryGrowth, 2, 1).apply(&mut dw, 2);
    }
}
