//! Deterministic seeded fault schedules — the composable adversary.
//!
//! A [`FaultPlan`] generalizes [`ChurnPlan`](crate::ChurnPlan) from node
//! churn to the softer failure classes the paper's primitives must
//! survive in deployment: beep loss and spurious beeps on the wire
//! ([`TickFaults`]), stuck-at pin faults (hardware that stopped obeying
//! `set_pin`), non-fair scheduling (an activation mask that starves
//! chosen nodes), and crash-recovery (a node returns with wiped circuit
//! state and must rejoin).
//!
//! The determinism contract is the churn plan's, verbatim: event `i`'s
//! randomness derives from `(seed, i)` alone, so a failed
//! self-stabilization check is reproducible from the fault-plan seed and
//! the event index in the FAIL line — no earlier events' randomness is
//! needed.
//!
//! Unlike churn, a fault event does not mutate the structure by itself:
//! [`FaultPlan::stage`] *arms* the adversary for one round and returns a
//! [`StagedFault`] the harness threads through the tick — beep faults go
//! to [`World::tick_faulted`](amoebot_circuits::World::tick_faulted),
//! the activation mask gates which nodes get to act, and wiped nodes are
//! rebooted by the algorithm layer. Stuck-at faults are the exception:
//! they are armed directly in the [`World`](amoebot_circuits::World)
//! (that is where the frozen value must win every write), which also
//! makes them part of the world's SPFS snapshot — a mid-fault
//! kill/restart comes back with the hardware still broken.

use amoebot_circuits::TickFaults;
use amoebot_grid::NodeId;
use amoebot_telemetry::{NullRecorder, Recorder};
use rand::rngs::StdRng;
use rand::Rng;

use crate::world::DynamicWorld;

/// The fault schedule families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultFamily {
    /// Every event silences `per_event` random nodes on the wire: any
    /// beep they send this round is dropped before delivery.
    LossyBeeps,
    /// Every event injects a spurious beep on a random partition set of
    /// `per_event` random nodes.
    SpuriousBeeps,
    /// Events 0..n-1 each freeze `per_event` random pins at a random
    /// partition set; the final event releases every stuck pin (the
    /// burst ends, recovery begins).
    StuckPins,
    /// Every event starves the region around a random epicenter: the
    /// nearest `min(live/2, 4·per_event)` nodes lose their activation.
    StarveRegion,
    /// Non-fair scheduling in its crudest form: even events starve the
    /// lower half of the live ids, odd events the upper half.
    AlternateHalves,
    /// Even events inject spurious-beep bursts; odd events silence the
    /// entire structure (no node acts at all).
    BurstsThenSilence,
    /// Every event crash-recovers `per_event` random nodes: their
    /// circuit state is wiped to singletons and they miss the round;
    /// the algorithm layer must reboot them into the protocol.
    CrashRecover,
}

/// All fault families, for seeded menu picks.
pub const ALL_FAULT_FAMILIES: [FaultFamily; 7] = [
    FaultFamily::LossyBeeps,
    FaultFamily::SpuriousBeeps,
    FaultFamily::StuckPins,
    FaultFamily::StarveRegion,
    FaultFamily::AlternateHalves,
    FaultFamily::BurstsThenSilence,
    FaultFamily::CrashRecover,
];

impl FaultFamily {
    /// Stable label for scenario names and FAIL lines.
    pub fn label(&self) -> &'static str {
        match self {
            FaultFamily::LossyBeeps => "lossy",
            FaultFamily::SpuriousBeeps => "spurious",
            FaultFamily::StuckPins => "stuckpin",
            FaultFamily::StarveRegion => "starve",
            FaultFamily::AlternateHalves => "althalves",
            FaultFamily::BurstsThenSilence => "burstsilence",
            FaultFamily::CrashRecover => "crashrecover",
        }
    }

    /// Inverse of [`FaultFamily::label`] (for wire formats and CLIs).
    pub fn from_label(label: &str) -> Option<FaultFamily> {
        ALL_FAULT_FAMILIES
            .iter()
            .copied()
            .find(|f| f.label() == label)
    }
}

/// One round's worth of armed adversary, staged by
/// [`FaultPlan::stage`]. The harness consumes it in tick order: reboot
/// `wiped` nodes, let every node passing [`StagedFault::is_active`] act,
/// then tick through
/// [`World::tick_faulted`](amoebot_circuits::World::tick_faulted) with
/// `ticks`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StagedFault {
    /// Beep-level faults for this round's tick (sorted, ready to hand to
    /// the engine).
    pub ticks: TickFaults,
    /// Live node ids whose activation the scheduler withholds this
    /// round, sorted ascending.
    pub inactive: Vec<u32>,
    /// Nodes crash-recovered this event: their pins were wiped to
    /// singletons (circuit state lost) and they are also in `inactive`
    /// for this round. The algorithm layer owns wiping its own per-node
    /// state and re-running its join protocol.
    pub wiped: Vec<NodeId>,
    /// Stuck-at pin faults armed by this event.
    pub stuck_armed: u32,
    /// Stuck-at pin faults released by this event (the burst-end event
    /// of [`FaultFamily::StuckPins`] releases all of them).
    pub stuck_released: u32,
}

impl StagedFault {
    /// Whether the adversarial scheduler lets node `v` act this round.
    #[inline]
    pub fn is_active(&self, v: u32) -> bool {
        self.inactive.binary_search(&v).is_err()
    }

    /// Whether this event armed nothing at all.
    pub fn is_empty(&self) -> bool {
        self.ticks.is_empty()
            && self.inactive.is_empty()
            && self.wiped.is_empty()
            && self.stuck_armed == 0
            && self.stuck_released == 0
    }
}

/// A deterministic fault schedule: `events` events of roughly
/// `per_event` faults each, drawn from `family`'s distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Schedule seed; event `i` uses randomness derived from `(seed, i)`
    /// only.
    pub seed: u64,
    /// The fault distribution.
    pub family: FaultFamily,
    /// Number of events in the schedule.
    pub events: usize,
    /// Target faults per event (a best effort on small structures).
    pub per_event: usize,
}

impl FaultPlan {
    /// A plan with `events` events of `per_event` faults.
    pub fn new(seed: u64, family: FaultFamily, events: usize, per_event: usize) -> FaultPlan {
        FaultPlan {
            seed,
            family,
            events,
            per_event,
        }
    }

    /// Stages event `index` (0-based) against `dw`: arms stuck-at faults
    /// in the world, wipes crash-recovered nodes' pins, and returns the
    /// beep faults and activation mask for this round's tick.
    /// Deterministic in `(self, index, current structure)`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.events`.
    pub fn stage(&self, dw: &mut DynamicWorld, index: usize) -> StagedFault {
        self.stage_with(dw, index, &mut NullRecorder)
    }

    /// [`FaultPlan::stage`] with the event tagged into a trace (beep
    /// drops and injections are additionally attributed per-gid by the
    /// faulted tick itself).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.events`.
    pub fn stage_with<R: Recorder>(
        &self,
        dw: &mut DynamicWorld,
        index: usize,
        rec: &mut R,
    ) -> StagedFault {
        assert!(index < self.events, "event {index} outside the schedule");
        let mut rng = crate::derive_rng(self.seed, index as u64);
        let mut out = StagedFault::default();
        match self.family {
            FaultFamily::LossyBeeps => lossy(dw, &mut rng, self.per_event, &mut out),
            FaultFamily::SpuriousBeeps => spurious(dw, &mut rng, self.per_event, &mut out),
            FaultFamily::StuckPins => {
                if index + 1 == self.events {
                    out.stuck_released = dw.world_mut().release_stuck_pins() as u32;
                } else {
                    stick(dw, &mut rng, self.per_event, &mut out);
                }
            }
            FaultFamily::StarveRegion => starve_region(dw, &mut rng, self.per_event, &mut out),
            FaultFamily::AlternateHalves => alternate_halves(dw, index, &mut out),
            FaultFamily::BurstsThenSilence => {
                if index.is_multiple_of(2) {
                    spurious(dw, &mut rng, self.per_event, &mut out);
                } else {
                    out.inactive = dw.editor().live_ids().to_vec();
                    out.inactive.sort_unstable();
                }
            }
            FaultFamily::CrashRecover => crash_recover(dw, &mut rng, self.per_event, &mut out),
        }
        out.ticks.drop.sort_unstable();
        out.ticks.drop.dedup();
        out.ticks.inject.sort_unstable();
        out.ticks.inject.dedup();
        if R::TRACE {
            rec.fault_tag(
                index as u32,
                out.ticks.drop.len() as u32,
                out.ticks.inject.len() as u32,
                out.inactive.len() as u32,
                out.wiped.len() as u32,
            );
        }
        out
    }
}

/// Up to `k` distinct random live node ids (best effort, like the churn
/// helpers' bounded retry budget).
fn pick_nodes(dw: &DynamicWorld, rng: &mut StdRng, k: usize) -> Vec<u32> {
    let live = dw.editor().live_ids();
    let mut picked: Vec<u32> = Vec::with_capacity(k);
    let budget = 20 * k.max(1);
    for _ in 0..budget {
        if picked.len() >= k {
            break;
        }
        let id = live[rng.gen_range(0..live.len())];
        if !picked.contains(&id) {
            picked.push(id);
        }
    }
    picked
}

/// Drops every beep `k` random nodes send this round (all their
/// partition-set gids go on the drop list).
fn lossy(dw: &mut DynamicWorld, rng: &mut StdRng, k: usize, out: &mut StagedFault) {
    for v in pick_nodes(dw, rng, k) {
        let v = v as usize;
        let cap = dw.world().pset_capacity(v);
        out.ticks
            .drop
            .extend((0..cap).map(|p| dw.world().pset_global_id(v, p as u16)));
    }
}

/// Injects one spurious beep on a random partition set of `k` random
/// nodes.
fn spurious(dw: &mut DynamicWorld, rng: &mut StdRng, k: usize, out: &mut StagedFault) {
    for v in pick_nodes(dw, rng, k) {
        let v = v as usize;
        let cap = dw.world().pset_capacity(v);
        let pset = rng.gen_range(0..cap) as u16;
        out.ticks.inject.push(dw.world().pset_global_id(v, pset));
    }
}

/// Freezes one random pin of each of `k` random nodes at a random
/// partition set.
fn stick(dw: &mut DynamicWorld, rng: &mut StdRng, k: usize, out: &mut StagedFault) {
    let c = dw.world().links_per_edge();
    for v in pick_nodes(dw, rng, k) {
        let v = v as usize;
        let port = rng.gen_range(0..6);
        let link = rng.gen_range(0..c);
        let pset = rng.gen_range(0..dw.world().pset_capacity(v)) as u16;
        dw.world_mut().stick_pin(v, port, link, pset);
        out.stuck_armed += 1;
    }
}

/// Starves the nearest `min(live/2, 4·k)` nodes around a random
/// epicenter (the spatial mirror of the churn crash burst, without the
/// crashes).
fn starve_region(dw: &mut DynamicWorld, rng: &mut StdRng, k: usize, out: &mut StagedFault) {
    let live = dw.editor().live_ids();
    let epicenter = {
        let id = live[rng.gen_range(0..live.len())];
        dw.editor().coord(NodeId(id))
    };
    let mut candidates: Vec<(u32, u32)> = live
        .iter()
        .map(|&id| (dw.editor().coord(NodeId(id)).grid_distance(epicenter), id))
        .collect();
    candidates.sort_unstable();
    let starve = (4 * k.max(1)).min(live.len() / 2);
    out.inactive = candidates[..starve].iter().map(|&(_, id)| id).collect();
    out.inactive.sort_unstable();
}

/// Starves the lower half of the sorted live ids on even events, the
/// upper half on odd ones.
fn alternate_halves(dw: &DynamicWorld, index: usize, out: &mut StagedFault) {
    let mut ids = dw.editor().live_ids().to_vec();
    ids.sort_unstable();
    let mid = ids.len() / 2;
    out.inactive = if index.is_multiple_of(2) {
        ids[..mid].to_vec()
    } else {
        ids[mid..].to_vec()
    };
}

/// Crash-recovers `k` random nodes: pins wiped to singletons, the round
/// missed. The structure itself is untouched — unlike churn, the node
/// never leaves; it just forgets.
fn crash_recover(dw: &mut DynamicWorld, rng: &mut StdRng, k: usize, out: &mut StagedFault) {
    for v in pick_nodes(dw, rng, k) {
        dw.world_mut().singleton_pin_config(v as usize);
        out.wiped.push(NodeId(v));
        out.inactive.push(v);
    }
    out.inactive.sort_unstable();
    out.wiped.sort_unstable_by_key(|v| v.index());
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoebot_grid::{shapes, AmoebotStructure};

    fn dynamic_blob(n: usize, seed: u64, c: usize) -> DynamicWorld {
        let s = AmoebotStructure::new(shapes::random_blob(n, &mut crate::derive_rng(seed, 99)))
            .unwrap();
        DynamicWorld::new(&s, c)
    }

    #[test]
    fn labels_round_trip() {
        for f in ALL_FAULT_FAMILIES {
            assert_eq!(FaultFamily::from_label(f.label()), Some(f));
        }
        assert_eq!(FaultFamily::from_label("nosuch"), None);
    }

    #[test]
    fn schedules_are_deterministic() {
        for family in ALL_FAULT_FAMILIES {
            let plan = FaultPlan::new(42, family, 4, 3);
            let mut a = dynamic_blob(24, 1, 2);
            let mut b = dynamic_blob(24, 1, 2);
            for e in 0..plan.events {
                assert_eq!(
                    plan.stage(&mut a, e),
                    plan.stage(&mut b, e),
                    "{family:?} event {e} diverged"
                );
            }
            assert_eq!(
                a.world().snapshot_bytes(),
                b.world().snapshot_bytes(),
                "{family:?} left the twin worlds different"
            );
        }
    }

    #[test]
    fn lossy_drops_whole_nodes_and_spurious_injects() {
        let mut dw = dynamic_blob(20, 3, 2);
        let cap = dw.world().pset_capacity(dw.editor().live_ids()[0] as usize);
        let staged = FaultPlan::new(7, FaultFamily::LossyBeeps, 2, 2).stage(&mut dw, 0);
        assert_eq!(
            staged.ticks.drop.len(),
            2 * cap,
            "two nodes, all their gids"
        );
        assert!(staged.ticks.drop.windows(2).all(|w| w[0] < w[1]), "sorted");
        let staged = FaultPlan::new(7, FaultFamily::SpuriousBeeps, 2, 3).stage(&mut dw, 0);
        assert_eq!(staged.ticks.inject.len(), 3);
    }

    #[test]
    fn stuckpin_arms_then_the_final_event_releases() {
        let mut dw = dynamic_blob(20, 4, 2);
        let plan = FaultPlan::new(11, FaultFamily::StuckPins, 4, 2);
        let mut armed = 0;
        for e in 0..plan.events - 1 {
            armed += plan.stage(&mut dw, e).stuck_armed;
        }
        assert!(armed >= 2, "events before the last arm pins");
        assert_eq!(dw.world().stuck_pin_count() as u32, armed);
        let last = plan.stage(&mut dw, plan.events - 1);
        assert_eq!(last.stuck_released, armed);
        assert_eq!(dw.world().stuck_pin_count(), 0);
    }

    #[test]
    fn starvation_masks_are_bounded_and_alternate() {
        let mut dw = dynamic_blob(30, 5, 1);
        let staged = FaultPlan::new(3, FaultFamily::StarveRegion, 2, 2).stage(&mut dw, 0);
        assert!(!staged.inactive.is_empty());
        assert!(
            staged.inactive.len() <= dw.len() / 2,
            "starvation is partial"
        );
        assert!(staged.inactive.iter().all(|&v| !staged.is_active(v)));

        let plan = FaultPlan::new(3, FaultFamily::AlternateHalves, 2, 1);
        let even = plan.stage(&mut dw, 0);
        let odd = plan.stage(&mut dw, 1);
        assert_eq!(even.inactive.len() + odd.inactive.len(), dw.len());
        assert!(
            even.inactive.iter().all(|v| odd.is_active(*v)),
            "halves are disjoint"
        );
    }

    #[test]
    fn bursts_then_silence_silences_everyone_on_odd_events() {
        let mut dw = dynamic_blob(16, 6, 1);
        let plan = FaultPlan::new(9, FaultFamily::BurstsThenSilence, 2, 2);
        let even = plan.stage(&mut dw, 0);
        assert!(!even.ticks.inject.is_empty());
        assert!(even.inactive.is_empty());
        let odd = plan.stage(&mut dw, 1);
        assert_eq!(odd.inactive.len(), dw.len(), "silence means everyone");
        assert!(odd.ticks.is_empty());
    }

    #[test]
    fn crash_recover_wipes_pins_and_misses_the_round() {
        let mut dw = dynamic_blob(18, 7, 2);
        let n = dw.editor().live_ids().to_vec();
        for &v in &n {
            dw.world_mut().global_pin_config(v as usize);
        }
        let staged = FaultPlan::new(5, FaultFamily::CrashRecover, 1, 3).stage(&mut dw, 0);
        assert_eq!(staged.wiped.len(), 3);
        for v in &staged.wiped {
            assert!(!staged.is_active(v.index() as u32));
            // Wiped back to singletons: pin (1, 0) sits in its own set.
            assert_eq!(
                dw.world().pin_config(v.index(), 1, 0),
                dw.world().links_per_edge() as u16
            );
        }
    }

    #[test]
    #[should_panic(expected = "outside the schedule")]
    fn event_index_is_bounded() {
        let mut dw = dynamic_blob(10, 0, 1);
        FaultPlan::new(0, FaultFamily::LossyBeeps, 2, 1).stage(&mut dw, 2);
    }
}
