//! Differential suite for the region-scoped relabel: random topologies,
//! random *partial* reconfigurations between ticks — a few nodes, often a
//! few pins of a node — so most dirty ticks exercise the region path
//! rather than the global fallback. Every round is checked against the
//! full-recompute [`World::tick_reference`] engine and a naive
//! circuit-count oracle, and the relabel-path counters are pinned so the
//! region path cannot silently degrade into always-global (which would
//! make this whole suite vacuous).
//!
//! Also covered deterministically: no-op writes keeping the next tick on
//! the clean path, and the everything-dirty global-relabel fallback.

use amoebot_circuits::{BitSet, Topology, World};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random connected topology: a random tree plus up to `extra` edges.
fn random_topology(rng: &mut StdRng, n: usize, extra: usize) -> Topology {
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for v in 1..n {
        edges.push((rng.gen_range(0..v), v));
    }
    for _ in 0..extra {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        let e = (u.min(v), u.max(v));
        if u != v && !edges.contains(&e) {
            edges.push(e);
        }
    }
    Topology::from_edges(n, &edges)
}

/// Test-local shadow of the pin configuration for the naive oracle.
struct Shadow {
    c: usize,
    pset: Vec<Vec<u16>>,
}

impl Shadow {
    fn new(world: &World) -> Shadow {
        let c = world.links_per_edge();
        let pset = (0..world.topology().len())
            .map(|v| {
                (0..world.topology().ports_len(v) * c)
                    .map(|i| i as u16)
                    .collect()
            })
            .collect();
        Shadow { c, pset }
    }

    /// Naive circuit count, independent of both engines under test.
    #[allow(clippy::needless_range_loop)] // `v` also indexes `base[w]`
    fn circuit_count(&self, topo: &Topology) -> usize {
        let mut base = vec![0usize];
        let mut acc = 0usize;
        for v in 0..topo.len() {
            acc += topo.ports_len(v) * self.c;
            base.push(acc);
        }
        let mut parent: Vec<usize> = (0..acc).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for v in 0..topo.len() {
            for (p, w, q) in topo.neighbors(v) {
                if v < w {
                    for link in 0..self.c {
                        let a = base[v] + self.pset[v][p * self.c + link] as usize;
                        let b = base[w] + self.pset[w][q * self.c + link] as usize;
                        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                        if ra != rb {
                            parent[ra.max(rb)] = ra.min(rb);
                        }
                    }
                }
            }
        }
        let mut roots = BitSet::new(acc);
        for v in 0..topo.len() {
            for pin in 0..topo.ports_len(v) * self.c {
                roots.set(find(&mut parent, base[v] + self.pset[v][pin] as usize));
            }
        }
        roots.ones().count()
    }
}

/// One partial reconfiguration: a few pins of one node move (through the
/// per-pin path), or one node's whole config moves (bulk path).
fn reconfigure_node(
    rng: &mut StdRng,
    inc: &mut World,
    reference: &mut World,
    shadow: &mut Shadow,
    v: usize,
) {
    let cap = inc.pset_capacity(v);
    if cap == 0 {
        return;
    }
    let c = inc.links_per_edge();
    match rng.gen_range(0..4u32) {
        0 => {
            inc.global_pin_config(v);
            reference.global_pin_config(v);
            shadow.pset[v].iter_mut().for_each(|p| *p = 0);
        }
        1 => {
            inc.singleton_pin_config(v);
            reference.singleton_pin_config(v);
            for (i, p) in shadow.pset[v].iter_mut().enumerate() {
                *p = i as u16;
            }
        }
        _ => {
            // A few individual pins only: the sparse per-pin path.
            for _ in 0..rng.gen_range(1..=3usize) {
                let i = rng.gen_range(0..cap);
                let (port, link) = (i / c, i % c);
                let pset = rng.gen_range(0..cap) as u16;
                inc.set_pin(v, port, link, pset);
                reference.set_pin(v, port, link, pset);
                shadow.pset[v][i] = pset;
            }
        }
    }
}

/// Runs `rounds` rounds of sparse reconfigurations + beeps, checking the
/// incremental engine against the reference engine and the oracle.
fn run_sparse(seed: u64, n: usize, c: usize, extra: usize, rounds: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let topo = random_topology(&mut rng, n, extra);
    let mut inc = World::new(topo, c);
    let mut reference = inc.clone();
    let mut shadow = Shadow::new(&inc);

    for round in 0..rounds {
        // Sparse partial reconfiguration: k ≪ n nodes, often single pins.
        if rng.gen_bool(0.7) {
            let k = rng.gen_range(1..=3usize.min(n));
            for _ in 0..k {
                let v = rng.gen_range(0..n);
                reconfigure_node(&mut rng, &mut inc, &mut reference, &mut shadow, v);
            }
        }
        // Occasional no-op rewrite: re-store the exact current values.
        // Must not make the labeling dirty on its own.
        if rng.gen_bool(0.3) {
            let was_pending = inc.relabel_pending();
            let v = rng.gen_range(0..n);
            for (i, &pset) in shadow.pset[v].clone().iter().enumerate() {
                inc.set_pin(v, i / c, i % c, pset);
                reference.set_pin(v, i / c, i % c, pset);
            }
            prop_assert_eq!(
                inc.relabel_pending(),
                was_pending,
                "a no-op rewrite made the labeling dirty in round {}",
                round
            );
        }

        let beeps = rng.gen_range(0..=3usize);
        for _ in 0..beeps {
            let v = rng.gen_range(0..n);
            let cap = inc.pset_capacity(v);
            if cap == 0 {
                continue;
            }
            let pset = rng.gen_range(0..cap) as u16;
            inc.beep(v, pset);
            reference.beep(v, pset);
        }

        prop_assert_eq!(
            inc.circuit_count(),
            shadow.circuit_count(inc.topology()),
            "circuit count diverged from the naive oracle in round {}",
            round
        );

        inc.tick();
        reference.tick_reference();

        for v in 0..n {
            prop_assert_eq!(inc.received_any(v), reference.received_any(v));
            for pset in 0..inc.pset_capacity(v) as u16 {
                prop_assert_eq!(
                    inc.received(v, pset),
                    reference.received(v, pset),
                    "delivery diverged at node {} pset {} in round {}",
                    v,
                    pset,
                    round
                );
            }
        }
    }
    // No per-case region-path assertion here: on small random worlds a
    // handful of merges can legitimately grow a circuit past the
    // fallback, making every relabel global. The deterministic
    // `sparse_rounds_relabel_region_scoped` below pins the region path.
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sparse partial reconfigurations: region-scoped relabels must be
    /// indistinguishable from the full recompute, round for round.
    #[test]
    fn region_relabel_matches_reference_under_partial_reconfig(
        seed in 0u64..=u64::MAX,
        n in 9usize..40,
        c in 1usize..4,
        extra in 0usize..10,
    ) {
        run_sparse(seed, n, c, extra, 10);
    }

    /// Tiny worlds (down to a single node) through the same op stream:
    /// the fallback fraction makes most of these globally-relabelled, which is
    /// exactly the path mix they should get.
    #[test]
    fn region_relabel_matches_reference_on_tiny_worlds(
        seed in 0u64..=u64::MAX,
        n in 1usize..9,
        c in 1usize..3,
    ) {
        run_sparse(seed, n, c, 2, 6);
    }
}

/// A no-op reconfiguration (bulk and per-pin) keeps the next tick on the
/// clean path: no relabel of either flavor runs.
#[test]
fn noop_reconfig_keeps_the_clean_path() {
    let topo = Topology::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
    let mut w = World::new(topo, 2);
    for v in 0..6 {
        w.global_pin_config(v);
    }
    w.tick();
    let (global, region) = (w.global_relabels(), w.region_relabels());
    assert!(!w.relabel_pending(), "tick must leave the labeling clean");
    // Re-apply the exact same configuration through every mutation path.
    for v in 0..6 {
        w.global_pin_config(v);
        w.global_link_config(v, 0); // pins on link 0 already hold pset 0
        for i in 0..w.pset_capacity(v) {
            w.set_pin(v, i / 2, i % 2, 0);
        }
    }
    assert!(
        !w.relabel_pending(),
        "no-op reconfiguration must not dirty the labeling"
    );
    w.beep(0, 0);
    w.tick();
    assert_eq!(
        (w.global_relabels(), w.region_relabels()),
        (global, region),
        "the no-op round must not relabel at all"
    );
    assert!(w.received(5, 0), "the cached circuit still delivers");
}

/// A sparse reconfiguration takes the region path; reconfiguring (almost)
/// everything falls back to the global relabel.
#[test]
fn sparse_uses_region_path_and_everything_dirty_falls_back() {
    let n = 64;
    let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    let mut w = World::new(Topology::from_edges(n, &edges), 2);
    w.tick(); // initial labeling: global by construction
    assert_eq!((w.global_relabels(), w.region_relabels()), (1, 0));
    // One node regroups two pins: far below the fallback fraction.
    w.set_pin(20, 0, 0, 0);
    w.set_pin(20, 1, 0, 0);
    w.tick();
    assert_eq!(
        (w.global_relabels(), w.region_relabels()),
        (1, 1),
        "a sparse reconfiguration must relabel region-scoped"
    );
    // Every node reconfigures: past the fallback threshold.
    for v in 0..n {
        w.global_pin_config(v);
    }
    w.tick();
    assert_eq!(
        (w.global_relabels(), w.region_relabels()),
        (2, 1),
        "an everything-dirty round must fall back to the global relabel"
    );
    // And the labeling is correct either way: the global config spans all.
    w.beep(0, 0);
    w.tick();
    assert!(w.received(n - 1, 0));
}

/// `tick_reference` invalidates the incremental bookkeeping wholesale;
/// the next incremental tick must relabel globally, then settle back
/// into region-scoped relabels.
#[test]
fn reference_tick_forces_a_global_relabel() {
    let edges: Vec<(usize, usize)> = (0..15).map(|i| (i, i + 1)).collect();
    let topo = Topology::from_edges(16, &edges);
    // Default singleton configuration: circuits stay per-edge-per-link,
    // far below the fallback fraction, so post-reference relabels can be
    // region-scoped.
    let mut w = World::new(topo, 2);
    w.tick();
    assert_eq!(w.global_relabels(), 1);
    w.tick_reference();
    assert!(
        w.relabel_pending(),
        "reference tick must invalidate the cache"
    );
    w.tick();
    assert_eq!(
        w.global_relabels(),
        2,
        "post-reference relabel must be global"
    );
    // Node 4 bridges its two link-0 pins: a 2-circuit region on a
    // 28-pin world, far below the fallback threshold.
    w.set_pin(4, 0, 0, 0); // no-op: port 0/link 0 already holds pset 0
    w.set_pin(4, 1, 0, 0); // real change: joins the two link-0 circuits
    w.tick();
    assert_eq!(w.region_relabels(), 1, "then region relabels resume");
    assert_eq!(w.global_relabels(), 2);
    // And the merged circuit actually carries a beep across node 4:
    // node 3 beeps on its eastward link-0 pin set (singleton id 2).
    w.beep(3, 2);
    w.tick();
    assert!(w.received(5, 0), "bridged circuit must span nodes 3..=5");
}

/// The region-path differential, pinned deterministically: a world that
/// stays in sparse configurations (singleton base, small regroupings)
/// must relabel region-scoped on (nearly) every dirty round, and still
/// agree with the full-recompute engine on every delivery.
#[test]
fn sparse_rounds_relabel_region_scoped() {
    let n = 64;
    let mut rng = StdRng::seed_from_u64(7);
    let topo = random_topology(&mut rng, n, 12);
    let mut inc = World::new(topo, 2);
    let mut reference = inc.clone();
    inc.tick();
    reference.tick_reference();
    let rounds = 40;
    for round in 0..rounds {
        // 1-2 nodes regroup 1-3 pins each: always a tiny region.
        for _ in 0..rng.gen_range(1..=2usize) {
            let v = rng.gen_range(0..n);
            let cap = inc.pset_capacity(v);
            if cap == 0 {
                continue;
            }
            for _ in 0..rng.gen_range(1..=3usize) {
                let i = rng.gen_range(0..cap);
                let pset = rng.gen_range(0..cap.min(8)) as u16;
                inc.set_pin(v, i / 2, i % 2, pset);
                reference.set_pin(v, i / 2, i % 2, pset);
            }
        }
        let v = rng.gen_range(0..n);
        if inc.pset_capacity(v) > 0 {
            let pset = rng.gen_range(0..inc.pset_capacity(v)) as u16;
            inc.beep(v, pset);
            reference.beep(v, pset);
        }
        inc.tick();
        reference.tick_reference();
        for v in 0..n {
            for pset in 0..inc.pset_capacity(v) as u16 {
                assert_eq!(
                    inc.received(v, pset),
                    reference.received(v, pset),
                    "delivery diverged at node {v} pset {pset} in round {round}"
                );
            }
        }
    }
    assert_eq!(
        inc.global_relabels(),
        1,
        "only the initial labeling may be global"
    );
    assert!(
        inc.region_relabels() >= rounds / 2,
        "sparse rounds must relabel region-scoped (got {})",
        inc.region_relabels()
    );
}
