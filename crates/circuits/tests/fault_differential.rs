//! Differential suite for the adversary arms of the tick engine.
//!
//! The contract under test: `tick_faulted` with [`TickFaults::EMPTY`] is
//! **byte-identical** to `tick_with` (the fault arms compile out of the
//! shared engine), drops suppress delivery without un-sending the beep,
//! injections deliver without a send, stuck-at pins swallow every write
//! path, and all of it round-trips through the SPFS codec and the trace
//! replay verifier.

use amoebot_circuits::{replay_trace, TickFaults, Topology, World};
use amoebot_telemetry::{NullRecorder, Recorder, RoundSummary, TraceWriter};

/// Keeps every round summary for lockstep comparison.
#[derive(Default)]
struct Summaries(Vec<RoundSummary>);

impl Recorder for Summaries {
    const TRACE: bool = true;
    const TIMED: bool = false;
    fn round_end(&mut self, s: &RoundSummary) {
        self.0.push(*s);
    }
}

fn path_world(n: usize, c: usize) -> World {
    let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    World::new(Topology::from_edges(n, &edges), c)
}

/// A world with history: global circuits, delivered beeps, a severed
/// edge (tombstone + free-list entry), and a pending undelivered beep.
fn seasoned_world() -> World {
    let mut w = path_world(9, 2);
    for v in 0..9 {
        w.global_pin_config(v);
    }
    w.beep(0, 0);
    w.tick();
    w.disconnect(4, 1);
    w.tick();
    w.beep(6, 0);
    w
}

#[test]
fn empty_faults_are_byte_identical_to_the_plain_tick() {
    let mut plain = seasoned_world();
    let mut faulted = seasoned_world();
    let (mut a, mut b) = (Summaries::default(), Summaries::default());
    for round in 0..8 {
        plain.beep(round % 9, (round % 2) as u16);
        faulted.beep(round % 9, (round % 2) as u16);
        if round == 4 {
            // Mid-run reconfiguration so both engines take a relabel.
            plain.global_pin_config(2);
            faulted.global_pin_config(2);
        }
        plain.tick_with(&mut a);
        faulted.tick_faulted(&TickFaults::EMPTY, &mut b);
        assert_eq!(
            plain.snapshot_bytes(),
            faulted.snapshot_bytes(),
            "round {round}: empty-fault tick diverged from the plain tick"
        );
    }
    assert_eq!(a.0, b.0);
    assert_eq!(plain.fault_drops(), 0);
    assert_eq!(faulted.fault_drops(), 0);
    assert_eq!(faulted.fault_injects(), 0);
}

#[test]
fn dropped_beeps_count_as_sent_but_never_deliver() {
    let mut w = path_world(5, 1);
    for v in 0..5 {
        w.global_pin_config(v);
    }
    w.beep(0, 0);
    let faults = TickFaults {
        drop: vec![w.pset_global_id(0, 0)],
        inject: Vec::new(),
    };
    w.tick_faulted(&faults, &mut NullRecorder);
    for v in 0..5 {
        assert!(!w.received(v, 0), "node {v} received a dropped beep");
    }
    assert_eq!(w.fault_drops(), 1);
    assert_eq!(
        w.beeps_sent(),
        1,
        "the drop happened on the wire, not at the sender"
    );
    // The drop is per-round: the next beep goes through untouched.
    w.beep(0, 0);
    w.tick();
    assert!(w.received(4, 0));
}

#[test]
fn a_drop_does_not_silence_other_senders_on_the_circuit() {
    let mut w = path_world(4, 1);
    for v in 0..4 {
        w.global_pin_config(v);
    }
    w.beep(0, 0);
    w.beep(3, 0);
    let faults = TickFaults {
        drop: vec![w.pset_global_id(0, 0)],
        inject: Vec::new(),
    };
    w.tick_faulted(&faults, &mut NullRecorder);
    // Node 3's beep still reaches everyone over the same circuit.
    for v in 0..4 {
        assert!(w.received(v, 0));
    }
    assert_eq!(w.fault_drops(), 1);
}

#[test]
fn injected_beeps_deliver_without_a_send() {
    let mut w = path_world(5, 1);
    for v in 0..5 {
        w.global_pin_config(v);
    }
    let faults = TickFaults {
        drop: Vec::new(),
        inject: vec![w.pset_global_id(2, 0)],
    };
    w.tick_faulted(&faults, &mut NullRecorder);
    for v in 0..5 {
        assert!(w.received(v, 0), "node {v} missed the injected beep");
    }
    assert_eq!(w.fault_injects(), 1);
    // Injecting on a gid that also sent is idempotent (one beep).
    w.beep(2, 0);
    let before = w.beeps_sent();
    w.tick_faulted(&faults, &mut NullRecorder);
    assert_eq!(
        w.beeps_sent(),
        before,
        "injecting on a sent gid adds no beep"
    );
    assert_eq!(w.fault_injects(), 1, "a sent gid is not re-injected");
}

#[test]
fn stuck_pins_swallow_single_and_bulk_writes() {
    let mut w = path_world(4, 2);
    for v in 0..4 {
        w.global_pin_config(v);
    }
    w.tick();
    // Freeze pin (0, 1) of node 1 at its singleton set.
    w.stick_pin(1, 0, 1, 1);
    assert!(w.pin_is_stuck(1, 0, 1));
    assert_eq!(w.stuck_pin_count(), 1);
    w.set_pin(1, 0, 1, 0);
    assert_eq!(
        w.pin_config(1, 0, 1),
        1,
        "set_pin wrote through a stuck pin"
    );
    w.global_pin_config(1);
    assert_eq!(
        w.pin_config(1, 0, 1),
        1,
        "bulk config wrote through a stuck pin"
    );
    w.reset_pins_keeping_links(1, &[]);
    assert_eq!(w.pin_config(1, 0, 1), 1);
    w.global_link_config(1, 0);
    assert_eq!(w.pin_config(1, 0, 1), 1);
    // Releasing the fault re-enables writes.
    assert!(w.unstick_pin(1, 0, 1));
    assert!(!w.unstick_pin(1, 0, 1));
    w.set_pin(1, 0, 1, 0);
    assert_eq!(w.pin_config(1, 0, 1), 0);
}

#[test]
fn a_stuck_pin_cuts_the_circuit_until_released() {
    // c = 1 path on the global circuit: freezing node 2's pin 0 at its
    // singleton set splits the broadcast circuit at node 2.
    let mut w = path_world(5, 1);
    for v in 0..5 {
        w.global_pin_config(v);
    }
    w.tick();
    w.stick_pin(2, 0, 0, 0);
    // The freeze itself moved no pin (it was already 0): force the cut.
    w.stick_pin(2, 1, 0, 1);
    w.beep(0, 0);
    w.tick();
    assert!(w.received(1, 0));
    assert!(
        !w.received(4, 0),
        "the cut circuit still delivered past node 2"
    );
    // Release and heal: writes go through again, broadcast resumes.
    assert_eq!(w.release_stuck_pins(), 2);
    w.global_pin_config(2);
    w.beep(0, 0);
    w.tick();
    assert!(w.received(4, 0));
}

#[test]
fn stuck_pins_survive_the_snapshot_round_trip() {
    let mut w = seasoned_world();
    w.stick_pin(3, 0, 1, 1);
    w.stick_pin(5, 1, 0, 2);
    let blob = w.snapshot_bytes();
    let mut restored = World::from_snapshot_bytes(&blob).expect("stuck world must restore");
    assert_eq!(restored.snapshot_bytes(), blob);
    assert_eq!(restored.stuck_pin_count(), 2);
    assert!(restored.pin_is_stuck(3, 0, 1));
    // The restored freeze still filters writes, byte-for-byte like the
    // original.
    w.global_pin_config(3);
    restored.global_pin_config(3);
    w.tick();
    restored.tick();
    assert_eq!(restored.snapshot_bytes(), w.snapshot_bytes());
}

#[test]
fn every_bit_flip_of_a_stuck_snapshot_is_rejected() {
    let mut w = path_world(4, 2);
    for v in 0..4 {
        w.global_pin_config(v);
    }
    w.tick();
    w.stick_pin(0, 0, 0, 0);
    w.stick_pin(2, 1, 1, 3);
    let blob = w.snapshot_bytes();
    for byte in 0..blob.len() {
        for bit in 0..8 {
            let mut bad = blob.clone();
            bad[byte] ^= 1 << bit;
            assert!(
                World::from_snapshot_bytes(&bad).is_err(),
                "flip at byte {byte} bit {bit} was accepted"
            );
        }
    }
}

/// Records a faulted run (drops + injections) and verifies the trace
/// replays clean — the replay verifier understands the fault events.
#[test]
fn faulted_traces_replay_clean() {
    let n = 7;
    let mut w = path_world(n, 2);
    for v in 0..n {
        w.global_pin_config(v);
    }
    let mut rec = TraceWriter::new();
    let node_ports: Vec<u32> = (0..n).map(|v| w.topology().ports_len(v) as u32).collect();
    let mut edges = Vec::new();
    for v in 0..n {
        for (p, u, q) in w.topology().neighbors(v) {
            if v < u {
                edges.push((v as u32, p as u32, u as u32, q as u32));
            }
        }
    }
    rec.topology(2, &node_ports, &edges);
    for round in 0..6 {
        w.beep(round % n, 0);
        let faults = TickFaults {
            drop: if round % 2 == 0 {
                vec![w.pset_global_id(round % n, 0)]
            } else {
                Vec::new()
            },
            inject: if round % 3 == 0 {
                vec![w.pset_global_id((round + 1) % n, 1)]
            } else {
                Vec::new()
            },
        };
        w.tick_faulted(&faults, &mut rec);
    }
    let blob = rec.finish(0);
    let report = replay_trace(&blob).expect("faulted replay must verify");
    assert_eq!(report.rounds, 6);
    assert!(w.fault_drops() >= 3 && w.fault_injects() >= 1);
}

/// Single-bit corruption of a trace with *load-bearing* fault events
/// (drops change delivery) must never verify cleanly, excluding the
/// semantically free wall-clock footer bytes. Inject/fault-tag records
/// are attributions — like churn tags, they carry no replay-verifiable
/// state — so this trace uses drops only.
#[test]
fn faulted_trace_bit_corruption_is_rejected() {
    let mut w = path_world(5, 1);
    for v in 0..5 {
        w.global_pin_config(v);
    }
    let mut rec = TraceWriter::new();
    let node_ports: Vec<u32> = (0..5).map(|v| w.topology().ports_len(v) as u32).collect();
    let mut edges = Vec::new();
    for v in 0..5 {
        for (p, u, q) in w.topology().neighbors(v) {
            if v < u {
                edges.push((v as u32, p as u32, u as u32, q as u32));
            }
        }
    }
    rec.topology(1, &node_ports, &edges);
    for round in 0..4 {
        w.beep(round % 5, 0);
        let faults = TickFaults {
            drop: vec![w.pset_global_id(round % 5, 0)],
            inject: Vec::new(),
        };
        w.tick_faulted(&faults, &mut rec);
    }
    let blob = rec.finish(0);
    assert!(replay_trace(&blob).is_ok());
    // wall_micros == 0 encodes as the single trailing byte.
    let mut clean = 0usize;
    for byte in 0..blob.len() - 1 {
        for bit in 0..8 {
            let mut bad = blob.clone();
            bad[byte] ^= 1 << bit;
            if replay_trace(&bad).is_ok() {
                clean += 1;
            }
        }
    }
    assert_eq!(clean, 0, "{clean} single-bit corruptions verified cleanly");
}
