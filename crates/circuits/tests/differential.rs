//! Differential tests: the incremental circuit engine ([`World::tick`])
//! against the pre-refactor full-recompute engine
//! ([`World::tick_reference`]) and against a naive circuit-count oracle.
//!
//! Both worlds receive byte-identical operation streams — random
//! topologies, random pin regroupings *between* ticks (so the
//! dirty-tracking path is exercised), random beeps — and must agree on
//! every delivered beep and every circuit count, every round.

use amoebot_circuits::{Topology, World};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random connected topology: a random tree over `n` nodes plus up to
/// `extra` additional random edges (duplicates skipped).
fn random_topology(rng: &mut StdRng, n: usize, extra: usize) -> Topology {
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for v in 1..n {
        edges.push((rng.gen_range(0..v), v));
    }
    for _ in 0..extra {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        let e = (u.min(v), u.max(v));
        if u != v && !edges.contains(&e) {
            edges.push(e);
        }
    }
    Topology::from_edges(n, &edges)
}

/// Test-local shadow of the pin configuration, used to compute the
/// expected circuit count independently of either engine.
struct Shadow {
    c: usize,
    /// `pset[v][port * c + link]` = local partition set of that pin.
    pset: Vec<Vec<u16>>,
}

impl Shadow {
    fn new(world: &World) -> Shadow {
        let c = world.links_per_edge();
        let pset = (0..world.topology().len())
            .map(|v| {
                (0..world.topology().ports_len(v) * c)
                    .map(|i| i as u16)
                    .collect()
            })
            .collect();
        Shadow { c, pset }
    }

    /// Naive circuit count: union-find over `(node, pset)` pairs along
    /// every external link, then count the distinct roots of referenced
    /// partition sets. Independent of both engines under test.
    #[allow(clippy::needless_range_loop)] // `v` also indexes `base[w]`
    fn circuit_count(&self, topo: &Topology) -> usize {
        let mut base = vec![0usize];
        let mut acc = 0usize;
        for v in 0..topo.len() {
            acc += topo.ports_len(v) * self.c;
            base.push(acc);
        }
        let total = acc;
        let mut parent: Vec<usize> = (0..total).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for v in 0..topo.len() {
            for (p, w, q) in topo.neighbors(v) {
                if v < w {
                    for link in 0..self.c {
                        let a = base[v] + self.pset[v][p * self.c + link] as usize;
                        let b = base[w] + self.pset[w][q * self.c + link] as usize;
                        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                        if ra != rb {
                            parent[ra.max(rb)] = ra.min(rb);
                        }
                    }
                }
            }
        }
        let mut roots = std::collections::HashSet::new();
        for v in 0..topo.len() {
            for pin in 0..topo.ports_len(v) * self.c {
                roots.insert(find(&mut parent, base[v] + self.pset[v][pin] as usize));
            }
        }
        roots.len()
    }
}

/// Applies one identical operation stream to both worlds and the shadow,
/// then checks that the incremental and reference engines agree on every
/// receive bit and on the circuit count, for `rounds` rounds.
fn run_differential(seed: u64, n: usize, c: usize, extra: usize, rounds: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let topo = random_topology(&mut rng, n, extra);
    let mut inc = World::new(topo, c);
    let mut reference = inc.clone();
    let mut shadow = Shadow::new(&inc);

    for round in 0..rounds {
        // Random regroupings between ticks (sometimes none, so consecutive
        // clean rounds exercise the cached-labeling path).
        if rng.gen_bool(0.6) {
            let nodes = rng.gen_range(1..=n);
            for _ in 0..nodes {
                let v = rng.gen_range(0..n);
                let cap = inc.pset_capacity(v);
                if cap == 0 {
                    continue;
                }
                match rng.gen_range(0..4u32) {
                    0 => {
                        inc.global_pin_config(v);
                        reference.global_pin_config(v);
                        shadow.pset[v].iter_mut().for_each(|p| *p = 0);
                    }
                    1 => {
                        inc.singleton_pin_config(v);
                        reference.singleton_pin_config(v);
                        for (i, p) in shadow.pset[v].iter_mut().enumerate() {
                            *p = i as u16;
                        }
                    }
                    _ => {
                        // Arbitrary per-pin assignment.
                        for port in 0..inc.topology().ports_len(v) {
                            for link in 0..c {
                                let pset = rng.gen_range(0..cap) as u16;
                                inc.set_pin(v, port, link, pset);
                                reference.set_pin(v, port, link, pset);
                                shadow.pset[v][port * c + link] = pset;
                            }
                        }
                    }
                }
            }
        }

        // Random beeps (possibly none: silent rounds must also agree).
        let beeps = rng.gen_range(0..=3usize);
        for _ in 0..beeps {
            let v = rng.gen_range(0..n);
            let cap = inc.pset_capacity(v);
            if cap == 0 {
                continue;
            }
            let pset = rng.gen_range(0..cap) as u16;
            inc.beep(v, pset);
            reference.beep(v, pset);
        }

        let expected_circuits = shadow.circuit_count(inc.topology());
        prop_assert_eq!(
            inc.circuit_count(),
            expected_circuits,
            "circuit count diverged from the naive oracle in round {}",
            round
        );

        inc.tick();
        reference.tick_reference();

        for v in 0..n {
            prop_assert_eq!(
                inc.received_any(v),
                reference.received_any(v),
                "received_any diverged at node {} in round {}",
                v,
                round
            );
            for pset in 0..inc.pset_capacity(v) as u16 {
                prop_assert_eq!(
                    inc.received(v, pset),
                    reference.received(v, pset),
                    "delivery diverged at node {} pset {} in round {}",
                    v,
                    pset,
                    round
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random topologies, regroupings and beeps: the incremental engine
    /// must be indistinguishable from the full-recompute reference.
    #[test]
    fn incremental_engine_matches_reference(
        seed in 0u64..=u64::MAX,
        n in 2usize..24,
        c in 1usize..4,
        extra in 0usize..8,
    ) {
        run_differential(seed, n, c, extra, 8);
    }
}

/// A reconfiguration made *after* a tick (while the cached labeling is
/// clean) must be visible to the very next tick — on both engines.
#[test]
fn reconfiguration_after_clean_ticks_is_not_missed() {
    let topo = Topology::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
    let mut inc = World::new(topo, 2);
    let mut reference = inc.clone();
    for v in 0..5 {
        inc.global_pin_config(v);
        reference.global_pin_config(v);
    }
    // Several clean rounds so the incremental engine settles on its cache.
    for _ in 0..3 {
        inc.beep(0, 0);
        reference.beep(0, 0);
        inc.tick();
        reference.tick_reference();
        assert!(inc.received(4, 0) && reference.received(4, 0));
    }
    // Now node 2 splits the circuit *after* those ticks.
    inc.singleton_pin_config(2);
    reference.singleton_pin_config(2);
    inc.beep(0, 0);
    reference.beep(0, 0);
    inc.tick();
    reference.tick_reference();
    assert!(
        !inc.received_any(4) && !reference.received_any(4),
        "stale cached circuits leaked a beep across the split"
    );
    assert_eq!(inc.received_any(1), reference.received_any(1));
}

/// The two tick flavors can be interleaved on the same world: the
/// reference path keeps the incremental bookkeeping coherent.
#[test]
fn interleaved_tick_flavors_stay_coherent() {
    let topo = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
    let mut w = World::new(topo, 1);
    for v in 0..4 {
        w.global_pin_config(v);
    }
    w.beep(0, 0);
    w.tick_reference();
    assert!(w.received(3, 0));
    // Incremental tick right after a reference tick: the stale deliveries
    // must be cleared and new ones computed on the fresh labeling.
    w.beep(3, 0);
    w.tick();
    assert!(w.received(0, 0));
    w.tick();
    assert!(!w.received_any(0) && !w.received_any(3), "silent round");
}
