//! Differential tests: the incremental circuit engine ([`World::tick`])
//! against the pre-refactor full-recompute engine
//! ([`World::tick_reference`]) and against a naive circuit-count oracle.
//!
//! Both worlds receive byte-identical operation streams — random
//! topologies, random pin regroupings *between* ticks (so the
//! dirty-tracking path is exercised), random beeps — and must agree on
//! every delivered beep and every circuit count, every round.

use amoebot_circuits::{Topology, World};
use amoebot_grid::{AmoebotStructure, Coord, ALL_DIRECTIONS};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random connected topology: a random tree over `n` nodes plus up to
/// `extra` additional random edges (duplicates skipped).
fn random_topology(rng: &mut StdRng, n: usize, extra: usize) -> Topology {
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for v in 1..n {
        edges.push((rng.gen_range(0..v), v));
    }
    for _ in 0..extra {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        let e = (u.min(v), u.max(v));
        if u != v && !edges.contains(&e) {
            edges.push(e);
        }
    }
    Topology::from_edges(n, &edges)
}

/// Test-local shadow of the pin configuration, used to compute the
/// expected circuit count independently of either engine.
struct Shadow {
    c: usize,
    /// `pset[v][port * c + link]` = local partition set of that pin.
    pset: Vec<Vec<u16>>,
}

impl Shadow {
    fn new(world: &World) -> Shadow {
        let c = world.links_per_edge();
        let pset = (0..world.topology().len())
            .map(|v| {
                (0..world.topology().ports_len(v) * c)
                    .map(|i| i as u16)
                    .collect()
            })
            .collect();
        Shadow { c, pset }
    }

    /// Naive circuit count: union-find over `(node, pset)` pairs along
    /// every external link, then count the distinct roots of referenced
    /// partition sets. Independent of both engines under test.
    #[allow(clippy::needless_range_loop)] // `v` also indexes `base[w]`
    fn circuit_count(&self, topo: &Topology) -> usize {
        let mut base = vec![0usize];
        let mut acc = 0usize;
        for v in 0..topo.len() {
            acc += topo.ports_len(v) * self.c;
            base.push(acc);
        }
        let total = acc;
        let mut parent: Vec<usize> = (0..total).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for v in 0..topo.len() {
            for (p, w, q) in topo.neighbors(v) {
                if v < w {
                    for link in 0..self.c {
                        let a = base[v] + self.pset[v][p * self.c + link] as usize;
                        let b = base[w] + self.pset[w][q * self.c + link] as usize;
                        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                        if ra != rb {
                            parent[ra.max(rb)] = ra.min(rb);
                        }
                    }
                }
            }
        }
        let mut roots = std::collections::HashSet::new();
        for v in 0..topo.len() {
            for pin in 0..topo.ports_len(v) * self.c {
                roots.insert(find(&mut parent, base[v] + self.pset[v][pin] as usize));
            }
        }
        roots.len()
    }
}

/// Applies one identical operation stream to both worlds and the shadow,
/// then checks that the incremental and reference engines agree on every
/// receive bit and on the circuit count, for `rounds` rounds.
fn run_differential(seed: u64, n: usize, c: usize, extra: usize, rounds: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let topo = random_topology(&mut rng, n, extra);
    run_differential_on(&mut rng, topo, c, rounds)
}

fn run_differential_on(rng: &mut StdRng, topo: Topology, c: usize, rounds: usize) {
    let n = topo.len();
    let mut inc = World::new(topo, c);
    let mut reference = inc.clone();
    let mut shadow = Shadow::new(&inc);

    for round in 0..rounds {
        // Random regroupings between ticks (sometimes none, so consecutive
        // clean rounds exercise the cached-labeling path).
        if rng.gen_bool(0.6) {
            let nodes = rng.gen_range(1..=n);
            for _ in 0..nodes {
                let v = rng.gen_range(0..n);
                let cap = inc.pset_capacity(v);
                if cap == 0 {
                    continue;
                }
                match rng.gen_range(0..4u32) {
                    0 => {
                        inc.global_pin_config(v);
                        reference.global_pin_config(v);
                        shadow.pset[v].iter_mut().for_each(|p| *p = 0);
                    }
                    1 => {
                        inc.singleton_pin_config(v);
                        reference.singleton_pin_config(v);
                        for (i, p) in shadow.pset[v].iter_mut().enumerate() {
                            *p = i as u16;
                        }
                    }
                    _ => {
                        // Arbitrary per-pin assignment.
                        for port in 0..inc.topology().ports_len(v) {
                            for link in 0..c {
                                let pset = rng.gen_range(0..cap) as u16;
                                inc.set_pin(v, port, link, pset);
                                reference.set_pin(v, port, link, pset);
                                shadow.pset[v][port * c + link] = pset;
                            }
                        }
                    }
                }
            }
        }

        // Random beeps (possibly none: silent rounds must also agree).
        let beeps = rng.gen_range(0..=3usize);
        for _ in 0..beeps {
            let v = rng.gen_range(0..n);
            let cap = inc.pset_capacity(v);
            if cap == 0 {
                continue;
            }
            let pset = rng.gen_range(0..cap) as u16;
            inc.beep(v, pset);
            reference.beep(v, pset);
        }

        let expected_circuits = shadow.circuit_count(inc.topology());
        prop_assert_eq!(
            inc.circuit_count(),
            expected_circuits,
            "circuit count diverged from the naive oracle in round {}",
            round
        );

        inc.tick();
        reference.tick_reference();

        for v in 0..n {
            prop_assert_eq!(
                inc.received_any(v),
                reference.received_any(v),
                "received_any diverged at node {} in round {}",
                v,
                round
            );
            for pset in 0..inc.pset_capacity(v) as u16 {
                prop_assert_eq!(
                    inc.received(v, pset),
                    reference.received(v, pset),
                    "delivery diverged at node {} pset {} in round {}",
                    v,
                    pset,
                    round
                );
            }
        }
    }
}

/// A random connected coordinate set grown by a self-intersecting walk —
/// unlike the blob generator it freely encloses **holes** — with a short
/// eastward tail glued to the lexicographically largest cell so the
/// structure always carries **pendant** (degree-1) nodes. This exercises
/// the SoA storage path on exactly the irregular shapes the dense-grid
/// benchmarks never produce: vacant port slots, degree-1 chains, cells
/// around enclosed pockets.
fn random_holey_structure(rng: &mut StdRng, steps: usize) -> AmoebotStructure {
    let mut cells = vec![Coord::origin()];
    let mut cur = Coord::origin();
    for _ in 0..steps {
        cur = cur.neighbor(ALL_DIRECTIONS[rng.gen_range(0..ALL_DIRECTIONS.len())]);
        cells.push(cur);
    }
    cells.sort_unstable();
    cells.dedup();
    // Pendant tail east of the lexicographic maximum (every tail cell is
    // lexicographically larger still, so the cells are fresh and the tail
    // stays a chain).
    let mut tip = *cells.last().expect("walk is non-empty");
    for _ in 0..3 {
        tip = Coord::new(tip.q + 1, tip.r);
        cells.push(tip);
    }
    AmoebotStructure::new(cells).expect("walks and their tails are connected")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random topologies, regroupings and beeps: the incremental engine
    /// must be indistinguishable from the full-recompute reference.
    /// `n` starts at 1: a single-node world (no edges, no circuits
    /// beyond its own pins) must survive the whole op stream too.
    #[test]
    fn incremental_engine_matches_reference(
        seed in 0u64..=u64::MAX,
        n in 1usize..24,
        c in 1usize..4,
        extra in 0usize..8,
    ) {
        run_differential(seed, n, c, extra, 8);
    }

    /// Structure-derived topologies at irregular shapes: holes, pendant
    /// chains, vacant port slots. The grid worlds the sweeps run are
    /// built exactly this way (`Topology::from_structure`), so the
    /// engines must agree on them as well — including on the single-node
    /// structure (steps = 0), which is all vacant ports.
    #[test]
    fn engines_agree_on_holey_and_pendant_structures(
        seed in 0u64..=u64::MAX,
        steps in 0usize..40,
        c in 1usize..3,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = random_holey_structure(&mut rng, steps);
        run_differential_on(&mut rng, Topology::from_structure(&s), c, 6);
    }
}

/// A deterministic hole: the 6-cell ring around an empty center. Lemma 9
/// fails on structures with holes (the algorithms reject them), but the
/// *simulator* must still be exact on them.
#[test]
fn engines_agree_on_a_ring_with_a_hole() {
    let ring: Vec<Coord> = Coord::origin().neighbors().to_vec();
    let s = AmoebotStructure::new(ring).unwrap();
    assert!(!s.is_hole_free());
    let mut rng = StdRng::seed_from_u64(99);
    run_differential_on(&mut rng, Topology::from_structure(&s), 2, 8);
}

/// The smallest world: one node, no edges. Beeps on its own partition
/// sets must deliver to nothing, the circuit count must equal the number
/// of referenced partition sets, and both engines must agree on all of it.
#[test]
fn single_node_world_ticks_on_both_engines() {
    let s = AmoebotStructure::new([Coord::origin()]).unwrap();
    let mut w = World::new(Topology::from_structure(&s), 2);
    assert_eq!(w.pset_capacity(0), 12); // 6 vacant ports x 2 links
    assert_eq!(w.circuit_count(), 12); // every pin its own singleton circuit
    w.beep(0, 0);
    w.tick();
    // A beep on an isolated partition set is delivered to that set alone.
    assert!(w.received(0, 0));
    assert!(!w.received(0, 1));
    w.tick_reference();
    assert!(!w.received_any(0), "silent round after the beep");
    w.global_pin_config(0);
    assert_eq!(w.circuit_count(), 1);
    w.beep(0, 0);
    w.tick();
    assert!(w.received(0, 0));
    assert_eq!(w.rounds(), 3);
}

/// A reconfiguration made *after* a tick (while the cached labeling is
/// clean) must be visible to the very next tick — on both engines.
#[test]
fn reconfiguration_after_clean_ticks_is_not_missed() {
    let topo = Topology::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
    let mut inc = World::new(topo, 2);
    let mut reference = inc.clone();
    for v in 0..5 {
        inc.global_pin_config(v);
        reference.global_pin_config(v);
    }
    // Several clean rounds so the incremental engine settles on its cache.
    for _ in 0..3 {
        inc.beep(0, 0);
        reference.beep(0, 0);
        inc.tick();
        reference.tick_reference();
        assert!(inc.received(4, 0) && reference.received(4, 0));
    }
    // Now node 2 splits the circuit *after* those ticks.
    inc.singleton_pin_config(2);
    reference.singleton_pin_config(2);
    inc.beep(0, 0);
    reference.beep(0, 0);
    inc.tick();
    reference.tick_reference();
    assert!(
        !inc.received_any(4) && !reference.received_any(4),
        "stale cached circuits leaked a beep across the split"
    );
    assert_eq!(inc.received_any(1), reference.received_any(1));
}

/// The two tick flavors can be interleaved on the same world: the
/// reference path keeps the incremental bookkeeping coherent.
#[test]
fn interleaved_tick_flavors_stay_coherent() {
    let topo = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
    let mut w = World::new(topo, 1);
    for v in 0..4 {
        w.global_pin_config(v);
    }
    w.beep(0, 0);
    w.tick_reference();
    assert!(w.received(3, 0));
    // Incremental tick right after a reference tick: the stale deliveries
    // must be cleared and new ones computed on the fresh labeling.
    w.beep(3, 0);
    w.tick();
    assert!(w.received(0, 0));
    w.tick();
    assert!(!w.received_any(0) && !w.received_any(3), "silent round");
}
