//! Per-phase round accounting for composite algorithms.

use std::fmt;

/// A breakdown of the rounds an algorithm spent, by named phase.
///
/// Algorithms in this workspace return a `RoundReport` alongside their
/// output so the benchmark harness can attribute rounds to the phases named
/// in the paper's lemmas (e.g. "root-and-prune x-axis", "merge level 3").
#[derive(Debug, Clone, Default)]
pub struct RoundReport {
    phases: Vec<(String, u64)>,
}

impl RoundReport {
    /// An empty report.
    pub fn new() -> RoundReport {
        RoundReport::default()
    }

    /// Records that `phase` took `rounds` rounds.
    pub fn record(&mut self, phase: impl Into<String>, rounds: u64) {
        self.phases.push((phase.into(), rounds));
    }

    /// Merges another report into this one, prefixing its phase names.
    pub fn absorb(&mut self, prefix: &str, other: RoundReport) {
        for (phase, rounds) in other.phases {
            self.phases.push((format!("{prefix}/{phase}"), rounds));
        }
    }

    /// Total rounds across all phases.
    pub fn total(&self) -> u64 {
        self.phases.iter().map(|&(_, r)| r).sum()
    }

    /// The recorded phases in order.
    pub fn phases(&self) -> &[(String, u64)] {
        &self.phases
    }
}

impl fmt::Display for RoundReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "total rounds: {}", self.total())?;
        for (phase, rounds) in &self.phases {
            writeln!(f, "  {phase}: {rounds}")?;
        }
        Ok(())
    }
}

/// Measures the rounds a closure spends in a world and records them in a
/// report under `phase`.
pub fn timed<W, T>(
    world: &mut W,
    report: &mut RoundReport,
    phase: &str,
    rounds_of: impl Fn(&W) -> u64,
    body: impl FnOnce(&mut W) -> T,
) -> T {
    let before = rounds_of(world);
    let out = body(world);
    let after = rounds_of(world);
    report.record(phase, after - before);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_display() {
        let mut r = RoundReport::new();
        r.record("a", 3);
        r.record("b", 4);
        assert_eq!(r.total(), 7);
        let mut outer = RoundReport::new();
        outer.absorb("inner", r);
        assert_eq!(outer.total(), 7);
        let s = outer.to_string();
        assert!(s.contains("inner/a"));
        assert!(s.contains("total rounds: 7"));
    }
}
