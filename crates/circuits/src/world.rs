//! The synchronous round simulator.

use crate::topology::{PortId, Topology};

/// A pin reference local to a node: `(port, link)` with `link < c`.
pub type Pin = (PortId, usize);

/// The simulated world: a topology, `c` external links per edge, the current
/// pin configuration of every amoebot, and the beep state.
///
/// One call to [`World::tick`] is one round of the fully synchronous
/// activation model: beeps sent during the current round are delivered (on
/// the *current* pin configurations) at the beginning of the next round,
/// exactly as specified in §1.2 of the paper.
#[derive(Debug, Clone)]
pub struct World {
    topo: Topology,
    c: usize,
    /// Base index of node `v`'s pins/partition-set ids in the global arrays.
    base: Vec<u32>,
    /// Global pin index -> local partition set id of the owning node.
    pin_pset: Vec<u16>,
    /// Partition sets (by global id) that beep this round.
    send: Vec<bool>,
    /// Partition sets (by global id) that received a beep last round.
    recv: Vec<bool>,
    /// Union-find scratch (parents over global partition-set ids).
    uf: Vec<u32>,
    rounds: u64,
    /// Audited rounds charged without simulation (see [`World::charge_rounds`]).
    charged: u64,
    charge_log: Vec<(String, u64)>,
    /// Total beeps sent (diagnostic; the model itself never counts beeps).
    beeps_sent: u64,
}

impl World {
    /// Creates a world over `topo` with `c >= 1` external links per edge.
    /// Every pin starts in its own (singleton) partition set and no beeps are
    /// pending.
    ///
    /// # Panics
    ///
    /// Panics if `c == 0`.
    pub fn new(topo: Topology, c: usize) -> World {
        assert!(c >= 1, "the model requires at least one external link");
        let n = topo.len();
        let mut base = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        for v in 0..n {
            base.push(acc);
            acc += (topo.ports_len(v) * c) as u32;
        }
        base.push(acc);
        let total = acc as usize;
        let mut w = World {
            topo,
            c,
            base,
            pin_pset: vec![0; total],
            send: vec![false; total],
            recv: vec![false; total],
            uf: vec![0; total],
            rounds: 0,
            charged: 0,
            charge_log: Vec::new(),
            beeps_sent: 0,
        };
        for v in 0..w.topo.len() {
            w.singleton_pin_config(v);
        }
        w
    }

    /// The underlying topology.
    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The number of external links per edge.
    #[inline]
    pub fn links_per_edge(&self) -> usize {
        self.c
    }

    /// Number of simulated + charged rounds so far.
    #[inline]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Rounds accounted via [`World::charge_rounds`] (a subset of
    /// [`World::rounds`]); kept separate so the audit trail distinguishes
    /// simulated from charged rounds.
    #[inline]
    pub fn charged_rounds(&self) -> u64 {
        self.charged
    }

    /// The audit log of charged rounds as `(reason, rounds)` entries.
    pub fn charge_log(&self) -> &[(String, u64)] {
        &self.charge_log
    }

    /// Total distinct beeps sent so far (diagnostic instrumentation; one
    /// partition-set activation per round counts once).
    pub fn beeps_sent(&self) -> u64 {
        self.beeps_sent
    }

    #[inline]
    fn pin_gid(&self, v: usize, pin: Pin) -> usize {
        let (port, link) = pin;
        debug_assert!(link < self.c, "link {link} out of range (c = {})", self.c);
        debug_assert!(port < self.topo.ports_len(v), "port {port} out of range");
        self.base[v] as usize + port * self.c + link
    }

    #[inline]
    fn pset_gid(&self, v: usize, pset: u16) -> usize {
        let gid = self.base[v] as usize + pset as usize;
        debug_assert!(
            gid < self.base[v + 1] as usize,
            "partition set {pset} out of range for node {v}"
        );
        gid
    }

    /// Maximum number of partition sets node `v` may use (= its pin count).
    pub fn pset_capacity(&self, v: usize) -> usize {
        (self.base[v + 1] - self.base[v]) as usize
    }

    /// Assigns a single pin of `v` to local partition set `pset`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the pin or partition set is out of range.
    #[inline]
    pub fn set_pin(&mut self, v: usize, port: PortId, link: usize, pset: u16) {
        let gid = self.pin_gid(v, (port, link));
        debug_assert!((pset as usize) < self.pset_capacity(v));
        self.pin_pset[gid] = pset;
    }

    /// Resets `v` to the singleton configuration: pin `(port, link)` goes to
    /// partition set `port * c + link`, so no two pins share a set and every
    /// circuit through `v` connects exactly two neighbors.
    pub fn singleton_pin_config(&mut self, v: usize) {
        for port in 0..self.topo.ports_len(v) {
            for link in 0..self.c {
                let pset = (port * self.c + link) as u16;
                self.set_pin(v, port, link, pset);
            }
        }
    }

    /// Puts all pins of `v` into partition set `0` (the *global circuit*
    /// configuration: if every amoebot does this, the whole structure forms
    /// one circuit).
    pub fn global_pin_config(&mut self, v: usize) {
        for port in 0..self.topo.ports_len(v) {
            for link in 0..self.c {
                self.set_pin(v, port, link, 0);
            }
        }
    }

    /// Groups the given pins of `v` into one partition set and returns its
    /// id. The id is the minimum singleton id (`port * c + link`) of the
    /// members, so disjoint groups never collide — concurrent primitives can
    /// partition a node's pins without central coordination.
    ///
    /// # Panics
    ///
    /// Panics if `pins` is empty.
    pub fn group_pins(&mut self, v: usize, pins: &[Pin]) -> u16 {
        let id = pins
            .iter()
            .map(|&(port, link)| (port * self.c + link) as u16)
            .min()
            .expect("group must contain at least one pin");
        for &(port, link) in pins {
            self.set_pin(v, port, link, id);
        }
        id
    }

    /// Dedicates `link` as a *global broadcast link* on `v`: all of `v`'s
    /// pins on this link join one partition set with the node-independent id
    /// [`World::global_link_pset`]`(link)`. If every node does this (and no
    /// primitive ever touches the reserved link), the link permanently
    /// carries one structure-spanning circuit — used for synchronization
    /// ("anyone still active?") and leader broadcasts without disturbing the
    /// pin configurations of concurrently running primitives.
    pub fn global_link_config(&mut self, v: usize, link: usize) {
        let id = Self::global_link_pset(link);
        for port in 0..self.topo.ports_len(v) {
            self.set_pin(v, port, link, id);
        }
    }

    /// The partition-set id used by [`World::global_link_config`].
    #[inline]
    pub fn global_link_pset(link: usize) -> u16 {
        link as u16
    }

    /// Resets all pins of `v` to singletons except those on the listed
    /// (reserved) links, which are left untouched. Primitives call this when
    /// taking over a node so stale partition sets from earlier phases cannot
    /// leak circuits into the new configuration.
    pub fn reset_pins_keeping_links(&mut self, v: usize, keep: &[usize]) {
        for port in 0..self.topo.ports_len(v) {
            for link in 0..self.c {
                if !keep.contains(&link) {
                    self.set_pin(v, port, link, (port * self.c + link) as u16);
                }
            }
        }
    }

    /// Makes `v` beep on its local partition set `pset` this round.
    #[inline]
    pub fn beep(&mut self, v: usize, pset: u16) {
        let gid = self.pset_gid(v, pset);
        if !self.send[gid] {
            self.beeps_sent += 1;
        }
        self.send[gid] = true;
    }

    /// Whether `v`'s partition set `pset` received a beep delivered at the
    /// beginning of the current round.
    #[inline]
    pub fn received(&self, v: usize, pset: u16) -> bool {
        self.recv[self.pset_gid(v, pset)]
    }

    /// Whether any partition set of `v` received a beep this round.
    pub fn received_any(&self, v: usize) -> bool {
        (self.base[v]..self.base[v + 1]).any(|gid| self.recv[gid as usize])
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.uf[x as usize] != x {
            let gp = self.uf[self.uf[x as usize] as usize];
            self.uf[x as usize] = gp;
            x = gp;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            // Union by id keeps it deterministic; depth is tamed by halving.
            if ra < rb {
                self.uf[rb as usize] = ra;
            } else {
                self.uf[ra as usize] = rb;
            }
        }
    }

    /// Executes one synchronous round: circuits are computed from the current
    /// pin configurations, beeps sent via [`World::beep`] are delivered to
    /// every partition set of their circuit, and the round counter advances.
    pub fn tick(&mut self) {
        let total = self.pin_pset.len();
        for i in 0..total {
            self.uf[i] = i as u32;
        }
        // Union partition sets along every external link.
        for v in 0..self.topo.len() {
            // Visit each undirected edge once.
            let ports: Vec<(PortId, usize, PortId)> = self.topo.neighbors(v).collect();
            for (p, w, q) in ports {
                if v < w {
                    for link in 0..self.c {
                        let a = self.base[v] as usize + p * self.c + link;
                        let b = self.base[w] as usize + q * self.c + link;
                        let pa = self.base[v] + self.pin_pset[a] as u32;
                        let pb = self.base[w] + self.pin_pset[b] as u32;
                        self.union(pa, pb);
                    }
                }
            }
        }
        // Deliver beeps: a circuit beeps iff any of its partition sets sent.
        let mut fresh = vec![false; total];
        for gid in 0..total as u32 {
            if self.send[gid as usize] {
                let root = self.find(gid);
                fresh[root as usize] = true;
            }
        }
        for gid in 0..total as u32 {
            let root = self.find(gid);
            self.recv[gid as usize] = fresh[root as usize];
        }
        self.send.iter_mut().for_each(|b| *b = false);
        self.rounds += 1;
    }

    /// Accounts `k` rounds for a step performed abstractly by the harness
    /// (e.g. a figure-level glue step whose circuit mechanics are not worth
    /// simulating). The charge is recorded in an audit log; the paper's
    /// algorithms in this workspace only charge O(1) glue per composite step.
    pub fn charge_rounds(&mut self, k: u64, reason: &str) {
        self.rounds += k;
        self.charged += k;
        self.charge_log.push((reason.to_string(), k));
    }

    /// Rebates `k` rounds from the counter with an audit-log entry.
    ///
    /// Used for *parallel composition*: when several primitives operate on
    /// vertex-disjoint regions (disjoint circuits), the model runs them in
    /// the same rounds, but the simulator executes them sequentially. The
    /// caller measures each region's span and rebates `sum - max` so the
    /// counter reflects the parallel execution. Every rebate is recorded in
    /// the charge log (as a negative entry) for auditability.
    ///
    /// # Panics
    ///
    /// Panics if rebating more rounds than have elapsed.
    pub fn rebate_rounds(&mut self, k: u64, reason: &str) {
        assert!(
            k <= self.rounds,
            "cannot rebate {k} of {} rounds",
            self.rounds
        );
        self.rounds -= k;
        self.charge_log.push((format!("rebate: {reason}"), k));
    }

    /// Number of distinct circuits under the current pin configuration
    /// (diagnostic; does not advance the round counter).
    pub fn circuit_count(&mut self) -> usize {
        let total = self.pin_pset.len();
        for i in 0..total {
            self.uf[i] = i as u32;
        }
        for v in 0..self.topo.len() {
            let ports: Vec<(PortId, usize, PortId)> = self.topo.neighbors(v).collect();
            for (p, w, q) in ports {
                if v < w {
                    for link in 0..self.c {
                        let a = self.base[v] as usize + p * self.c + link;
                        let b = self.base[w] as usize + q * self.c + link;
                        let pa = self.base[v] + self.pin_pset[a] as u32;
                        let pb = self.base[w] + self.pin_pset[b] as u32;
                        self.union(pa, pb);
                    }
                }
            }
        }
        // Count roots that are actually referenced by some pin.
        let mut is_used = vec![false; total];
        for v in 0..self.topo.len() {
            for port in 0..self.topo.ports_len(v) {
                for link in 0..self.c {
                    let gid = self.base[v] + self.pin_pset[self.pin_gid(v, (port, link))] as u32;
                    is_used[gid as usize] = true;
                }
            }
        }
        let mut roots = std::collections::HashSet::new();
        for gid in 0..total as u32 {
            if is_used[gid as usize] {
                let r = self.find(gid);
                roots.insert(r);
            }
        }
        roots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_world(n: usize, c: usize) -> World {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        World::new(Topology::from_edges(n, &edges), c)
    }

    #[test]
    fn global_circuit_broadcasts() {
        let mut w = path_world(5, 1);
        for v in 0..5 {
            w.global_pin_config(v);
        }
        w.beep(0, 0);
        w.tick();
        for v in 0..5 {
            assert!(w.received(v, 0), "node {v} missed the broadcast");
        }
        assert_eq!(w.rounds(), 1);
        // Without new beeps, the next round is silent.
        w.tick();
        for v in 0..5 {
            assert!(!w.received(v, 0));
        }
    }

    #[test]
    fn singleton_config_reaches_only_neighbors() {
        let mut w = path_world(4, 1);
        // Default singleton config. Node 1 beeps towards node 2 (its port 1).
        let pset = 1; // port 1, link 0 under singleton numbering
        w.beep(1, pset as u16);
        w.tick();
        // Node 2 hears it on its port-0 pin (towards node 1)...
        assert!(w.received(2, 0));
        // ...but node 3 does not, and node 0 does not.
        assert!(!w.received_any(3));
        assert!(!w.received_any(0));
    }

    #[test]
    fn links_are_independent() {
        let mut w = path_world(2, 2);
        // Beep only on link 1 of the single edge.
        let pset_link1 = 1;
        w.beep(0, pset_link1 as u16);
        w.tick();
        assert!(w.received(1, 1)); // link 1 pin
        assert!(!w.received(1, 0)); // link 0 pin silent
    }

    #[test]
    fn split_circuit_blocks_signal() {
        // 0 - 1 - 2: node 1 keeps its two pins in separate sets, so beeps
        // from 0 stop at 1.
        let mut w = path_world(3, 1);
        w.beep(0, 0);
        w.tick();
        assert!(w.received(1, 0));
        assert!(!w.received_any(2));
        // Now node 1 merges its pins into one set; the beep passes through.
        w.set_pin(1, 0, 0, 0);
        w.set_pin(1, 1, 0, 0);
        w.beep(0, 0);
        w.tick();
        assert!(w.received(2, 0));
    }

    #[test]
    fn receiver_cannot_count_origins() {
        let mut w = path_world(3, 1);
        for v in 0..3 {
            w.global_pin_config(v);
        }
        w.beep(0, 0);
        w.beep(2, 0);
        w.tick();
        // One bit only: node 1 sees "a beep", indistinguishable from a single
        // origin — the API exposes just a boolean.
        assert!(w.received(1, 0));
    }

    #[test]
    fn circuit_count_diagnostic() {
        let mut w = path_world(3, 1);
        // Singleton config: circuits are per-edge: 2 circuits.
        assert_eq!(w.circuit_count(), 2);
        for v in 0..3 {
            w.global_pin_config(v);
        }
        assert_eq!(w.circuit_count(), 1);
    }

    #[test]
    fn charge_rounds_is_audited() {
        let mut w = path_world(2, 1);
        w.tick();
        w.charge_rounds(3, "glue");
        assert_eq!(w.rounds(), 4);
        assert_eq!(w.charged_rounds(), 3);
        assert_eq!(w.charge_log().len(), 1);
    }
}

#[cfg(test)]
mod safety_tests {
    use super::*;
    use crate::topology::Topology;

    /// Stale pin groups from an earlier phase must not leak circuits into a
    /// later phase once the node resets its non-reserved pins.
    #[test]
    fn reset_pins_prevents_stale_group_leaks() {
        // 0 - 1 - 2 with c = 3 (link 2 reserved as a global link).
        let edges = [(0usize, 1usize), (1, 2)];
        let mut w = World::new(Topology::from_edges(3, &edges), 3);
        for v in 0..3 {
            w.global_link_config(v, 2);
        }
        // Phase 1: node 1 bridges its two link-0 pins.
        let bridge = w.group_pins(1, &[(0, 0), (1, 0)]);
        w.beep(0, 0);
        w.tick();
        assert!(w.received(2, 0), "bridge active in phase 1");
        let _ = bridge;
        // Phase 2: node 1 resets (keeping the reserved link); the bridge
        // must be gone while the global link still spans the structure.
        w.reset_pins_keeping_links(1, &[2]);
        w.beep(0, 0);
        w.tick();
        assert!(
            !w.received_any(2) || !w.received(2, World::global_link_pset(2)),
            "stale bridge must not leak"
        );
        // The reserved global link still works.
        w.beep(0, World::global_link_pset(2));
        w.tick();
        assert!(w.received(2, World::global_link_pset(2)));
    }

    #[test]
    fn beep_instrumentation_counts_once_per_pset_round() {
        let mut w = World::new(Topology::from_edges(2, &[(0, 1)]), 1);
        assert_eq!(w.beeps_sent(), 0);
        w.beep(0, 0);
        w.beep(0, 0); // duplicate in the same round: counted once
        w.tick();
        assert_eq!(w.beeps_sent(), 1);
        w.beep(1, 0);
        w.tick();
        assert_eq!(w.beeps_sent(), 2);
    }
}
