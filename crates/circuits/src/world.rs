//! The synchronous round simulator.
//!
//! # Engine design
//!
//! The pin *topology* of a world changes only through the explicit
//! structure-mutation calls ([`World::add_node`], [`World::connect`],
//! [`World::disconnect`], [`World::isolate`]); between those, which pin
//! faces which peer pin across an external link is fixed. What changes
//! between rounds is normally only the *pin configuration* (which local
//! partition set each pin belongs to). [`World::new`] therefore
//! precomputes a flat link table of global-pin-index pairs once, and
//! [`World::tick`] maintains a cached circuit labeling guarded by a
//! **dirty-pin set** (dense list + [`BitSet`], mirroring the beep-flag
//! pattern):
//!
//! * any mutation ([`World::set_pin`] and everything built on it) that
//!   actually changes a pin's partition set marks that pin dirty; no-op
//!   writes (the stored value is unchanged) keep the labeling clean;
//! * a dirty tick relabels **region-scoped**: the old circuits touching
//!   any dirty pin's old or new partition set are dissolved back to
//!   singleton union-find entries, only the links incident to members of
//!   that region are re-unioned, and the updated buckets are spliced back
//!   into the membership index — clean circuits keep their labels and
//!   members untouched, so a sparse reconfiguration costs O(affected
//!   circuits · c), not O(total pins). See DESIGN.md §1c for the
//!   stability invariant that makes this sound;
//! * when the dirty region exceeds [`REGION_FALLBACK_FRACTION`] of all
//!   pins (or after [`World::tick_reference`] clobbered the scratch), the
//!   engine falls back to the global relabel — union-find over the whole
//!   link table plus a counting-sort membership rebuild in
//!   O(total pins · α);
//! * a clean tick (no amoebot reconfigured since the last relabel) reuses
//!   the cached labeling and costs O(beeps sent + members of beeping
//!   circuits + deliveries cleared), independent of the structure size.
//!
//! No clean-tick code path allocates: beeps, deliveries and root dedup
//! all go through reusable buffers sized at construction. Both relabel
//! flavors produce the *same* labeling (each circuit is labelled by its
//! minimum member id), so reports never depend on which path ran.
//!
//! Structure mutations ride the same machinery: [`World::connect`] and
//! [`World::disconnect`] splice the link table (tombstoned entries plus a
//! freelist keep `links` compact under grow–shrink cycles) and mark the
//! `c` pin pairs of the edge dirty, so the next relabel dissolves exactly
//! the circuits that ran through the edge — a k-node churn event costs
//! O(k · deg) amortized, not O(n). [`World::add_node`] appends a node
//! with vacant ports and pre-labels its fresh singleton sets, keeping the
//! cached labeling valid without any relabel at all.
//!
//! [`World::tick_reference`] keeps the original full-recompute engine
//! alive verbatim; differential tests and the `circuit_engine` benches pin
//! the incremental engine against it.

use crate::bitset::BitSet;
use crate::topology::{PortId, Topology};
use amoebot_telemetry::{
    mix64, CounterId, Metrics, NullRecorder, Recorder, RelabelKind, RoundSummary, Stopwatch,
    TimerId, BEEP_DIGEST_SALT,
};

/// A pin reference local to a node: `(port, link)` with `link < c`.
pub type Pin = (PortId, usize);

/// A region-scoped relabel falls back to the global recompute when the
/// affected region exceeds `total pins / REGION_FALLBACK_FRACTION`: past
/// a modest fraction of the structure, dissolving and re-unioning the
/// region (bitset checks per link, scattered bucket writes, arena
/// repacks) costs more than the global relabel's straight linear sweeps.
/// Tuned empirically on the PASC-chain workload, whose dirty regions
/// hover around 1/6 of all pins: 1/4 left it ~35% slower than the global
/// path, 1/8 restores parity while every genuinely sparse workload (the
/// DnC forest's portal-scoped phases, percent-level reconfigurations)
/// stays far below the threshold.
pub const REGION_FALLBACK_FRACTION: usize = 8;

/// Vacant-slot sentinel of the per-port edge table.
pub(crate) const NO_EDGE: u32 = u32::MAX;

/// Tombstone of a removed `links` entry (`a0 == u32::MAX` never occurs on
/// a live entry: it would exceed the pin id space).
pub(crate) const DEAD_LINK: (u32, u32, u32, u32) = (u32::MAX, 0, 0, 0);

/// The engine's telemetry registry plus pre-registered handles for the
/// hot-path counters and phase timers, so instrumented code never pays a
/// name lookup. Relabel counters live here (the old `u64` fields are now
/// thin wrappers over the registry); phase timers are populated only
/// when a run drives the engine through a [`Recorder`] with
/// `TIMED = true` — under [`NullRecorder`] the timing code compiles away.
#[derive(Debug, Clone)]
pub(crate) struct EngineStats {
    pub(crate) metrics: Metrics,
    pub(crate) relabel_global: CounterId,
    pub(crate) relabel_region: CounterId,
    pub(crate) fault_drops: CounterId,
    pub(crate) fault_injects: CounterId,
    pub(crate) t_propagate: TimerId,
    pub(crate) t_dissolve: TimerId,
    pub(crate) t_reunion: TimerId,
    pub(crate) t_repack: TimerId,
    pub(crate) t_global: TimerId,
}

impl EngineStats {
    pub(crate) fn new() -> EngineStats {
        let mut m = Metrics::new();
        EngineStats {
            relabel_global: m.counter("relabel_global"),
            relabel_region: m.counter("relabel_region"),
            fault_drops: m.counter("fault_drops"),
            fault_injects: m.counter("fault_injects"),
            t_propagate: m.timer("phase_propagate_micros"),
            t_dissolve: m.timer("phase_region_dissolve_micros"),
            t_reunion: m.timer("phase_region_reunion_micros"),
            t_repack: m.timer("phase_membership_repack_micros"),
            t_global: m.timer("phase_global_relabel_micros"),
            metrics: m,
        }
    }
}

/// One tick's worth of adversarial beep faults, staged by a fault plan
/// and consumed by [`World::tick_faulted`]. Both lists hold partition-set
/// gids and **must be sorted ascending** — the faulted tick binary-searches
/// them per beep.
///
/// The fault-free instance is [`TickFaults::EMPTY`]; `tick`/`tick_with`
/// run through the same monomorphized engine with the fault arm compiled
/// out, so an unarmed adversary costs nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TickFaults {
    /// Gids whose beep — if the algorithm sent one this round — is
    /// suppressed before delivery. The send still counts as a beep (it
    /// left the amoebot; the adversary ate it on the wire), so traces
    /// record it as a `Beep` plus a `FaultDrop` attribution.
    pub drop: Vec<u32>,
    /// Gids forced to beep this round whether or not the algorithm sent
    /// (spurious beeps). Injected before delivery, so they trace as
    /// ordinary `Beep`s plus a `FaultInject` attribution.
    pub inject: Vec<u32>,
}

impl TickFaults {
    /// No faults: what the plain tick paths run under.
    pub const EMPTY: TickFaults = TickFaults {
        drop: Vec::new(),
        inject: Vec::new(),
    };

    /// Whether this stage carries no beep-level faults at all.
    pub fn is_empty(&self) -> bool {
        self.drop.is_empty() && self.inject.is_empty()
    }
}

/// The simulated world: a topology, `c` external links per edge, the current
/// pin configuration of every amoebot, and the beep state.
///
/// One call to [`World::tick`] is one round of the fully synchronous
/// activation model: beeps sent during the current round are delivered (on
/// the *current* pin configurations) at the beginning of the next round,
/// exactly as specified in §1.2 of the paper.
#[derive(Debug, Clone)]
pub struct World {
    pub(crate) topo: Topology,
    pub(crate) c: usize,
    /// Base index of node `v`'s pins/partition-set ids in the global arrays.
    pub(crate) base: Vec<u32>,
    /// Global pin index -> local partition set id of the owning node.
    pub(crate) pin_pset: Vec<u16>,
    /// Link table, one entry per *edge*: `(a0, base_a, b0, base_b)` where
    /// `a0`/`b0` are the global pin indices of the edge's link-0 pins
    /// (links `0..c` are the `c` consecutive pins from there) and
    /// `base_a`/`base_b` the owning nodes' base offsets, so relabeling
    /// needs no per-pin node lookup. [`World::disconnect`] tombstones an
    /// entry ([`DEAD_LINK`]) and recycles its slot through `free_links`,
    /// so the table never grows past the historical edge maximum.
    pub(crate) links: Vec<(u32, u32, u32, u32)>,
    /// Recycled slots of tombstoned `links` entries.
    pub(crate) free_links: Vec<u32>,
    /// Partition sets (by global id) that beep this round (bit-packed;
    /// the set bits are always a subset of the dense `sent` list).
    pub(crate) send: BitSet,
    /// Dense list of the gids set in `send` (clears in O(beeps)).
    pub(crate) sent: Vec<u32>,
    /// Partition sets (by global id) that received a beep last round
    /// (bit-packed; set bits ⊆ `recv_set`).
    pub(crate) recv: BitSet,
    /// Dense list of the gids set in `recv` (clears in O(deliveries)).
    pub(crate) recv_set: Vec<u32>,
    /// Union-find scratch (parents over global partition-set ids).
    pub(crate) uf: Vec<u32>,
    /// Cached circuit labeling: partition-set gid -> root gid (= minimum
    /// gid) of its circuit. Valid iff no relabel is pending.
    pub(crate) labels: Vec<u32>,
    /// Membership arena: each current circuit root `r` owns the bucket
    /// `members[member_off[r]..member_end[r]]` (its member gids in
    /// ascending order). The global rebuild packs buckets contiguously;
    /// region relabels append fresh buckets at the end (the displaced old
    /// buckets become garbage) and a full repack reclaims the arena when
    /// it would outgrow twice the pin count.
    pub(crate) members: Vec<u32>,
    /// Bucket start per root gid (valid only for current roots).
    pub(crate) member_off: Vec<u32>,
    /// Bucket end per root gid (valid only for current roots).
    pub(crate) member_end: Vec<u32>,
    /// Cached per-bucket delivery digest (XOR of [`mix64`] over the
    /// root's member gids), valid iff the root's stamp in
    /// `member_digest_epoch` equals `digest_epoch`. Filled lazily the
    /// first time a tracing tick delivers to the circuit, then reused
    /// every steady tick — the armed flight recorder's per-delivery
    /// digest cost drops from O(members) to O(1) per circuit between
    /// relabels. Never read on the `NullRecorder` path.
    pub(crate) member_digest: Vec<u64>,
    /// Per-root validity stamp for `member_digest` (0 = never valid;
    /// `digest_epoch` starts at 1).
    pub(crate) member_digest_epoch: Vec<u32>,
    /// Bumped whenever the whole membership arena is rebuilt; region
    /// relabels instead zero the stamps of just the buckets they splice.
    pub(crate) digest_epoch: u32,
    /// Root dedup scratch; always all-clear between uses (bit-packed).
    pub(crate) root_mark: BitSet,
    /// Dense list of roots currently marked in `root_mark`.
    pub(crate) marked_roots: Vec<u32>,
    /// Pins whose partition set changed since the last relabel, as
    /// `(pin gid, owning node's base offset)`; deduped via `dirty_pin`.
    pub(crate) dirty_pins: Vec<(u32, u32)>,
    /// Bit per pin: whether it is in `dirty_pins`.
    pub(crate) dirty_pin: BitSet,
    /// The pin configuration as of the last relabel — the "old" partition
    /// sets that seed the affected region of the next region relabel.
    pub(crate) pset_at_relabel: Vec<u16>,
    /// Whether the next relabel must be global (set at construction and
    /// by `tick_reference`, which clobbers the union-find scratch).
    pub(crate) force_global: bool,
    /// Persistent marks of the counted circuit roots (a root is counted
    /// iff some pin references a partition set in its bucket); maintained
    /// incrementally by the region relabel.
    pub(crate) circuit_roots: BitSet,
    /// Edge index (into `links`) behind each *port slot* (slot of
    /// `(v, p)` = `base[v] / c + p`; [`NO_EDGE`] = vacant). Replaces the
    /// old per-node edge CSR: same O(incident edges) walk during region
    /// relabels, but splice-editable in O(1) per edge — prefix-offset
    /// CSRs cannot absorb an insertion without rebuilding every row
    /// behind it.
    pub(crate) port_edge: Vec<u32>,
    /// Region-relabel scratch: old roots touching a dirty pin.
    pub(crate) affected_mark: BitSet,
    pub(crate) affected_roots: Vec<u32>,
    /// Region-relabel scratch: all gids of the affected circuits.
    pub(crate) in_region: BitSet,
    pub(crate) region: Vec<u32>,
    /// Region-relabel scratch: nodes owning a region gid.
    pub(crate) node_mark: BitSet,
    pub(crate) region_nodes: Vec<u32>,
    /// Number of distinct circuits under the cached labeling.
    pub(crate) cached_circuits: usize,
    /// Telemetry registry + cached handles. Holds the relabel-path
    /// counters (diagnostics; pinned by tests so the region path cannot
    /// silently degrade into always-global) and the phase timers.
    pub(crate) stats: EngineStats,
    pub(crate) rounds: u64,
    /// Rounds executed by `tick`/`tick_reference` (excludes charges).
    pub(crate) simulated: u64,
    /// Audited rounds charged without simulation (see [`World::charge_rounds`]).
    pub(crate) charged: u64,
    pub(crate) charge_log: Vec<(String, i64)>,
    /// Total beeps sent (diagnostic; the model itself never counts beeps).
    pub(crate) beeps_sent: u64,
    /// Stuck-at pin faults as `(pin gid, frozen pset)`, sorted by gid.
    /// A stuck pin's partition set is pinned to the frozen value: single
    /// writes are filtered at [`World::set_pin`], bulk writers re-assert
    /// the frozen value after their sweep. Empty in a healthy world, and
    /// every write path gates its stuck handling on that emptiness, so
    /// the overlay costs one branch when unarmed.
    pub(crate) stuck: Vec<(u32, u16)>,
}

impl World {
    /// Creates a world over `topo` with `c >= 1` external links per edge.
    /// Every pin starts in its own (singleton) partition set and no beeps are
    /// pending.
    ///
    /// # Panics
    ///
    /// Panics if `c == 0`.
    pub fn new(topo: Topology, c: usize) -> World {
        assert!(c >= 1, "the model requires at least one external link");
        let n = topo.len();
        let mut base = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        for v in 0..n {
            base.push(acc);
            acc += (topo.ports_len(v) * c) as u32;
        }
        base.push(acc);
        let total = acc as usize;
        let mut links = Vec::with_capacity(topo.edge_count());
        // Per-port edge index (each edge appears on both endpoint slots)
        // so a region relabel can walk exactly the links it needs.
        let mut port_edge = vec![NO_EDGE; total / c];
        for v in 0..n {
            for (p, w, q) in topo.neighbors(v) {
                if v < w {
                    let a0 = base[v] + (p * c) as u32;
                    let b0 = base[w] + (q * c) as u32;
                    let ei = links.len() as u32;
                    links.push((a0, base[v], b0, base[w]));
                    port_edge[a0 as usize / c] = ei;
                    port_edge[b0 as usize / c] = ei;
                }
            }
        }
        let mut w = World {
            topo,
            c,
            base,
            pin_pset: vec![0; total],
            links,
            free_links: Vec::new(),
            send: BitSet::new(total),
            // Worst-case capacity up front (cheap: pages fault on first
            // write, not at malloc), so ticks never reallocate.
            sent: Vec::with_capacity(total),
            recv: BitSet::new(total),
            recv_set: Vec::with_capacity(total),
            uf: vec![0; total],
            labels: vec![0; total],
            members: Vec::with_capacity(total),
            member_off: vec![0; total],
            member_end: vec![0; total],
            member_digest: vec![0; total],
            member_digest_epoch: vec![0; total],
            digest_epoch: 1,
            root_mark: BitSet::new(total),
            marked_roots: Vec::with_capacity(total),
            dirty_pins: Vec::with_capacity(total),
            dirty_pin: BitSet::new(total),
            pset_at_relabel: vec![0; total],
            force_global: true,
            circuit_roots: BitSet::new(total),
            port_edge,
            affected_mark: BitSet::new(total),
            affected_roots: Vec::new(),
            in_region: BitSet::new(total),
            region: Vec::new(),
            node_mark: BitSet::new(n),
            region_nodes: Vec::new(),
            cached_circuits: 0,
            stats: EngineStats::new(),
            rounds: 0,
            simulated: 0,
            charged: 0,
            charge_log: Vec::new(),
            beeps_sent: 0,
            stuck: Vec::new(),
        };
        for v in 0..w.topo.len() {
            w.singleton_pin_config(v);
        }
        // The construction writes above marked everything dirty, but the
        // first relabel is global regardless (`force_global`); drop the
        // bookkeeping so the first *real* dirty set starts empty.
        w.dirty_pins.clear();
        w.dirty_pin.clear_all();
        w.pset_at_relabel.copy_from_slice(&w.pin_pset);
        w
    }

    /// The underlying topology.
    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The number of external links per edge.
    #[inline]
    pub fn links_per_edge(&self) -> usize {
        self.c
    }

    /// Number of simulated + charged rounds so far.
    #[inline]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Rounds actually executed by [`World::tick`] (and
    /// [`World::tick_reference`]). The audit invariant is
    /// `rounds() == simulated_rounds() + Σ charge_log()` — every
    /// non-simulated adjustment of the round counter appears in the log,
    /// charges positive and rebates negative.
    #[inline]
    pub fn simulated_rounds(&self) -> u64 {
        self.simulated
    }

    /// Rounds accounted via [`World::charge_rounds`] (gross, before any
    /// rebates); kept separate so the audit trail distinguishes simulated
    /// from charged rounds.
    #[inline]
    pub fn charged_rounds(&self) -> u64 {
        self.charged
    }

    /// The audit log of non-simulated round adjustments as
    /// `(reason, rounds)` entries: positive for charges
    /// ([`World::charge_rounds`]), negative for rebates
    /// ([`World::rebate_rounds`]). Summing the entries reconciles the
    /// counter: `simulated_rounds() + Σ == rounds()`.
    pub fn charge_log(&self) -> &[(String, i64)] {
        &self.charge_log
    }

    /// Total distinct beeps sent so far (diagnostic instrumentation; one
    /// partition-set activation per round counts once).
    pub fn beeps_sent(&self) -> u64 {
        self.beeps_sent
    }

    #[inline]
    fn pin_gid(&self, v: usize, pin: Pin) -> usize {
        let (port, link) = pin;
        debug_assert!(link < self.c, "link {link} out of range (c = {})", self.c);
        debug_assert!(port < self.topo.ports_len(v), "port {port} out of range");
        self.base[v] as usize + port * self.c + link
    }

    /// Outlined panic for [`World::pset_gid`]: keeps the formatting
    /// machinery out of the hot callers (`beep`/`received`/`set_pin` run
    /// per node per round) while the range check itself stays on.
    #[cold]
    #[inline(never)]
    fn pset_out_of_range(v: usize, pset: u16, cap: usize) -> ! {
        panic!("partition set {pset} out of range for node {v} (capacity {cap})");
    }

    /// Resolves `v`'s local partition set `pset` to its global id.
    ///
    /// This is a real (release-mode) bounds check: an out-of-range `pset`
    /// would index into a *neighbor node's* slot of the global send/recv
    /// arrays and silently corrupt its state, so it must never pass.
    #[inline]
    fn pset_gid(&self, v: usize, pset: u16) -> usize {
        let cap = self.pset_capacity(v);
        if (pset as usize) >= cap {
            Self::pset_out_of_range(v, pset, cap);
        }
        self.base[v] as usize + pset as usize
    }

    /// Maximum number of partition sets node `v` may use (= its pin count).
    pub fn pset_capacity(&self, v: usize) -> usize {
        (self.base[v + 1] - self.base[v]) as usize
    }

    /// Marks pin `gid` (of the node whose base offset is `node_base`)
    /// dirty, deduped through the dirty-pin bitset.
    #[inline]
    fn mark_pin_dirty(&mut self, gid: usize, node_base: u32) {
        if !self.dirty_pin.get(gid) {
            self.dirty_pin.set(gid);
            self.dirty_pins.push((gid as u32, node_base));
        }
    }

    /// Marks every pin of the node at `node_base` whose current partition
    /// set differs from the last-relabel snapshot. Invariant: a clear
    /// dirty bit implies the pin still matches the snapshot, so comparing
    /// against the snapshot (rather than the pre-write value) never
    /// misses a change — and a no-op rewrite of already-dirty pins just
    /// re-marks them, which the bitset dedups.
    fn mark_changed_pins(&mut self, node_base: usize, count: usize) {
        for i in node_base..node_base + count {
            if self.pin_pset[i] != self.pset_at_relabel[i] {
                self.mark_pin_dirty(i, node_base as u32);
            }
        }
    }

    /// Assigns a single pin of `v` to local partition set `pset`. If the
    /// pin is frozen by a stuck-at fault ([`World::stick_pin`]) the write
    /// is silently dropped — that is the fault model: the algorithm
    /// *believes* it reconfigured, the hardware did not.
    ///
    /// # Panics
    ///
    /// Panics if the partition set is out of range (real check: a stray
    /// `pset` would corrupt the cached circuit labeling), or — in debug
    /// builds — if the pin itself is out of range.
    #[inline]
    pub fn set_pin(&mut self, v: usize, port: PortId, link: usize, pset: u16) {
        let gid = self.pin_gid(v, (port, link));
        let cap = self.pset_capacity(v);
        if (pset as usize) >= cap {
            Self::pset_out_of_range(v, pset, cap);
        }
        if !self.stuck.is_empty() && self.stuck_index(gid as u32).is_ok() {
            return;
        }
        if self.pin_pset[gid] != pset {
            self.pin_pset[gid] = pset;
            self.mark_pin_dirty(gid, self.base[v]);
        }
    }

    /// Bulk-assigns all pins of `v`: the pin with local index `i` (that
    /// is, `port * c + link`) goes to partition set `pset_of(i)`. The
    /// psets produced by the bulk config methods are local pin indices,
    /// in range by construction, so this skips `set_pin`'s per-pin
    /// capacity check — these methods run over every node between phases
    /// and are the simulator's hottest mutation path.
    #[inline]
    fn fill_pin_config(&mut self, v: usize, pset_of: impl Fn(usize) -> u16) {
        let base = self.base[v] as usize;
        let count = self.pset_capacity(v);
        // Branchless change detection (XOR-accumulate, unconditional
        // store): vectorizes, so the common no-op reconfiguration stays a
        // single fast pass and keeps the cached labeling untouched. Only
        // on a real change does the second pass mark the changed pins.
        let mut diff = 0u16;
        for i in 0..count {
            let pset = pset_of(i);
            debug_assert!((pset as usize) < count);
            diff |= self.pin_pset[base + i] ^ pset;
            self.pin_pset[base + i] = pset;
        }
        // Stuck pins win over the sweep; the gate keeps the healthy path
        // a single branch and the loop above vectorizable.
        if !self.stuck.is_empty() {
            self.reassert_stuck(base, count);
        }
        if diff != 0 {
            // Snapshot-compare marking: pins the re-assertion restored to
            // their pre-sweep (frozen) value are correctly left clean.
            self.mark_changed_pins(base, count);
        }
    }

    /// The local partition set currently holding pin `(port, link)` of
    /// `v` — the read side of [`World::set_pin`]. Lets a dynamic-world
    /// oracle copy a configuration into a freshly rebuilt world.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the pin is out of range.
    #[inline]
    pub fn pin_config(&self, v: usize, port: PortId, link: usize) -> u16 {
        self.pin_pset[self.pin_gid(v, (port, link))]
    }

    /// Resets `v` to the singleton configuration: pin `(port, link)` goes to
    /// partition set `port * c + link`, so no two pins share a set and every
    /// circuit through `v` connects exactly two neighbors.
    pub fn singleton_pin_config(&mut self, v: usize) {
        self.fill_pin_config(v, |i| i as u16);
    }

    /// Puts all pins of `v` into partition set `0` (the *global circuit*
    /// configuration: if every amoebot does this, the whole structure forms
    /// one circuit).
    pub fn global_pin_config(&mut self, v: usize) {
        self.fill_pin_config(v, |_| 0);
    }

    /// Groups the given pins of `v` into one partition set and returns its
    /// id. The id is the minimum singleton id (`port * c + link`) of the
    /// members, so disjoint groups never collide — concurrent primitives can
    /// partition a node's pins without central coordination.
    ///
    /// # Panics
    ///
    /// Panics if `pins` is empty.
    pub fn group_pins(&mut self, v: usize, pins: &[Pin]) -> u16 {
        let id = pins
            .iter()
            .map(|&(port, link)| (port * self.c + link) as u16)
            .min()
            .expect("group must contain at least one pin");
        for &(port, link) in pins {
            self.set_pin(v, port, link, id);
        }
        id
    }

    /// Dedicates `link` as a *global broadcast link* on `v`: all of `v`'s
    /// pins on this link join one partition set with the node-independent id
    /// [`World::global_link_pset`]`(link)`. If every node does this (and no
    /// primitive ever touches the reserved link), the link permanently
    /// carries one structure-spanning circuit — used for synchronization
    /// ("anyone still active?") and leader broadcasts without disturbing the
    /// pin configurations of concurrently running primitives.
    pub fn global_link_config(&mut self, v: usize, link: usize) {
        assert!(link < self.c, "link {link} out of range (c = {})", self.c);
        let id = Self::global_link_pset(link);
        let base = self.base[v] as usize;
        let count = self.pset_capacity(v);
        let has_stuck = !self.stuck.is_empty();
        // Only the pins on `link` move; other links keep their sets.
        let mut i = link;
        while i < count {
            if self.pin_pset[base + i] != id
                && !(has_stuck && self.stuck_index((base + i) as u32).is_ok())
            {
                self.pin_pset[base + i] = id;
                self.mark_pin_dirty(base + i, base as u32);
            }
            i += self.c;
        }
    }

    /// The partition-set id used by [`World::global_link_config`].
    #[inline]
    pub fn global_link_pset(link: usize) -> u16 {
        link as u16
    }

    /// Resets all pins of `v` to singletons except those on the listed
    /// (reserved) links, which are left untouched. Primitives call this when
    /// taking over a node so stale partition sets from earlier phases cannot
    /// leak circuits into the new configuration.
    pub fn reset_pins_keeping_links(&mut self, v: usize, keep: &[usize]) {
        let base = self.base[v] as usize;
        let count = self.pset_capacity(v);
        let c = self.c;
        let mut diff = 0u16;
        // Pin with local index `port * c + link` sits on link `link`; walk
        // port-major so the link test stays out of the modulo operator.
        let mut i = 0;
        while i < count {
            for link in 0..c {
                if !keep.contains(&link) {
                    let pset = (i + link) as u16;
                    diff |= self.pin_pset[base + i + link] ^ pset;
                    self.pin_pset[base + i + link] = pset;
                }
            }
            i += c;
        }
        if !self.stuck.is_empty() {
            self.reassert_stuck(base, count);
        }
        if diff != 0 {
            self.mark_changed_pins(base, count);
        }
    }

    /// [`World::reset_pins_keeping_links`] over *every* node: the
    /// per-phase "drop all stale groups" sweep the algorithm layer runs
    /// between phases, as one call. Only the pins that actually move are
    /// marked dirty, so after a phase that reconfigured a small region the
    /// next relabel still only touches that region — the sweep itself
    /// contributes nothing to the dirty set on already-reset nodes.
    pub fn reset_all_pins_keeping_links(&mut self, keep: &[usize]) {
        for v in 0..self.topo.len() {
            self.reset_pins_keeping_links(v, keep);
        }
    }

    // ---- Stuck-at pin faults (the adversary's hardware-fault overlay).

    /// Position of `gid` in the sorted stuck-pin list.
    #[inline]
    fn stuck_index(&self, gid: u32) -> Result<usize, usize> {
        self.stuck.binary_search_by_key(&gid, |&(g, _)| g)
    }

    /// Restores the frozen value of every stuck pin inside
    /// `[base, base + count)` after a bulk sweep overwrote the range.
    /// Restoration needs no dirty marking of its own: it returns pins to
    /// their pre-sweep value, and the callers' snapshot-compare marking
    /// decides what actually changed.
    #[cold]
    #[inline(never)]
    fn reassert_stuck(&mut self, base: usize, count: usize) {
        let start = self.stuck.partition_point(|&(g, _)| (g as usize) < base);
        for i in start..self.stuck.len() {
            let (gid, pset) = self.stuck[i];
            if gid as usize >= base + count {
                break;
            }
            self.pin_pset[gid as usize] = pset;
        }
    }

    /// Freezes pin `(port, link)` of `v` at partition set `pset`: the pin
    /// moves there now (through the normal dirty-pin path) and every
    /// later write — single or bulk — is dropped at the pin until
    /// [`World::unstick_pin`] / [`World::release_stuck_pins`]. Sticking
    /// an already-stuck pin re-freezes it at the new value.
    ///
    /// # Panics
    ///
    /// Panics if `pset` is out of range for `v` (real check, as in
    /// [`World::set_pin`]), or — in debug builds — if the pin is.
    pub fn stick_pin(&mut self, v: usize, port: PortId, link: usize, pset: u16) {
        let gid = self.pin_gid(v, (port, link));
        let cap = self.pset_capacity(v);
        if (pset as usize) >= cap {
            Self::pset_out_of_range(v, pset, cap);
        }
        if self.pin_pset[gid] != pset {
            self.pin_pset[gid] = pset;
            self.mark_pin_dirty(gid, self.base[v]);
        }
        match self.stuck_index(gid as u32) {
            Ok(i) => self.stuck[i].1 = pset,
            Err(i) => self.stuck.insert(i, (gid as u32, pset)),
        }
    }

    /// Releases the stuck-at fault on pin `(port, link)` of `v` (the pin
    /// keeps its frozen value until something rewrites it). Returns
    /// whether the pin was stuck.
    pub fn unstick_pin(&mut self, v: usize, port: PortId, link: usize) -> bool {
        let gid = self.pin_gid(v, (port, link)) as u32;
        match self.stuck_index(gid) {
            Ok(i) => {
                self.stuck.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Releases every stuck-at fault at once (the "burst ends" operation
    /// of a fault plan) and returns how many were armed. Pins keep their
    /// frozen values until rewritten.
    pub fn release_stuck_pins(&mut self) -> usize {
        let n = self.stuck.len();
        self.stuck.clear();
        n
    }

    /// Number of currently stuck pins.
    #[inline]
    pub fn stuck_pin_count(&self) -> usize {
        self.stuck.len()
    }

    /// Whether pin `(port, link)` of `v` is frozen by a stuck-at fault.
    pub fn pin_is_stuck(&self, v: usize, port: PortId, link: usize) -> bool {
        self.stuck_index(self.pin_gid(v, (port, link)) as u32)
            .is_ok()
    }

    /// Resolves `v`'s local partition set `pset` to the global id space
    /// that [`TickFaults`] targets — the public spelling of the engine's
    /// internal gid resolution, for fault plans choosing where to drop or
    /// inject beeps.
    ///
    /// # Panics
    ///
    /// Panics if `pset` is out of range for `v` (also in release builds).
    #[inline]
    pub fn pset_global_id(&self, v: usize, pset: u16) -> u32 {
        self.pset_gid(v, pset) as u32
    }

    /// Total beeps the adversary suppressed so far (thin wrapper over the
    /// registry's `fault_drops` counter).
    #[inline]
    pub fn fault_drops(&self) -> u64 {
        self.stats.metrics.get(self.stats.fault_drops)
    }

    /// Total beeps the adversary spuriously injected so far (wrapper over
    /// the registry's `fault_injects` counter).
    #[inline]
    pub fn fault_injects(&self) -> u64 {
        self.stats.metrics.get(self.stats.fault_injects)
    }

    /// Makes `v` beep on its local partition set `pset` this round.
    ///
    /// # Panics
    ///
    /// Panics if `pset` is out of range for `v` (also in release builds).
    #[inline]
    pub fn beep(&mut self, v: usize, pset: u16) {
        let gid = self.pset_gid(v, pset);
        if !self.send.get(gid) {
            self.send.set(gid);
            self.sent.push(gid as u32);
            self.beeps_sent += 1;
        }
    }

    /// Whether `v`'s partition set `pset` received a beep delivered at the
    /// beginning of the current round.
    ///
    /// # Panics
    ///
    /// Panics if `pset` is out of range for `v` (also in release builds).
    #[inline]
    pub fn received(&self, v: usize, pset: u16) -> bool {
        self.recv.get(self.pset_gid(v, pset))
    }

    /// Whether any partition set of `v` received a beep this round
    /// (word-at-a-time over the packed receive flags).
    pub fn received_any(&self, v: usize) -> bool {
        self.recv
            .any_in_range(self.base[v] as usize, self.base[v + 1] as usize)
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.uf[x as usize] != x {
            let gp = self.uf[self.uf[x as usize] as usize];
            self.uf[x as usize] = gp;
            x = gp;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            // Union by id keeps it deterministic; depth is tamed by halving.
            if ra < rb {
                self.uf[rb as usize] = ra;
            } else {
                self.uf[ra as usize] = rb;
            }
        }
    }

    /// Whether the next [`World::tick`] has to relabel before delivering
    /// (i.e. some pin's partition set changed since the last relabel, or
    /// the labeling was never computed / was invalidated by
    /// [`World::tick_reference`]). No-op reconfigurations — writes that
    /// store the value a pin already has — never make this true.
    #[inline]
    pub fn relabel_pending(&self) -> bool {
        self.force_global || !self.dirty_pins.is_empty()
    }

    /// How many global (full union-find + membership rebuild) relabels
    /// have run. Diagnostic, pinned by tests together with
    /// [`World::region_relabels`] so the region path cannot silently
    /// degrade into always-global. Thin wrapper over the telemetry
    /// registry's `relabel_global` counter (see [`World::metrics`]).
    #[inline]
    pub fn global_relabels(&self) -> u64 {
        self.stats.metrics.get(self.stats.relabel_global)
    }

    /// How many region-scoped relabels have run (see
    /// [`World::relabel_pending`] and the module docs). Thin wrapper over
    /// the registry's `relabel_region` counter.
    #[inline]
    pub fn region_relabels(&self) -> u64 {
        self.stats.metrics.get(self.stats.relabel_region)
    }

    /// The engine's telemetry registry: relabel counters plus — when the
    /// driving [`Recorder`] has `TIMED = true` — per-phase wall-time
    /// histograms (`phase_*_micros`).
    #[inline]
    pub fn metrics(&self) -> &Metrics {
        &self.stats.metrics
    }

    /// Refreshes the cached labeling: region-scoped when the dirty region
    /// is small, global otherwise. Phase timers fire only for `R::TIMED`
    /// recorders; under [`NullRecorder`] they compile away.
    fn refresh_labels<R: Recorder>(&mut self) -> RelabelKind {
        // Fractional fallback (1/REGION_FALLBACK_FRACTION of all pins):
        // beyond it, dissolving and re-unioning the region approaches
        // the cost of the global relabel anyway — without its
        // cache-friendly linear sweeps.
        let threshold = self.labels.len() / REGION_FALLBACK_FRACTION;
        if self.force_global || self.dirty_pins.len() > threshold {
            self.relabel_global::<R>();
            return RelabelKind::Global;
        }
        self.relabel_region::<R>(threshold)
    }

    /// The owner node of pin/partition-set `gid` (binary search over the
    /// base offsets; zero-pin nodes collapse onto the same offset, and the
    /// search lands past all of them).
    #[inline]
    fn node_of_gid(&self, gid: u32) -> usize {
        self.base.partition_point(|&b| b <= gid) - 1
    }

    /// Region-scoped relabel: dissolves only the circuits whose old *or*
    /// new configuration touches a dirty pin, re-unions only the links
    /// incident to their member nodes, and splices the rebuilt buckets
    /// into the membership arena. Clean circuits keep labels, buckets and
    /// counted-ness untouched — sound because a circuit can only change
    /// if one of its members' partition sets changed (see DESIGN.md §1c).
    ///
    /// Falls back to [`World::relabel_global`] when the collected region
    /// exceeds `threshold` gids.
    fn relabel_region<R: Recorder>(&mut self, threshold: usize) -> RelabelKind {
        debug_assert!(!self.affected_mark.any() && !self.in_region.any());
        let t_dissolve = if R::TIMED {
            Some(Stopwatch::start())
        } else {
            None
        };
        // 1. Seed: the old circuits of every dirty pin's old and new
        // partition set. (A pin's peer circuits are covered transitively:
        // the old union along the edge put the peer's set in the same old
        // circuit as this pin's old set.)
        for i in 0..self.dirty_pins.len() {
            let (pin, node_base) = self.dirty_pins[i];
            let old_gid = node_base + self.pset_at_relabel[pin as usize] as u32;
            let new_gid = node_base + self.pin_pset[pin as usize] as u32;
            for gid in [old_gid, new_gid] {
                let root = self.labels[gid as usize];
                if !self.affected_mark.get(root as usize) {
                    self.affected_mark.set(root as usize);
                    self.affected_roots.push(root);
                }
            }
        }
        // 2. Region size = sum of the affected buckets; bail out to the
        // global relabel while the scratch is still cheap to unwind.
        let region_size: usize = self
            .affected_roots
            .iter()
            .map(|&r| (self.member_end[r as usize] - self.member_off[r as usize]) as usize)
            .sum();
        if region_size > threshold {
            for i in 0..self.affected_roots.len() {
                self.affected_mark.clear(self.affected_roots[i] as usize);
            }
            self.affected_roots.clear();
            self.relabel_global::<R>();
            return RelabelKind::Global;
        }
        // 3. Collect the region: every member gid of every affected
        // circuit, its owner nodes, and — dissolving — singleton
        // union-find entries. Affected roots drop out of the circuit
        // count here; step 6 re-adds whatever the new region references.
        for i in 0..self.affected_roots.len() {
            let r = self.affected_roots[i] as usize;
            if self.circuit_roots.get(r) {
                self.circuit_roots.clear(r);
                self.cached_circuits -= 1;
            }
            for j in self.member_off[r] as usize..self.member_end[r] as usize {
                let gid = self.members[j];
                self.in_region.set(gid as usize);
                self.region.push(gid);
                self.uf[gid as usize] = gid;
            }
        }
        // (Bucket contents end up in affected-circuit concatenation order
        // rather than the global counting sort's ascending order; nothing
        // observes member order, and the collection order is itself
        // deterministic.) Owner lookups exploit that each old bucket is
        // ascending, so consecutive gids usually share a node.
        let mut cached_node = usize::MAX;
        for i in 0..self.region.len() {
            let gid = self.region[i];
            if cached_node == usize::MAX
                || gid < self.base[cached_node]
                || gid >= self.base[cached_node + 1]
            {
                cached_node = self.node_of_gid(gid);
            }
            if !self.node_mark.get(cached_node) {
                self.node_mark.set(cached_node);
                self.region_nodes.push(cached_node as u32);
            }
        }
        if let Some(t) = t_dissolve {
            self.stats
                .metrics
                .observe(self.stats.t_dissolve, t.micros());
        }
        let t_reunion = if R::TIMED {
            Some(Stopwatch::start())
        } else {
            None
        };
        // 4. Re-union: only links incident to region nodes, and of those
        // only the ones whose endpoints lie in the region. The stability
        // invariant guarantees a union never crosses the region boundary.
        for i in 0..self.region_nodes.len() {
            let v = self.region_nodes[i] as usize;
            let lo = self.base[v] as usize / self.c;
            let hi = self.base[v + 1] as usize / self.c;
            for slot in lo..hi {
                let ei = self.port_edge[slot];
                if ei == NO_EDGE {
                    continue;
                }
                let (a0, base_a, b0, base_b) = self.links[ei as usize];
                for link in 0..self.c as u32 {
                    let pa = base_a + self.pin_pset[(a0 + link) as usize] as u32;
                    let pb = base_b + self.pin_pset[(b0 + link) as usize] as u32;
                    if self.in_region.get(pa as usize) || self.in_region.get(pb as usize) {
                        debug_assert!(
                            self.in_region.get(pa as usize) && self.in_region.get(pb as usize),
                            "a link union crossed the region boundary"
                        );
                        self.union(pa, pb);
                    }
                }
            }
        }
        for i in 0..self.region.len() {
            let gid = self.region[i];
            let root = self.find(gid);
            self.labels[gid as usize] = root;
        }
        if let Some(t) = t_reunion {
            self.stats.metrics.observe(self.stats.t_reunion, t.micros());
        }
        let t_repack = if R::TIMED {
            Some(Stopwatch::start())
        } else {
            None
        };
        // 5. Splice the rebuilt buckets into the arena: append-at-end
        // (the displaced old buckets become garbage), with a full repack
        // once the arena would outgrow twice the pin count — amortized
        // O(region) per relabel.
        if self.members.len() + self.region.len() > 2 * self.labels.len() {
            self.rebuild_members();
        } else {
            debug_assert!(self.marked_roots.is_empty());
            for i in 0..self.region.len() {
                let r = self.labels[self.region[i] as usize] as usize;
                if !self.root_mark.get(r) {
                    self.root_mark.set(r);
                    self.marked_roots.push(r as u32);
                    self.member_end[r] = 0;
                }
                self.member_end[r] += 1;
            }
            let mut cursor = self.members.len() as u32;
            for i in 0..self.marked_roots.len() {
                let r = self.marked_roots[i] as usize;
                let size = self.member_end[r];
                self.member_off[r] = cursor;
                self.member_end[r] = cursor;
                // The spliced bucket's cached delivery digest is stale;
                // untouched buckets keep theirs (0 is never the epoch).
                self.member_digest_epoch[r] = 0;
                cursor += size;
            }
            self.members.resize(cursor as usize, 0);
            for i in 0..self.region.len() {
                let gid = self.region[i];
                let r = self.labels[gid as usize] as usize;
                self.members[self.member_end[r] as usize] = gid;
                self.member_end[r] += 1;
            }
            for &r in &self.marked_roots {
                self.root_mark.clear(r as usize);
            }
            self.marked_roots.clear();
        }
        // 6. Re-count: a region circuit is counted iff some pin of a
        // region node references one of its member sets (pins of clean
        // nodes cannot reference region gids, which all belong to region
        // nodes; references to clean circuits are untouched).
        for i in 0..self.region_nodes.len() {
            let v = self.region_nodes[i] as usize;
            for p in self.base[v] as usize..self.base[v + 1] as usize {
                let gid = self.base[v] as usize + self.pin_pset[p] as usize;
                if self.in_region.get(gid) {
                    let root = self.labels[gid] as usize;
                    if !self.circuit_roots.get(root) {
                        self.circuit_roots.set(root);
                        self.cached_circuits += 1;
                    }
                }
            }
        }
        // 7. Snapshot the new configuration and unwind the scratch.
        for i in 0..self.dirty_pins.len() {
            let pin = self.dirty_pins[i].0 as usize;
            self.pset_at_relabel[pin] = self.pin_pset[pin];
            self.dirty_pin.clear(pin);
        }
        self.dirty_pins.clear();
        for i in 0..self.affected_roots.len() {
            self.affected_mark.clear(self.affected_roots[i] as usize);
        }
        self.affected_roots.clear();
        for i in 0..self.region.len() {
            self.in_region.clear(self.region[i] as usize);
        }
        self.region.clear();
        for i in 0..self.region_nodes.len() {
            self.node_mark.clear(self.region_nodes[i] as usize);
        }
        self.region_nodes.clear();
        if let Some(t) = t_repack {
            self.stats.metrics.observe(self.stats.t_repack, t.micros());
        }
        self.stats.metrics.inc(self.stats.relabel_region);
        RelabelKind::Region
    }

    /// Fully repacks the membership arena from `labels`: counting sort
    /// into contiguous ascending buckets, one slot per gid.
    fn rebuild_members(&mut self) {
        // Every bucket moves: invalidate all cached delivery digests in
        // O(1) by bumping the epoch. On the (theoretical) u32 wrap,
        // clear the stamps so a stale cache can never alias the new
        // epoch.
        self.digest_epoch = self.digest_epoch.wrapping_add(1);
        if self.digest_epoch == 0 {
            self.member_digest_epoch.fill(0);
            self.digest_epoch = 1;
        }
        let total = self.labels.len();
        self.members.clear();
        self.members.resize(total, 0);
        self.member_end.fill(0);
        for gid in 0..total {
            self.member_end[self.labels[gid] as usize] += 1;
        }
        let mut acc = 0u32;
        for r in 0..total {
            let size = self.member_end[r];
            self.member_off[r] = acc;
            self.member_end[r] = acc;
            acc += size;
        }
        for gid in 0..total as u32 {
            let r = self.labels[gid as usize] as usize;
            self.members[self.member_end[r] as usize] = gid;
            self.member_end[r] += 1;
        }
    }

    /// Recomputes the circuit labeling, the membership index and the
    /// circuit count from scratch. O(total pins · α) with zero
    /// allocations; the escape hatch when the dirty region is large (or
    /// unknown, after [`World::tick_reference`]).
    fn relabel_global<R: Recorder>(&mut self) {
        let t_global = if R::TIMED {
            Some(Stopwatch::start())
        } else {
            None
        };
        let total = self.labels.len();
        for i in 0..total {
            self.uf[i] = i as u32;
        }
        // Union partition sets along every external link (precomputed
        // per-edge table: no per-node neighbor iteration, no
        // edge-direction test). Tombstoned entries are removed edges.
        for i in 0..self.links.len() {
            let (a0, base_a, b0, base_b) = self.links[i];
            if a0 == u32::MAX {
                continue;
            }
            for link in 0..self.c as u32 {
                let pa = base_a + self.pin_pset[(a0 + link) as usize] as u32;
                let pb = base_b + self.pin_pset[(b0 + link) as usize] as u32;
                self.union(pa, pb);
            }
        }
        for gid in 0..total as u32 {
            let root = self.find(gid);
            self.labels[gid as usize] = root;
        }
        self.rebuild_members();
        // Circuit count: distinct roots among partition sets that some pin
        // actually references (empty sets are not circuits). The marks
        // persist so region relabels can maintain the count incrementally.
        self.circuit_roots.clear_all();
        let mut count = 0usize;
        for v in 0..self.topo.len() {
            let node_base = self.base[v];
            for p in node_base..self.base[v + 1] {
                let pset_gid = node_base + self.pin_pset[p as usize] as u32;
                let root = self.labels[pset_gid as usize] as usize;
                if !self.circuit_roots.get(root) {
                    self.circuit_roots.set(root);
                    count += 1;
                }
            }
        }
        self.cached_circuits = count;
        self.pset_at_relabel.copy_from_slice(&self.pin_pset);
        for i in 0..self.dirty_pins.len() {
            self.dirty_pin.clear(self.dirty_pins[i].0 as usize);
        }
        self.dirty_pins.clear();
        self.force_global = false;
        if let Some(t) = t_global {
            self.stats.metrics.observe(self.stats.t_global, t.micros());
        }
        self.stats.metrics.inc(self.stats.relabel_global);
    }

    /// Executes one synchronous round: circuits are computed from the current
    /// pin configurations (reusing the cached labeling if no pin changed),
    /// beeps sent via [`World::beep`] are delivered to every partition set of
    /// their circuit, and the round counter advances.
    pub fn tick(&mut self) {
        self.tick_with(&mut NullRecorder);
    }

    /// [`World::tick`] with a telemetry [`Recorder`] attached. Every
    /// emission and timing site is gated on the recorder's associated
    /// consts, so `tick()` (= `tick_with(&mut NullRecorder)`) pays for
    /// none of it after monomorphization.
    ///
    /// With `R::TRACE` the recorder sees, in order: the net pin-config
    /// deltas since the last relabel (read off the dirty-pin list before
    /// the refresh consumes it — intermediate writes between ticks are
    /// not observable, by design), the beeping gids, and a
    /// [`RoundSummary`] carrying an order-independent delivery digest
    /// (XOR of [`mix64`] over every delivered gid). Replay recomputes
    /// the digest from its own labeling, so any divergence in circuit
    /// structure or delivery surfaces at the exact round. The delta
    /// stream and the digest are the expensive, replay-grade half and
    /// are further gated on `R::REPLAY`: windowed sinks (the flight
    /// recorder) opt out and their summaries carry `digest = 0`.
    ///
    /// Recording soundness: the trace captures relabel inputs only at
    /// tick time, so between recorded ticks the caller must not force
    /// relabels through diagnostic paths ([`World::circuit_count`],
    /// [`World::pset_circuit`]) or [`World::tick_reference`] — those
    /// consume dirty pins without emitting deltas.
    pub fn tick_with<R: Recorder>(&mut self, rec: &mut R) {
        self.tick_impl::<R, false>(&TickFaults::EMPTY, rec);
    }

    /// [`World::tick_with`] under an adversary: `faults.inject` gids are
    /// forced to beep before delivery and `faults.drop` gids' beeps are
    /// suppressed on the wire. Both lists must be sorted ascending (see
    /// [`TickFaults`]). With [`TickFaults::EMPTY`] this is byte-identical
    /// to [`World::tick_with`] — same monomorphized engine, fault arm
    /// compiled out — which the fault differential suite pins.
    ///
    /// Trace semantics: injections are recorded as ordinary beeps plus a
    /// `FaultInject` attribution; drops keep their `Beep` record (the
    /// send happened — the adversary ate it) plus a `FaultDrop` record
    /// that replay uses to exclude the gid from delivery.
    ///
    /// # Panics
    ///
    /// Panics if an injected gid is outside the world's gid space.
    pub fn tick_faulted<R: Recorder>(&mut self, faults: &TickFaults, rec: &mut R) {
        self.tick_impl::<R, true>(faults, rec);
    }

    /// The single tick engine behind [`World::tick`], [`World::tick_with`]
    /// and [`World::tick_faulted`]. `FAULTED` gates the adversary arms at
    /// monomorphization, exactly like `R::TRACE` gates emission — the
    /// healthy paths carry no fault checks at all.
    fn tick_impl<R: Recorder, const FAULTED: bool>(&mut self, faults: &TickFaults, rec: &mut R) {
        if FAULTED {
            for &gid in &faults.inject {
                assert!(
                    (gid as usize) < self.pin_pset.len(),
                    "injected beep gid {gid} outside the pin space"
                );
                if !self.send.get(gid as usize) {
                    self.send.set(gid as usize);
                    self.sent.push(gid);
                    self.beeps_sent += 1;
                    self.stats.metrics.inc(self.stats.fault_injects);
                    if R::TRACE {
                        rec.beep_injected(gid);
                    }
                }
            }
        }
        let mut digest = 0u64;
        if R::TRACE {
            if R::REPLAY {
                // Net config deltas since the last relabel, captured
                // before the refresh consumes the dirty-pin list. This
                // stream is O(dirty pins) per tick — replay-grade
                // detail, skipped for windowed sinks like the flight
                // recorder so "armed" stays cheap under heavy
                // reconfiguration.
                for i in 0..self.dirty_pins.len() {
                    let gid = self.dirty_pins[i].0;
                    rec.config_delta(gid, self.pin_pset[gid as usize]);
                }
            }
            for &gid in &self.sent {
                rec.beep(gid);
                if R::REPLAY {
                    digest ^= mix64(gid as u64 ^ BEEP_DIGEST_SALT);
                }
            }
        }
        let beeps = self.sent.len() as u32;
        let relabel = if self.relabel_pending() {
            self.refresh_labels::<R>()
        } else {
            RelabelKind::None
        };
        let t_propagate = if R::TIMED {
            Some(Stopwatch::start())
        } else {
            None
        };
        // Clear last round's deliveries (O(previous deliveries)).
        for &gid in &self.recv_set {
            self.recv.clear(gid as usize);
        }
        self.recv_set.clear();
        // Dedup the beeping circuits (O(beeps sent)).
        for &gid in &self.sent {
            self.send.clear(gid as usize);
            if FAULTED && faults.drop.binary_search(&gid).is_ok() {
                // Suppressed on the wire: the beep counted as sent (and
                // went into the salted digest term above) but marks no
                // circuit for delivery.
                self.stats.metrics.inc(self.stats.fault_drops);
                if R::TRACE {
                    rec.beep_dropped(gid);
                }
                continue;
            }
            let root = self.labels[gid as usize] as usize;
            if !self.root_mark.get(root) {
                self.root_mark.set(root);
                self.marked_roots.push(root as u32);
            }
        }
        self.sent.clear();
        // Deliver to every member of each beeping circuit (bucket bounds
        // straight out of the membership arena).
        for i in 0..self.marked_roots.len() {
            let root = self.marked_roots[i] as usize;
            let start = self.member_off[root] as usize;
            let end = self.member_end[root] as usize;
            // Two loop bodies so the warm-cache (and non-digesting)
            // path keeps the tight two-write member loop: the digest
            // work runs only on the first replay-grade delivery after
            // a bucket changed. Recorders without replay detail
            // monomorphize to the bare else branch.
            if R::TRACE && R::REPLAY && self.member_digest_epoch[root] != self.digest_epoch {
                let mut bucket = 0u64;
                for j in start..end {
                    let gid = self.members[j];
                    self.recv.set(gid as usize);
                    self.recv_set.push(gid);
                    bucket ^= mix64(gid as u64);
                }
                self.member_digest[root] = bucket;
                self.member_digest_epoch[root] = self.digest_epoch;
            } else {
                for j in start..end {
                    let gid = self.members[j];
                    self.recv.set(gid as usize);
                    self.recv_set.push(gid);
                }
            }
            if R::TRACE && R::REPLAY {
                digest ^= self.member_digest[root];
            }
        }
        for &root in &self.marked_roots {
            self.root_mark.clear(root as usize);
        }
        self.marked_roots.clear();
        if let Some(t) = t_propagate {
            self.stats
                .metrics
                .observe(self.stats.t_propagate, t.micros());
        }
        self.rounds += 1;
        self.simulated += 1;
        if R::TRACE {
            rec.round_end(&RoundSummary {
                round: self.rounds,
                beeps,
                delivered: self.recv_set.len() as u64,
                digest,
                relabel,
                circuits: self.cached_circuits as u64,
            });
        }
    }

    /// The pre-refactor engine: one synchronous round via a full union-find
    /// rebuild over every pin in the structure, exactly as `tick` worked
    /// before the incremental engine. Kept as the reference semantics for
    /// differential tests and as the baseline of the `circuit_engine`
    /// benches. Interchangeable with [`World::tick`] round for round.
    pub fn tick_reference(&mut self) {
        let total = self.pin_pset.len();
        for i in 0..total {
            self.uf[i] = i as u32;
        }
        // Union partition sets along every external link.
        for v in 0..self.topo.len() {
            // Visit each undirected edge once.
            let ports: Vec<(PortId, usize, PortId)> = self.topo.neighbors(v).collect();
            for (p, w, q) in ports {
                if v < w {
                    for link in 0..self.c {
                        let a = self.base[v] as usize + p * self.c + link;
                        let b = self.base[w] as usize + q * self.c + link;
                        let pa = self.base[v] + self.pin_pset[a] as u32;
                        let pb = self.base[w] + self.pin_pset[b] as u32;
                        self.union(pa, pb);
                    }
                }
            }
        }
        // Deliver beeps: a circuit beeps iff any of its partition sets sent.
        let mut fresh = vec![false; total];
        for gid in 0..total as u32 {
            if self.send.get(gid as usize) {
                let root = self.find(gid);
                fresh[root as usize] = true;
            }
        }
        self.recv_set.clear();
        for gid in 0..total as u32 {
            let root = self.find(gid);
            let delivered = fresh[root as usize];
            if delivered {
                self.recv.set(gid as usize);
                // Keep the incremental engine's delivery bookkeeping in
                // sync so the two tick flavors can be interleaved.
                self.recv_set.push(gid);
            } else {
                self.recv.clear(gid as usize);
            }
        }
        // Set send bits are always a subset of the dense `sent` list, so
        // clearing through the list clears them all.
        for &gid in &self.sent {
            self.send.clear(gid as usize);
        }
        self.sent.clear();
        // This path clobbers `uf` without refreshing `labels` (and tracks
        // no per-pin dirty state), so the next relabel must be global.
        self.force_global = true;
        self.rounds += 1;
        self.simulated += 1;
    }

    /// Accounts `k` rounds for a step performed abstractly by the harness
    /// (e.g. a figure-level glue step whose circuit mechanics are not worth
    /// simulating). The charge is recorded in an audit log; the paper's
    /// algorithms in this workspace only charge O(1) glue per composite step.
    pub fn charge_rounds(&mut self, k: u64, reason: &str) {
        self.rounds += k;
        self.charged += k;
        self.charge_log.push((reason.to_string(), k as i64));
    }

    /// Rebates `k` rounds from the counter with an audit-log entry.
    ///
    /// Used for *parallel composition*: when several primitives operate on
    /// vertex-disjoint regions (disjoint circuits), the model runs them in
    /// the same rounds, but the simulator executes them sequentially. The
    /// caller measures each region's span and rebates `sum - max` so the
    /// counter reflects the parallel execution. Every rebate is recorded in
    /// the charge log as a **negative** entry, so the log always reconciles:
    /// `simulated_rounds() + Σ charge_log() == rounds()`.
    ///
    /// # Panics
    ///
    /// Panics if rebating more rounds than have elapsed.
    pub fn rebate_rounds(&mut self, k: u64, reason: &str) {
        assert!(
            k <= self.rounds,
            "cannot rebate {k} of {} rounds",
            self.rounds
        );
        self.rounds -= k;
        self.charge_log
            .push((format!("rebate: {reason}"), -(k as i64)));
    }

    /// Number of distinct circuits under the current pin configuration
    /// (diagnostic; does not advance the round counter). Served from the
    /// cached labeling; relabels only if the configuration changed.
    pub fn circuit_count(&mut self) -> usize {
        if self.relabel_pending() {
            self.refresh_labels::<NullRecorder>();
        }
        self.cached_circuits
    }

    /// The circuit label (minimum member gid) of `v`'s partition set
    /// `pset` under the current configuration. Two partition sets lie on
    /// the same circuit iff their labels are equal — the diagnostic the
    /// dynamic-structure oracle uses to compare an incrementally edited
    /// world against a from-scratch rebuild. Relabels first if pending;
    /// does not advance the round counter.
    ///
    /// # Panics
    ///
    /// Panics if `pset` is out of range for `v`.
    pub fn pset_circuit(&mut self, v: usize, pset: u16) -> u32 {
        if self.relabel_pending() {
            self.refresh_labels::<NullRecorder>();
        }
        let gid = self.pset_gid(v, pset);
        self.labels[gid]
    }

    // ---- Structure mutation (dynamic worlds).
    //
    // All four operations keep the cached labeling machinery sound by
    // construction: `add_node` pre-labels its fresh singletons (nothing
    // to relabel), while `connect`/`disconnect` mark the `c` pin pairs of
    // the edge dirty *as if* their partition sets had changed — the
    // region relabel then dissolves exactly the circuits that run(ran)
    // through the edge and re-unions them against the spliced link table.
    // The stability argument of DESIGN.md §1c extends verbatim: every
    // added or removed link-union has both endpoint sets' circuits
    // seeded, so circuits disjoint from the seeds cannot change.

    /// Appends an isolated node with `ports` vacant port slots and
    /// returns its id. Its pins start in the singleton configuration,
    /// already labelled (one counted singleton circuit per pin), so the
    /// cached labeling stays valid and no relabel is triggered.
    pub fn add_node(&mut self, ports: usize) -> usize {
        self.add_node_with(ports, &mut NullRecorder)
    }

    /// [`World::add_node`] with the append recorded. This is the single
    /// implementation; the plain form is a [`NullRecorder`] wrapper, so
    /// the emission gate below compiles away there.
    pub fn add_node_with<R: Recorder>(&mut self, ports: usize, rec: &mut R) -> usize {
        if R::TRACE {
            rec.add_node(ports as u32);
        }
        let v = self.topo.push_node(ports);
        let old_total = *self.base.last().expect("base always non-empty") as usize;
        let added = ports * self.c;
        let new_total = old_total + added;
        self.base.push(new_total as u32);
        for i in 0..added {
            self.pin_pset.push(i as u16);
            self.pset_at_relabel.push(i as u16);
        }
        for gid in old_total..new_total {
            self.uf.push(gid as u32);
            self.labels.push(gid as u32);
            // A fresh singleton bucket at the end of the arena; the next
            // repack folds it in with everything else.
            let pos = self.members.len() as u32;
            self.members.push(gid as u32);
            self.member_off.push(pos);
            self.member_end.push(pos + 1);
            self.member_digest.push(0);
            self.member_digest_epoch.push(0);
        }
        self.send.grow(new_total);
        self.recv.grow(new_total);
        self.root_mark.grow(new_total);
        self.dirty_pin.grow(new_total);
        self.affected_mark.grow(new_total);
        self.in_region.grow(new_total);
        self.circuit_roots.grow(new_total);
        self.node_mark.ensure_len(self.topo.len());
        self.port_edge.resize(self.port_edge.len() + ports, NO_EDGE);
        // Keep the construction-time worst-case reservations of the dense
        // scratch lists in step with the grown pin space, so the "ticks
        // never reallocate" invariant survives growth (the realloc lands
        // here, outside the hot tick path).
        for dense in [&mut self.sent, &mut self.recv_set, &mut self.marked_roots] {
            if dense.capacity() < new_total {
                let len = dense.len();
                dense.reserve(new_total - len);
            }
        }
        if self.dirty_pins.capacity() < new_total {
            let len = self.dirty_pins.len();
            self.dirty_pins.reserve(new_total - len);
        }
        // Each fresh singleton set is referenced by its own pin: it is a
        // circuit, counted immediately so the cached count stays exact.
        for gid in old_total..new_total {
            self.circuit_roots.set(gid);
        }
        self.cached_circuits += added;
        v
    }

    /// Wires an edge (with its `c` external links) into the vacant ports
    /// `(v, p)` and `(w, q)`, marking the edge's pins dirty so the next
    /// relabel merges the circuits it now bridges. O(deg + c).
    ///
    /// # Panics
    ///
    /// Panics on self-loops, duplicate edges, or occupied ports (see
    /// [`Topology::connect`]).
    pub fn connect(&mut self, v: usize, p: PortId, w: usize, q: PortId) {
        self.connect_with(v, p, w, q, &mut NullRecorder)
    }

    /// [`World::connect`] with the edge recorded (the single
    /// implementation; see [`World::add_node_with`]).
    pub fn connect_with<R: Recorder>(
        &mut self,
        v: usize,
        p: PortId,
        w: usize,
        q: PortId,
        rec: &mut R,
    ) {
        if R::TRACE {
            rec.connect(v as u32, p as u32, w as u32, q as u32);
        }
        self.topo.connect(v, p, w, q);
        let a0 = self.base[v] + (p * self.c) as u32;
        let b0 = self.base[w] + (q * self.c) as u32;
        let entry = (a0, self.base[v], b0, self.base[w]);
        let ei = match self.free_links.pop() {
            Some(ei) => {
                debug_assert_eq!(self.links[ei as usize], DEAD_LINK);
                self.links[ei as usize] = entry;
                ei
            }
            None => {
                self.links.push(entry);
                (self.links.len() - 1) as u32
            }
        };
        // `a0 / c` is `base[v] / c + p`: node bases are multiples of `c`.
        self.port_edge[a0 as usize / self.c] = ei;
        self.port_edge[b0 as usize / self.c] = ei;
        let (base_a, base_b) = (self.base[v], self.base[w]);
        for link in 0..self.c {
            self.mark_pin_dirty(a0 as usize + link, base_a);
            self.mark_pin_dirty(b0 as usize + link, base_b);
        }
    }

    /// Unwires the edge behind port `p` of `v` (tombstoning its link
    /// table entry) and returns the peer `(w, q)`. The edge's pins are
    /// marked dirty *before* the splice so the next relabel's seeds still
    /// capture the circuits that ran through the edge. O(deg + c).
    ///
    /// # Panics
    ///
    /// Panics if the port carries no edge.
    pub fn disconnect(&mut self, v: usize, p: PortId) -> (usize, PortId) {
        self.disconnect_with(v, p, &mut NullRecorder)
    }

    /// [`World::disconnect`] with the severed port recorded (the single
    /// implementation; see [`World::add_node_with`]).
    pub fn disconnect_with<R: Recorder>(
        &mut self,
        v: usize,
        p: PortId,
        rec: &mut R,
    ) -> (usize, PortId) {
        if R::TRACE {
            rec.disconnect(v as u32, p as u32);
        }
        let (w, q) = self
            .topo
            .peer(v, p)
            .unwrap_or_else(|| panic!("port {p} of node {v} carries no edge"));
        let a0 = self.base[v] + (p * self.c) as u32;
        let b0 = self.base[w] + (q * self.c) as u32;
        let (base_a, base_b) = (self.base[v], self.base[w]);
        for link in 0..self.c {
            self.mark_pin_dirty(a0 as usize + link, base_a);
            self.mark_pin_dirty(b0 as usize + link, base_b);
        }
        let slot_a = a0 as usize / self.c;
        let slot_b = b0 as usize / self.c;
        let ei = self.port_edge[slot_a];
        debug_assert_eq!(ei, self.port_edge[slot_b], "port tables out of sync");
        self.links[ei as usize] = DEAD_LINK;
        self.free_links.push(ei);
        self.port_edge[slot_a] = NO_EDGE;
        self.port_edge[slot_b] = NO_EDGE;
        self.topo.disconnect(v, p);
        (w, q)
    }

    /// Disconnects every edge of `v` and resets its pins to singletons —
    /// the "this amoebot left the structure" operation. The node id
    /// remains valid (a tombstone the caller may re-wire later via
    /// [`World::connect`]); its singleton sets keep counting as
    /// single-pin circuits, exactly like any other isolated node's.
    /// O(deg · c).
    pub fn isolate(&mut self, v: usize) {
        self.isolate_with(v, &mut NullRecorder)
    }

    /// [`World::isolate`] with the departure recorded as one event (the
    /// implied disconnects and the singleton reset are replayed from it,
    /// so the inner disconnects deliberately go unrecorded). The single
    /// implementation; see [`World::add_node_with`].
    pub fn isolate_with<R: Recorder>(&mut self, v: usize, rec: &mut R) {
        if R::TRACE {
            rec.isolate(v as u32);
        }
        for p in 0..self.topo.ports_len(v) {
            if self.topo.peer(v, p).is_some() {
                self.disconnect(v, p);
            }
        }
        self.singleton_pin_config(v);
    }

    // ---- Recorded structure mutation.
    //
    // Pin-configuration changes need no recorder threading (the net
    // deltas are read off the dirty-pin list at tick time), but structure
    // edits change the *shape* replay must mirror, so each mutation's
    // recorder-generic `_with` form emits the edit before applying it and
    // *is* the implementation — the plain spellings above are one-line
    // `NullRecorder` wrappers, under which the emission gates compile
    // away.

    // ---- Replay-side accessors (crate-internal; see `crate::replay`).
    //
    // Replay rebuilds a world from a trace header and drives it with the
    // recorded deltas, so it needs a validated write path by *gid* (the
    // trace speaks gids, not (node, port, link) triples) and read access
    // to the cached labeling to recompute delivery digests.

    /// Refreshes the labeling if pending and reports which flavor ran.
    /// Replay's stand-in for the refresh a recorded tick performed.
    pub(crate) fn replay_refresh(&mut self) -> RelabelKind {
        if self.relabel_pending() {
            self.refresh_labels::<NullRecorder>()
        } else {
            RelabelKind::None
        }
    }

    /// Total number of pin/partition-set gids.
    pub(crate) fn gid_count(&self) -> usize {
        self.pin_pset.len()
    }

    /// The circuit root of `gid` under the cached labeling (callers must
    /// refresh first).
    pub(crate) fn label_of(&self, gid: usize) -> u32 {
        self.labels[gid]
    }

    /// The membership bucket of circuit `root` (callers must refresh
    /// first and pass a current root).
    pub(crate) fn member_bucket(&self, root: usize) -> &[u32] {
        &self.members[self.member_off[root] as usize..self.member_end[root] as usize]
    }

    /// The cached circuit count without triggering a relabel.
    pub(crate) fn cached_circuit_count(&self) -> usize {
        self.cached_circuits
    }

    /// Monotone epoch that advances on every relabel of either flavor —
    /// replay keys its per-root digest memo on it.
    pub(crate) fn relabel_epoch(&self) -> u64 {
        self.global_relabels() + self.region_relabels()
    }

    /// Validated gid-addressed pin write: the replay-side mirror of
    /// [`World::set_pin`]. Returns `false` (leaving the world untouched)
    /// when `gid` is out of range or `pset` exceeds the owner's capacity,
    /// instead of panicking — a corrupt trace must surface as an error.
    ///
    /// The caller holds a node cursor: recorded config deltas arrive in
    /// near-sorted gid order (the recorder walks nodes in id order), so
    /// the owner of the next gid is almost always the cursor node or its
    /// successor — an O(1) check that replaces a binary search per delta
    /// on the replay hot path. Any cursor value is sound; a stale one
    /// only costs the fallback search.
    pub(crate) fn set_pin_gid_hinted(&mut self, gid: u32, pset: u16, hint: &mut usize) -> bool {
        let g = gid as usize;
        if g >= self.pin_pset.len() {
            return false;
        }
        let h = (*hint).min(self.base.len() - 2);
        let v = if self.base[h] <= gid && gid < self.base[h + 1] {
            h
        } else if h + 2 < self.base.len() && self.base[h + 1] <= gid && gid < self.base[h + 2] {
            h + 1
        } else {
            self.node_of_gid(gid)
        };
        *hint = v;
        if (pset as usize) >= self.pset_capacity(v) {
            return false;
        }
        if self.pin_pset[g] != pset {
            self.pin_pset[g] = pset;
            self.mark_pin_dirty(g, self.base[v]);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_world(n: usize, c: usize) -> World {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        World::new(Topology::from_edges(n, &edges), c)
    }

    #[test]
    fn global_circuit_broadcasts() {
        let mut w = path_world(5, 1);
        for v in 0..5 {
            w.global_pin_config(v);
        }
        w.beep(0, 0);
        w.tick();
        for v in 0..5 {
            assert!(w.received(v, 0), "node {v} missed the broadcast");
        }
        assert_eq!(w.rounds(), 1);
        // Without new beeps, the next round is silent.
        w.tick();
        for v in 0..5 {
            assert!(!w.received(v, 0));
        }
    }

    #[test]
    fn singleton_config_reaches_only_neighbors() {
        let mut w = path_world(4, 1);
        // Default singleton config. Node 1 beeps towards node 2 (its port 1).
        let pset = 1; // port 1, link 0 under singleton numbering
        w.beep(1, pset as u16);
        w.tick();
        // Node 2 hears it on its port-0 pin (towards node 1)...
        assert!(w.received(2, 0));
        // ...but node 3 does not, and node 0 does not.
        assert!(!w.received_any(3));
        assert!(!w.received_any(0));
    }

    #[test]
    fn links_are_independent() {
        let mut w = path_world(2, 2);
        // Beep only on link 1 of the single edge.
        let pset_link1 = 1;
        w.beep(0, pset_link1 as u16);
        w.tick();
        assert!(w.received(1, 1)); // link 1 pin
        assert!(!w.received(1, 0)); // link 0 pin silent
    }

    #[test]
    fn split_circuit_blocks_signal() {
        // 0 - 1 - 2: node 1 keeps its two pins in separate sets, so beeps
        // from 0 stop at 1.
        let mut w = path_world(3, 1);
        w.beep(0, 0);
        w.tick();
        assert!(w.received(1, 0));
        assert!(!w.received_any(2));
        // Now node 1 merges its pins into one set; the beep passes through.
        w.set_pin(1, 0, 0, 0);
        w.set_pin(1, 1, 0, 0);
        w.beep(0, 0);
        w.tick();
        assert!(w.received(2, 0));
    }

    #[test]
    fn receiver_cannot_count_origins() {
        let mut w = path_world(3, 1);
        for v in 0..3 {
            w.global_pin_config(v);
        }
        w.beep(0, 0);
        w.beep(2, 0);
        w.tick();
        // One bit only: node 1 sees "a beep", indistinguishable from a single
        // origin — the API exposes just a boolean.
        assert!(w.received(1, 0));
    }

    #[test]
    fn circuit_count_diagnostic() {
        let mut w = path_world(3, 1);
        // Singleton config: circuits are per-edge: 2 circuits.
        assert_eq!(w.circuit_count(), 2);
        for v in 0..3 {
            w.global_pin_config(v);
        }
        assert_eq!(w.circuit_count(), 1);
    }

    #[test]
    fn charge_rounds_is_audited() {
        let mut w = path_world(2, 1);
        w.tick();
        w.charge_rounds(3, "glue");
        assert_eq!(w.rounds(), 4);
        assert_eq!(w.charged_rounds(), 3);
        assert_eq!(w.charge_log().len(), 1);
    }

    /// The audit invariant: the round counter is exactly the simulated
    /// rounds plus the signed sum of the charge log, so charges and rebates
    /// always reconcile.
    #[test]
    fn charge_log_reconciles_with_round_counter() {
        let mut w = path_world(4, 1);
        w.tick();
        w.tick();
        w.charge_rounds(5, "glue");
        w.tick();
        w.rebate_rounds(3, "parallel composition");
        w.charge_rounds(2, "more glue");
        w.rebate_rounds(1, "overlap");
        assert_eq!(w.simulated_rounds(), 3);
        assert_eq!(w.charged_rounds(), 7); // gross charges, rebates excluded
        let log_sum: i64 = w.charge_log().iter().map(|&(_, k)| k).sum();
        assert_eq!(
            w.simulated_rounds() as i64 + log_sum,
            w.rounds() as i64,
            "simulated + Σlog must equal rounds()"
        );
        // Rebate entries are negative and labelled.
        assert!(w
            .charge_log()
            .iter()
            .any(|(reason, k)| reason.starts_with("rebate:") && *k < 0));
    }

    /// Reconfiguring *after* a tick must invalidate the cached labeling:
    /// the next tick has to see the new circuits, not the cached ones.
    #[test]
    fn dirty_tracking_catches_reconfiguration_after_tick() {
        let mut w = path_world(3, 1);
        // Round 1 on the split (singleton) configuration.
        w.beep(0, 0);
        w.tick();
        assert!(!w.received_any(2), "split config blocks the beep");
        // Reconfigure after the tick: node 1 bridges its pins.
        w.set_pin(1, 0, 0, 0);
        w.set_pin(1, 1, 0, 0);
        w.beep(0, 0);
        w.tick();
        assert!(
            w.received(2, 0),
            "reconfiguration after a tick must not reuse stale circuits"
        );
        // And back: splitting again must also be picked up.
        w.singleton_pin_config(1);
        w.beep(0, 0);
        w.tick();
        assert!(!w.received_any(2), "re-split must invalidate the cache too");
    }

    /// Many consecutive ticks without reconfiguration reuse the cached
    /// labeling; results must stay identical to the reference engine.
    #[test]
    fn steady_state_ticks_match_reference() {
        let mut inc = path_world(6, 2);
        for v in 0..6 {
            inc.global_pin_config(v);
        }
        let mut reference = inc.clone();
        for round in 0..5 {
            let beeper = round % 6;
            inc.beep(beeper, 0);
            reference.beep(beeper, 0);
            inc.tick();
            reference.tick_reference();
            for v in 0..6 {
                for pset in 0..inc.pset_capacity(v) as u16 {
                    assert_eq!(
                        inc.received(v, pset),
                        reference.received(v, pset),
                        "round {round}, node {v}, pset {pset}"
                    );
                }
            }
        }
    }

    /// No-op reconfigurations — every mutation path re-storing the values
    /// the pins already hold — must keep the next tick on the clean path:
    /// nothing becomes dirty, no relabel of either flavor runs.
    #[test]
    fn noop_writes_keep_the_next_tick_clean() {
        let mut w = path_world(5, 2);
        for v in 0..5 {
            w.global_link_config(v, 1);
        }
        w.tick();
        assert!(!w.relabel_pending());
        let before = (w.global_relabels(), w.region_relabels());
        // Re-apply the identical configuration through every sibling.
        for v in 0..5 {
            w.global_link_config(v, 1);
            for i in 0..w.pset_capacity(v) {
                let pset = if i % 2 == 1 { 1 } else { i as u16 };
                w.set_pin(v, i / 2, i % 2, pset);
            }
        }
        w.reset_all_pins_keeping_links(&[1]);
        assert!(
            !w.relabel_pending(),
            "no-op writes must not dirty the labeling"
        );
        w.tick();
        assert_eq!(
            (w.global_relabels(), w.region_relabels()),
            before,
            "the clean tick must not relabel"
        );
    }

    /// Out-of-range partition sets on `beep` must panic — in release builds
    /// too (a `debug_assert` would silently index into a neighbor's state).
    /// Run under `cargo test --release` to exercise the release profile.
    #[test]
    #[should_panic(expected = "partition set 7 out of range for node 0")]
    fn beep_bounds_check_holds_in_release() {
        let mut w = path_world(2, 1);
        // Node 0 has 1 pin => capacity 1; pset 7 would land in node 1's
        // send slots if unchecked.
        w.beep(0, 7);
    }

    /// Same release-mode bounds check on the receive side.
    #[test]
    #[should_panic(expected = "partition set 9 out of range for node 1")]
    fn received_bounds_check_holds_in_release() {
        let w = path_world(3, 1);
        let _ = w.received(1, 9);
    }

    /// `set_pin` rejects out-of-range partition sets in release builds: a
    /// stray pset would poison the cached circuit labeling.
    #[test]
    #[should_panic(expected = "partition set 12 out of range for node 0")]
    fn set_pin_bounds_check_holds_in_release() {
        let mut w = path_world(2, 1);
        w.set_pin(0, 0, 0, 12);
    }
}

#[cfg(test)]
mod dynamic_tests {
    use super::*;
    use crate::topology::Topology;

    fn empty_world(c: usize) -> World {
        World::new(Topology::from_edges(0, &[]), c)
    }

    /// A world grown node by node and edge by edge behaves exactly like
    /// one built in a single shot: broadcasts span it, counts match.
    #[test]
    fn grown_world_behaves_like_a_built_one() {
        let mut w = empty_world(2);
        for _ in 0..4 {
            w.add_node(6);
        }
        // A path 0-1-2-3 on E/W ports (0 and 3).
        for v in 0..3 {
            w.connect(v, 0, v + 1, 3);
        }
        for v in 0..4 {
            w.global_pin_config(v);
        }
        w.beep(0, 0);
        w.tick();
        for v in 0..4 {
            assert!(w.received(v, 0), "node {v} missed the broadcast");
        }
        // All pins of all nodes reference set 0 and the links bridge
        // them: one structure-spanning circuit.
        assert_eq!(w.circuit_count(), 1);
    }

    /// `add_node` must not invalidate the cached labeling; wiring the new
    /// node in dirties exactly the edge region. Circuit counts stay exact
    /// through the whole grow sequence (c = 2, 6 ports => 12 singleton
    /// circuits per isolated node, each edge merging two pin pairs).
    #[test]
    fn add_node_keeps_the_labeling_clean() {
        let mut w = empty_world(2);
        w.add_node(6);
        w.add_node(6);
        w.connect(0, 0, 1, 3);
        w.tick();
        assert!(!w.relabel_pending());
        let before = (w.global_relabels(), w.region_relabels());
        let v = w.add_node(6);
        assert!(!w.relabel_pending(), "isolated growth needs no relabel");
        assert_eq!(w.circuit_count(), 2 * 12 - 2 + 12);
        assert_eq!(
            (w.global_relabels(), w.region_relabels()),
            before,
            "counting fresh singletons must not relabel"
        );
        w.connect(0, 1, v, 4);
        assert!(w.relabel_pending());
        assert_eq!(w.circuit_count(), 34 - 2);
        assert_eq!(w.global_relabels(), before.0, "edge splice stays regional");
        assert!(w.region_relabels() > before.1);
        // The spliced edge's link-0 pin pair shares a circuit.
        assert_eq!(w.pset_circuit(0, 2), w.pset_circuit(v, 8));
        assert_ne!(w.pset_circuit(0, 2), w.pset_circuit(v, 9));
    }

    /// Detach/re-attach churn at the boundary of a singleton-configured
    /// path must take the region path every time — structural edits ride
    /// the dirty-pin machinery, they do not force global relabels.
    #[test]
    fn boundary_churn_takes_the_region_path() {
        let n = 64;
        let mut w = empty_world(1);
        for _ in 0..n {
            w.add_node(6);
        }
        for v in 0..n - 1 {
            w.connect(v, 0, v + 1, 3);
        }
        w.tick();
        let g0 = w.global_relabels();
        for _ in 0..5 {
            w.isolate(n - 1);
            w.beep(n - 2, 0);
            w.tick();
            assert!(!w.received_any(n - 1), "detached node must hear nothing");
            w.connect(n - 2, 0, n - 1, 3);
            w.beep(n - 2, 0);
            w.tick();
            assert!(w.received(n - 1, 3), "re-attached node hears its neighbor");
        }
        assert_eq!(w.global_relabels(), g0, "churn must relabel regionally");
        assert!(w.region_relabels() >= 10);
    }

    /// The interleaving guard: churn followed by `tick_reference` (which
    /// clobbers the scratch) followed by more churn must still deliver
    /// correctly — the forced global relabel covers the spliced links.
    #[test]
    fn churn_interleaves_with_the_reference_engine() {
        let mut w = empty_world(1);
        for _ in 0..3 {
            w.add_node(6);
        }
        w.connect(0, 0, 1, 3);
        w.connect(1, 0, 2, 3);
        for v in 0..3 {
            w.global_pin_config(v);
        }
        w.beep(0, 0);
        w.tick_reference();
        assert!(w.received(2, 0));
        w.disconnect(1, 0);
        w.beep(0, 0);
        w.tick();
        assert!(w.received(1, 0));
        assert!(
            !w.received_any(2),
            "split must hold after the reference tick"
        );
        w.connect(1, 0, 2, 3);
        w.beep(0, 0);
        w.tick_reference();
        assert!(w.received(2, 0), "rewired edge must carry beeps again");
    }

    /// Tombstoned link-table entries are recycled: a long grow–shrink
    /// cycle must not grow the link table past its historical maximum.
    #[test]
    fn link_slots_are_recycled_across_churn_cycles() {
        let mut w = empty_world(2);
        for _ in 0..3 {
            w.add_node(6);
        }
        w.connect(0, 0, 1, 3);
        w.connect(1, 0, 2, 3);
        let links_high_water = w.links.len();
        for _ in 0..50 {
            w.isolate(2);
            w.connect(1, 0, 2, 3);
            w.tick();
        }
        assert_eq!(
            w.links.len(),
            links_high_water,
            "freelist must recycle tombstones"
        );
        w.beep(0, 0);
        w.tick();
        // c = 2: node 1's port-3 link-0 pin sits in singleton set 6.
        assert!(w.received(1, 6));
    }

    /// An isolated (tombstoned) node keeps its singleton circuits and its
    /// id; rewiring it at a different port works like a fresh node.
    #[test]
    fn isolate_then_rewire_reuses_the_node() {
        let mut w = empty_world(1);
        for _ in 0..3 {
            w.add_node(6);
        }
        w.connect(0, 0, 1, 3);
        w.connect(1, 0, 2, 3);
        let count_before = w.circuit_count();
        w.isolate(2);
        // The severed edge's two 2-pin circuits split into singletons.
        assert_eq!(w.circuit_count(), count_before + 1);
        // Rewire node 2 on the other side of node 0 (port 3/W of 0).
        w.connect(0, 3, 2, 0);
        assert_eq!(w.circuit_count(), count_before);
        w.beep(2, 0);
        w.tick();
        assert!(w.received(0, 3));
    }
}

#[cfg(test)]
mod safety_tests {
    use super::*;
    use crate::topology::Topology;

    /// Stale pin groups from an earlier phase must not leak circuits into a
    /// later phase once the node resets its non-reserved pins.
    #[test]
    fn reset_pins_prevents_stale_group_leaks() {
        // 0 - 1 - 2 with c = 3 (link 2 reserved as a global link).
        let edges = [(0usize, 1usize), (1, 2)];
        let mut w = World::new(Topology::from_edges(3, &edges), 3);
        for v in 0..3 {
            w.global_link_config(v, 2);
        }
        // Phase 1: node 1 bridges its two link-0 pins.
        let bridge = w.group_pins(1, &[(0, 0), (1, 0)]);
        w.beep(0, 0);
        w.tick();
        assert!(w.received(2, 0), "bridge active in phase 1");
        let _ = bridge;
        // Phase 2: node 1 resets (keeping the reserved link); the bridge
        // must be gone while the global link still spans the structure.
        w.reset_pins_keeping_links(1, &[2]);
        w.beep(0, 0);
        w.tick();
        assert!(
            !w.received_any(2) || !w.received(2, World::global_link_pset(2)),
            "stale bridge must not leak"
        );
        // The reserved global link still works.
        w.beep(0, World::global_link_pset(2));
        w.tick();
        assert!(w.received(2, World::global_link_pset(2)));
    }

    #[test]
    fn beep_instrumentation_counts_once_per_pset_round() {
        let mut w = World::new(Topology::from_edges(2, &[(0, 1)]), 1);
        assert_eq!(w.beeps_sent(), 0);
        w.beep(0, 0);
        w.beep(0, 0); // duplicate in the same round: counted once
        w.tick();
        assert_eq!(w.beeps_sent(), 1);
        w.beep(1, 0);
        w.tick();
        assert_eq!(w.beeps_sent(), 2);
    }
}
