//! Port-labelled communication topologies.
//!
//! A [`Topology`] is the graph `G_X` (or an abstract tree, for the tree
//! primitives of §3 which are "not limited to the geometric variant") with a
//! local *port numbering*: each node refers to its incident edges by a port
//! index, and each edge knows the port it occupies on either endpoint. This
//! models the paper's assumption that "neighboring amoebots have a common
//! labeling of their incident external links" (§1.2).

use amoebot_grid::{AmoebotStructure, Direction, ALL_DIRECTIONS};

/// A port index local to a node (`0..ports_len(v)`). For topologies derived
/// from an [`AmoebotStructure`], port `i` corresponds to
/// [`Direction::from_index`]`(i)` (some ports may be vacant).
pub type PortId = usize;

/// Vacant-port sentinel in the flat slot arrays.
const NONE: u32 = u32::MAX;

/// An undirected, port-labelled multigraph-free topology.
///
/// Stored struct-of-arrays in CSR form: `offsets[v]..offsets[v + 1]`
/// delimits node `v`'s port slots in the flat `peer_node`/`peer_port`
/// arrays (vacant slots hold a sentinel). The old representation — a
/// `Vec` of per-node `Vec<Option<(usize, usize)>>` — cost one heap
/// allocation and ~170 bytes per node; a 10^6-node world now touches two
/// contiguous `u32` arrays instead.
#[derive(Debug, Clone)]
pub struct Topology {
    /// CSR row offsets: node `v` owns slots `offsets[v]..offsets[v + 1]`.
    offsets: Vec<u32>,
    /// Peer node id per slot ([`NONE`] = vacant).
    peer_node: Vec<u32>,
    /// Peer-side port per slot (undefined for vacant slots).
    peer_port: Vec<u32>,
    edge_count: usize,
}

impl Topology {
    /// Builds a topology from an undirected edge list over nodes `0..n`.
    /// Ports are assigned in order of appearance.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints, self-loops, or duplicate edges.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Topology {
        // Two passes: count degrees for the CSR offsets, then fill slots
        // in order of appearance (ports are assigned densely, no vacancy).
        let mut degree = vec![0u32; n];
        for &(u, v) in edges {
            assert!(u < n && v < n, "edge endpoint out of range");
            assert_ne!(u, v, "self-loops are not allowed");
            degree[u] += 1;
            degree[v] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        for &d in &degree {
            offsets.push(acc);
            acc += d;
        }
        offsets.push(acc);
        let mut filled = vec![0u32; n];
        let mut peer_node = vec![NONE; acc as usize];
        let mut peer_port = vec![NONE; acc as usize];
        for &(u, v) in edges {
            let pu = filled[u];
            let pv = filled[v];
            filled[u] += 1;
            filled[v] += 1;
            let su = (offsets[u] + pu) as usize;
            let sv = (offsets[v] + pv) as usize;
            peer_node[su] = v as u32;
            peer_port[su] = pv;
            peer_node[sv] = u as u32;
            peer_port[sv] = pu;
        }
        let t = Topology {
            offsets,
            peer_node,
            peer_port,
            edge_count: edges.len(),
        };
        for v in 0..n {
            let mut seen: Vec<usize> = t.neighbors(v).map(|(_, w, _)| w).collect();
            seen.sort_unstable();
            for w in seen.windows(2) {
                assert!(w[0] != w[1], "duplicate edge ({v}, {})", w[0]);
            }
        }
        t
    }

    /// Builds the topology of `G_X` with ports indexed by [`Direction`]:
    /// port `d.index()` of node `v` leads to the neighbor in direction `d`
    /// (vacant if unoccupied). Every node has exactly 6 port slots.
    pub fn from_structure(structure: &AmoebotStructure) -> Topology {
        let n = structure.len();
        let offsets: Vec<u32> = (0..=n as u32).map(|v| v * 6).collect();
        let mut peer_node = vec![NONE; n * 6];
        let mut peer_port = vec![NONE; n * 6];
        let mut edge_count = 0;
        for v in structure.nodes() {
            for d in ALL_DIRECTIONS {
                if let Some(w) = structure.neighbor(v, d) {
                    let slot = v.index() * 6 + d.index();
                    peer_node[slot] = w.0;
                    peer_port[slot] = d.opposite().index() as u32;
                    if v.index() < w.index() {
                        edge_count += 1;
                    }
                }
            }
        }
        Topology {
            offsets,
            peer_node,
            peer_port,
            edge_count,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the topology has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Number of port slots of `v` (vacant slots included).
    #[inline]
    pub fn ports_len(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// The neighbor behind port `p` of `v` and the port the edge occupies on
    /// the neighbor's side, or `None` for a vacant slot.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range for `v` — also in release builds: in
    /// the flat CSR arrays an unchecked out-of-range port would silently
    /// read a *different node's* slot (the pre-CSR nested-`Vec` layout
    /// panicked here too, via its inner indexing).
    #[inline]
    pub fn peer(&self, v: usize, p: PortId) -> Option<(usize, PortId)> {
        let count = self.ports_len(v);
        if p >= count {
            Self::port_out_of_range(v, p, count);
        }
        let slot = self.offsets[v] as usize + p;
        let w = self.peer_node[slot];
        (w != NONE).then(|| (w as usize, self.peer_port[slot] as usize))
    }

    /// Outlined panic for [`Topology::peer`]: keeps the formatting
    /// machinery out of the inlined hot path while the range check itself
    /// stays on.
    #[cold]
    #[inline(never)]
    fn port_out_of_range(v: usize, p: PortId, count: usize) -> ! {
        panic!("port {p} out of range for node {v} ({count} slots)");
    }

    /// Iterator over the occupied ports of `v` as `(port, neighbor, peer_port)`.
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = (PortId, usize, PortId)> + '_ {
        let start = self.offsets[v] as usize;
        let end = self.offsets[v + 1] as usize;
        (start..end).filter_map(move |slot| {
            let w = self.peer_node[slot];
            (w != NONE).then(|| (slot - start, w as usize, self.peer_port[slot] as usize))
        })
    }

    /// Degree of `v` (occupied ports).
    pub fn degree(&self, v: usize) -> usize {
        let start = self.offsets[v] as usize;
        let end = self.offsets[v + 1] as usize;
        self.peer_node[start..end]
            .iter()
            .filter(|&&w| w != NONE)
            .count()
    }

    /// The port of `v` that leads to `w`, if the two are adjacent.
    pub fn port_to(&self, v: usize, w: usize) -> Option<PortId> {
        self.neighbors(v)
            .find(|&(_, x, _)| x == w)
            .map(|(p, _, _)| p)
    }

    /// The grid direction of port `p` for structure-derived topologies.
    ///
    /// # Panics
    ///
    /// Panics if `p >= 6`.
    pub fn port_direction(p: PortId) -> Direction {
        Direction::from_index(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoebot_grid::{shapes, Coord};

    #[test]
    fn edge_list_ports_are_mutual() {
        let t = Topology::from_edges(4, &[(0, 1), (1, 2), (1, 3)]);
        assert_eq!(t.len(), 4);
        assert_eq!(t.edge_count(), 3);
        assert_eq!(t.degree(1), 3);
        for v in 0..4 {
            for (p, w, q) in t.neighbors(v) {
                assert_eq!(t.peer(w, q), Some((v, p)));
            }
        }
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn rejects_duplicate_edges() {
        Topology::from_edges(2, &[(0, 1), (1, 0)]);
    }

    /// Out-of-range ports must panic in release builds too: in the flat
    /// CSR arrays an unchecked port would read a different node's slot.
    #[test]
    #[should_panic(expected = "port 1 out of range for node 0")]
    fn peer_bounds_check_holds_in_release() {
        let t = Topology::from_edges(3, &[(0, 1), (1, 2)]);
        let _ = t.peer(0, 1); // node 0 has exactly 1 port
    }

    #[test]
    fn structure_ports_follow_directions() {
        let s = AmoebotStructure::new(shapes::parallelogram(3, 2)).unwrap();
        let t = Topology::from_structure(&s);
        assert_eq!(t.edge_count(), s.edge_count());
        let v = s.node_at(Coord::new(1, 0)).unwrap();
        let e = s.node_at(Coord::new(2, 0)).unwrap();
        let p = Direction::E.index();
        assert_eq!(
            t.peer(v.index(), p),
            Some((e.index(), Direction::W.index()))
        );
        // Mutuality across the whole structure.
        for v in 0..t.len() {
            for (p, w, q) in t.neighbors(v) {
                assert_eq!(t.peer(w, q), Some((v, p)));
                assert_eq!(
                    Topology::port_direction(q),
                    Topology::port_direction(p).opposite()
                );
            }
        }
    }
}
