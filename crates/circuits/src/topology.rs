//! Port-labelled communication topologies.
//!
//! A [`Topology`] is the graph `G_X` (or an abstract tree, for the tree
//! primitives of §3 which are "not limited to the geometric variant") with a
//! local *port numbering*: each node refers to its incident edges by a port
//! index, and each edge knows the port it occupies on either endpoint. This
//! models the paper's assumption that "neighboring amoebots have a common
//! labeling of their incident external links" (§1.2).

use amoebot_grid::{AmoebotStructure, Direction, ALL_DIRECTIONS};

/// A port index local to a node (`0..ports_len(v)`). For topologies derived
/// from an [`AmoebotStructure`], port `i` corresponds to
/// [`Direction::from_index`]`(i)` (some ports may be vacant).
pub type PortId = usize;

/// Vacant-port sentinel in the flat slot arrays.
pub(crate) const NONE: u32 = u32::MAX;

/// An undirected, port-labelled multigraph-free topology.
///
/// Stored struct-of-arrays in CSR form: `offsets[v]..offsets[v + 1]`
/// delimits node `v`'s port slots in the flat `peer_node`/`peer_port`
/// arrays (vacant slots hold a sentinel). The old representation — a
/// `Vec` of per-node `Vec<Option<(usize, usize)>>` — cost one heap
/// allocation and ~170 bytes per node; a 10^6-node world now touches two
/// contiguous `u32` arrays instead.
#[derive(Debug, Clone)]
pub struct Topology {
    /// CSR row offsets: node `v` owns slots `offsets[v]..offsets[v + 1]`.
    pub(crate) offsets: Vec<u32>,
    /// Peer node id per slot ([`NONE`] = vacant).
    pub(crate) peer_node: Vec<u32>,
    /// Peer-side port per slot (undefined for vacant slots).
    pub(crate) peer_port: Vec<u32>,
    pub(crate) edge_count: usize,
}

impl Topology {
    /// Builds a topology from an undirected edge list over nodes `0..n`.
    /// Ports are assigned in order of appearance.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints, self-loops, or duplicate edges.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Topology {
        // Reject malformed inputs up front, before any CSR is built: a
        // self-loop or duplicate edge would otherwise produce a CSR whose
        // port mutuality silently breaks (two slots claiming the same
        // peer port).
        let mut degree = vec![0u32; n];
        let mut normalized: Vec<(usize, usize)> = Vec::with_capacity(edges.len());
        for &(u, v) in edges {
            assert!(u < n && v < n, "edge endpoint out of range");
            assert!(u != v, "self-loop edge ({u}, {v}) is not allowed");
            normalized.push((u.min(v), u.max(v)));
            degree[u] += 1;
            degree[v] += 1;
        }
        normalized.sort_unstable();
        for w in normalized.windows(2) {
            assert!(
                w[0] != w[1],
                "duplicate edge ({}, {}) in edge list",
                w[0].0,
                w[0].1
            );
        }
        drop(normalized);
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        for &d in &degree {
            offsets.push(acc);
            acc += d;
        }
        offsets.push(acc);
        let mut filled = vec![0u32; n];
        let mut peer_node = vec![NONE; acc as usize];
        let mut peer_port = vec![NONE; acc as usize];
        for &(u, v) in edges {
            let pu = filled[u];
            let pv = filled[v];
            filled[u] += 1;
            filled[v] += 1;
            let su = (offsets[u] + pu) as usize;
            let sv = (offsets[v] + pv) as usize;
            peer_node[su] = v as u32;
            peer_port[su] = pv;
            peer_node[sv] = u as u32;
            peer_port[sv] = pu;
        }
        Topology {
            offsets,
            peer_node,
            peer_port,
            edge_count: edges.len(),
        }
    }

    /// Builds a topology in one pass from per-node port counts and an
    /// explicit port-to-port edge list — the bulk equivalent of
    /// [`Topology::push_node`] + [`Topology::connect`], used by trace
    /// replay to rebuild a recorded starting world without paying the
    /// incremental splice path per edge. Unlike the panicking
    /// constructors this validates untrusted input: out-of-range
    /// endpoints or ports, self-loops, occupied ports and duplicate
    /// node pairs are reported, not asserted.
    pub fn from_ports(
        node_ports: &[u32],
        edges: &[(u32, u32, u32, u32)],
    ) -> Result<Topology, String> {
        let n = node_ports.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc: u32 = 0;
        for &ports in node_ports {
            offsets.push(acc);
            acc = acc
                .checked_add(ports)
                .ok_or_else(|| "total port count overflows u32".to_string())?;
        }
        offsets.push(acc);
        let mut peer_node = vec![NONE; acc as usize];
        let mut peer_port = vec![NONE; acc as usize];
        for &(v, p, w, q) in edges {
            if v as usize >= n || w as usize >= n {
                return Err(format!("edge ({v}, {w}) endpoint out of range ({n} nodes)"));
            }
            if v == w {
                return Err(format!("self-loop edge at node {v}"));
            }
            if p >= node_ports[v as usize] || q >= node_ports[w as usize] {
                return Err(format!("edge ({v}:{p}, {w}:{q}) port out of range"));
            }
            let sv = (offsets[v as usize] + p) as usize;
            let sw = (offsets[w as usize] + q) as usize;
            if peer_node[sv] != NONE || peer_node[sw] != NONE {
                return Err(format!("edge ({v}:{p}, {w}:{q}) lands on an occupied port"));
            }
            // Parallel-edge check: scan v's already-filled slots for w.
            // Port counts are tiny (≤ 6 on the triangular grid), so this
            // beats collecting and sorting the full pair list.
            let (lo, hi) = (
                offsets[v as usize] as usize,
                offsets[v as usize + 1] as usize,
            );
            if peer_node[lo..hi].contains(&w) {
                return Err(format!("duplicate edge ({}, {})", v.min(w), v.max(w)));
            }
            peer_node[sv] = w;
            peer_port[sv] = q;
            peer_node[sw] = v;
            peer_port[sw] = p;
        }
        Ok(Topology {
            offsets,
            peer_node,
            peer_port,
            edge_count: edges.len(),
        })
    }

    /// Builds the topology of `G_X` with ports indexed by [`Direction`]:
    /// port `d.index()` of node `v` leads to the neighbor in direction `d`
    /// (vacant if unoccupied). Every node has exactly 6 port slots.
    pub fn from_structure(structure: &AmoebotStructure) -> Topology {
        let n = structure.len();
        let offsets: Vec<u32> = (0..=n as u32).map(|v| v * 6).collect();
        let mut peer_node = vec![NONE; n * 6];
        let mut peer_port = vec![NONE; n * 6];
        let mut edge_count = 0;
        for v in structure.nodes() {
            for d in ALL_DIRECTIONS {
                if let Some(w) = structure.neighbor(v, d) {
                    let slot = v.index() * 6 + d.index();
                    peer_node[slot] = w.0;
                    peer_port[slot] = d.opposite().index() as u32;
                    if v.index() < w.index() {
                        edge_count += 1;
                    }
                }
            }
        }
        Topology {
            offsets,
            peer_node,
            peer_port,
            edge_count,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the topology has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Number of port slots of `v` (vacant slots included).
    #[inline]
    pub fn ports_len(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// The neighbor behind port `p` of `v` and the port the edge occupies on
    /// the neighbor's side, or `None` for a vacant slot.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range for `v` — also in release builds: in
    /// the flat CSR arrays an unchecked out-of-range port would silently
    /// read a *different node's* slot (the pre-CSR nested-`Vec` layout
    /// panicked here too, via its inner indexing).
    #[inline]
    pub fn peer(&self, v: usize, p: PortId) -> Option<(usize, PortId)> {
        let count = self.ports_len(v);
        if p >= count {
            Self::port_out_of_range(v, p, count);
        }
        let slot = self.offsets[v] as usize + p;
        let w = self.peer_node[slot];
        (w != NONE).then(|| (w as usize, self.peer_port[slot] as usize))
    }

    /// Outlined panic for [`Topology::peer`]: keeps the formatting
    /// machinery out of the inlined hot path while the range check itself
    /// stays on.
    #[cold]
    #[inline(never)]
    fn port_out_of_range(v: usize, p: PortId, count: usize) -> ! {
        panic!("port {p} out of range for node {v} ({count} slots)");
    }

    /// Iterator over the occupied ports of `v` as `(port, neighbor, peer_port)`.
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = (PortId, usize, PortId)> + '_ {
        let start = self.offsets[v] as usize;
        let end = self.offsets[v + 1] as usize;
        (start..end).filter_map(move |slot| {
            let w = self.peer_node[slot];
            (w != NONE).then(|| (slot - start, w as usize, self.peer_port[slot] as usize))
        })
    }

    /// Degree of `v` (occupied ports).
    pub fn degree(&self, v: usize) -> usize {
        let start = self.offsets[v] as usize;
        let end = self.offsets[v + 1] as usize;
        self.peer_node[start..end]
            .iter()
            .filter(|&&w| w != NONE)
            .count()
    }

    /// The port of `v` that leads to `w`, if the two are adjacent.
    pub fn port_to(&self, v: usize, w: usize) -> Option<PortId> {
        self.neighbors(v)
            .find(|&(_, x, _)| x == w)
            .map(|(p, _, _)| p)
    }

    /// The grid direction of port `p` for structure-derived topologies.
    ///
    /// # Panics
    ///
    /// Panics if `p >= 6`.
    pub fn port_direction(p: PortId) -> Direction {
        Direction::from_index(p)
    }

    // ---- Incremental edits (dynamic structures).
    //
    // The CSR rows are fixed-width per node (every node of a
    // structure-derived topology owns 6 slots, vacant ones holding a
    // sentinel), so an edit never moves another node's row: appending a
    // node pushes one offset and `slots` sentinel entries, and wiring or
    // unwiring an edge writes exactly the two slots it occupies — the
    // O(Δ) splice the dynamic-structure subsystem builds on.

    /// Appends a node with `slots` vacant port slots and returns its id.
    pub fn push_node(&mut self, slots: usize) -> usize {
        let v = self.len();
        let end = *self.offsets.last().expect("offsets always non-empty");
        self.offsets.push(end + slots as u32);
        self.peer_node.resize(self.peer_node.len() + slots, NONE);
        self.peer_port.resize(self.peer_port.len() + slots, NONE);
        v
    }

    /// Wires an undirected edge into the vacant slots `(v, p)` and
    /// `(w, q)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints or ports, on a self-loop, on a
    /// duplicate (parallel) edge — two vacant slots could otherwise wire
    /// a second `v`–`w` edge, which the model forbids — or if either
    /// slot is already occupied.
    pub fn connect(&mut self, v: usize, p: PortId, w: usize, q: PortId) {
        assert!(v != w, "self-loop edge ({v}, {w}) is not allowed");
        assert!(
            self.port_to(v, w).is_none(),
            "duplicate edge ({v}, {w}): the nodes are already adjacent"
        );
        let sv = self.slot(v, p);
        let sw = self.slot(w, q);
        assert!(
            self.peer_node[sv] == NONE,
            "port {p} of node {v} is already occupied"
        );
        assert!(
            self.peer_node[sw] == NONE,
            "port {q} of node {w} is already occupied"
        );
        self.peer_node[sv] = w as u32;
        self.peer_port[sv] = q as u32;
        self.peer_node[sw] = v as u32;
        self.peer_port[sw] = p as u32;
        self.edge_count += 1;
    }

    /// Unwires the edge behind port `p` of `v`, vacating both endpoint
    /// slots, and returns the peer `(w, q)` it occupied.
    ///
    /// # Panics
    ///
    /// Panics if the slot is vacant or out of range.
    pub fn disconnect(&mut self, v: usize, p: PortId) -> (usize, PortId) {
        let (w, q) = self
            .peer(v, p)
            .unwrap_or_else(|| panic!("port {p} of node {v} carries no edge"));
        let sv = self.slot(v, p);
        let sw = self.slot(w, q);
        debug_assert_eq!(self.peer_node[sw], v as u32, "port tables out of sync");
        self.peer_node[sv] = NONE;
        self.peer_port[sv] = NONE;
        self.peer_node[sw] = NONE;
        self.peer_port[sw] = NONE;
        self.edge_count -= 1;
        (w, q)
    }

    /// The flat slot index of `(v, p)`, range-checked.
    #[inline]
    fn slot(&self, v: usize, p: PortId) -> usize {
        let count = self.ports_len(v);
        if p >= count {
            Self::port_out_of_range(v, p, count);
        }
        self.offsets[v] as usize + p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoebot_grid::{shapes, Coord};

    #[test]
    fn edge_list_ports_are_mutual() {
        let t = Topology::from_edges(4, &[(0, 1), (1, 2), (1, 3)]);
        assert_eq!(t.len(), 4);
        assert_eq!(t.edge_count(), 3);
        assert_eq!(t.degree(1), 3);
        for v in 0..4 {
            for (p, w, q) in t.neighbors(v) {
                assert_eq!(t.peer(w, q), Some((v, p)));
            }
        }
    }

    #[test]
    #[should_panic(expected = "duplicate edge (0, 1)")]
    fn rejects_duplicate_edges() {
        Topology::from_edges(2, &[(0, 1), (1, 0)]);
    }

    /// Self-loops must be rejected by name before any CSR is built: an
    /// unchecked `(v, v)` edge would assign two ports of the same node to
    /// each other and break port mutuality.
    #[test]
    #[should_panic(expected = "self-loop edge (1, 1)")]
    fn rejects_self_loops() {
        Topology::from_edges(3, &[(0, 1), (1, 1)]);
    }

    /// Duplicate edges are rejected regardless of orientation or
    /// position in the list (the normalized sort catches both).
    #[test]
    #[should_panic(expected = "duplicate edge (1, 2)")]
    fn rejects_duplicate_edges_same_orientation() {
        Topology::from_edges(4, &[(1, 2), (0, 1), (1, 2)]);
    }

    /// The incremental splice: growing a structure-shaped topology node
    /// by node and edge by edge yields exactly `from_structure`'s CSR
    /// behavior, and disconnect restores vacancy.
    #[test]
    fn splice_grows_and_unwires_edges() {
        let s = AmoebotStructure::new(shapes::parallelogram(3, 2)).unwrap();
        let reference = Topology::from_structure(&s);
        // Rebuild it through the splice API.
        let mut t = Topology::from_edges(0, &[]);
        for _ in 0..s.len() {
            t.push_node(6);
        }
        for v in s.nodes() {
            for (d, w) in s.neighbors_of(v) {
                if v.index() < w.index() {
                    t.connect(v.index(), d.index(), w.index(), d.opposite().index());
                }
            }
        }
        assert_eq!(t.len(), reference.len());
        assert_eq!(t.edge_count(), reference.edge_count());
        for v in 0..t.len() {
            assert_eq!(t.ports_len(v), 6);
            for p in 0..6 {
                assert_eq!(t.peer(v, p), reference.peer(v, p), "node {v} port {p}");
            }
        }
        // Unwire one edge: both slots vacate, everything else unchanged.
        let (p, w, q) = t.neighbors(0).next().unwrap();
        assert_eq!(t.disconnect(0, p), (w, q));
        assert_eq!(t.peer(0, p), None);
        assert_eq!(t.peer(w, q), None);
        assert_eq!(t.edge_count(), reference.edge_count() - 1);
        // Rewire it: back to the reference.
        t.connect(0, p, w, q);
        assert_eq!(t.peer(0, p), reference.peer(0, p));
        assert_eq!(t.edge_count(), reference.edge_count());
    }

    #[test]
    #[should_panic(expected = "already adjacent")]
    fn splice_rejects_parallel_edges() {
        let mut t = Topology::from_edges(0, &[]);
        t.push_node(6);
        t.push_node(6);
        t.connect(0, 0, 1, 3);
        t.connect(0, 1, 1, 4);
    }

    #[test]
    #[should_panic(expected = "carries no edge")]
    fn disconnect_requires_an_edge() {
        let mut t = Topology::from_edges(2, &[(0, 1)]);
        // from_edges assigns dense ports; node 0 has exactly one slot, so
        // grow a vacant-slot node to exercise the vacant-disconnect panic.
        let v = t.push_node(6);
        t.disconnect(v, 2);
    }

    /// Out-of-range ports must panic in release builds too: in the flat
    /// CSR arrays an unchecked port would read a different node's slot.
    #[test]
    #[should_panic(expected = "port 1 out of range for node 0")]
    fn peer_bounds_check_holds_in_release() {
        let t = Topology::from_edges(3, &[(0, 1), (1, 2)]);
        let _ = t.peer(0, 1); // node 0 has exactly 1 port
    }

    #[test]
    fn structure_ports_follow_directions() {
        let s = AmoebotStructure::new(shapes::parallelogram(3, 2)).unwrap();
        let t = Topology::from_structure(&s);
        assert_eq!(t.edge_count(), s.edge_count());
        let v = s.node_at(Coord::new(1, 0)).unwrap();
        let e = s.node_at(Coord::new(2, 0)).unwrap();
        let p = Direction::E.index();
        assert_eq!(
            t.peer(v.index(), p),
            Some((e.index(), Direction::W.index()))
        );
        // Mutuality across the whole structure.
        for v in 0..t.len() {
            for (p, w, q) in t.neighbors(v) {
                assert_eq!(t.peer(w, q), Some((v, p)));
                assert_eq!(
                    Topology::port_direction(q),
                    Topology::port_direction(p).opposite()
                );
            }
        }
    }
}
