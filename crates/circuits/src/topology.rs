//! Port-labelled communication topologies.
//!
//! A [`Topology`] is the graph `G_X` (or an abstract tree, for the tree
//! primitives of §3 which are "not limited to the geometric variant") with a
//! local *port numbering*: each node refers to its incident edges by a port
//! index, and each edge knows the port it occupies on either endpoint. This
//! models the paper's assumption that "neighboring amoebots have a common
//! labeling of their incident external links" (§1.2).

use amoebot_grid::{AmoebotStructure, Direction, ALL_DIRECTIONS};

/// A port index local to a node (`0..ports_len(v)`). For topologies derived
/// from an [`AmoebotStructure`], port `i` corresponds to
/// [`Direction::from_index`]`(i)` (some ports may be vacant).
pub type PortId = usize;

/// An undirected, port-labelled multigraph-free topology.
#[derive(Debug, Clone)]
pub struct Topology {
    /// `ports[v][p] = Some((w, q))` iff the edge at port `p` of `v` leads to
    /// node `w`, where it occupies port `q`.
    ports: Vec<Vec<Option<(usize, PortId)>>>,
    edge_count: usize,
}

impl Topology {
    /// Builds a topology from an undirected edge list over nodes `0..n`.
    /// Ports are assigned in order of appearance.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints, self-loops, or duplicate edges.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Topology {
        let mut ports: Vec<Vec<Option<(usize, PortId)>>> = vec![Vec::new(); n];
        for &(u, v) in edges {
            assert!(u < n && v < n, "edge endpoint out of range");
            assert_ne!(u, v, "self-loops are not allowed");
            assert!(
                !ports[u].iter().flatten().any(|&(w, _)| w == v),
                "duplicate edge ({u}, {v})"
            );
            let pu = ports[u].len();
            let pv = ports[v].len();
            ports[u].push(Some((v, pv)));
            ports[v].push(Some((u, pu)));
        }
        Topology {
            ports,
            edge_count: edges.len(),
        }
    }

    /// Builds the topology of `G_X` with ports indexed by [`Direction`]:
    /// port `d.index()` of node `v` leads to the neighbor in direction `d`
    /// (vacant if unoccupied). Every node has exactly 6 port slots.
    pub fn from_structure(structure: &AmoebotStructure) -> Topology {
        let n = structure.len();
        let mut ports: Vec<Vec<Option<(usize, PortId)>>> = vec![vec![None; 6]; n];
        let mut edge_count = 0;
        for v in structure.nodes() {
            for d in ALL_DIRECTIONS {
                if let Some(w) = structure.neighbor(v, d) {
                    ports[v.index()][d.index()] = Some((w.index(), d.opposite().index()));
                    if v.index() < w.index() {
                        edge_count += 1;
                    }
                }
            }
        }
        Topology { ports, edge_count }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.ports.len()
    }

    /// Whether the topology has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ports.is_empty()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Number of port slots of `v` (vacant slots included).
    #[inline]
    pub fn ports_len(&self, v: usize) -> usize {
        self.ports[v].len()
    }

    /// The neighbor behind port `p` of `v` and the port the edge occupies on
    /// the neighbor's side, or `None` for a vacant slot.
    #[inline]
    pub fn peer(&self, v: usize, p: PortId) -> Option<(usize, PortId)> {
        self.ports[v][p]
    }

    /// Iterator over the occupied ports of `v` as `(port, neighbor, peer_port)`.
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = (PortId, usize, PortId)> + '_ {
        self.ports[v]
            .iter()
            .enumerate()
            .filter_map(|(p, slot)| slot.map(|(w, q)| (p, w, q)))
    }

    /// Degree of `v` (occupied ports).
    pub fn degree(&self, v: usize) -> usize {
        self.ports[v].iter().flatten().count()
    }

    /// The port of `v` that leads to `w`, if the two are adjacent.
    pub fn port_to(&self, v: usize, w: usize) -> Option<PortId> {
        self.neighbors(v)
            .find(|&(_, x, _)| x == w)
            .map(|(p, _, _)| p)
    }

    /// The grid direction of port `p` for structure-derived topologies.
    ///
    /// # Panics
    ///
    /// Panics if `p >= 6`.
    pub fn port_direction(p: PortId) -> Direction {
        Direction::from_index(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoebot_grid::{shapes, Coord};

    #[test]
    fn edge_list_ports_are_mutual() {
        let t = Topology::from_edges(4, &[(0, 1), (1, 2), (1, 3)]);
        assert_eq!(t.len(), 4);
        assert_eq!(t.edge_count(), 3);
        assert_eq!(t.degree(1), 3);
        for v in 0..4 {
            for (p, w, q) in t.neighbors(v) {
                assert_eq!(t.peer(w, q), Some((v, p)));
            }
        }
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn rejects_duplicate_edges() {
        Topology::from_edges(2, &[(0, 1), (1, 0)]);
    }

    #[test]
    fn structure_ports_follow_directions() {
        let s = AmoebotStructure::new(shapes::parallelogram(3, 2)).unwrap();
        let t = Topology::from_structure(&s);
        assert_eq!(t.edge_count(), s.edge_count());
        let v = s.node_at(Coord::new(1, 0)).unwrap();
        let e = s.node_at(Coord::new(2, 0)).unwrap();
        let p = Direction::E.index();
        assert_eq!(
            t.peer(v.index(), p),
            Some((e.index(), Direction::W.index()))
        );
        // Mutuality across the whole structure.
        for v in 0..t.len() {
            for (p, w, q) in t.neighbors(v) {
                assert_eq!(t.peer(w, q), Some((v, p)));
                assert_eq!(
                    Topology::port_direction(q),
                    Topology::port_direction(p).opposite()
                );
            }
        }
    }
}
