//! The `SPFS` snapshot codec for [`Topology`] and [`World`].
//!
//! A snapshot serializes the **semantic** SoA state verbatim — CSR
//! topology, pin configurations, the tombstoned link table with its
//! free-list, pending beeps, the cached circuit labeling (labels,
//! membership arena, counted-root marks) and the dirty-pin set — so
//! restore is O(bytes): no relabel runs, no id renumbers, and the first
//! tick after a restore takes exactly the path the next tick of the
//! snapshotted world would have taken. That is what makes restored runs
//! *byte-identical* to uninterrupted ones, including the relabel
//! counters that canonical reports embed.
//!
//! Pure scratch is deliberately **not** serialized and is rebuilt
//! cleared on restore: the union-find parents (only read after a
//! relabel re-seeds them), the root/region/affected marks (always clear
//! between uses), and the per-port edge index and node base offsets
//! (both derivable from the link table and the CSR respectively). Phase
//! timers are also dropped: they are wall-clock diagnostics, excluded
//! from canonical reports by design.
//!
//! ## Payload grammar (inside the [`wire`] envelope, kind `WORLD`)
//!
//! All integers are unsigned LEB128 varints unless noted.
//!
//! ```text
//! world    := c | topology
//!           | pset[total] | links | free_links
//!           | sent | recv_set | labels[total]
//!           | members | member_off[total] | member_end[total]
//!           | dirty_pins | pset_at_relabel[total]
//!           | force_global (1 byte) | circuit_roots | cached_circuits
//!           | counters | rounds | simulated | charged | charge_log
//!           | beeps_sent | stuck
//! topology := n | ports[n] | (peer_node peer_port)[slots] | edge_count
//! links    := count | (a0 base_a b0 base_b)[count]     tombstone = DEAD_LINK
//! sent     := count | gid[count]                        (beeping psets)
//! recv_set := count | gid[count]                        (delivered psets)
//! members  := count | gid[count]                        (arena, garbage kept)
//! dirty    := count | (gid base)[count]
//! roots    := count | gid[count]                        (strictly ascending)
//! counters := count | (name value)[count]               (metrics counters)
//! charges  := count | (label signed_amount)[count]
//! stuck    := count | (gid pset)[count]                  (ascending gids)
//! ```

use amoebot_telemetry::wire::{self, SnapshotReader, SnapshotWriter, WireError};

use crate::bitset::BitSet;
use crate::topology::{Topology, NONE};
use crate::world::{EngineStats, World, DEAD_LINK, NO_EDGE};

/// Counter names the world codec recognizes on restore. The metrics
/// registry keys counters by `&'static str`, so decoded names are
/// matched against this fixed menu rather than leaked into statics.
const KNOWN_COUNTERS: [&str; 4] = [
    "relabel_global",
    "relabel_region",
    "fault_drops",
    "fault_injects",
];

/// Encodes `topo` into `w` (the `topology` production above).
pub fn encode_topology(topo: &Topology, w: &mut SnapshotWriter) {
    let n = topo.len();
    w.varint(n as u64);
    for v in 0..n {
        w.varint(topo.ports_len(v) as u64);
    }
    for s in 0..topo.peer_node.len() {
        w.varint(topo.peer_node[s] as u64);
        w.varint(topo.peer_port[s] as u64);
    }
    w.varint(topo.edge_count as u64);
}

/// Decodes a topology, validating CSR shape and port mutuality (every
/// live slot's peer must point back).
pub fn decode_topology(r: &mut SnapshotReader<'_>) -> Result<Topology, WireError> {
    let n = r.len("topology node count")?;
    let mut offsets = Vec::with_capacity(n + 1);
    let mut acc = 0u32;
    offsets.push(0);
    for _ in 0..n {
        let ports = r.u32("topology port count")?;
        acc = acc.checked_add(ports).ok_or(WireError::BadValue {
            what: "topology port count",
            offset: r.offset(),
        })?;
        offsets.push(acc);
    }
    let slots = acc as usize;
    let mut peer_node = Vec::with_capacity(slots);
    let mut peer_port = Vec::with_capacity(slots);
    for _ in 0..slots {
        peer_node.push(r.u32("topology peer node")?);
        peer_port.push(r.u32("topology peer port")?);
    }
    let edge_count = r.len("topology edge count")?;
    let topo = Topology {
        offsets,
        peer_node,
        peer_port,
        edge_count,
    };
    // Mutuality: each live slot's peer slot must point straight back.
    let mut halves = 0usize;
    for v in 0..n {
        let (lo, hi) = (topo.offsets[v] as usize, topo.offsets[v + 1] as usize);
        for s in lo..hi {
            let w = topo.peer_node[s];
            if w == NONE {
                continue;
            }
            let p = s - lo;
            let q = topo.peer_port[s] as usize;
            let err = WireError::BadValue {
                what: "topology peer slot",
                offset: r.offset(),
            };
            if w as usize >= n || v == w as usize {
                return Err(err);
            }
            let (wlo, whi) = (
                topo.offsets[w as usize] as usize,
                topo.offsets[w as usize + 1] as usize,
            );
            if q >= whi - wlo
                || topo.peer_node[wlo + q] as usize != v
                || topo.peer_port[wlo + q] as usize != p
            {
                return Err(err);
            }
            halves += 1;
        }
    }
    if halves != edge_count * 2 {
        return Err(WireError::BadValue {
            what: "topology edge count",
            offset: r.offset(),
        });
    }
    Ok(topo)
}

/// Reads `count` gids, each `< total`, rebuilding the paired bitset.
/// Duplicates are rejected (the dense lists mirror bitsets, so an index
/// never appears twice).
fn decode_gid_list(
    r: &mut SnapshotReader<'_>,
    total: usize,
    what: &'static str,
) -> Result<(Vec<u32>, BitSet), WireError> {
    let count = r.len(what)?;
    let mut list = Vec::with_capacity(total.max(count));
    let mut bits = BitSet::new(total);
    for _ in 0..count {
        let offset = r.offset();
        let gid = r.u32(what)?;
        if gid as usize >= total || bits.get(gid as usize) {
            return Err(WireError::BadValue { what, offset });
        }
        bits.set(gid as usize);
        list.push(gid);
    }
    Ok((list, bits))
}

impl World {
    /// Writes the world payload (no envelope) into `w` — the composable
    /// form [`amoebot_dynamics`]'s codec embeds.
    pub fn encode_payload(&self, w: &mut SnapshotWriter) {
        w.varint(self.c as u64);
        encode_topology(&self.topo, w);
        for &pset in &self.pin_pset {
            w.varint(pset as u64);
        }
        w.varint(self.links.len() as u64);
        for &(a0, base_a, b0, base_b) in &self.links {
            w.varint(a0 as u64);
            w.varint(base_a as u64);
            w.varint(b0 as u64);
            w.varint(base_b as u64);
        }
        w.varint(self.free_links.len() as u64);
        for &ei in &self.free_links {
            w.varint(ei as u64);
        }
        w.varint(self.sent.len() as u64);
        for &gid in &self.sent {
            w.varint(gid as u64);
        }
        w.varint(self.recv_set.len() as u64);
        for &gid in &self.recv_set {
            w.varint(gid as u64);
        }
        for &l in &self.labels {
            w.varint(l as u64);
        }
        w.varint(self.members.len() as u64);
        for &m in &self.members {
            w.varint(m as u64);
        }
        for &off in &self.member_off {
            w.varint(off as u64);
        }
        for &end in &self.member_end {
            w.varint(end as u64);
        }
        w.varint(self.dirty_pins.len() as u64);
        for &(gid, base) in &self.dirty_pins {
            w.varint(gid as u64);
            w.varint(base as u64);
        }
        for &pset in &self.pset_at_relabel {
            w.varint(pset as u64);
        }
        w.byte(self.force_global as u8);
        let roots: Vec<usize> = self.circuit_roots.ones().collect();
        w.varint(roots.len() as u64);
        for gid in roots {
            w.varint(gid as u64);
        }
        w.varint(self.cached_circuits as u64);
        let counters = self.stats.metrics.counters_sorted();
        w.varint(counters.len() as u64);
        for (name, value) in counters {
            w.str(name);
            w.varint(value);
        }
        w.varint(self.rounds);
        w.varint(self.simulated);
        w.varint(self.charged);
        w.varint(self.charge_log.len() as u64);
        for (label, amount) in &self.charge_log {
            w.str(label);
            w.signed(*amount);
        }
        w.varint(self.beeps_sent);
        w.varint(self.stuck.len() as u64);
        for &(gid, pset) in &self.stuck {
            w.varint(gid as u64);
            w.varint(pset as u64);
        }
    }

    /// Decodes a world payload written by [`World::encode_payload`].
    /// O(bytes): validation walks each array once and nothing relabels —
    /// the cached labeling comes back exactly as snapshotted.
    pub fn decode_payload(r: &mut SnapshotReader<'_>) -> Result<World, WireError> {
        let c = r.len("links per edge")?;
        if c == 0 {
            return Err(WireError::BadValue {
                what: "links per edge",
                offset: r.offset(),
            });
        }
        let topo = decode_topology(r)?;
        let n = topo.len();
        let mut base = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        for v in 0..n {
            base.push(acc);
            acc += (topo.ports_len(v) * c) as u32;
        }
        base.push(acc);
        let total = acc as usize;

        let mut pin_pset = Vec::with_capacity(total);
        for v in 0..n {
            let caps = (topo.ports_len(v) * c) as u64;
            for _ in 0..caps {
                let offset = r.offset();
                let pset = r.u16("pin partition set")?;
                if (pset as u64) >= caps {
                    return Err(WireError::BadValue {
                        what: "pin partition set",
                        offset,
                    });
                }
                pin_pset.push(pset);
            }
        }

        let link_count = r.len("link table")?;
        let mut links = Vec::with_capacity(link_count);
        let mut port_edge = vec![NO_EDGE; total / c];
        for ei in 0..link_count {
            let offset = r.offset();
            let entry = (
                r.u32("link pin")?,
                r.u32("link base")?,
                r.u32("link pin")?,
                r.u32("link base")?,
            );
            let err = WireError::BadValue {
                what: "link entry",
                offset,
            };
            if entry.0 == u32::MAX {
                if entry != DEAD_LINK {
                    return Err(err);
                }
            } else {
                let (a0, base_a, b0, base_b) = entry;
                if a0 as usize >= total || b0 as usize >= total || base_a > a0 || base_b > b0 {
                    return Err(err);
                }
                for slot in [a0 as usize / c, b0 as usize / c] {
                    if port_edge[slot] != NO_EDGE {
                        return Err(err);
                    }
                    port_edge[slot] = ei as u32;
                }
            }
            links.push(entry);
        }
        let free_count = r.len("free-link list")?;
        let mut free_links = Vec::with_capacity(free_count);
        for _ in 0..free_count {
            let offset = r.offset();
            let ei = r.u32("free-link slot")?;
            if ei as usize >= links.len() || links[ei as usize] != DEAD_LINK {
                return Err(WireError::BadValue {
                    what: "free-link slot",
                    offset,
                });
            }
            free_links.push(ei);
        }

        let (sent, send) = decode_gid_list(r, total, "beeping partition set")?;
        let (recv_set, recv) = decode_gid_list(r, total, "delivered partition set")?;

        let mut labels = Vec::with_capacity(total);
        for _ in 0..total {
            let offset = r.offset();
            let l = r.u32("circuit label")?;
            if l as usize >= total {
                return Err(WireError::BadValue {
                    what: "circuit label",
                    offset,
                });
            }
            labels.push(l);
        }
        let member_count = r.len("membership arena")?;
        let mut members = Vec::with_capacity(total.max(member_count));
        for _ in 0..member_count {
            let offset = r.offset();
            let m = r.u32("membership entry")?;
            if m as usize >= total {
                return Err(WireError::BadValue {
                    what: "membership entry",
                    offset,
                });
            }
            members.push(m);
        }
        let mut member_off = Vec::with_capacity(total);
        for _ in 0..total {
            member_off.push(r.u32("membership bucket start")?);
        }
        let mut member_end = Vec::with_capacity(total);
        for _ in 0..total {
            member_end.push(r.u32("membership bucket end")?);
        }

        let dirty_count = r.len("dirty-pin list")?;
        let mut dirty_pins = Vec::with_capacity(total.max(dirty_count));
        let mut dirty_pin = BitSet::new(total);
        for _ in 0..dirty_count {
            let offset = r.offset();
            let gid = r.u32("dirty pin")?;
            let b = r.u32("dirty-pin base")?;
            if gid as usize >= total || b > gid || dirty_pin.get(gid as usize) {
                return Err(WireError::BadValue {
                    what: "dirty pin",
                    offset,
                });
            }
            dirty_pin.set(gid as usize);
            dirty_pins.push((gid, b));
        }

        let mut pset_at_relabel = Vec::with_capacity(total);
        for _ in 0..total {
            pset_at_relabel.push(r.u16("relabel-time partition set")?);
        }
        let force_global = match r.byte()? {
            0 => false,
            1 => true,
            _ => {
                return Err(WireError::BadValue {
                    what: "force-global flag",
                    offset: r.offset() - 1,
                })
            }
        };

        let root_count = r.len("circuit-root list")?;
        let mut circuit_roots = BitSet::new(total);
        let mut prev: Option<u32> = None;
        for _ in 0..root_count {
            let offset = r.offset();
            let gid = r.u32("circuit root")?;
            if gid as usize >= total || prev.is_some_and(|p| gid <= p) {
                return Err(WireError::BadValue {
                    what: "circuit root",
                    offset,
                });
            }
            // A counted root's membership bucket must lie inside the
            // arena (stale offsets of *former* roots may dangle; they
            // are never read).
            let (off, end) = (member_off[gid as usize], member_end[gid as usize]);
            if off > end || end as usize > members.len() {
                return Err(WireError::BadValue {
                    what: "circuit root",
                    offset,
                });
            }
            circuit_roots.set(gid as usize);
            prev = Some(gid);
        }
        let cached_offset = r.offset();
        // A count, not an array length — it may legitimately exceed the
        // remaining byte budget, so it skips the `len` bounding.
        let cached_circuits = r.varint()? as usize;
        if cached_circuits != root_count {
            return Err(WireError::BadValue {
                what: "cached circuit count",
                offset: cached_offset,
            });
        }

        let mut stats = EngineStats::new();
        let counter_count = r.len("counter table")?;
        for _ in 0..counter_count {
            let offset = r.offset();
            let name = r.str("counter name")?;
            let value = r.varint()?;
            let known =
                *KNOWN_COUNTERS
                    .iter()
                    .find(|&&k| k == name)
                    .ok_or(WireError::BadValue {
                        what: "counter name",
                        offset,
                    })?;
            stats.metrics.add_named(known, value);
        }

        let rounds = r.varint()?;
        let simulated = r.varint()?;
        let charged = r.varint()?;
        let charge_count = r.len("charge log")?;
        let mut charge_log = Vec::with_capacity(charge_count);
        for _ in 0..charge_count {
            let label = r.str("charge label")?;
            let amount = r.signed()?;
            charge_log.push((label, amount));
        }
        let beeps_sent = r.varint()?;
        let stuck_count = r.len("stuck-pin list")?;
        let mut stuck = Vec::with_capacity(stuck_count);
        let mut prev_stuck: Option<u32> = None;
        for _ in 0..stuck_count {
            let offset = r.offset();
            let gid = r.u32("stuck pin")?;
            let pset = r.u16("stuck-pin partition set")?;
            let err = WireError::BadValue {
                what: "stuck pin",
                offset,
            };
            if gid as usize >= total || prev_stuck.is_some_and(|p| gid <= p) {
                return Err(err);
            }
            // The frozen value must be a valid pset of the owning node.
            let v = base.partition_point(|&b| b <= gid) - 1;
            if pset as u32 >= base[v + 1] - base[v] || pin_pset[gid as usize] != pset {
                return Err(err);
            }
            prev_stuck = Some(gid);
            stuck.push((gid, pset));
        }

        Ok(World {
            topo,
            c,
            base,
            pin_pset,
            links,
            free_links,
            send,
            sent,
            recv,
            recv_set,
            // Union-find parents are relabel scratch: every relabel
            // re-seeds the entries it reads, so restore matches
            // `World::new`'s zero fill.
            uf: vec![0; total],
            labels,
            members,
            member_off,
            member_end,
            // Delivery-digest caches are rebuilt lazily: the epoch
            // starts at 1 with every stamp at 0, so the first tracing
            // delivery to each circuit recomputes its digest.
            member_digest: vec![0; total],
            member_digest_epoch: vec![0; total],
            digest_epoch: 1,
            root_mark: BitSet::new(total),
            marked_roots: Vec::with_capacity(total),
            dirty_pins,
            dirty_pin,
            pset_at_relabel,
            force_global,
            circuit_roots,
            port_edge,
            affected_mark: BitSet::new(total),
            affected_roots: Vec::new(),
            in_region: BitSet::new(total),
            region: Vec::new(),
            node_mark: BitSet::new(n),
            region_nodes: Vec::new(),
            cached_circuits,
            stats,
            rounds,
            simulated,
            charged,
            charge_log,
            beeps_sent,
            stuck,
        })
    }

    /// The world as a sealed `SPFS` blob (kind `WORLD`).
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(wire::kind::WORLD);
        self.encode_payload(&mut w);
        w.finish()
    }

    /// Restores a world from [`World::snapshot_bytes`] output. Rejects
    /// corruption (any flipped bit) and malformed payloads with an
    /// offset-carrying [`WireError`].
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<World, WireError> {
        let mut r = SnapshotReader::open(bytes, wire::kind::WORLD)?;
        let world = World::decode_payload(&mut r)?;
        r.finish()?;
        Ok(world)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoebot_telemetry::{NullRecorder, Recorder, RoundSummary};

    /// A recorder that keeps every round summary (for differential
    /// comparison of restored vs. uninterrupted runs).
    #[derive(Default)]
    struct Summaries(Vec<RoundSummary>);

    impl Recorder for Summaries {
        const TRACE: bool = true;
        const TIMED: bool = false;
        fn round_end(&mut self, s: &RoundSummary) {
            self.0.push(*s);
        }
    }

    fn grid_world(cols: usize, rows: usize, c: usize) -> World {
        let mut edges = Vec::new();
        let at = |x: usize, y: usize| y * cols + x;
        for y in 0..rows {
            for x in 0..cols {
                if x + 1 < cols {
                    edges.push((at(x, y), at(x + 1, y)));
                }
                if y + 1 < rows {
                    edges.push((at(x, y), at(x, y + 1)));
                }
            }
        }
        World::new(Topology::from_edges(cols * rows, &edges), c)
    }

    /// A world with real history: global circuits, beeps, ticks, a
    /// structure edit (leaving a tombstoned link + free-list entry), a
    /// charge, and a pending beep that has not ticked yet.
    fn seasoned_world() -> World {
        let mut w = grid_world(4, 3, 2);
        for v in 0..12 {
            w.global_pin_config(v);
        }
        w.beep(0, 0);
        w.tick();
        w.tick();
        let (peer, _) = w.disconnect(5, 0);
        assert_ne!(peer, 5);
        w.tick();
        w.charge_rounds(3, "snapshot-test charge");
        w.beep(7, 1);
        w
    }

    #[test]
    fn round_trip_is_byte_identical_and_behaviorally_equal() {
        let mut original = seasoned_world();
        let blob = original.snapshot_bytes();
        let mut restored = World::from_snapshot_bytes(&blob).unwrap();
        // Re-encoding the restored world reproduces the same bytes: the
        // codec covers every field it reads.
        assert_eq!(restored.snapshot_bytes(), blob);
        // And the two worlds stay in lockstep for several rounds,
        // including the relabel the pending dirty pins will trigger.
        let (mut a, mut b) = (Summaries::default(), Summaries::default());
        for round in 0..5 {
            original.beep(round % 12, 0);
            restored.beep(round % 12, 0);
            original.tick_with(&mut a);
            restored.tick_with(&mut b);
        }
        assert_eq!(a.0, b.0);
        assert_eq!(original.circuit_count(), restored.circuit_count());
        assert_eq!(original.rounds(), restored.rounds());
        assert_eq!(
            original.metrics().counter_value("relabel_global"),
            restored.metrics().counter_value("relabel_global")
        );
        assert_eq!(
            original.metrics().counter_value("relabel_region"),
            restored.metrics().counter_value("relabel_region")
        );
    }

    #[test]
    fn restore_preserves_the_charge_audit() {
        let w = seasoned_world();
        let restored = World::from_snapshot_bytes(&w.snapshot_bytes()).unwrap();
        assert_eq!(restored.rounds(), w.rounds());
        assert_eq!(restored.simulated_rounds(), w.simulated_rounds());
        assert_eq!(restored.charge_log(), w.charge_log());
        let logged: i64 = restored.charge_log().iter().map(|(_, a)| a).sum();
        assert_eq!(
            restored.rounds() as i64,
            restored.simulated_rounds() as i64 + logged
        );
    }

    #[test]
    fn restore_skips_the_relabel_entirely() {
        // A steady-state world (no dirty pins) must restore with its
        // cached labeling intact: querying the circuit count afterwards
        // runs no relabel, keeping the counters — and therefore the
        // canonical report — identical.
        let mut w = grid_world(3, 3, 1);
        for v in 0..9 {
            w.global_pin_config(v);
        }
        w.tick(); // global relabel happens here
        let globals_before = w.metrics().counter_value("relabel_global");
        let mut restored = World::from_snapshot_bytes(&w.snapshot_bytes()).unwrap();
        let count = restored.circuit_count();
        assert_eq!(count, w.circuit_count());
        assert_eq!(
            restored.metrics().counter_value("relabel_global"),
            globals_before,
            "restore must not trigger a relabel"
        );
    }

    #[test]
    fn every_single_bit_corruption_is_rejected() {
        let w = seasoned_world();
        let blob = w.snapshot_bytes();
        for byte in 0..blob.len() {
            for bit in 0..8 {
                let mut bad = blob.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    World::from_snapshot_bytes(&bad).is_err(),
                    "flip at byte {byte} bit {bit} was accepted"
                );
            }
        }
    }

    #[test]
    fn truncations_are_rejected() {
        let blob = seasoned_world().snapshot_bytes();
        for cut in 0..blob.len() {
            assert!(World::from_snapshot_bytes(&blob[..cut]).is_err());
        }
    }

    #[test]
    fn tombstoned_links_and_free_list_survive() {
        let mut w = grid_world(4, 2, 1);
        for v in 0..8 {
            w.global_pin_config(v);
        }
        w.tick();
        let (peer, q) = w.disconnect(0, 0);
        w.tick();
        let mut restored = World::from_snapshot_bytes(&w.snapshot_bytes()).unwrap();
        // Reconnect through the restored free-list: the recycled slot
        // must behave exactly like the original's.
        restored.connect(0, 0, peer, q);
        w.connect(0, 0, peer, q);
        let _ = (w.tick(), restored.tick());
        assert_eq!(w.circuit_count(), restored.circuit_count());
        assert_eq!(restored.snapshot_bytes(), w.snapshot_bytes());
    }

    #[test]
    fn pending_beeps_survive_the_round_trip() {
        let mut w = grid_world(2, 2, 1);
        for v in 0..4 {
            w.global_pin_config(v);
        }
        w.tick();
        w.beep(0, 0); // pending, not yet delivered
        let mut restored = World::from_snapshot_bytes(&w.snapshot_bytes()).unwrap();
        w.tick();
        restored.tick();
        for v in 0..4 {
            assert_eq!(w.received(v, 0), restored.received(v, 0));
        }
    }

    #[test]
    fn null_recorder_tick_matches_after_restore() {
        // Cheap sanity that the restored world is usable through the
        // plain (NullRecorder-wrapped) API surface too.
        let mut w = seasoned_world();
        let mut restored = World::from_snapshot_bytes(&w.snapshot_bytes()).unwrap();
        w.tick_with(&mut NullRecorder);
        restored.tick();
        assert_eq!(w.rounds(), restored.rounds());
    }
}
