//! A fixed-capacity packed bitset for the simulator's per-pin flags.
//!
//! The world keeps three boolean arrays indexed by global partition-set
//! id (beeps sent, beeps received, root marks). As `Vec<bool>` those cost
//! a byte per pin — 12 MB each for a 10^6-node world with `c = 2` — and
//! waste 7/8 of every cache line. Packed, they are 64 flags per word;
//! clearing stays O(set bits) because the world tracks dense lists of the
//! set indices and clears through them.

/// A fixed-size bitset; indices beyond the constructed capacity panic.
#[derive(Debug, Clone, Default)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// A bitset with capacity for `bits` flags, all clear.
    pub fn new(bits: usize) -> BitSet {
        BitSet {
            words: vec![0; bits.div_ceil(64)],
        }
    }

    /// Whether bit `i` is set.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Whether any bit in `lo..hi` is set (word-at-a-time scan).
    pub fn any_in_range(&self, lo: usize, hi: usize) -> bool {
        if lo >= hi {
            return false;
        }
        let (lw, hw) = (lo / 64, (hi - 1) / 64);
        let lo_mask = !0u64 << (lo % 64);
        let hi_mask = !0u64 >> (63 - (hi - 1) % 64);
        if lw == hw {
            return self.words[lw] & lo_mask & hi_mask != 0;
        }
        if self.words[lw] & lo_mask != 0 || self.words[hw] & hi_mask != 0 {
            return true;
        }
        self.words[lw + 1..hw].iter().any(|&w| w != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut b = BitSet::new(130);
        assert!(!b.get(0) && !b.get(129));
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129) && !b.get(1));
        b.clear(64);
        assert!(!b.get(64) && b.get(0) && b.get(129));
    }

    #[test]
    fn range_scan_word_boundaries() {
        let mut b = BitSet::new(256);
        assert!(!b.any_in_range(0, 256));
        assert!(!b.any_in_range(5, 5));
        b.set(63);
        assert!(b.any_in_range(0, 64));
        assert!(b.any_in_range(63, 64));
        assert!(!b.any_in_range(64, 256));
        b.clear(63);
        b.set(128);
        assert!(b.any_in_range(64, 129));
        assert!(b.any_in_range(128, 192));
        assert!(!b.any_in_range(0, 128));
        assert!(!b.any_in_range(129, 256));
        // Spanning several whole words.
        assert!(b.any_in_range(1, 255));
    }
}
