//! A fixed-capacity packed bitset for the simulator's per-pin flags.
//!
//! The world keeps three boolean arrays indexed by global partition-set
//! id (beeps sent, beeps received, root marks). As `Vec<bool>` those cost
//! a byte per pin — 12 MB each for a 10^6-node world with `c = 2` — and
//! waste 7/8 of every cache line. Packed, they are 64 flags per word;
//! clearing stays O(set bits) because the world tracks dense lists of the
//! set indices and clears through them.

/// A fixed-size bitset; indices beyond the constructed capacity panic.
#[derive(Debug, Clone, Default)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// A bitset with capacity for `bits` flags, all clear.
    pub fn new(bits: usize) -> BitSet {
        BitSet {
            words: vec![0; bits.div_ceil(64)],
        }
    }

    /// Whether bit `i` is set.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Whether any bit at all is set (word-at-a-time scan; the
    /// `received_any`-style check over the whole set).
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Clears every bit in O(words). Cheaper than clearing through a
    /// dense index list when most of the set is populated (the global
    /// relabel resets its persistent root marks this way).
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Iterates the indices of the set bits in ascending order,
    /// word-at-a-time (each zero word costs one test, not 64).
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            std::iter::successors((word != 0).then_some(word), |w| {
                let rest = w & (w - 1); // drop the lowest set bit
                (rest != 0).then_some(rest)
            })
            .map(move |w| wi * 64 + w.trailing_zeros() as usize)
        })
    }

    /// Grows the capacity to `bits` flags, zero-filling the new tail.
    /// Shrinking is not supported: a smaller `bits` is a no-op (the extra
    /// words keep their contents), so existing flags are never lost.
    ///
    /// Word-boundary safe by construction: bits between the old capacity
    /// and the end of its last word were never settable, so they are
    /// already zero and the new capacity exposes them as cleared.
    pub fn grow(&mut self, bits: usize) {
        let words = bits.div_ceil(64);
        if words > self.words.len() {
            self.words.resize(words, 0);
        }
    }

    /// [`BitSet::grow`] under its set-container alias: makes sure at
    /// least `bits` flags are addressable, keeping every existing flag.
    pub fn ensure_len(&mut self, bits: usize) {
        self.grow(bits);
    }

    /// Whether any bit in `lo..hi` is set (word-at-a-time scan).
    pub fn any_in_range(&self, lo: usize, hi: usize) -> bool {
        if lo >= hi {
            return false;
        }
        let (lw, hw) = (lo / 64, (hi - 1) / 64);
        let lo_mask = !0u64 << (lo % 64);
        let hi_mask = !0u64 >> (63 - (hi - 1) % 64);
        if lw == hw {
            return self.words[lw] & lo_mask & hi_mask != 0;
        }
        if self.words[lw] & lo_mask != 0 || self.words[hw] & hi_mask != 0 {
            return true;
        }
        self.words[lw + 1..hw].iter().any(|&w| w != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut b = BitSet::new(130);
        assert!(!b.get(0) && !b.get(129));
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129) && !b.get(1));
        b.clear(64);
        assert!(!b.get(64) && b.get(0) && b.get(129));
    }

    #[test]
    fn range_scan_word_boundaries() {
        let mut b = BitSet::new(256);
        assert!(!b.any_in_range(0, 256));
        assert!(!b.any_in_range(5, 5));
        b.set(63);
        assert!(b.any_in_range(0, 64));
        assert!(b.any_in_range(63, 64));
        assert!(!b.any_in_range(64, 256));
        b.clear(63);
        b.set(128);
        assert!(b.any_in_range(64, 129));
        assert!(b.any_in_range(128, 192));
        assert!(!b.any_in_range(0, 128));
        assert!(!b.any_in_range(129, 256));
        // Spanning several whole words.
        assert!(b.any_in_range(1, 255));
    }

    /// The whole-set word scan: empty, sparse, and bits in the last
    /// partial word (capacity not a multiple of 64).
    #[test]
    fn any_scans_words_including_the_last_partial_one() {
        let mut b = BitSet::new(130); // 3 words, last one 2 bits wide
        assert!(!b.any(), "fresh set is empty");
        b.set(129); // the very last representable bit
        assert!(b.any());
        b.clear(129);
        assert!(!b.any(), "cleared back to empty");
        b.set(64); // exactly on a word boundary
        assert!(b.any());
    }

    /// `clear_all` wipes every word, including a full last word and a
    /// partial one.
    #[test]
    fn clear_all_resets_every_word() {
        for bits in [64usize, 65, 130, 192] {
            let mut b = BitSet::new(bits);
            for i in [0, bits / 2, bits - 1] {
                b.set(i);
            }
            assert!(b.any());
            b.clear_all();
            assert!(!b.any(), "capacity {bits}: clear_all left bits behind");
            assert!(!b.any_in_range(0, bits));
        }
    }

    /// `ones` drains the set indices in ascending order across word
    /// boundaries, adjacent bits, and the last partial word.
    #[test]
    fn ones_iterates_across_word_boundaries() {
        let mut b = BitSet::new(200);
        assert_eq!(b.ones().count(), 0, "empty set yields nothing");
        // Boundary-straddling pattern: ends of words, starts of words,
        // adjacent pairs, and the last bit of the final partial word.
        let expected = [0usize, 1, 63, 64, 65, 127, 128, 191, 199];
        for &i in &expected {
            b.set(i);
        }
        let got: Vec<usize> = b.ones().collect();
        assert_eq!(got, expected);
        // Clearing through the drained list empties the set (the dirty-set
        // usage pattern: dense list drives the clears).
        for i in got {
            b.clear(i);
        }
        assert!(!b.any());
        assert_eq!(b.ones().count(), 0);
    }

    /// `grow` exposes new zero bits and keeps old ones, across word
    /// boundaries and mid-word growth (the dynamic-world growth path).
    #[test]
    fn grow_zero_fills_and_preserves() {
        let mut b = BitSet::new(70); // 2 words, last one partial
        b.set(0);
        b.set(69);
        // Mid-word growth: 70 -> 100 stays within the second word.
        b.grow(100);
        assert!(b.get(0) && b.get(69));
        for i in 70..100 {
            assert!(!b.get(i), "bit {i} must start clear");
        }
        b.set(99);
        // Word-boundary growth: 100 -> 128 -> 129 allocates a third word.
        b.grow(129);
        assert!(b.get(99));
        assert!(!b.get(128));
        b.set(128);
        assert_eq!(b.ones().collect::<Vec<_>>(), vec![0, 69, 99, 128]);
        // Shrinking is a no-op: nothing is lost.
        b.grow(1);
        assert!(b.get(128));
        // ensure_len is the same operation under its container alias.
        let mut c = BitSet::new(10);
        c.set(9);
        c.ensure_len(200);
        c.set(199);
        assert!(c.get(9) && c.get(199) && !c.get(100));
    }

    /// Growth of an empty/default bitset behaves like a fresh `new`.
    #[test]
    fn grow_from_empty() {
        let mut b = BitSet::default();
        assert!(!b.any());
        b.grow(65);
        assert!(!b.any());
        b.set(64);
        assert!(b.get(64) && !b.get(0));
        assert!(b.any_in_range(0, 65));
    }

    /// A word whose every bit is set drains all 64 indices (the
    /// lowest-bit-dropping successor must terminate).
    #[test]
    fn ones_handles_a_saturated_word() {
        let mut b = BitSet::new(96);
        for i in 0..64 {
            b.set(i);
        }
        let got: Vec<usize> = b.ones().collect();
        assert_eq!(got, (0..64).collect::<Vec<_>>());
    }
}
