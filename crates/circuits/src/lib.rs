//! Reconfigurable-circuit substrate simulator for the amoebot model.
//!
//! Implements systems **S2** and **S17** of DESIGN.md: the reconfigurable
//! circuit extension of the amoebot model (Feldmann et al., §1.2 of the
//! paper) as an exact, fully synchronous, deterministic round-based
//! simulator.
//!
//! * Every edge between neighboring amoebots carries `c` *external links*;
//!   each endpoint owns one *pin* per link.
//! * Every amoebot partitions its pins into *partition sets*; the connected
//!   components of the resulting pin-configuration graph are *circuits*.
//! * An amoebot may *beep* on any of its partition sets; at the beginning of
//!   the next round every partition set of the same circuit receives the
//!   beep. Receivers learn neither the origin nor the multiplicity.
//!
//! The simulator counts rounds exactly: one [`World::tick`] is one round of
//! the fully synchronous activation model.
//!
//! # Example
//!
//! ```
//! use amoebot_circuits::{Topology, World};
//!
//! // A 3-node path with c = 1 link per edge.
//! let topo = Topology::from_edges(3, &[(0, 1), (1, 2)]);
//! let mut world = World::new(topo, 1);
//! // Everyone joins the global circuit, node 0 beeps.
//! for v in 0..3 {
//!     world.global_pin_config(v);
//! }
//! world.beep(0, 0);
//! world.tick();
//! assert!(world.received(2, 0));
//! assert_eq!(world.rounds(), 1);
//! ```

pub mod bitset;
pub mod leader;
pub mod replay;
pub mod report;
pub mod snapshot;
pub mod topology;
pub mod world;

pub use bitset::BitSet;
pub use replay::{replay_trace, ReplayError, ReplayReport};
pub use report::RoundReport;
pub use topology::{PortId, Topology};
pub use world::{TickFaults, World, REGION_FALLBACK_FRACTION};
